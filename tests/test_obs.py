"""Unit tests for the telemetry subsystem (repro.obs)."""

from __future__ import annotations

import io
import json
import math

import pytest

from repro import obs
from repro.obs.registry import NULL_COUNTER, NULL_GAUGE, NULL_HISTOGRAM
from repro.obs.report import render_report


@pytest.fixture()
def registry():
    """A fresh enabled registry installed as the process registry."""
    fresh = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(fresh)
    try:
        yield fresh
    finally:
        obs.set_registry(previous)


@pytest.fixture()
def tracer():
    """An in-memory tracer installed for the test."""
    fresh = obs.Tracer()
    previous = obs.set_tracer(fresh)
    try:
        yield fresh
    finally:
        obs.set_tracer(previous)


# ----------------------------------------------------------------------
# registry: counters, gauges, histograms
# ----------------------------------------------------------------------
class TestCounter:
    def test_inc_and_value(self, registry):
        c = registry.counter("repro_things_total", "things")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        assert c.total() == 3.5

    def test_labels_are_independent_series(self, registry):
        c = registry.counter("repro_ops_total")
        c.inc(op="ilu")
        c.inc(3, op="gsu")
        assert c.value(op="ilu") == 1
        assert c.value(op="gsu") == 3
        assert c.value(op="isu") == 0
        assert c.total() == 4

    def test_label_order_is_irrelevant(self, registry):
        c = registry.counter("repro_pairs_total")
        c.inc(a=1, b=2)
        assert c.value(b=2, a=1) == 1

    def test_negative_increment_raises(self, registry):
        c = registry.counter("repro_mono_total")
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_kind_conflict_raises(self, registry):
        registry.counter("repro_conflict")
        with pytest.raises(ValueError):
            registry.gauge("repro_conflict")

    def test_family_fetch_is_idempotent(self, registry):
        a = registry.counter("repro_same_total", "first help wins")
        b = registry.counter("repro_same_total", "ignored")
        assert a is b
        assert a.help == "first help wins"


class TestGauge:
    def test_set_inc_dec(self, registry):
        g = registry.gauge("repro_depth")
        g.set(10)
        g.inc(5)
        g.dec(3)
        assert g.value() == 12


class TestHistogram:
    def test_bucketing_against_known_bounds(self, registry):
        h = registry.histogram("repro_lat_seconds", buckets=(0.001, 0.01, 0.1))
        for value in (0.0005, 0.005, 0.005, 0.05, 5.0):
            h.observe(value)
        series = h.samples()[()]
        # per-bucket counts: <=1ms, <=10ms, <=100ms, +Inf overflow
        assert series.bucket_counts == [1, 2, 1, 1]
        assert series.count == 5
        assert series.total == pytest.approx(5.0605)

    def test_boundary_value_lands_in_its_bucket(self, registry):
        h = registry.histogram("repro_edge_seconds", buckets=(1.0, 2.0))
        h.observe(1.0)  # le="1.0" means <=, so exactly 1.0 belongs there
        assert h.samples()[()].bucket_counts == [1, 0, 0]

    def test_quantile_and_mean(self, registry):
        h = registry.histogram("repro_q_seconds", buckets=(1.0, 2.0, 4.0))
        for value in (0.5, 0.5, 1.5, 3.0):
            h.observe(value)
        assert h.mean() == pytest.approx(1.375)
        assert h.quantile(0.5) == 1.0  # bucket upper bound estimate
        assert h.quantile(1.0) == 4.0
        assert h.count() == 4

    def test_overflow_quantile_is_inf(self, registry):
        h = registry.histogram("repro_of_seconds", buckets=(1.0,))
        h.observe(100.0)
        assert h.quantile(0.99) == math.inf

    def test_default_buckets_are_log_scale(self):
        buckets = obs.default_latency_buckets()
        assert buckets[0] == pytest.approx(1e-6)
        assert all(b2 / b1 == pytest.approx(2.0) for b1, b2 in zip(buckets, buckets[1:]))

    def test_unsorted_buckets_raise(self, registry):
        with pytest.raises(ValueError):
            registry.histogram("repro_bad_seconds", buckets=(2.0, 1.0))


class TestDisabledRegistry:
    def test_disabled_registry_hands_out_nulls(self):
        registry = obs.MetricsRegistry(enabled=False)
        assert registry.counter("repro_x_total") is NULL_COUNTER
        assert registry.gauge("repro_x") is NULL_GAUGE
        assert registry.histogram("repro_x_seconds") is NULL_HISTOGRAM
        assert registry.families() == {}

    def test_null_instruments_accept_everything(self):
        NULL_COUNTER.inc(5, op="x")
        NULL_GAUGE.set(3)
        NULL_GAUGE.dec()
        NULL_HISTOGRAM.observe(1.0, phase="y")
        assert NULL_COUNTER.value() == 0.0
        assert NULL_HISTOGRAM.count() == 0

    def test_enable_disable_toggles(self):
        registry = obs.MetricsRegistry(enabled=False)
        registry.enable().counter("repro_now_total").inc()
        assert registry.get("repro_now_total").total() == 1
        registry.disable()
        registry.counter("repro_now_total").inc()  # null — dropped
        assert registry.get("repro_now_total").total() == 1

    def test_module_level_helpers_track_active_registry(self, registry):
        obs.counter("repro_mod_total").inc(2)
        assert registry.get("repro_mod_total").total() == 2


# ----------------------------------------------------------------------
# tracing
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_event_shape(self, tracer):
        with obs.trace("unit.op", k=1) as span:
            span.annotate(result="ok")
        (event,) = tracer.events
        assert event["event"] == "span"
        assert event["name"] == "unit.op"
        assert event["parent"] is None
        assert event["attrs"] == {"k": 1, "result": "ok"}
        assert event["dur_s"] >= 0

    def test_nested_spans_record_parentage(self, tracer):
        with obs.trace("outer") as outer:
            with obs.trace("inner"):
                pass
        inner_event, outer_event = tracer.events  # inner exits first
        assert inner_event["name"] == "inner"
        assert inner_event["parent"] == outer.span_id
        assert outer_event["parent"] is None

    def test_exception_is_recorded_and_propagates(self, tracer):
        with pytest.raises(RuntimeError):
            with obs.trace("unit.fail"):
                raise RuntimeError("boom")
        (event,) = tracer.events
        assert event["error"] == "RuntimeError"

    def test_no_tracer_is_a_noop(self):
        assert obs.get_tracer() is None
        with obs.trace("unit.ignored") as span:
            pass
        assert span.span_id is None

    def test_file_sink_writes_json_lines(self):
        sink = io.StringIO()
        tracer = obs.Tracer(sink)
        previous = obs.set_tracer(tracer)
        try:
            with obs.trace("unit.jsonl"):
                pass
        finally:
            obs.set_tracer(previous)
        event = json.loads(sink.getvalue())
        assert event["name"] == "unit.jsonl"


class TestTimingHelpers:
    def test_stopwatch_always_measures(self):
        with obs.stopwatch() as sw:
            pass
        assert sw.seconds >= 0.0
        assert sw.ms == pytest.approx(sw.seconds * 1000.0)

    def test_stopwatch_records_histogram_when_enabled(self, registry):
        with obs.stopwatch(metric="repro_sw_seconds", phase="x"):
            pass
        assert registry.get("repro_sw_seconds").count(phase="x") == 1

    def test_stopwatch_emits_span(self, registry, tracer):
        with obs.stopwatch(span="unit.sw", k=2):
            pass
        (event,) = tracer.events
        assert event["name"] == "unit.sw"
        assert event["attrs"] == {"k": 2}

    def test_timed_decorator(self, registry):
        @obs.timed("repro_fn_seconds", kind="unit")
        def add(a, b):
            return a + b

        assert add(2, 3) == 5
        assert registry.get("repro_fn_seconds").count(kind="unit") == 1

    def test_timed_short_circuits_when_off(self):
        previous = obs.set_registry(obs.MetricsRegistry(enabled=False))
        try:

            @obs.timed("repro_off_seconds")
            def f():
                return 42

            assert f() == 42
        finally:
            registry = obs.set_registry(previous)
        assert registry.get("repro_off_seconds") is None


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
class TestPrometheusExport:
    def _populate(self, registry):
        registry.counter("repro_ops_total", "operations").inc(2, op="ilu")
        registry.counter("repro_ops_total").inc(5, op="gsu")
        registry.gauge("repro_depth", "queue depth").set(7)
        h = registry.histogram(
            "repro_lat_seconds", "latency", buckets=(0.001, 0.01)
        )
        h.observe(0.0005, mode="a")
        h.observe(0.5, mode="a")

    def test_round_trip(self, registry):
        self._populate(registry)
        text = obs.render_prometheus(registry)
        parsed = obs.parse_prometheus(text)
        ops = parsed["repro_ops_total"]
        assert ops["type"] == "counter"
        assert ops["samples"][("repro_ops_total", (("op", "ilu"),))] == 2
        assert ops["samples"][("repro_ops_total", (("op", "gsu"),))] == 5
        assert parsed["repro_depth"]["samples"][("repro_depth", ())] == 7
        lat = parsed["repro_lat_seconds"]
        assert lat["type"] == "histogram"
        samples = lat["samples"]
        assert samples[
            ("repro_lat_seconds_bucket", (("le", "0.001"), ("mode", "a")))
        ] == 1
        assert samples[
            ("repro_lat_seconds_bucket", (("le", "+Inf"), ("mode", "a")))
        ] == 2
        assert samples[("repro_lat_seconds_count", (("mode", "a"),))] == 2

    def test_export_passes_lint(self, registry):
        self._populate(registry)
        assert obs.lint_prometheus(obs.render_prometheus(registry)) == []

    def test_lint_rejects_bad_names(self):
        text = "# TYPE bad_name_total counter\nbad_name_total 1\n"
        problems = obs.lint_prometheus(text)
        assert any("bad_name_total" in p for p in problems)

    def test_lint_rejects_duplicate_families(self):
        text = (
            "# TYPE repro_dup_total counter\nrepro_dup_total 1\n"
            "# TYPE repro_dup_total counter\nrepro_dup_total 2\n"
        )
        problems = obs.lint_prometheus(text)
        assert any("duplicate" in p for p in problems)

    def test_lint_rejects_untyped_samples(self):
        problems = obs.lint_prometheus("repro_untyped_total 3\n")
        assert any("TYPE" in p for p in problems)

    def test_lint_rejects_negative_counter(self):
        text = "# TYPE repro_neg_total counter\nrepro_neg_total -1\n"
        problems = obs.lint_prometheus(text)
        assert any("invalid value" in p for p in problems)

    def test_jsonl_snapshot(self, registry):
        self._populate(registry)
        sink = io.StringIO()
        obs.write_snapshot_jsonl(registry, sink)
        lines = [json.loads(line) for line in sink.getvalue().splitlines()]
        names = {line["metric"] for line in lines}
        assert {"repro_ops_total", "repro_depth", "repro_lat_seconds"} <= names


# ----------------------------------------------------------------------
# report rendering
# ----------------------------------------------------------------------
class TestReport:
    def test_empty_registry_renders_placeholder(self, registry):
        assert "no telemetry captured" in render_report(registry)

    def test_report_covers_populated_sections(self, registry):
        registry.histogram("repro_query_seconds").observe(0.001, pruning="lemma4")
        registry.counter("repro_queries_total").inc(pruning="lemma4")
        registry.counter("repro_query_bound_evals_total").inc(10, pruning="lemma4")
        registry.counter("repro_query_pruned_total").inc(4, pruning="lemma4")
        registry.histogram("repro_maintenance_seconds").observe(0.002, op="ilu")
        registry.counter("repro_maintenance_ops_total").inc(op="ilu")
        text = render_report(registry)
        assert "FSPQ queries" in text
        assert "0.400" in text  # pruning rate = 4 / 10
        assert "maintenance" in text
        assert "ilu" in text
