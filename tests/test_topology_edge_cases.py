"""Edge-case topologies: every index must survive degenerate shapes."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.ch import CHIndex
from repro.baselines.dijkstra import dijkstra_distances
from repro.baselines.gtree import TDGTree
from repro.baselines.pll import PLLIndex
from repro.core.fahl import FAHLIndex
from repro.labeling.h2h import H2HIndex
from repro.graph.road_network import RoadNetwork


def path_graph(n: int) -> RoadNetwork:
    return RoadNetwork(n, edges=[(i, i + 1, float(i + 1)) for i in range(n - 1)])


def star_graph(n: int) -> RoadNetwork:
    return RoadNetwork(n, edges=[(0, i, float(i)) for i in range(1, n)])


def complete_graph(n: int) -> RoadNetwork:
    return RoadNetwork(
        n,
        edges=[
            (i, j, float(i + j + 1))
            for i in range(n)
            for j in range(i + 1, n)
        ],
    )


def cycle_graph(n: int) -> RoadNetwork:
    return RoadNetwork(
        n, edges=[(i, (i + 1) % n, 1.0) for i in range(n)]
    )


TOPOLOGIES = {
    "path": path_graph(9),
    "star": star_graph(8),
    "complete": complete_graph(7),
    "cycle": cycle_graph(10),
    "two-vertex": RoadNetwork(2, edges=[(0, 1, 3.0)]),
}


def assert_oracle_exact(oracle, graph):
    n = graph.num_vertices
    for s in range(n):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert oracle.distance(s, t) == pytest.approx(ref[t]), (s, t)


@pytest.mark.parametrize("name", sorted(TOPOLOGIES))
class TestAllIndexesOnDegenerateShapes:
    def test_h2h(self, name):
        graph = TOPOLOGIES[name].copy()
        assert_oracle_exact(H2HIndex(graph), graph)

    def test_fahl(self, name):
        graph = TOPOLOGIES[name].copy()
        flows = np.linspace(1, 50, graph.num_vertices)
        assert_oracle_exact(FAHLIndex(graph, flows), graph)

    def test_ch(self, name):
        graph = TOPOLOGIES[name].copy()
        assert_oracle_exact(CHIndex(graph), graph)

    def test_gtree(self, name):
        graph = TOPOLOGIES[name].copy()
        assert_oracle_exact(TDGTree(graph, leaf_size=3), graph)

    def test_pll(self, name):
        graph = TOPOLOGIES[name].copy()
        assert_oracle_exact(PLLIndex(graph), graph)


class TestShapeSpecificStructure:
    def test_path_graph_treewidth_one(self):
        index = H2HIndex(path_graph(12).copy())
        assert index.treewidth == 1

    def test_star_is_flat(self):
        # min-degree eliminates leaves first; the final hub/leaf tie-break
        # may crown either, but the tree stays (almost) flat
        index = H2HIndex(star_graph(9).copy())
        assert index.treewidth == 1
        assert index.treeheight <= 2

    def test_complete_graph_treewidth(self):
        index = H2HIndex(complete_graph(6).copy())
        assert index.treewidth == 5  # a clique is one bag

    def test_fahl_on_star_respects_flow(self):
        graph = star_graph(9).copy()
        # beta=1: lowest-flow leaf becomes the root, everything still exact
        flows = np.arange(9, dtype=float) + 1.0
        flows[4] = 0.0
        index = FAHLIndex(graph, flows, beta=1.0)
        assert index.tree.root == 4
        assert_oracle_exact(index, graph)

    def test_maintenance_on_path_graph(self):
        from repro.core.maintenance import apply_flow_update, apply_weight_update

        graph = path_graph(9).copy()
        flows = np.ones(9)
        index = FAHLIndex(graph, flows)
        apply_weight_update(index, 3, 4, 50.0)
        apply_flow_update(index, 5, 99.0, method="isu")
        assert_oracle_exact(index, graph)
