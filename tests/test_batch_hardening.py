"""Fork-pool hardening: fallback reporting, dead-worker and hang recovery."""

from __future__ import annotations

import pytest

import repro.core.batch as batch_module
from repro.core.batch import BatchReport, batch_query
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.testing import WorkerFault


@pytest.fixture()
def engine():
    graph = grid_network(5, 5, seed=11)
    frn = FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=2))
    return FlowAwareEngine(frn, oracle=build_fahl(frn), alpha=0.5, eta_u=3.0)


def make_queries(engine, count=8):
    n = engine.frn.num_vertices
    return [
        FSPQuery(i % n, (i * 7 + 3) % n, i % engine.frn.num_timesteps)
        for i in range(count)
        if i % n != (i * 7 + 3) % n
    ]


class TestFallbackReporting:
    def test_serial_reason_workers(self, engine):
        report = BatchReport()
        batch_query(engine, make_queries(engine), workers=1, report=report)
        assert report.mode == "serial"
        assert report.fallback_reason == "workers<=1"

    def test_serial_reason_single_query(self, engine):
        report = BatchReport()
        batch_query(engine, make_queries(engine)[:1], workers=4, report=report)
        assert report.mode == "serial"
        assert report.fallback_reason == "single-query"

    def test_serial_reason_fork_unavailable(self, engine, monkeypatch):
        monkeypatch.setattr(batch_module, "_fork_context", lambda: None)
        report = BatchReport()
        queries = make_queries(engine)
        results = batch_query(engine, queries, workers=4, report=report)
        assert report.mode == "serial"
        assert report.fallback_reason == "fork-unavailable"
        assert report.warnings
        assert results == batch_query(engine, queries, workers=1)

    def test_rejects_bad_chunk_timeout(self, engine):
        with pytest.raises(QueryError):
            batch_query(engine, make_queries(engine), chunk_timeout=0.0)

    def test_parallel_mode_reported(self, engine):
        report = BatchReport()
        queries = make_queries(engine)
        results = batch_query(engine, queries, workers=2, report=report)
        assert report.mode == "parallel"
        assert report.workers == 2
        assert report.chunks >= 2
        assert report.recovered_chunks == 0
        assert results == batch_query(engine, queries, workers=1)


@pytest.mark.chaos
class TestWorkerRecovery:
    def test_killed_worker_chunk_is_recovered(self, engine):
        queries = make_queries(engine)
        expected = batch_query(engine, queries, workers=1)
        report = BatchReport()
        with WorkerFault(position=0, kind="kill"):
            results = batch_query(
                engine, queries, workers=2, chunk_timeout=2.0, report=report
            )
        assert report.mode == "parallel-recovered"
        assert report.recovered_chunks >= 1
        assert report.warnings
        assert results == expected

    def test_hung_worker_chunk_is_recovered(self, engine):
        queries = make_queries(engine)
        expected = batch_query(engine, queries, workers=1)
        report = BatchReport()
        with WorkerFault(position=0, kind="hang", hang_seconds=30.0):
            results = batch_query(
                engine, queries, workers=2, chunk_timeout=1.5, report=report
            )
        assert report.mode == "parallel-recovered"
        assert report.recovered_chunks >= 1
        assert results == expected
