"""AsyncGateway: coalescing bit-identity, admission, backpressure, metrics.

The micro-batching front door must be invisible in the answers: whatever
``engine.query()`` returns per request, the coalesced window returns bit
for bit (property-tested across kernels, with maintenance interleaved
mid-window), and the failure modes are typed — ``AdmissionError`` for
over-rate clients, ``BackpressureError`` for a full queue — never hangs.
"""

from __future__ import annotations

import asyncio

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro import (
    AdmissionError,
    AsyncGateway,
    BackpressureError,
    FSPQuery,
    ResilientEngine,
    ShardedGateway,
    as_distance,
    as_result,
    build_fahl,
    obs,
)
from repro.core.fpsps import FlowAwareEngine
from repro.errors import QueryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.serving.admission import ClientAdmission, TokenBucket
from repro.serving.updates import FlowUpdate


@pytest.fixture(scope="module")
def frn():
    graph = grid_network(5, 5, seed=11)
    return FlowAwareRoadNetwork(
        graph, generate_flow_series(graph, days=1, seed=4)
    )


@pytest.fixture(scope="module")
def flow_engine(frn):
    return FlowAwareEngine(frn, oracle=build_fahl(frn))


@pytest.fixture()
def registry():
    fresh = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(fresh)
    try:
        yield fresh
    finally:
        obs.set_registry(previous)


# ----------------------------------------------------------------------
# bit-identity: the window is invisible in the answers
# ----------------------------------------------------------------------
class TestCoalescedBitIdentity:
    @given(data=st.data())
    def test_window_equals_per_request_query(self, flow_engine, frn, data):
        """Coalesced answers == engine.query(), flat and scalar kernels,
        with a cache invalidation interleaved mid-window."""
        n = frn.num_vertices
        t = frn.num_timesteps
        kernel = data.draw(st.sampled_from(["flat", "scalar"]))
        triples = data.draw(st.lists(
            st.tuples(
                st.integers(0, n - 1),
                st.integers(0, n - 1),
                st.integers(0, t - 1),
            ),
            min_size=1,
            max_size=10,
        ))
        queries = [FSPQuery(u, v, ts) for u, v, ts in triples]
        with flow_engine.kernel_override(kernel):
            expected = [flow_engine.query(q) for q in queries]

        async def run():
            async with AsyncGateway(
                flow_engine, window_seconds=0.0, kernel=kernel
            ) as gateway:
                tasks = [
                    asyncio.ensure_future(gateway.aquery(q)) for q in queries
                ]
                await asyncio.sleep(0)  # let every task join the open window
                gateway.invalidate()    # maintenance hook mid-window
                return await asyncio.gather(*tasks)

        assert asyncio.run(run()) == expected

    def test_flow_update_mid_window_is_coalescing_safe(self, frn):
        """A real maintenance op lands mid-window; the whole window answers
        from the post-update index, same as per-request calls would."""
        serving = ResilientEngine(frn, max_retries=0, backoff=0.0)
        queries = [FSPQuery(0, i, 0) for i in range(1, 9)]

        async def run():
            async with AsyncGateway(serving, window_seconds=0.01) as gateway:
                first = [
                    asyncio.ensure_future(gateway.aquery(q))
                    for q in queries[:4]
                ]
                await asyncio.sleep(0)  # enqueued into the open window
                outcome = serving.submit(FlowUpdate(0, 55.0))
                assert outcome.applied
                second = [
                    asyncio.ensure_future(gateway.aquery(q))
                    for q in queries[4:]
                ]
                return await asyncio.gather(*first, *second)

        got = asyncio.run(run())
        expected = [serving.query(q) for q in queries]
        assert [as_result(g) for g in got] == [as_result(e) for e in expected]

    def test_adistance_matches_sync_distance(self, flow_engine, frn):
        pairs = [(0, i) for i in range(frn.num_vertices)]

        async def run():
            async with AsyncGateway(flow_engine, window_seconds=0.0) as gw:
                return await asyncio.gather(
                    *(gw.adistance(u, v) for u, v in pairs)
                )

        got = asyncio.run(run())
        for (u, v), value in zip(pairs, got):
            assert value == flow_engine.distance(u, v)

    def test_envelopes_survive_the_window(self, frn):
        """Serving tiers answer with their envelopes, not unwrapped values."""
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        query = FSPQuery(0, frn.num_vertices - 1, 0)

        async def run():
            async with AsyncGateway(gateway, window_seconds=0.0) as agw:
                return await agw.aquery(query), await agw.adistance(0, 5)

        result, distance = asyncio.run(run())
        assert type(result) is type(gateway.query(query))
        assert as_result(result) == as_result(gateway.query(query))
        assert as_distance(distance) == as_distance(gateway.distance(0, 5))

    def test_abatch_preserves_order(self, flow_engine, frn):
        queries = [FSPQuery(i, frn.num_vertices - 1 - i, 0) for i in range(6)]

        async def run():
            async with AsyncGateway(flow_engine, window_seconds=0.0) as gw:
                return await gw.abatch(queries)

        got = asyncio.run(run())
        assert got == [flow_engine.query(q) for q in queries]

    def test_poisoned_request_does_not_fail_window_neighbours(self, flow_engine, frn):
        good = FSPQuery(0, 5, 0)
        bad = FSPQuery(0, 5, 10_000)  # timestep out of range

        async def run():
            async with AsyncGateway(flow_engine, window_seconds=0.0) as gw:
                tasks = [
                    asyncio.ensure_future(gw.aquery(good)),
                    asyncio.ensure_future(gw.aquery(bad)),
                    asyncio.ensure_future(gw.aquery(good)),
                ]
                return await asyncio.gather(*tasks, return_exceptions=True)

        first, second, third = asyncio.run(run())
        assert first == flow_engine.query(good) == third
        assert isinstance(second, QueryError)


# ----------------------------------------------------------------------
# coalescing actually happens
# ----------------------------------------------------------------------
class TestCoalescing:
    def test_concurrent_requests_share_windows(self, flow_engine, frn):
        queries = [FSPQuery(0, i % frn.num_vertices, 0) for i in range(24)]

        async def run(gateway):
            async with gateway:
                return await asyncio.gather(
                    *(gateway.aquery(q) for q in queries)
                )

        gateway = AsyncGateway(flow_engine, window_seconds=0.002)
        asyncio.run(run(gateway))
        assert gateway.stats.requests == len(queries)
        assert gateway.stats.windows < len(queries)
        assert gateway.stats.coalescing_ratio() > 1.0
        assert gateway.stats.largest_window > 1

    def test_max_window_splits_but_never_drops(self, flow_engine, frn):
        queries = [FSPQuery(0, i % frn.num_vertices, 0) for i in range(10)]

        async def run(gateway):
            async with gateway:
                return await asyncio.gather(
                    *(gateway.aquery(q) for q in queries)
                )

        gateway = AsyncGateway(flow_engine, window_seconds=0.0, max_window=3)
        got = asyncio.run(run(gateway))
        assert got == [flow_engine.query(q) for q in queries]
        assert gateway.stats.largest_window <= 3
        assert gateway.stats.windows >= 4


# ----------------------------------------------------------------------
# typed rejections: admission + backpressure
# ----------------------------------------------------------------------
class TestRejections:
    def test_backpressure_is_typed(self, flow_engine):
        query = FSPQuery(0, 5, 0)

        async def run():
            async with AsyncGateway(
                flow_engine, window_seconds=0.05, max_queue=2
            ) as gateway:
                tasks = []
                for _ in range(2):
                    tasks.append(asyncio.ensure_future(gateway.aquery(query)))
                    await asyncio.sleep(0)  # occupy the two queue slots
                with pytest.raises(BackpressureError) as excinfo:
                    await gateway.aquery(query)
                assert excinfo.value.depth == 2
                assert gateway.stats.rejected_backpressure == 1
                await asyncio.gather(*tasks)

        asyncio.run(run())

    def test_admission_is_typed_and_per_client(self, flow_engine):
        query = FSPQuery(0, 5, 0)

        async def run():
            async with AsyncGateway(
                flow_engine,
                window_seconds=0.0,
                admission_rate=0.001,
                admission_burst=1.0,
            ) as gateway:
                await gateway.aquery(query, client="a")  # burns a's token
                with pytest.raises(AdmissionError) as excinfo:
                    await gateway.aquery(query, client="a")
                assert excinfo.value.client == "a"
                assert excinfo.value.retry_after > 0
                # an independent client still gets through
                await gateway.aquery(query, client="b")
                assert gateway.stats.rejected_admission == 1

        asyncio.run(run())

    def test_rejections_move_the_metrics(self, registry, flow_engine):
        query = FSPQuery(0, 5, 0)

        async def run():
            async with AsyncGateway(
                flow_engine, window_seconds=0.05, max_queue=1
            ) as gateway:
                task = asyncio.ensure_future(gateway.aquery(query))
                await asyncio.sleep(0)
                with pytest.raises(BackpressureError):
                    await gateway.aquery(query)
                await task

        asyncio.run(run())
        rejected = registry.get("repro_async_rejected_total")
        assert rejected.value(reason="backpressure") == 1
        assert registry.get("repro_async_requests_total").value(kind="query") == 1
        assert registry.get("repro_async_windows_total").total() == 1
        assert registry.get("repro_async_resolved_total").value(
            kind="query", outcome="resolved"
        ) == 1
        assert registry.get("repro_async_window_size").value() == 1
        assert registry.get("repro_async_queue_depth").value() == 0


# ----------------------------------------------------------------------
# the sync escape hatch
# ----------------------------------------------------------------------
class TestSyncSubmit:
    def test_submit_round_trips_through_background_loop(self, flow_engine):
        query = FSPQuery(0, 7, 0)
        gateway = AsyncGateway(flow_engine, window_seconds=0.0).start()
        try:
            futures = [gateway.submit(query) for _ in range(5)]
            expected = flow_engine.query(query)
            for future in futures:
                assert future.result(timeout=10.0) == expected
        finally:
            gateway.close()

    def test_submit_rejects_non_queries(self, flow_engine):
        gateway = AsyncGateway(flow_engine).start()
        try:
            with pytest.raises(QueryError):
                gateway.submit((0, 7, 0))
        finally:
            gateway.close()

    def test_submit_without_loop_raises(self, flow_engine):
        gateway = AsyncGateway(flow_engine)
        with pytest.raises(QueryError):
            gateway.submit(FSPQuery(0, 7, 0))

    def test_submit_after_close_is_rejected(self, flow_engine):
        gateway = AsyncGateway(flow_engine).start()
        gateway.close()
        with pytest.raises(QueryError):
            gateway.submit(FSPQuery(0, 7, 0))

    def test_rejections_surface_on_the_future(self, flow_engine):
        gateway = AsyncGateway(
            flow_engine,
            window_seconds=0.0,
            admission_rate=0.001,
            admission_burst=1.0,
        ).start()
        try:
            first = gateway.submit(FSPQuery(0, 7, 0))
            first.result(timeout=10.0)
            second = gateway.submit(FSPQuery(0, 7, 0))
            with pytest.raises(AdmissionError):
                second.result(timeout=10.0)
        finally:
            gateway.close()


# ----------------------------------------------------------------------
# construction guards + admission primitives
# ----------------------------------------------------------------------
class TestConstruction:
    def test_rejects_bad_parameters(self, flow_engine):
        with pytest.raises(QueryError):
            AsyncGateway(flow_engine, window_seconds=-1.0)
        with pytest.raises(QueryError):
            AsyncGateway(flow_engine, max_window=0)
        with pytest.raises(QueryError):
            AsyncGateway(flow_engine, max_queue=0)
        with pytest.raises(QueryError):
            AsyncGateway(flow_engine, workers=0)

    def test_one_gateway_per_loop(self, flow_engine):
        gateway = AsyncGateway(flow_engine, window_seconds=0.0)

        async def first():
            async with gateway:
                await gateway.aquery(FSPQuery(0, 5, 0))

        async def second():
            await gateway.aquery(FSPQuery(0, 5, 0))

        asyncio.run(first())
        with pytest.raises(QueryError):
            asyncio.run(second())


class TestAdmissionPrimitives:
    def test_token_bucket_refills(self):
        now = [0.0]
        bucket = TokenBucket(rate=2.0, burst=2.0, clock=lambda: now[0])
        assert bucket.try_admit()
        assert bucket.try_admit()
        assert not bucket.try_admit()
        assert bucket.retry_after() == pytest.approx(0.5)
        now[0] += 0.5
        assert bucket.try_admit()

    def test_client_admission_is_per_client_and_bounded(self):
        now = [0.0]
        admission = ClientAdmission(
            rate=1.0, burst=1.0, max_clients=2, clock=lambda: now[0]
        )
        assert admission.admit("a") is None
        assert admission.admit("b") is None
        assert admission.admit("a") is not None  # a's bucket is empty
        # a third client evicts the least-recently-used bucket
        assert admission.admit("c") is None
        assert len(admission._buckets) == 2
