"""Unit tests for en-route navigation sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.navigation import (
    NavigationSession,
    compare_static_vs_live,
)
from repro.errors import QueryError
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork


@pytest.fixture()
def shifting_frn() -> FlowAwareRoadNetwork:
    """Two parallel routes whose congestion flips mid-drive.

    Route A: 0-1-2-5 (short); route B: 0-3-4-5 (longer).  At slice 0 route
    A is quiet and gets chosen; from slice 1 on, vertex 2 — still ahead of
    a slow vehicle — jams, so a live navigator should divert onto B while a
    static plan drives straight into the jam.
    """
    graph = RoadNetwork(6, edges=[
        (0, 1, 2.0), (1, 2, 2.0), (2, 5, 2.0),
        (0, 3, 2.0), (3, 4, 2.0), (4, 5, 2.0),
    ])
    calm = [1.0, 5.0, 4.0, 6.0, 6.0, 1.0]
    jammed = [1.0, 5.0, 500.0, 6.0, 6.0, 1.0]
    matrix = np.array([calm, jammed, jammed, jammed, jammed, jammed])
    return FlowAwareRoadNetwork(graph, FlowSeries(matrix))


@pytest.fixture()
def shifting_engine(shifting_frn):
    index = build_fahl(shifting_frn)
    return FlowAwareEngine(shifting_frn, oracle=index, alpha=0.3, eta_u=3.0,
                           max_candidates=8)


class TestNavigationSession:
    def test_static_drive_completes_on_plan(self, shifting_engine):
        log = NavigationSession(
            shifting_engine, 0, 5, departure=0, hops_per_slice=1
        ).drive(replan=False)
        assert log.completed
        assert log.visited == [0, 1, 2, 5]
        assert log.replans == 0
        assert log.experienced_flow > 400  # drove into the jam

    def test_live_drive_diverts_around_jam(self, shifting_engine):
        log = NavigationSession(
            shifting_engine, 0, 5, departure=0, hops_per_slice=1,
            replan_threshold=0.05,
        ).drive(replan=True)
        assert log.completed
        assert log.replans >= 1
        assert 2 not in log.visited  # dodged the jammed vertex

    def test_live_beats_static_on_experienced_flow(self, shifting_engine):
        static, live = compare_static_vs_live(
            shifting_engine, 0, 5, departure=0, hops_per_slice=1
        )
        assert static.completed and live.completed
        assert live.experienced_flow < static.experienced_flow

    def test_fast_vehicle_outruns_the_jam(self, shifting_engine):
        # traversing everything within slice 0 never sees the jam
        log = NavigationSession(
            shifting_engine, 0, 5, departure=0, hops_per_slice=8
        ).drive(replan=True)
        assert log.completed
        assert log.slices == 1
        assert log.replans == 0
        assert log.experienced_flow < 20

    def test_distance_accounts_edges(self, shifting_engine):
        log = NavigationSession(
            shifting_engine, 0, 5, departure=0, hops_per_slice=1
        ).drive(replan=False)
        assert log.distance == pytest.approx(6.0)

    def test_same_source_target(self, shifting_engine):
        log = NavigationSession(shifting_engine, 2, 2).drive()
        assert log.completed
        assert log.visited == [2]
        assert log.distance == 0.0

    def test_validation(self, shifting_engine):
        with pytest.raises(QueryError):
            NavigationSession(shifting_engine, 0, 99)
        with pytest.raises(QueryError):
            NavigationSession(shifting_engine, 0, 5, hops_per_slice=0)
        with pytest.raises(QueryError):
            NavigationSession(shifting_engine, 0, 5, replan_threshold=-0.1)


class TestOnRealisticNetwork:
    def test_long_drive_on_grid(self, small_frn):
        index = build_fahl(small_frn)
        engine = FlowAwareEngine(small_frn, oracle=index, alpha=0.4,
                                 eta_u=3.0, max_candidates=8)
        static, live = compare_static_vs_live(
            engine, 0, small_frn.num_vertices - 1, departure=6,
            hops_per_slice=2,
        )
        assert static.completed and live.completed
        assert static.visited[0] == live.visited[0] == 0
        assert static.visited[-1] == live.visited[-1]
        # live re-planning never experiences dramatically more congestion
        assert live.experienced_flow <= static.experienced_flow * 1.25
