"""Sharded gateway: partition invariants, exactness, cache, isolation."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import FSPQuery, ShardedGateway, as_distance, build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.scale import partition_network
from repro.scale.cache import ResultCache
from repro.serving import FlowUpdate, WeightUpdate
from repro.testing.faults import FaultInjector
from repro.baselines.dijkstra import dijkstra_distance

from .strategies import connected_graphs


def _frn(graph, seed=4):
    return FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=seed))


@pytest.fixture()
def grid_frn():
    return _frn(grid_network(8, 8, seed=3))


@pytest.fixture()
def gateway(grid_frn):
    return ShardedGateway(grid_frn, num_shards=4, max_retries=0, backoff=0.0)


class TestPartition:
    def test_covers_every_vertex_exactly_once(self, grid_frn):
        plan = partition_network(grid_frn.graph, 4)
        seen = [v for members in plan.members for v in members]
        assert sorted(seen) == list(range(grid_frn.graph.num_vertices))
        for k, members in enumerate(plan.members):
            assert all(plan.shard(v) == k for v in members)

    def test_shards_are_connected(self, grid_frn):
        plan = partition_network(grid_frn.graph, 4)
        for members in plan.members:
            sub, _ = grid_frn.graph.subgraph(members)
            reached = {0}
            stack = [0]
            while stack:
                u = stack.pop()
                for w in sub.neighbors(u):
                    if w not in reached:
                        reached.add(w)
                        stack.append(w)
            assert len(reached) == sub.num_vertices

    def test_boundary_and_cut_edges_agree_with_graph(self, grid_frn):
        graph = grid_frn.graph
        plan = partition_network(graph, 4)
        cut = {
            (min(u, v), max(u, v))
            for u, v, _ in graph.edges()
            if plan.shard(u) != plan.shard(v)
        }
        assert {(min(u, v), max(u, v)) for u, v, _ in plan.cut_edges} == cut
        for k, members in enumerate(plan.members):
            expected = {
                v
                for v in members
                if any(plan.shard(w) != k for w in graph.neighbors(v))
            }
            assert set(plan.boundary[k]) == expected


class TestExactness:
    @settings(max_examples=10, deadline=None)
    @given(data=st.data())
    def test_distances_bit_identical_to_monolithic(self, data):
        graph = data.draw(connected_graphs(min_vertices=8, max_vertices=20))
        frn = _frn(graph, seed=data.draw(st.integers(0, 5)))
        gateway = ShardedGateway(
            frn, num_shards=data.draw(st.integers(2, 3)),
            max_retries=0, backoff=0.0,
        )
        mono = build_fahl(frn)
        n = graph.num_vertices
        for _ in range(8):
            u = data.draw(st.integers(0, n - 1))
            v = data.draw(st.integers(0, n - 1))
            # integer edge weights: float64 sums are exact, so == is fair
            assert as_distance(gateway.distance(u, v)) == mono.distance(u, v)

    def test_grid_distances_match_monolithic(self, gateway, grid_frn):
        mono = build_fahl(grid_frn)
        n = grid_frn.num_vertices
        for i in range(60):
            u, v = (5 * i) % n, (11 * i + 3) % n
            assert as_distance(gateway.distance(u, v)) == pytest.approx(
                mono.distance(u, v), abs=1e-9
            )

    def test_query_spdis_matches_monolithic_across_intervals(
        self, gateway, grid_frn
    ):
        mono = FlowAwareEngine(
            grid_frn, oracle=build_fahl(grid_frn),
            alpha=0.5, eta_u=3.0, pruning="none",
        )
        n, steps = grid_frn.num_vertices, grid_frn.num_timesteps
        for i in range(40):
            u, v = (7 * i + 1) % n, (13 * i + 5) % n
            if u == v:
                continue
            query = FSPQuery(u, v, i % steps)
            got = gateway.query(query).result
            want = mono.query(query)
            assert got.shortest_distance == pytest.approx(
                want.shortest_distance, abs=1e-9
            )

    def test_batch_matches_serial_queries(self, gateway, grid_frn):
        n, steps = grid_frn.num_vertices, grid_frn.num_timesteps
        queries = [
            FSPQuery((3 * i) % n, (7 * i + 5) % n, i % steps)
            for i in range(24)
            if (3 * i) % n != (7 * i + 5) % n
        ]
        serial = [gateway.query(q) for q in queries]
        gateway.invalidate()  # drop the cache so batch recomputes
        batched = gateway.batch(queries, workers=2)
        for got, want in zip(batched, serial):
            assert got.result.shortest_distance == pytest.approx(
                want.result.shortest_distance, abs=1e-9
            )


class TestResultCache:
    def test_repeated_query_hits(self, gateway, grid_frn):
        query = FSPQuery(0, grid_frn.num_vertices - 1, 2)
        first = gateway.query(query)
        second = gateway.query(query)
        assert second.result is first.result
        stats = gateway.status().cache
        assert stats.hits >= 1 and stats.misses >= 1

    def test_weight_update_stale_drops_cached_entries(self, gateway, grid_frn):
        graph = grid_frn.graph
        u, v, w = next(iter(graph.edges()))
        far = grid_frn.num_vertices - 1
        before = as_distance(gateway.distance(u, far))
        assert as_distance(gateway.distance(u, far)) == before  # cached
        outcome = gateway.submit(WeightUpdate(u, v, w * 4.0, timestamp=1.0))
        assert outcome.applied
        after = as_distance(gateway.distance(u, far))
        assert after == pytest.approx(
            dijkstra_distance(graph, u, far), abs=1e-9
        )
        assert gateway.status().cache.stale_drops >= 1

    def test_flow_update_invalidates_only_owning_shards(self, gateway):
        plan = gateway.plan
        in_shard0 = FSPQuery(plan.members[0][0], plan.members[0][-1], 0)
        in_shard1 = FSPQuery(plan.members[1][0], plan.members[1][-1], 0)
        gateway.query(in_shard0)
        gateway.query(in_shard1)
        assert gateway.submit(
            FlowUpdate(plan.members[0][0], 42.0, timestamp=1.0)
        ).applied
        base = gateway.status().cache.stale_drops
        gateway.query(in_shard1)  # shard 1 epoch untouched: still a hit
        assert gateway.status().cache.stale_drops == base
        gateway.query(in_shard0)  # shard 0 epoch bumped: entry dies lazily
        assert gateway.status().cache.stale_drops == base + 1

    def test_lru_eviction_is_bounded(self):
        cache = ResultCache(capacity=2)
        for i in range(5):
            cache.put(("q", i, i + 1, 0), i, (0, 0, 0))
        stats = cache.stats()
        assert stats.size == 2
        assert stats.evictions == 3


class TestMaintenance:
    def test_intra_shard_weight_update_routes_ilu(self, gateway):
        plan, graph = gateway.plan, gateway.frn.graph
        u, v, w = next(
            (u, v, w) for u, v, w in graph.edges()
            if plan.shard(u) == plan.shard(v)
        )
        outcome = gateway.submit(WeightUpdate(u, v, w + 2.0, timestamp=1.0))
        assert outcome.applied and outcome.strategy == "ilu"
        assert graph.weight(u, v) == w + 2.0

    def test_cut_edge_weight_update_is_gateway_owned(self, gateway):
        u, v, _ = gateway.plan.cut_edges[0]
        new = gateway.frn.graph.weight(u, v) + 3.0
        outcome = gateway.submit(WeightUpdate(u, v, new, timestamp=1.0))
        assert outcome.applied and outcome.strategy == "cut-edge"
        far = (u + 17) % gateway.frn.num_vertices
        assert as_distance(gateway.distance(u, far)) == pytest.approx(
            dijkstra_distance(gateway.frn.graph, u, far), abs=1e-9
        )

    def test_bad_updates_are_dead_lettered_not_raised(self, gateway):
        assert not gateway.submit(FlowUpdate(3, math.nan, timestamp=1.0)).accepted
        assert not gateway.submit(FlowUpdate(-7, 1.0, timestamp=1.0)).accepted
        u, v, _ = gateway.plan.cut_edges[0]
        assert not gateway.submit(
            WeightUpdate(u, v, -1.0, timestamp=1.0)
        ).accepted
        status = gateway.status()
        assert status.metrics["updates_rejected"] >= 3

    def test_cut_edge_stale_timestamp_rejected(self, gateway):
        u, v, _ = gateway.plan.cut_edges[0]
        w = gateway.frn.graph.weight(u, v)
        assert gateway.submit(WeightUpdate(u, v, w + 1.0, timestamp=5.0)).applied
        late = gateway.submit(WeightUpdate(u, v, w + 2.0, timestamp=4.0))
        assert not late.accepted and late.reason == "stale-timestamp"


class TestDegradedIsolation:
    def test_poisoned_shard_does_not_degrade_the_rest(self, gateway):
        plan = gateway.plan
        victim = plan.members[0][0]
        with FaultInjector() as injector:
            injector.fail_at("flow:flow-set", times=10)
            outcome = gateway.submit(FlowUpdate(victim, 42.0, timestamp=1.0))
        assert outcome.deferred
        assert gateway.degraded_shards == (0,)

        healthy = gateway.query(
            FSPQuery(plan.members[1][0], plan.members[1][-1], 0)
        )
        assert not healthy.degraded and healthy.source == "shard"

        touched = gateway.query(FSPQuery(victim, plan.members[2][0], 0))
        assert touched.degraded and touched.source == "fallback"
        assert touched.result.shortest_distance == pytest.approx(
            dijkstra_distance(gateway.frn.graph, victim, plan.members[2][0]),
            abs=1e-9,
        )

    def test_repair_restores_index_serving(self, gateway):
        victim = gateway.plan.members[0][0]
        with FaultInjector() as injector:
            injector.fail_at("flow:flow-set", times=10)
            gateway.submit(FlowUpdate(victim, 42.0, timestamp=1.0))
        assert gateway.degraded_shards == (0,)
        verdicts = gateway.repair()
        assert verdicts == {0: True}
        assert gateway.degraded_shards == ()
        result = gateway.query(FSPQuery(victim, gateway.plan.members[2][0], 0))
        assert result.source in ("shard", "boundary")


class TestStatus:
    def test_snapshot_shape(self, gateway, grid_frn):
        gateway.query(FSPQuery(0, grid_frn.num_vertices - 1, 0))
        status = gateway.status()
        assert status.num_shards == 4
        assert sum(status.shard_sizes) == grid_frn.num_vertices
        assert status.boundary_vertices > 0
        assert status.degraded_shards == ()
        assert len(status.shard_epochs) == 4
        assert status.cache.capacity > 0
        assert any(k.startswith("queries_") for k in status.metrics)
