"""Unit tests for the batch query session and memoized oracle."""

from __future__ import annotations

import pytest

from repro.core.batch import MemoizedOracle, batch_query
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError


@pytest.fixture()
def engine(small_frn):
    index = build_fahl(small_frn)
    return FlowAwareEngine(small_frn, oracle=index, alpha=0.5, eta_u=3.0,
                           max_candidates=8)


class TestMemoizedOracle:
    def test_caches_symmetrically(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        a = oracle.distance(0, 5)
        b = oracle.distance(5, 0)
        assert a == b
        assert oracle.hits == 1
        assert oracle.misses == 1
        assert len(oracle) == 1

    def test_matches_underlying(self, small_frn, rng):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        n = small_frn.num_vertices
        for _ in range(30):
            s, t = map(int, rng.integers(0, n, 2))
            assert oracle.distance(s, t) == index.distance(s, t)

    def test_invalidate(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        oracle.distance(0, 1)
        oracle.invalidate()
        assert len(oracle) == 0

    def test_path_delegates(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        assert oracle.path(0, 5) == index.path(0, 5)

    def test_requires_distance_method(self):
        with pytest.raises(QueryError):
            MemoizedOracle(None)
        with pytest.raises(QueryError):
            MemoizedOracle(object())


class TestBatchQuery:
    def test_results_match_sequential(self, engine, small_frn, rng):
        n = small_frn.num_vertices
        queries = []
        while len(queries) < 12:
            s, t = map(int, rng.integers(0, n, 2))
            if s != t:
                queries.append(FSPQuery(s, t, int(rng.integers(48))))
        sequential = [engine.query(q) for q in queries]
        batched = batch_query(engine, queries)
        assert len(batched) == len(queries)
        for seq, bat in zip(sequential, batched):
            assert bat.path == seq.path
            assert bat.score == pytest.approx(seq.score)

    def test_restores_engine_oracle(self, engine):
        original = engine.oracle
        batch_query(engine, [FSPQuery(0, 5, 0)])
        assert engine.oracle is original

    def test_empty_batch(self, engine):
        assert batch_query(engine, []) == []

    def test_shared_targets_hit_cache(self, engine, small_frn, rng):
        n = small_frn.num_vertices
        target = n - 1
        queries = [
            FSPQuery(int(s), target, 0)
            for s in rng.choice(n - 1, size=6, replace=False)
        ]
        wrapped = MemoizedOracle(engine.oracle)
        engine.oracle = wrapped
        try:
            batch_query(engine, queries)
        finally:
            engine.oracle = wrapped._oracle
        assert wrapped.hits > 0  # cross-query reuse happened
