"""Unit tests for the batch query session, memoized oracle and fork pool."""

from __future__ import annotations

import pytest

import repro.core.batch as batch_module
from repro.core.batch import MemoizedOracle, batch_query
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError


def make_queries(frn, rng, count, num_targets=None):
    """A seeded workload; ``num_targets`` restricts the target pool."""
    n = frn.num_vertices
    targets = (
        rng.choice(n, size=num_targets, replace=False) if num_targets else None
    )
    queries = []
    while len(queries) < count:
        s = int(rng.integers(0, n))
        t = int(rng.choice(targets)) if targets is not None else int(rng.integers(0, n))
        if s != t:
            queries.append(FSPQuery(s, t, int(rng.integers(frn.num_timesteps))))
    return queries


@pytest.fixture()
def engine(small_frn):
    index = build_fahl(small_frn)
    return FlowAwareEngine(small_frn, oracle=index, alpha=0.5, eta_u=3.0,
                           max_candidates=8)


class TestMemoizedOracle:
    def test_caches_symmetrically(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        a = oracle.distance(0, 5)
        b = oracle.distance(5, 0)
        assert a == b
        assert oracle.hits == 1
        assert oracle.misses == 1
        assert len(oracle) == 1

    def test_matches_underlying(self, small_frn, rng):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        n = small_frn.num_vertices
        for _ in range(30):
            s, t = map(int, rng.integers(0, n, 2))
            assert oracle.distance(s, t) == index.distance(s, t)

    def test_invalidate(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        oracle.distance(0, 1)
        oracle.invalidate()
        assert len(oracle) == 0

    def test_path_delegates(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        assert oracle.path(0, 5) == index.path(0, 5)

    def test_requires_distance_method(self):
        with pytest.raises(QueryError):
            MemoizedOracle(None)
        with pytest.raises(QueryError):
            MemoizedOracle(object())

    def test_distance_many_matches_scalar(self, small_frn, rng):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        n = small_frn.num_vertices
        us = rng.integers(0, n, 40)
        vs = rng.integers(0, n, 40)
        oracle.distance(int(us[0]), int(vs[0]))  # seed the cache
        got = oracle.distance_many(us, vs)
        for u, v, d in zip(us.tolist(), vs.tolist(), got.tolist()):
            assert d == index.distance(u, v)
        assert oracle.hits >= 1

    def test_prefetch_fills_cache_vectorised(self, small_frn):
        index = build_fahl(small_frn)
        oracle = MemoizedOracle(index)
        n = small_frn.num_vertices
        added = oracle.prefetch(range(n), n - 1)
        assert added == n - 1 + 1  # one key per pair incl. the self pair
        assert index.distance(0, n - 1) == oracle.distance(0, n - 1)
        assert oracle.prefetch(range(n), n - 1) == 0  # idempotent

    def test_prefetch_without_distance_many(self, small_frn):
        index = build_fahl(small_frn)

        class ScalarOnly:
            def distance(self, u, v):
                return index.distance(u, v)

        oracle = MemoizedOracle(ScalarOnly())
        added = oracle.prefetch([0, 1, 2], 5)
        assert added == 3
        assert oracle.distance(1, 5) == index.distance(1, 5)
        assert oracle.hits == 1


class TestBatchQuery:
    def test_results_match_sequential(self, engine, small_frn, rng):
        n = small_frn.num_vertices
        queries = []
        while len(queries) < 12:
            s, t = map(int, rng.integers(0, n, 2))
            if s != t:
                queries.append(FSPQuery(s, t, int(rng.integers(48))))
        sequential = [engine.query(q) for q in queries]
        batched = batch_query(engine, queries)
        assert len(batched) == len(queries)
        for seq, bat in zip(sequential, batched):
            assert bat.path == seq.path
            assert bat.score == pytest.approx(seq.score)

    def test_restores_engine_oracle(self, engine):
        original = engine.oracle
        batch_query(engine, [FSPQuery(0, 5, 0)])
        assert engine.oracle is original

    def test_empty_batch(self, engine):
        assert batch_query(engine, []) == []

    def test_shared_targets_hit_cache(self, engine, small_frn, rng):
        # the memo cache serves the scalar reference path; the flat
        # kernel reads the label arena directly and never consults it
        n = small_frn.num_vertices
        target = n - 1
        queries = [
            FSPQuery(int(s), target, 0)
            for s in rng.choice(n - 1, size=6, replace=False)
        ]
        wrapped = MemoizedOracle(engine.oracle)
        engine.oracle = wrapped
        try:
            with engine.kernel_override("scalar"):
                batch_query(engine, queries)
        finally:
            engine.oracle = wrapped.wrapped
        assert wrapped.hits > 0  # cross-query reuse happened

    def test_flat_kernel_survives_batch_wrapper(self, engine, small_frn, rng):
        # the batch path's MemoizedOracle swap must not demote queries
        # to the scalar kernel: the flat kernel unwraps the memoiser and
        # answers off the arena without a single oracle call
        queries = make_queries(small_frn, rng, 8, num_targets=3)
        assert engine.kernel == "flat"
        expected = [engine.query(q) for q in queries]
        wrapped = MemoizedOracle(engine.oracle)
        engine.oracle = wrapped
        try:
            results = batch_query(engine, queries)
        finally:
            engine.oracle = wrapped.wrapped
        assert wrapped.hits == wrapped.misses == 0  # oracle never touched
        assert results == expected  # frozen dataclasses: exact equality


class TestParallelBatchQuery:
    """workers > 1 must be transparent: same results, graceful fallback."""

    def test_workers_bit_identical_to_serial(self, engine, small_frn, rng):
        queries = make_queries(small_frn, rng, 20, num_targets=6)
        serial = batch_query(engine, queries)
        parallel = batch_query(engine, queries, workers=2)
        assert parallel == serial  # frozen dataclasses: exact field equality

    def test_restores_engine_oracle(self, engine, small_frn, rng):
        queries = make_queries(small_frn, rng, 6)
        original = engine.oracle
        batch_query(engine, queries, workers=2)
        assert engine.oracle is original

    def test_fallback_when_fork_unavailable(
        self, engine, small_frn, rng, monkeypatch
    ):
        monkeypatch.setattr(batch_module, "_fork_context", lambda: None)
        queries = make_queries(small_frn, rng, 8)
        serial = batch_query(engine, queries)
        fallback = batch_query(engine, queries, workers=4)
        assert fallback == serial

    def test_fallback_when_pool_cannot_start(
        self, engine, small_frn, rng, monkeypatch
    ):
        class BrokenContext:
            def Pool(self, *args, **kwargs):
                raise OSError("fork failed")

        monkeypatch.setattr(batch_module, "_fork_context", BrokenContext)
        queries = make_queries(small_frn, rng, 8)
        serial = batch_query(engine, queries)
        fallback = batch_query(engine, queries, workers=4)
        assert fallback == serial

    def test_invalid_workers_rejected(self, engine):
        with pytest.raises(QueryError):
            batch_query(engine, [FSPQuery(0, 5, 0)], workers=0)

    def test_query_errors_propagate(self, small_frn, rng):
        # alpha guard makes the engine itself valid but the query invalid
        engine = FlowAwareEngine(small_frn, oracle=build_fahl(small_frn))
        bad = [FSPQuery(0, small_frn.num_vertices + 7, 0)] * 4
        with pytest.raises(QueryError):
            batch_query(engine, bad, workers=2)

    def test_single_query_stays_serial(self, engine):
        # one query never pays for a pool; result matches the direct call
        direct = engine.query(FSPQuery(0, 5, 0))
        assert batch_query(engine, [FSPQuery(0, 5, 0)], workers=4) == [direct]

    def test_oracle_free_engine(self, small_frn, rng):
        engine = FlowAwareEngine(small_frn, oracle=None, max_candidates=4)
        queries = make_queries(small_frn, rng, 4, num_targets=2)
        serial = batch_query(engine, queries)
        parallel = batch_query(engine, queries, workers=2)
        assert parallel == serial
