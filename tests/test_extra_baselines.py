"""Unit tests for the ALT landmark oracle and the PLL baseline."""

from __future__ import annotations

import pytest

from repro.baselines.dijkstra import dijkstra_distance, dijkstra_distances
from repro.baselines.landmarks import ALTOracle, LandmarkHeuristic, select_landmarks
from repro.baselines.pll import PLLIndex, build_pll
from repro.errors import (
    DisconnectedGraphError,
    IndexBuildError,
    IndexStateError,
    QueryError,
)
from repro.graph.road_network import RoadNetwork
from repro.paths.candidates import heuristic_for


class TestLandmarkSelection:
    def test_count_and_uniqueness(self, medium_grid):
        landmarks = select_landmarks(medium_grid, 6, seed=1)
        assert len(landmarks) == 6
        assert len(set(landmarks)) == 6

    def test_landmarks_spread_apart(self, medium_grid):
        landmarks = select_landmarks(medium_grid, 4, seed=0)
        # every pair of chosen landmarks should be farther apart than a
        # typical edge
        for i, a in enumerate(landmarks):
            dist = dijkstra_distances(medium_grid, a)
            for b in landmarks[i + 1:]:
                assert dist[b] > 0

    def test_invalid_count(self, small_grid):
        with pytest.raises(IndexBuildError):
            select_landmarks(small_grid, 0)
        with pytest.raises(IndexBuildError):
            select_landmarks(small_grid, small_grid.num_vertices + 1)


class TestALTOracle:
    def test_heuristic_admissible(self, medium_grid, rng):
        oracle = ALTOracle(medium_grid, num_landmarks=6, seed=0)
        n = medium_grid.num_vertices
        for _ in range(25):
            s, t = map(int, rng.integers(0, n, 2))
            heuristic = oracle.heuristic(t)
            true = dijkstra_distance(medium_grid, s, t)
            assert heuristic.estimate(s) <= true + 1e-9

    def test_exact_distances(self, medium_grid, rng):
        oracle = ALTOracle(medium_grid, num_landmarks=6, seed=0)
        n = medium_grid.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            assert oracle.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_paths_valid(self, medium_grid, rng):
        oracle = ALTOracle(medium_grid, num_landmarks=4, seed=0)
        n = medium_grid.num_vertices
        for _ in range(15):
            s, t = map(int, rng.integers(0, n, 2))
            path = oracle.path(s, t)
            assert path[0] == s and path[-1] == t

    def test_heuristic_for_picks_factory(self, medium_grid):
        oracle = ALTOracle(medium_grid, num_landmarks=3, seed=0)
        heuristic = heuristic_for(medium_grid, oracle, 5)
        assert isinstance(heuristic, LandmarkHeuristic)

    def test_index_size(self, small_grid):
        oracle = ALTOracle(small_grid, num_landmarks=3, seed=0)
        assert oracle.index_size_entries() == 3 * small_grid.num_vertices

    def test_rejects_disconnected(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            ALTOracle(graph)

    def test_unknown_target(self, small_grid):
        oracle = ALTOracle(small_grid, num_landmarks=2, seed=0)
        with pytest.raises(QueryError):
            oracle.heuristic(10_000)


class TestPLL:
    def test_exact_distances(self, medium_grid, rng):
        index = build_pll(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(60):
            s, t = map(int, rng.integers(0, n, 2))
            assert index.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_self_distance(self, small_grid):
        index = build_pll(small_grid)
        assert index.distance(4, 4) == 0.0

    def test_every_pair_shares_a_hub(self, small_grid):
        import math

        index = build_pll(small_grid)
        n = small_grid.num_vertices
        for s in range(0, n, 5):
            for t in range(0, n, 5):
                assert math.isfinite(index.distance(s, t))

    def test_first_hub_labels_everyone(self, small_grid):
        index = build_pll(small_grid)
        top = index.order[0]
        assert all(top in index.labels[v] for v in range(small_grid.num_vertices))

    def test_labels_are_pruned(self, medium_grid):
        # pruning must keep average label size well below n
        index = build_pll(medium_grid)
        assert index.average_label_size() < medium_grid.num_vertices / 4

    def test_stats(self, small_grid):
        index = build_pll(small_grid)
        assert index.index_size_entries() > 0
        assert "avg_label" in repr(index)

    def test_rejects_empty_and_disconnected(self):
        with pytest.raises(IndexStateError):
            PLLIndex(RoadNetwork(0))
        with pytest.raises(DisconnectedGraphError):
            PLLIndex(RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)]))

    def test_unknown_vertices(self, small_grid):
        index = build_pll(small_grid)
        with pytest.raises(QueryError):
            index.distance(0, 9_999)
