"""The stable public surface: Engine protocol, front doors, snapshot."""

from __future__ import annotations

import asyncio
import inspect
import re
from pathlib import Path

import pytest

import repro
from repro import (
    AsyncEngine,
    AsyncGateway,
    Engine,
    FSPQuery,
    QueryConstraints,
    ResilientEngine,
    ShardedGateway,
    as_distance,
    as_result,
    build_fahl,
    constrained,
    knn,
    skyline,
    to_async,
)
from repro.core.fpsps import FlowAwareEngine
from repro.core.knn import flow_aware_knn
from repro.core.skyline import skyline_paths
from repro.errors import QueryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network

API_DOC = Path(__file__).resolve().parent.parent / "docs" / "API.md"


@pytest.fixture(scope="module")
def frn():
    graph = grid_network(6, 6, seed=9)
    return FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=2))


@pytest.fixture(scope="module")
def engines(frn):
    index = build_fahl(frn)
    return {
        "flow": FlowAwareEngine(frn, oracle=index),
        "resilient": ResilientEngine(frn, index=index, max_retries=0, backoff=0.0),
        "sharded": ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0),
    }


class TestEngineProtocol:
    def test_all_serving_classes_satisfy_engine(self, engines):
        for engine in engines.values():
            assert isinstance(engine, Engine)

    def test_bare_index_is_not_an_engine(self, frn):
        assert not isinstance(build_fahl(frn), Engine)

    def test_engines_are_drop_in_interchangeable(self, engines):
        query = FSPQuery(0, 35, 1)
        distances = {
            name: as_distance(engine.distance(0, 35))
            for name, engine in engines.items()
        }
        assert len(set(distances.values())) == 1
        spdis = {
            name: as_result(engine.query(query)).shortest_distance
            for name, engine in engines.items()
        }
        assert len(set(spdis.values())) == 1

    def test_batch_is_uniform(self, engines):
        queries = [FSPQuery(0, 20, 0), FSPQuery(3, 30, 1)]
        for engine in engines.values():
            results = engine.batch(queries)
            assert len(results) == 2
            assert all(
                as_result(r).shortest_distance > 0 for r in results
            )

    def test_batch_signature_is_uniform(self, engines):
        """Every tier exposes batch(queries, workers, timeout, kernel, report)."""
        for name, engine in engines.items():
            params = inspect.signature(engine.batch).parameters
            for keyword, default in (
                ("workers", 1),
                ("timeout", None),
                ("kernel", None),
                ("report", None),
            ):
                assert keyword in params, f"{name}.batch lacks {keyword}="
                assert params[keyword].default == default, (
                    f"{name}.batch {keyword}= default drifted"
                )

    def test_batch_kernel_and_timeout_accepted_everywhere(self, engines):
        queries = [FSPQuery(0, 20, 0), FSPQuery(3, 30, 1)]
        for engine in engines.values():
            flat = engine.batch(queries, kernel="flat", timeout=30.0)
            scalar = engine.batch(queries, kernel="scalar", timeout=30.0)
            assert [as_result(a).shortest_distance for a in flat] == \
                [as_result(b).shortest_distance for b in scalar]
            with pytest.raises(QueryError):
                engine.batch(queries, kernel="vectorised-wrong")

    def test_normalisers_reject_garbage(self):
        with pytest.raises(QueryError):
            as_result("nope")
        with pytest.raises(QueryError):
            as_distance(object())


class TestHarmonisedFrontDoors:
    def test_knn_matches_legacy_call(self, engines):
        pois = [5, 11, 22, 30, 34]
        query = FSPQuery(0, 1, 2)  # target ignored by knn
        legacy = flow_aware_knn(engines["flow"], 0, pois, 2, 2)
        for engine in engines.values():
            got = knn(engine, query, pois, 2)
            assert [m.poi for m in got] == [m.poi for m in legacy]

    def test_knn_positional_source_removed(self, engines):
        pois = [5, 11, 22]
        # the legacy positional spelling completed its deprecation cycle
        with pytest.raises(QueryError, match="removed"):
            knn(engines["flow"], 0, pois, 1)
        with pytest.raises(TypeError):
            knn(engines["flow"], 0, pois, 1, timestep=2)  # kwarg is gone too

    def test_constrained_trivial_equals_plain_query(self, engines):
        query = FSPQuery(2, 33, 0)
        for engine in engines.values():
            plain = as_result(engine.query(query))
            got = constrained(engine, query, QueryConstraints())
            assert got.shortest_distance == plain.shortest_distance

    def test_constrained_forbidden_vertex_respected(self, engines):
        query = FSPQuery(0, 35, 0)
        baseline = constrained(engines["flow"], query, QueryConstraints())
        banned = baseline.path[len(baseline.path) // 2]
        for engine in engines.values():
            got = constrained(
                engine, query,
                QueryConstraints(forbidden_vertices=frozenset({banned})),
            )
            assert banned not in got.path

    def test_skyline_accepts_frn_or_engine(self, frn, engines):
        query = FSPQuery(0, 35, 1)
        want = skyline_paths(frn, 0, 35, 1)
        assert skyline(frn, query).paths == want.paths
        for engine in engines.values():
            assert skyline(engine, query).paths == want.paths

    def test_skyline_positional_removed(self, frn):
        with pytest.raises(QueryError, match="removed"):
            skyline(frn, 0)
        with pytest.raises(TypeError):
            skyline(frn, 0, target=35, timestep=1)  # kwargs are gone too


class TestAsyncEngineProtocol:
    def test_gateway_satisfies_async_engine(self, engines):
        gateway = AsyncGateway(engines["flow"])
        assert isinstance(gateway, AsyncEngine)
        assert not isinstance(engines["flow"], AsyncEngine)
        # ResilientEngine has submit() (for updates) but no coroutines
        assert not isinstance(engines["resilient"], AsyncEngine)
        assert not isinstance(engines["sharded"], AsyncEngine)

    def test_to_async_adapts_every_tier(self, engines):
        for name, engine in engines.items():
            adapted = to_async(engine, window_seconds=0.0)
            assert isinstance(adapted, AsyncEngine), name
            assert adapted.engine is engine

    def test_to_async_passes_through_async_engines(self, engines):
        gateway = to_async(engines["flow"])
        assert to_async(gateway) is gateway
        with pytest.raises(QueryError):
            to_async(gateway, window_seconds=0.5)  # options need a wrap

    def test_to_async_rejects_non_engines(self, frn):
        with pytest.raises(QueryError):
            to_async(build_fahl(frn))

    def test_async_answers_match_sync_and_normalise_identically(self, engines):
        query = FSPQuery(0, 35, 1)

        async def round_trip(engine):
            async with to_async(engine, window_seconds=0.0) as gateway:
                return await gateway.aquery(query), await gateway.adistance(0, 35)

        for name, engine in engines.items():
            got_result, got_distance = asyncio.run(round_trip(engine))
            want_result = engine.query(query)
            assert type(got_result) is type(want_result), name
            assert (
                as_result(got_result).shortest_distance
                == as_result(want_result).shortest_distance
            )
            assert as_distance(got_distance) == as_distance(engine.distance(0, 35))


class TestApiSnapshot:
    def test_docs_table_matches_public_all(self):
        text = API_DOC.read_text()
        section = text.split("## Public surface", 1)[1]
        documented = set(re.findall(r"^\| `([^`]+)` \|", section, re.MULTILINE))
        exported = set(repro.__all__)
        assert documented == exported, (
            "docs/API.md public-surface table and repro.__all__ disagree; "
            f"only in docs: {sorted(documented - exported)}, "
            f"only in __all__: {sorted(exported - documented)}"
        )

    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
