"""The stable public surface: Engine protocol, front doors, snapshot."""

from __future__ import annotations

import re
from pathlib import Path

import pytest

import repro
from repro import (
    Engine,
    FSPQuery,
    QueryConstraints,
    ResilientEngine,
    ShardedGateway,
    as_distance,
    as_result,
    build_fahl,
    constrained,
    knn,
    skyline,
)
from repro.core.fpsps import FlowAwareEngine
from repro.core.knn import flow_aware_knn
from repro.core.skyline import skyline_paths
from repro.errors import QueryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network

API_DOC = Path(__file__).resolve().parent.parent / "docs" / "API.md"


@pytest.fixture(scope="module")
def frn():
    graph = grid_network(6, 6, seed=9)
    return FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=2))


@pytest.fixture(scope="module")
def engines(frn):
    index = build_fahl(frn)
    return {
        "flow": FlowAwareEngine(frn, oracle=index),
        "resilient": ResilientEngine(frn, index=index, max_retries=0, backoff=0.0),
        "sharded": ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0),
    }


class TestEngineProtocol:
    def test_all_serving_classes_satisfy_engine(self, engines):
        for engine in engines.values():
            assert isinstance(engine, Engine)

    def test_bare_index_is_not_an_engine(self, frn):
        assert not isinstance(build_fahl(frn), Engine)

    def test_engines_are_drop_in_interchangeable(self, engines):
        query = FSPQuery(0, 35, 1)
        distances = {
            name: as_distance(engine.distance(0, 35))
            for name, engine in engines.items()
        }
        assert len(set(distances.values())) == 1
        spdis = {
            name: as_result(engine.query(query)).shortest_distance
            for name, engine in engines.items()
        }
        assert len(set(spdis.values())) == 1

    def test_batch_is_uniform(self, engines):
        queries = [FSPQuery(0, 20, 0), FSPQuery(3, 30, 1)]
        for engine in engines.values():
            results = engine.batch(queries)
            assert len(results) == 2
            assert all(
                as_result(r).shortest_distance > 0 for r in results
            )

    def test_normalisers_reject_garbage(self):
        with pytest.raises(QueryError):
            as_result("nope")
        with pytest.raises(QueryError):
            as_distance(object())


class TestHarmonisedFrontDoors:
    def test_knn_matches_legacy_call(self, engines):
        pois = [5, 11, 22, 30, 34]
        query = FSPQuery(0, 1, 2)  # target ignored by knn
        legacy = flow_aware_knn(engines["flow"], 0, pois, 2, 2)
        for engine in engines.values():
            got = knn(engine, query, pois, 2)
            assert [m.poi for m in got] == [m.poi for m in legacy]

    def test_knn_positional_source_deprecated(self, engines):
        pois = [5, 11, 22]
        with pytest.warns(DeprecationWarning):
            got = knn(engines["flow"], 0, pois, 1, timestep=2)
        assert got == knn(engines["flow"], FSPQuery(0, 1, 2), pois, 1)
        with pytest.warns(DeprecationWarning), pytest.raises(QueryError):
            knn(engines["flow"], 0, pois, 1)  # legacy spelling needs timestep=

    def test_constrained_trivial_equals_plain_query(self, engines):
        query = FSPQuery(2, 33, 0)
        for engine in engines.values():
            plain = as_result(engine.query(query))
            got = constrained(engine, query, QueryConstraints())
            assert got.shortest_distance == plain.shortest_distance

    def test_constrained_forbidden_vertex_respected(self, engines):
        query = FSPQuery(0, 35, 0)
        baseline = constrained(engines["flow"], query, QueryConstraints())
        banned = baseline.path[len(baseline.path) // 2]
        for engine in engines.values():
            got = constrained(
                engine, query,
                QueryConstraints(forbidden_vertices=frozenset({banned})),
            )
            assert banned not in got.path

    def test_skyline_accepts_frn_or_engine(self, frn, engines):
        query = FSPQuery(0, 35, 1)
        want = skyline_paths(frn, 0, 35, 1)
        assert skyline(frn, query).paths == want.paths
        for engine in engines.values():
            assert skyline(engine, query).paths == want.paths

    def test_skyline_positional_deprecated(self, frn):
        with pytest.warns(DeprecationWarning):
            got = skyline(frn, 0, target=35, timestep=1)
        assert got.paths == skyline_paths(frn, 0, 35, 1).paths
        with pytest.warns(DeprecationWarning), pytest.raises(QueryError):
            skyline(frn, 0, timestep=1)  # legacy spelling needs target=


class TestApiSnapshot:
    def test_docs_table_matches_public_all(self):
        text = API_DOC.read_text()
        section = text.split("## Public surface", 1)[1]
        documented = set(re.findall(r"^\| `([^`]+)` \|", section, re.MULTILINE))
        exported = set(repro.__all__)
        assert documented == exported, (
            "docs/API.md public-surface table and repro.__all__ disagree; "
            f"only in docs: {sorted(documented - exported)}, "
            f"only in __all__: {sorted(exported - documented)}"
        )

    def test_all_names_are_importable(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name
