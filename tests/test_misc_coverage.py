"""Coverage for remaining engine/CLI/serialization paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cli import main
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.core.maintenance import apply_flow_update
from repro.errors import QueryError
from repro.experiments.runner import ExperimentTable
from repro.labeling.serialize import load_index, save_index


class TestEngineKnobs:
    def test_min_candidates_validated(self, small_frn):
        with pytest.raises(QueryError):
            FlowAwareEngine(small_frn, min_candidates=0)
        with pytest.raises(QueryError):
            FlowAwareEngine(small_frn, max_candidates=0)

    def test_early_stopped_flag_reported(self, small_frn, rng):
        index = build_fahl(small_frn)
        eager = FlowAwareEngine(small_frn, oracle=index, pruning="lemma4",
                                max_candidates=32, min_candidates=1)
        n = small_frn.num_vertices
        fired = 0
        for _ in range(15):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            result = eager.query(FSPQuery(s, t, 0))
            fired += result.early_stopped
        assert fired > 0  # with floor 1 the stop fires regularly

    def test_min_candidates_floor_respected(self, small_frn, rng):
        index = build_fahl(small_frn)
        engine = FlowAwareEngine(small_frn, oracle=index, pruning="lemma4",
                                 max_candidates=32, min_candidates=6)
        n = small_frn.num_vertices
        for _ in range(10):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            result = engine.query(FSPQuery(s, t, 0))
            if result.early_stopped:
                assert result.num_candidates >= 6

    def test_index_free_shortest_distance(self, small_frn):
        engine = FlowAwareEngine(small_frn, oracle=None)
        from repro.baselines.dijkstra import dijkstra_distance

        assert engine.shortest_distance(0, 7) == pytest.approx(
            dijkstra_distance(small_frn.graph, 0, 7)
        )

    def test_disconnected_query_raises(self):
        from repro.flow.series import FlowSeries
        from repro.graph.frn import FlowAwareRoadNetwork
        from repro.graph.road_network import RoadNetwork

        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        frn = FlowAwareRoadNetwork(graph, FlowSeries(np.ones((1, 3))))
        engine = FlowAwareEngine(frn)  # index-free: no connectivity demand
        with pytest.raises(QueryError):
            engine.query(FSPQuery(0, 2, 0))


class TestSerializedMaintenance:
    def test_loaded_fahl_supports_flow_updates(self, small_frn, tmp_path, rng):
        from repro.baselines.dijkstra import dijkstra_distances

        index = build_fahl(small_frn)
        save_index(index, tmp_path / "fahl.npz")
        loaded = load_index(tmp_path / "fahl.npz")
        for _ in range(5):
            vertex = int(rng.integers(loaded.graph.num_vertices))
            apply_flow_update(loaded, vertex, float(rng.uniform(0, 200)))
        n = loaded.graph.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            ref = dijkstra_distances(loaded.graph, s)[t]
            assert loaded.distance(s, t) == pytest.approx(ref)


class TestMarkdownRendering:
    def test_render_markdown_structure(self):
        table = ExperimentTable(title="T", headers=["a", "b"],
                                notes=["hello"])
        table.add_row(1, 2.5)
        table.add_row("x", 1e-5)
        text = table.render_markdown()
        assert text.startswith("### T")
        assert "| a | b |" in text
        assert "| 1 | 2.500 |" in text
        assert "1.000e-05" in text
        assert "*hello*" in text


class TestReportCommand:
    def test_report_writes_markdown(self, tmp_path, capsys):
        out = tmp_path / "report.md"
        code = main([
            "report", str(out),
            "--scale", "0.05", "--queries", "1", "--groups", "2",
            "--datasets", "BRN",
        ])
        assert code == 0
        text = out.read_text(encoding="utf-8")
        assert text.startswith("# FAHL reproduction report")
        assert "### Table I" in text
        assert "fahl-repro run fig6" in text
