"""Unit tests for ILU (weight updates) and ISU/GSU (flow updates)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import build_fahl
from repro.core.maintenance import (
    apply_flow_update,
    apply_flow_updates,
    apply_weight_update,
    apply_weight_updates,
)
from repro.errors import EdgeNotFoundError, GraphError, IndexStateError
from repro.labeling.h2h import build_h2h


def assert_exact(index, graph, rng, samples=50):
    n = graph.num_vertices
    for _ in range(samples):
        s, t = map(int, rng.integers(0, n, 2))
        ref = dijkstra_distances(graph, s)[t]
        assert index.distance(s, t) == pytest.approx(ref), (s, t)


class TestILU:
    def test_weight_decrease_exact(self, small_grid, rng):
        index = build_h2h(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        stats = apply_weight_update(index, u, v, max(1.0, w / 2))
        assert stats.shortcuts_changed >= 1
        assert_exact(index, small_grid, rng)

    def test_weight_increase_exact(self, small_grid, rng):
        index = build_h2h(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        apply_weight_update(index, u, v, w * 3)
        assert_exact(index, small_grid, rng)

    def test_noop_update(self, small_grid):
        index = build_h2h(small_grid)
        u, v, w = next(iter(small_grid.edges()))
        stats = apply_weight_update(index, u, v, w)
        assert stats.shortcuts_changed == 0
        assert stats.labels_affected == 0

    def test_unknown_edge_rejected(self, small_grid):
        index = build_h2h(small_grid)
        non_edge = None
        for u in range(small_grid.num_vertices):
            for v in range(u + 1, small_grid.num_vertices):
                if not small_grid.has_edge(u, v):
                    non_edge = (u, v)
                    break
            if non_edge:
                break
        with pytest.raises(EdgeNotFoundError):
            apply_weight_update(index, *non_edge, 5.0)

    def test_nonpositive_weight_rejected(self, small_grid):
        index = build_h2h(small_grid)
        u, v, _ = next(iter(small_grid.edges()))
        with pytest.raises(GraphError):
            apply_weight_update(index, u, v, 0.0)

    def test_matches_fresh_rebuild_labels(self, small_grid, rng):
        index = build_h2h(small_grid)
        edges = list(small_grid.edges())
        for i in range(10):
            u, v, w = edges[int(rng.integers(len(edges)))]
            w_now = small_grid.weight(u, v)
            apply_weight_update(index, u, v, max(1.0, round(w_now * rng.uniform(0.4, 2.5))))
        fresh = build_h2h(small_grid.copy())
        # same ordering (weights don't influence degree ordering), so labels
        # must agree entry-for-entry
        assert fresh.elim.order == index.elim.order
        for x in range(small_grid.num_vertices):
            assert np.allclose(fresh.labels[x], index.labels[x])

    def test_paths_valid_after_updates(self, small_grid, rng):
        index = build_h2h(small_grid)
        edges = list(small_grid.edges())
        for _ in range(8):
            u, v, _ = edges[int(rng.integers(len(edges)))]
            w_now = small_grid.weight(u, v)
            apply_weight_update(index, u, v, max(1.0, round(w_now * rng.uniform(0.4, 2.5))))
        n = small_grid.num_vertices
        for _ in range(30):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            weight = sum(small_grid.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(index.distance(s, t))

    def test_batch_updates_aggregate(self, small_grid):
        index = build_h2h(small_grid)
        edges = list(small_grid.edges())[:3]
        updates = [(u, v, w + 5) for u, v, w in edges]
        stats = apply_weight_updates(index, updates)
        assert stats.shortcuts_changed >= len(updates)

    def test_works_on_fahl_index(self, small_frn, rng):
        index = build_fahl(small_frn)
        u, v, w = next(iter(small_frn.graph.edges()))
        apply_weight_update(index, u, v, w + 10)
        assert_exact(index, small_frn.graph, rng)


class TestStructureUpdate:
    def test_isu_exact_after_many_updates(self, small_frn, rng):
        index = build_fahl(small_frn)
        n = small_frn.num_vertices
        for _ in range(25):
            vertex = int(rng.integers(n))
            apply_flow_update(index, vertex, float(rng.uniform(0, 200)), method="isu")
        index.tree.validate(small_frn.graph)
        assert_exact(index, small_frn.graph, rng)

    def test_gsu_exact_after_many_updates(self, small_frn, rng):
        index = build_fahl(small_frn)
        n = small_frn.num_vertices
        for _ in range(10):
            vertex = int(rng.integers(n))
            apply_flow_update(index, vertex, float(rng.uniform(0, 200)), method="gsu")
        index.tree.validate(small_frn.graph)
        assert_exact(index, small_frn.graph, rng)

    def test_flows_updated_on_index(self, small_frn):
        index = build_fahl(small_frn)
        apply_flow_update(index, 3, 12345.0, method="isu")
        assert index.flows[3] == 12345.0

    def test_lemma1_noop_small_change(self, small_frn):
        index = build_fahl(small_frn)
        vertex = index.tree.root
        # nudging the root's flow down increases phi -> root stays root
        stats = apply_flow_update(
            index, vertex, float(index.flows[vertex]) * 0.999, method="isu"
        )
        assert stats.strategy == "noop"

    def test_large_change_restructures(self, small_frn):
        index = build_fahl(small_frn)
        # drive the first-eliminated vertex's flow to zero: its importance
        # jumps, the ordering must change
        vertex = index.elim.order[0]
        stats = apply_flow_update(index, vertex, 0.0, method="isu")
        assert stats.strategy in ("isu", "gsu")
        assert stats.labels_affected >= 0

    def test_gsu_forced(self, small_frn):
        index = build_fahl(small_frn)
        vertex = index.elim.order[0]
        stats = apply_flow_update(index, vertex, 0.0, method="gsu")
        assert stats.strategy in ("noop", "gsu")

    def test_invalid_method(self, small_frn):
        index = build_fahl(small_frn)
        with pytest.raises(IndexStateError):
            apply_flow_update(index, 0, 10.0, method="bogus")

    def test_negative_flow_rejected(self, small_frn):
        index = build_fahl(small_frn)
        with pytest.raises(GraphError):
            apply_flow_update(index, 0, -1.0)

    def test_unknown_vertex_rejected(self, small_frn):
        index = build_fahl(small_frn)
        with pytest.raises(IndexStateError):
            apply_flow_update(index, 10_000, 1.0)

    def test_batch_flow_updates(self, small_frn, rng):
        index = build_fahl(small_frn)
        updates = {
            int(v): float(rng.uniform(0, 300))
            for v in rng.choice(small_frn.num_vertices, size=6, replace=False)
        }
        stats = apply_flow_updates(index, updates, method="isu")
        assert len(stats) == len(updates)
        assert_exact(index, small_frn.graph, rng, samples=30)

    def test_interleaved_flow_and_weight_updates(self, small_frn, rng):
        index = build_fahl(small_frn)
        graph = small_frn.graph
        edges = list(graph.edges())
        n = graph.num_vertices
        for i in range(12):
            if i % 2 == 0:
                u, v, _ = edges[int(rng.integers(len(edges)))]
                w_now = graph.weight(u, v)
                apply_weight_update(
                    index, u, v, max(1.0, round(w_now * rng.uniform(0.5, 2.0)))
                )
            else:
                apply_flow_update(
                    index, int(rng.integers(n)), float(rng.uniform(0, 150))
                )
        index.tree.validate(graph)
        assert_exact(index, graph, rng)

    def test_isu_result_is_valid_decomposition(self, small_frn, rng):
        index = build_fahl(small_frn)
        for _ in range(8):
            apply_flow_update(
                index,
                int(rng.integers(small_frn.num_vertices)),
                float(rng.uniform(0, 250)),
                method="isu",
            )
            index.tree.validate(small_frn.graph)

    def test_paths_valid_after_structure_updates(self, small_frn, rng):
        index = build_fahl(small_frn)
        graph = small_frn.graph
        for _ in range(10):
            apply_flow_update(
                index,
                int(rng.integers(graph.num_vertices)),
                float(rng.uniform(0, 250)),
            )
        n = graph.num_vertices
        for _ in range(25):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(index.distance(s, t))
