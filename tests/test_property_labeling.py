"""Property-based tests: labeling indexes are exact on random graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import FAHLIndex
from repro.labeling.h2h import build_h2h
from repro.treedec.elimination import eliminate
from repro.treedec.lca import EulerTourLCA, naive_lca
from repro.treedec.ordering import degree_flow_importance, degree_importance
from repro.treedec.tree import TreeDecomposition
from tests.strategies import connected_graphs


@given(graph=connected_graphs())
def test_h2h_equals_dijkstra(graph):
    index = build_h2h(graph)
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert index.distance(s, t) == pytest.approx(ref[t])


@given(graph=connected_graphs(), data=st.data())
def test_fahl_equals_dijkstra_any_flows(graph, data):
    flows = np.array(
        [data.draw(st.integers(0, 100)) for _ in range(graph.num_vertices)],
        dtype=float,
    )
    beta = data.draw(st.sampled_from([0.0, 0.3, 0.5, 0.7, 1.0]))
    index = FAHLIndex(graph, flows, beta=beta)
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert index.distance(s, t) == pytest.approx(ref[t])


@given(graph=connected_graphs())
def test_paths_realize_distances(graph):
    index = build_h2h(graph)
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 3)):
        for t in range(0, n, max(1, n // 3)):
            path = index.path(s, t)
            assert path[0] == s and path[-1] == t
            assert len(path) == len(set(path))
            weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(index.distance(s, t))


@given(graph=connected_graphs(), data=st.data())
def test_tree_decomposition_valid_for_any_ordering(graph, data):
    flows = np.array(
        [data.draw(st.integers(0, 50)) for _ in range(graph.num_vertices)],
        dtype=float,
    )
    pick_flow = data.draw(st.booleans())
    importance = (
        degree_flow_importance(graph, flows, beta=0.6)
        if pick_flow
        else degree_importance()
    )
    tree = TreeDecomposition(eliminate(graph, importance))
    tree.validate(graph)  # all three Def.-6 properties


@given(graph=connected_graphs(max_vertices=20))
def test_euler_lca_equals_naive(graph):
    tree = TreeDecomposition(eliminate(graph, degree_importance()))
    lca = EulerTourLCA(tree)
    n = graph.num_vertices
    for u in range(0, n, max(1, n // 5)):
        for v in range(0, n, max(1, n // 5)):
            assert lca.query(u, v) == naive_lca(tree, u, v)


@given(graph=connected_graphs())
def test_label_sizes_bounded_by_tree_shape(graph):
    index = build_h2h(graph)
    height = index.treeheight
    for v in range(graph.num_vertices):
        assert 1 <= len(index.labels[v]) <= height + 1
