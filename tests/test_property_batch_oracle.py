"""Property tests: vectorised batch-oracle paths equal their scalar loops.

The vectorised kernels (``EulerTourLCA.query_many``, the label arena behind
``HierarchyIndex.distance_many``) must agree with the scalar queries bit
for bit on any graph — including right after a maintenance operation has
invalidated the packed arena.
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_update, apply_weight_update
from repro.labeling.h2h import build_h2h
from repro.treedec.elimination import eliminate
from repro.treedec.lca import EulerTourLCA
from repro.treedec.ordering import degree_importance
from repro.treedec.tree import TreeDecomposition
from tests.strategies import connected_graphs


def _all_pairs(n: int) -> tuple[np.ndarray, np.ndarray]:
    return (
        np.repeat(np.arange(n, dtype=np.int64), n),
        np.tile(np.arange(n, dtype=np.int64), n),
    )


@given(graph=connected_graphs())
def test_distance_many_equals_scalar_loop(graph):
    index = build_h2h(graph)
    us, vs = _all_pairs(graph.num_vertices)
    got = index.distance_many(us, vs)
    for u, v, d in zip(us.tolist(), vs.tolist(), got.tolist()):
        assert d == index.distance(u, v), (u, v)


@given(graph=connected_graphs(max_vertices=20))
def test_query_many_equals_scalar_loop(graph):
    tree = TreeDecomposition(eliminate(graph, degree_importance()))
    lca = EulerTourLCA(tree)
    us, vs = _all_pairs(graph.num_vertices)
    got = lca.query_many(us, vs)
    for u, v, h in zip(us.tolist(), vs.tolist(), got.tolist()):
        assert h == lca.query(u, v), (u, v)


@given(graph=connected_graphs(min_vertices=4), data=st.data())
def test_distance_many_exact_after_maintenance(graph, data):
    """The arena rebuilt after ILU/ISU/GSU answers like the scalar query."""
    n = graph.num_vertices
    flows = np.array(
        [data.draw(st.integers(0, 100)) for _ in range(n)], dtype=float
    )
    index = FAHLIndex(graph, flows, beta=0.5)
    us, vs = _all_pairs(n)
    index.distance_many(us, vs)  # pack the arena so maintenance must invalidate it
    stale_version = index.arena().version

    kind = data.draw(st.sampled_from(["ilu", "isu", "gsu"]))
    if kind == "ilu":
        edges = list(graph.edges())
        u, v, _ = edges[data.draw(st.integers(0, len(edges) - 1))]
        apply_weight_update(index, u, v, float(data.draw(st.integers(1, 40))))
    else:
        vertex = data.draw(st.integers(0, n - 1))
        new_flow = float(data.draw(st.integers(0, 500)))
        apply_flow_update(index, vertex, new_flow, method=kind)

    got = index.distance_many(us, vs)
    for u, v, d in zip(us.tolist(), vs.tolist(), got.tolist()):
        assert d == index.distance(u, v), (kind, u, v)
    # a no-op update may legitimately keep the version; any label rewrite bumps it
    assert index.arena().version >= stale_version
