"""Unit tests for the trajectory-driven flow substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import DijkstraOracle
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.errors import FlowError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.trajectories import (
    Trip,
    flows_from_trips,
    generate_trips,
    reroute_flow_aware,
)


@pytest.fixture()
def trips(small_grid):
    oracle = DijkstraOracle(small_grid)
    return generate_trips(small_grid, oracle, num_vehicles=40, days=1,
                          interval_minutes=60, seed=5)


class TestGenerateTrips:
    def test_paths_are_valid_walks(self, small_grid, trips):
        assert trips
        for trip in trips:
            for a, b in zip(trip.path, trip.path[1:]):
                assert small_grid.has_edge(a, b)

    def test_departures_in_horizon(self, trips):
        assert all(0 <= t.departure < 24 for t in trips)

    def test_rush_hour_demand_skew(self, small_grid):
        oracle = DijkstraOracle(small_grid)
        many = generate_trips(small_grid, oracle, num_vehicles=400, days=1,
                              seed=1)
        departures = np.array([t.departure for t in many])
        rush = ((departures >= 7) & (departures <= 9)).sum()
        night = ((departures >= 1) & (departures <= 3)).sum()
        assert rush > night

    def test_deterministic(self, small_grid):
        oracle = DijkstraOracle(small_grid)
        a = generate_trips(small_grid, oracle, num_vehicles=20, seed=9)
        b = generate_trips(small_grid, oracle, num_vehicles=20, seed=9)
        assert a == b

    def test_validation(self, small_grid):
        oracle = DijkstraOracle(small_grid)
        with pytest.raises(FlowError):
            generate_trips(small_grid, oracle, num_vehicles=0)
        with pytest.raises(FlowError):
            generate_trips(small_grid, oracle, 5, interval_minutes=7)
        with pytest.raises(FlowError):
            generate_trips(small_grid, oracle, 5, trips_per_vehicle_per_day=0)


class TestFlowsFromTrips:
    def test_total_passages_conserved(self, small_grid, trips):
        series = flows_from_trips(trips, small_grid.num_vertices, 24)
        counted = int(series.matrix.sum())
        # every path vertex whose slice lands inside the horizon is counted
        expected = sum(
            1
            for trip in trips
            for hop in range(len(trip.path))
            if trip.departure + hop // 8 < 24
        )
        assert counted == expected

    def test_usable_as_frn(self, small_grid, trips):
        series = flows_from_trips(trips, small_grid.num_vertices, 24)
        frn = FlowAwareRoadNetwork(small_grid, series)
        index = build_fahl(frn)
        assert index.graph is small_grid

    def test_long_trips_spread_over_slices(self, small_grid):
        path = tuple(range(10))  # not a real walk; counting only
        trip = Trip(departure=0, path=path)
        series = flows_from_trips([trip], small_grid.num_vertices, 4,
                                  hops_per_slice=4)
        assert series.matrix[0].sum() == 4
        assert series.matrix[1].sum() == 4
        assert series.matrix[2].sum() == 2

    def test_validation(self, small_grid, trips):
        with pytest.raises(FlowError):
            flows_from_trips(trips, small_grid.num_vertices, 0)
        with pytest.raises(FlowError):
            flows_from_trips(trips, small_grid.num_vertices, 24,
                             hops_per_slice=0)


class TestRerouteFlowAware:
    def test_fleet_dodges_congestion(self, small_grid, trips):
        series = flows_from_trips(trips, small_grid.num_vertices, 24)
        frn = FlowAwareRoadNetwork(small_grid, series)
        index = build_fahl(frn)
        engine = FlowAwareEngine(frn, oracle=index, alpha=0.3, eta_u=3.0,
                                 max_candidates=8)
        rerouted, ratio = reroute_flow_aware(trips, engine)
        assert len(rerouted) == len(trips)
        # flow-aware plans never carry more congestion than shortest paths
        assert ratio <= 1.0 + 1e-9
        for old, new in zip(trips, rerouted):
            assert old.path[0] == new.path[0]
            assert old.path[-1] == new.path[-1]

    def test_requires_trips(self, small_frn):
        index = build_fahl(small_frn)
        engine = FlowAwareEngine(small_frn, oracle=index)
        with pytest.raises(FlowError):
            reroute_flow_aware([], engine)
