"""Shared fixtures for the FAHL reproduction test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.graph.road_network import RoadNetwork

# keep hypothesis fast and deterministic in CI-style runs
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture()
def triangle_graph() -> RoadNetwork:
    """3 vertices, 3 edges — the smallest cyclic graph."""
    return RoadNetwork(3, edges=[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 4.0)])


@pytest.fixture()
def paper_like_graph() -> RoadNetwork:
    """A 6-vertex graph shaped like the paper's Fig. 2(a) running example."""
    edges = [
        (0, 1, 1.0),  # v1 - v2
        (0, 5, 3.0),  # v1 - v6
        (1, 2, 1.0),  # v2 - v3
        (2, 3, 1.0),  # v3 - v4
        (2, 5, 2.0),  # v3 - v6
        (3, 0, 1.0),  # v4 - v1
        (4, 5, 2.0),  # v5 - v6
        (4, 0, 3.0),  # v5 - v1
    ]
    return RoadNetwork(6, edges=edges)


@pytest.fixture()
def small_grid() -> RoadNetwork:
    """A perturbed 6x6 grid (deterministic)."""
    return grid_network(6, 6, seed=42)


@pytest.fixture()
def medium_grid() -> RoadNetwork:
    """A perturbed 10x10 grid (deterministic)."""
    return grid_network(10, 10, seed=7)


@pytest.fixture()
def small_frn(small_grid: RoadNetwork) -> FlowAwareRoadNetwork:
    """FRN over the small grid with 2 days of hourly synthetic flow."""
    flow = generate_flow_series(small_grid, days=2, seed=3)
    return FlowAwareRoadNetwork(small_grid, flow)


@pytest.fixture()
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)
