"""Request tracing, query EXPLAIN, flight recorder and SLO monitor.

The acceptance matrix of the observability layer:

* one query through a :class:`ResilientEngine` behind a
  :class:`ShardedGateway` with fork-pool workers produces a *single
  stitched trace* — one trace id, spans parented across the process
  boundary, no span-id collisions;
* ``explain()`` is bit-identical to ``query()`` on both kernels
  (hypothesis-driven) and round-trips through JSON;
* the flight recorder ring is bounded, always on, and its dumps land in
  dead-letter entries, degraded transitions and recovery reports;
* the span-name taxonomy stays linted and in sync with
  docs/OBSERVABILITY.md;
* concurrent histogram writes + Prometheus export are safe.
"""

from __future__ import annotations

import json
import threading
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.durability import Durability, recover
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import slo as obs_slo
from repro.obs.explain import QueryExplain
from repro.obs.flight import FlightRecorder
from repro.scale.gateway import ShardedGateway
from repro.serving.engine import ResilientEngine
from repro.serving.updates import FlowUpdate, WeightUpdate
from repro.testing.faults import FaultInjector

DOCS = Path(__file__).resolve().parent.parent / "docs" / "OBSERVABILITY.md"


def _frn(side=8, seed=3):
    graph = grid_network(side, side, seed=seed)
    return FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=seed))


@pytest.fixture()
def registry():
    fresh = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(fresh)
    try:
        yield fresh
    finally:
        obs.set_registry(previous)


@pytest.fixture()
def tracer():
    fresh = obs.Tracer()
    previous = obs.set_tracer(fresh)
    try:
        yield fresh
    finally:
        obs.set_tracer(previous)


@pytest.fixture()
def fresh_flight():
    """An isolated flight ring so parallel tests can't pollute dumps."""
    recorder = FlightRecorder(capacity=256)
    previous = obs_flight.set_flight(recorder)
    try:
        yield recorder
    finally:
        obs_flight.set_flight(previous)


# ----------------------------------------------------------------------
# request-context propagation
# ----------------------------------------------------------------------
class TestRequestContext:
    def test_new_context_ids_are_distinct(self):
        a, b = obs_context.new_context(), obs_context.new_context()
        assert a.trace_id != b.trace_id
        assert a.request_id != b.request_id

    def test_request_scope_is_idempotent_under_nesting(self):
        with obs_context.request_scope() as outer:
            with obs_context.request_scope() as inner:
                assert inner is outer
                assert obs_context.current_context() is outer
        assert obs_context.current_context() is None

    def test_wire_round_trip_restores_ids(self):
        ctx = obs_context.new_context(timeout=5.0)
        with obs_context.use_context(ctx):
            wire = obs_context.current_wire()
        assert wire["trace"] == ctx.trace_id
        assert wire["request"] == ctx.request_id
        assert wire["deadline"] == ctx.deadline
        # a forked child re-activates the wire and sees the same identity
        with obs_context.activate_wire(wire):
            child = obs_context.current_context()
            assert child.trace_id == ctx.trace_id
            assert child.request_id == ctx.request_id
        assert obs_context.current_context() is None

    def test_deadline_remaining_decreases(self):
        ctx = obs_context.new_context(timeout=60.0)
        remaining = ctx.remaining()
        assert remaining is not None and 0 < remaining <= 60.0
        assert obs_context.new_context().remaining() is None


# ----------------------------------------------------------------------
# the acceptance test: one stitched trace across gateway + fork pool
# ----------------------------------------------------------------------
class TestStitchedTrace:
    def _spans(self, tracer):
        return [e for e in tracer.events if e.get("event") == "span"]

    def test_gateway_fork_pool_single_trace(self, tracer, fresh_flight):
        frn = _frn()
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        n = frn.num_vertices
        # build the workload with the router itself: 8 queries the shard-0
        # ResilientEngine will serve locally plus 8 boundary-combine
        # queries, so both groups get >=2 of the 4 pool workers and the
        # fork pool genuinely engages on each side
        shard_pairs, cross_pairs = [], []
        for u in range(n):
            for v in range(u + 1, n):
                route, i, _ = gateway._route_class(FSPQuery(u, v, 0))
                if route == "shard" and i == 0 and len(shard_pairs) < 8:
                    shard_pairs.append((u, v))
                elif route == "boundary" and len(cross_pairs) < 8:
                    cross_pairs.append((u, v))
            if len(shard_pairs) >= 8 and len(cross_pairs) >= 8:
                break
        assert len(shard_pairs) >= 2 and len(cross_pairs) >= 2
        queries = [FSPQuery(u, v, 0) for u, v in shard_pairs + cross_pairs]
        # index-build spans from construction precede the request — the
        # stitched-trace contract covers the request's own spans
        tracer.events.clear()
        gateway.batch(queries, workers=4)

        spans = self._spans(tracer)
        assert spans, "tracer captured no spans"
        names = {s["name"] for s in spans}
        assert "gateway.batch" in names
        assert "serving.batch" in names  # the shard ResilientEngine path
        assert "batch.chunk" in names  # worker-side spans made it back
        assert "fpsps.query" in names

        # exactly one trace id stitches the whole request together
        traces = {s.get("trace") for s in spans}
        assert len(traces) == 1 and None not in traces
        requests = {s.get("request") for s in spans}
        assert len(requests) == 1 and None not in requests

        # span ids are unique even across processes and chunks
        ids = [s["span"] for s in spans]
        assert len(ids) == len(set(ids))

        # every non-root span's parent is a captured span: the tree is
        # fully stitched across the fork boundary
        by_id = {s["span"]: s for s in spans}
        roots = [s for s in spans if s.get("parent") is None]
        assert {s["name"] for s in roots} == {"gateway.batch"}
        for span in spans:
            parent = span.get("parent")
            if parent is not None:
                assert parent in by_id, (
                    f"span {span['name']} has unknown parent {parent}"
                )

        # the fork pool really crossed a process boundary
        pids = {s["pid"] for s in spans}
        assert len(pids) >= 2
        chunk_pids = {s["pid"] for s in spans if s["name"] == "batch.chunk"}
        parent_pid = next(
            s["pid"] for s in spans if s["name"] == "gateway.batch"
        )
        assert chunk_pids and parent_pid not in chunk_pids

        # worker spans are parented under the parent process's tree
        for span in spans:
            if span["name"] == "batch.chunk":
                assert by_id[span["parent"]]["name"] == "batch.query"

    def test_resilient_engine_query_is_traced(self, tracer):
        frn = _frn(side=5, seed=1)
        serving = ResilientEngine(frn, max_retries=0, backoff=0.0)
        tracer.events.clear()  # drop the construction-time build spans
        serving.query(FSPQuery(0, 7, 0))
        spans = self._spans(tracer)
        assert [s["name"] for s in spans][-1] == "serving.query"
        trace_ids = {s.get("trace") for s in spans}
        assert len(trace_ids) == 1 and None not in trace_ids

    def test_span_events_carry_wall_clock_and_duration(self, tracer):
        with obs.trace("serving.query", src=0, dst=1):
            pass
        (span,) = self._spans(tracer)
        # monotonic duration for truth, wall-clock end for cross-process
        # merging (the difference between the two measures clock skew)
        assert span["dur_s"] >= 0.0
        assert span["end"] >= span["start"]
        assert span["pid"] > 0


# ----------------------------------------------------------------------
# EXPLAIN: bit-identical to query() on both kernels
# ----------------------------------------------------------------------
class TestExplain:
    @pytest.fixture(scope="class")
    def engines(self):
        frn = _frn(side=6, seed=42)
        index = FAHLIndex.from_frn(frn)
        return frn, {
            kernel: FlowAwareEngine(
                frn, oracle=index, pruning="lemma4", kernel=kernel
            )
            for kernel in ("flat", "scalar")
        }

    @settings(max_examples=20, deadline=None)
    @given(data=st.data())
    def test_explain_matches_query_bit_identical(self, engines, data):
        frn, built = engines
        n = frn.num_vertices
        u = data.draw(st.integers(min_value=0, max_value=n - 1), label="u")
        v = data.draw(st.integers(min_value=0, max_value=n - 1), label="v")
        t = data.draw(
            st.integers(min_value=0, max_value=frn.num_timesteps - 1),
            label="t",
        )
        for kernel, engine in built.items():
            expected = engine.query(FSPQuery(u, v, t))
            explain = engine.explain(u, v, timestep=t)
            assert explain.distance == expected.distance, kernel
            assert explain.flow == expected.flow, kernel
            assert explain.score == expected.score, kernel
            assert explain.path == expected.path, kernel

    def test_explain_shape_fields(self):
        # a fresh engine: label-scan counters must show cold-path work
        frn = _frn(side=6, seed=42)
        index = FAHLIndex.from_frn(frn)
        built = {
            kernel: FlowAwareEngine(
                frn, oracle=index, pruning="lemma4", kernel=kernel
            )
            for kernel in ("flat", "scalar")
        }
        explain = built["flat"].explain(0, frn.num_vertices - 1)
        assert explain.kernel == "flat"
        assert explain.engine == "flow"
        assert explain.hub_cutset_size >= 0
        assert explain.labels_scanned > 0
        assert explain.label_entries_source > 0
        assert explain.label_entries_target > 0
        assert set(explain.stage_seconds) == {"spdis", "evaluate", "total"}
        assert explain.stage_seconds["total"] >= explain.stage_seconds["evaluate"]
        assert built["scalar"].explain(0, 5).kernel == "scalar"

    def test_explain_does_not_leak_registry_state(self, engines):
        frn, built = engines
        assert not obs.get_registry().enabled
        before = set(obs.get_registry().families())
        built["flat"].explain(0, 9)
        assert obs.get_registry() is not None
        assert set(obs.get_registry().families()) == before
        assert not obs.get_registry().enabled

    def test_json_round_trip(self, engines):
        frn, built = engines
        explain = built["flat"].explain(2, 17)
        restored = QueryExplain.from_dict(
            json.loads(json.dumps(explain.to_dict()))
        )
        assert restored == explain

    def test_resilient_explain_delegates_and_annotates(self):
        frn = _frn(side=5, seed=1)
        serving = ResilientEngine(frn, max_retries=0, backoff=0.0)
        expected = serving.query(FSPQuery(0, 7, 0))
        explain = serving.explain(0, 7)
        assert explain.engine == "resilient"
        assert explain.answer_source == "index"
        assert not explain.degraded
        assert explain.distance == expected.result.distance
        assert explain.path == expected.result.path

    def test_gateway_explain_routes_and_remaps(self):
        frn = _frn()
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        n = frn.num_vertices
        pairs = [(u, v) for u in range(0, n, 7) for v in range(1, n, 11) if u != v]
        seen_routes = set()
        for u, v in pairs:
            expected = gateway.query(FSPQuery(u, v, 0))
            explain = gateway.explain(u, v)
            seen_routes.add(explain.route)
            assert explain.engine == "gateway"
            assert explain.source == u and explain.target == v
            assert explain.shards == (
                gateway.plan.shard(u), gateway.plan.shard(v)
            )
            assert explain.cache_hit is True  # query() above primed it
            assert explain.cache_epochs == gateway._epochs_for(*explain.shards)
            assert explain.boundary_vertices == (
                gateway.boundary.num_boundary_vertices
            )
            # bit-identical to the served answer, global vertex ids
            assert explain.distance == expected.result.distance
            assert explain.path == expected.result.path
            assert all(0 <= w < n for w in explain.path)
        assert "boundary" in seen_routes

    def test_gateway_explain_fallback_on_degraded_shard(self):
        frn = _frn(side=6, seed=5)
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        with FaultInjector() as injector:
            injector.fail_at("flow:flow-set", times=10)
            gateway.submit(FlowUpdate(0, 50.0))
        assert gateway.degraded_shards
        victim = gateway.degraded_shards[0]
        u = gateway.plan.members[victim][0]
        v = gateway.plan.members[victim][1]
        explain = gateway.explain(u, v)
        assert explain.route == "fallback"
        assert explain.degraded
        assert explain.answer_source == "fallback"


# ----------------------------------------------------------------------
# flight recorder
# ----------------------------------------------------------------------
class TestFlightRecorder:
    def test_ring_is_bounded(self):
        recorder = FlightRecorder(capacity=512)
        for i in range(10_000):
            recorder.note("serving.query", i=i)
        assert len(recorder) == 512
        assert len(recorder._slots) == 512  # storage never grows
        events = recorder.dump()
        assert len(events) == 512
        # the dump is the newest events, oldest-first
        kept = [e["attrs"]["i"] for e in events]
        assert kept == list(range(10_000 - 512, 10_000))

    def test_dump_last_and_seconds_filters(self):
        recorder = FlightRecorder(capacity=16)
        for i in range(8):
            recorder.note("serving.query", i=i)
        assert len(recorder.dump(last=3)) == 3
        assert recorder.dump(seconds=0.0) == []
        assert len(recorder.dump(seconds=3600.0)) == 8

    def test_concurrent_recording_stays_bounded(self):
        recorder = FlightRecorder(capacity=64)
        errors: list[BaseException] = []

        def hammer(tag):
            try:
                for i in range(2_000):
                    recorder.record({"event": "note", "tag": tag, "i": i})
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        threads = [
            threading.Thread(target=hammer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert len(recorder) == 64
        assert len(recorder.dump()) == 64

    def test_slow_query_threshold(self):
        recorder = FlightRecorder(capacity=8, slow_threshold=0.025)
        recorder.observe_query("serving.query", 0.001)
        assert len(recorder) == 0
        recorder.observe_query("serving.query", 0.030, source="index")
        (event,) = recorder.dump()
        assert event["event"] == "slow_query"
        assert event["dur_s"] == 0.030

    def test_span_events_mirror_into_global_ring(self, tracer, fresh_flight):
        with obs.trace("serving.query", src=0, dst=1):
            pass
        events = obs_flight.dump()
        assert any(e.get("event") == "span" for e in events)

    def test_dead_letter_carries_flight_dump(self, fresh_flight):
        frn = _frn(side=5, seed=1)
        serving = ResilientEngine(frn, max_retries=0, backoff=0.0)
        serving.submit(FlowUpdate(frn.num_vertices + 5, 1.0))
        letter = list(serving.dead_letters)[-1]
        assert letter.flight, "quarantine did not capture a flight dump"
        notes = [
            e for e in letter.flight
            if e.get("event") == "note"
            and e.get("name") == "serving.dead_letter"
        ]
        assert notes and notes[-1]["attrs"]["reason"] == "unknown-vertex"

    def test_degraded_transition_captures_flight(self, fresh_flight):
        frn = _frn(side=5, seed=1)
        serving = ResilientEngine(frn, max_retries=0, backoff=0.0)
        assert serving.last_degraded_flight == ()
        with FaultInjector() as injector:
            injector.fail_at("flow:flow-set", times=10)
            serving.submit(FlowUpdate(0, 77.0))
        assert serving.degraded
        assert serving.last_degraded_flight
        assert any(
            e.get("name") == "serving.degraded_transition"
            for e in serving.last_degraded_flight
        )

    def test_recovery_report_carries_flight(self, tmp_path, fresh_flight):
        frn = _frn(side=5, seed=1)
        durability = Durability(tmp_path)
        engine = ResilientEngine(frn, durability=durability)
        u, v, w = next(iter(frn.graph.edges()))
        assert engine.submit(WeightUpdate(u, v, w * 1.5, timestamp=1.0)).applied
        durability.close()
        recovered = recover(tmp_path, _frn(side=5, seed=1))
        report = recovered.last_recovery
        assert report.flight
        assert any(
            e.get("name") == "durability.recover" for e in report.flight
        )

    def test_suppressed_recorder_dumps_empty(self):
        previous = obs_flight.set_flight(None)
        try:
            obs_flight.note("serving.query")
            assert obs_flight.dump() == ()
        finally:
            obs_flight.set_flight(previous)


# ----------------------------------------------------------------------
# SLO monitor
# ----------------------------------------------------------------------
class TestSLOMonitor:
    def test_burn_rate_math(self):
        clock = iter(float(i) for i in range(1000))
        monitor = obs.SLOMonitor(
            objective_seconds=0.1, target=0.99, window_seconds=300.0,
            clock=lambda: next(clock),
        )
        for _ in range(98):
            monitor.observe(0.01)
        monitor.observe(0.5)          # objective violation
        monitor.observe(0.01, ok=False)  # degraded answer burns budget too
        summary = monitor.summary()
        assert summary["count"] == 100
        # bad = latency violation + degraded answer
        assert summary["violations"] == 2
        assert summary["good_fraction"] == pytest.approx(0.98)
        # bad fraction 2% against a 1% budget: burn rate 2, budget gone
        assert summary["burn_rate"] == pytest.approx(2.0)
        assert summary["budget_remaining"] == 0.0

    def test_window_expiry(self):
        now = [0.0]
        monitor = obs.SLOMonitor(
            objective_seconds=0.1, window_seconds=10.0, clock=lambda: now[0]
        )
        monitor.observe(0.5)
        now[0] = 5.0
        monitor.observe(0.01)
        assert monitor.summary()["count"] == 2
        now[0] = 11.0  # the violation at t=0 ages out
        summary = monitor.summary()
        assert summary["count"] == 1
        assert summary["violations"] == 0

    def test_serving_query_feeds_installed_monitor(self, fresh_flight):
        frn = _frn(side=5, seed=1)
        serving = ResilientEngine(frn, max_retries=0, backoff=0.0)
        monitor = obs.SLOMonitor(objective_seconds=10.0)
        previous = obs_slo.set_slo_monitor(monitor)
        try:
            serving.query(FSPQuery(0, 7, 0))
            serving.query(FSPQuery(1, 9, 0))
        finally:
            obs_slo.set_slo_monitor(previous)
        summary = monitor.summary()
        assert summary["count"] == 2
        assert summary["violations"] == 0


# ----------------------------------------------------------------------
# span-name taxonomy lint + docs sync
# ----------------------------------------------------------------------
class TestSpanTaxonomy:
    def test_workload_spans_pass_lint(self, registry, tracer, fresh_flight):
        frn = _frn(side=6, seed=2)
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        n = frn.num_vertices
        queries = [
            FSPQuery((3 * i) % n, (7 * i + 5) % n, 0)
            for i in range(8)
            if (3 * i) % n != (7 * i + 5) % n
        ]
        gateway.query(queries[0])
        gateway.batch(queries, workers=2)
        u, v, w = next(iter(frn.graph.edges()))
        gateway.submit(WeightUpdate(u, v, w * 1.25, timestamp=1.0))
        assert obs.lint_spans(tracer.events) == []

    def test_lint_flags_uncatalogued_and_malformed_names(self):
        events = [
            {"event": "span", "name": "gateway.query"},
            {"event": "span", "name": "NotDotted"},
            {"event": "span", "name": "made.up_name"},
            {"event": "note", "name": "WHATEVER"},  # non-spans pass through
        ]
        problems = obs.lint_spans(events)
        assert len(problems) == 2
        assert any("NotDotted" in p for p in problems)
        assert any("made.up_name" in p for p in problems)

    def test_lint_accepts_jsonl_strings(self):
        lines = [
            json.dumps({"event": "span", "name": "fpsps.query"}),
            "",
            json.dumps({"event": "span", "name": "experiment.fig6"}),
        ]
        assert obs.lint_spans(lines) == []
        assert obs.lint_spans(["{broken"])

    def test_catalogue_is_in_sync_with_docs(self):
        text = DOCS.read_text(encoding="utf-8")
        missing = [
            name for name in sorted(obs.SPAN_CATALOGUE)
            if f"`{name}`" not in text
        ]
        assert not missing, (
            "span names missing from the docs/OBSERVABILITY.md taxonomy "
            f"table: {missing}"
        )


# ----------------------------------------------------------------------
# gateway shard-labelled metrics
# ----------------------------------------------------------------------
class TestGatewayShardMetrics:
    def test_route_and_cache_metrics_carry_shard_label(self, registry):
        frn = _frn()
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        # find a pair the router provably keeps inside one shard
        members = gateway.plan.members[0]
        routed = None
        for u, v in zip(members, members[1:]):
            if gateway.query(FSPQuery(u, v, 0)).source == "shard":
                routed = (u, v)
                break
        assert routed is not None, "no intra-shard pair routed locally"
        u, v = routed
        gateway.query(FSPQuery(u, v, 0))  # cache hit

        routes = registry.get("repro_gateway_queries_total")
        labelled = [dict(key) for key in routes.samples()]
        assert labelled and all("shard" in labels for labels in labelled)
        shard_hits = [
            labels for labels in labelled if labels["route"] == "shard"
        ]
        assert shard_hits and all(
            labels["shard"].isdigit() for labels in shard_hits
        )
        # boundary/fallback routes carry the "-" placeholder
        assert all(
            labels["shard"] == "-"
            for labels in labelled if labels["route"] != "shard"
        )

        cache = registry.get("repro_gateway_cache_total")
        cache_labels = [dict(key) for key in cache.samples()]
        assert cache_labels and all("shard" in ls for ls in cache_labels)
        assert cache.value(event="hit", shard="0") >= 1

    def test_query_latency_histogram_per_route_and_shard(self, registry):
        frn = _frn()
        gateway = ShardedGateway(frn, num_shards=2, max_retries=0, backoff=0.0)
        members = gateway.plan.members[1]
        gateway.query(FSPQuery(members[0], members[1], 0))
        hist = registry.get("repro_gateway_query_seconds")
        label_sets = [dict(key) for key in hist.label_sets()]
        assert label_sets
        assert all({"route", "shard"} <= set(ls) for ls in label_sets)


# ----------------------------------------------------------------------
# concurrency: histogram hammer with live export
# ----------------------------------------------------------------------
class TestConcurrentTelemetry:
    def test_histogram_hammer_with_concurrent_export(self):
        registry = obs.MetricsRegistry(enabled=True)
        hist = registry.histogram(
            "repro_gateway_query_seconds", "hammer target"
        )
        per_thread = 2_000
        errors: list[BaseException] = []
        stop = threading.Event()

        def writer(tag):
            try:
                for i in range(per_thread):
                    hist.observe(
                        (i % 50) / 1000.0, route="shard", shard=str(tag % 2)
                    )
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        def exporter():
            try:
                while not stop.is_set():
                    text = obs.render_prometheus(registry)
                    assert obs.lint_prometheus(text) == []
            except BaseException as exc:  # pragma: no cover
                errors.append(exc)

        export_thread = threading.Thread(target=exporter)
        export_thread.start()
        threads = [
            threading.Thread(target=writer, args=(t,)) for t in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        stop.set()
        export_thread.join()
        assert not errors
        total = sum(
            hist.count(route="shard", shard=shard) for shard in ("0", "1")
        )
        assert total == 8 * per_thread


# ----------------------------------------------------------------------
# CLI round-trips
# ----------------------------------------------------------------------
class TestCLI:
    def test_explain_json_round_trips(self, capsys):
        from repro.cli import main

        assert main([
            "explain", "3", "40",
            "--dataset", "BRN", "--scale", "0.05", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        restored = QueryExplain.from_dict(payload)
        assert restored.source == 3 and restored.target == 40
        assert restored.to_dict() == payload

    def test_explain_rejects_bad_vertex(self, capsys):
        from repro.cli import main

        assert main([
            "explain", "0", "999999",
            "--dataset", "BRN", "--scale", "0.05",
        ]) == 2
        assert "explain failed" in capsys.readouterr().err

    def test_obs_flight_json(self, capsys, fresh_flight):
        from repro.cli import main

        assert main([
            "obs", "flight", "--side", "4", "--queries", "6",
            "--updates", "3", "--last", "8", "--json",
        ]) == 0
        events = json.loads(capsys.readouterr().out)
        assert isinstance(events, list) and events
        assert all("event" in e for e in events)

    def test_obs_top_json(self, capsys, fresh_flight):
        from repro.cli import main

        assert main([
            "obs", "top", "--side", "4", "--queries", "6",
            "--updates", "3", "--json",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["slo"]["count"] >= 1
        assert "slowest" in payload

    def test_obs_lint_trace_file(self, tmp_path, capsys):
        from repro.cli import main

        good = tmp_path / "good.jsonl"
        good.write_text(
            json.dumps({"event": "span", "name": "fpsps.query"}) + "\n",
            encoding="utf-8",
        )
        assert main(["obs", "lint", "--trace", str(good)]) == 0
        bad = tmp_path / "bad.jsonl"
        bad.write_text(
            json.dumps({"event": "span", "name": "bogus_name"}) + "\n",
            encoding="utf-8",
        )
        assert main(["obs", "lint", "--trace", str(bad)]) == 1
        assert main(["obs", "lint"]) == 2
