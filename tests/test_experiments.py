"""Smoke + behaviour tests for the experiment harness (micro scale)."""

from __future__ import annotations

import pytest

from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.experiments import EXPERIMENTS
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentConfig,
    ExperimentTable,
    build_method,
    build_method_suite,
    format_table,
    time_queries,
)
from repro.workloads.datasets import load_dataset

MICRO = ExperimentConfig(
    datasets=("BRN",),
    scale=0.05,
    days=1,
    num_groups=2,
    queries_per_group=2,
    max_candidates=6,
    seed=0,
)


@pytest.fixture(scope="module")
def micro_dataset():
    return load_dataset("BRN", scale=0.05, days=1, seed=0)


class TestRunnerInfra:
    def test_config_overrides(self):
        config = MICRO.with_overrides(alpha=0.7)
        assert config.alpha == 0.7
        assert config.scale == MICRO.scale

    def test_format_table_alignment(self):
        text = format_table("t", ["a", "bb"], [[1, 2.5], [10, 0.001]], ["note"])
        lines = text.splitlines()
        assert lines[0] == "== t =="
        assert lines[-1] == "# note"

    def test_experiment_table_rows(self):
        table = ExperimentTable(title="x", headers=["h"])
        table.add_row(1)
        assert table.rows == [[1]]
        assert "x" in table.render()

    def test_build_unknown_method(self, micro_dataset):
        with pytest.raises(QueryError):
            build_method("FOO", micro_dataset, MICRO)

    def test_suite_builds_all_methods(self, micro_dataset):
        suite = build_method_suite(micro_dataset, MICRO)
        assert set(suite) == set(ALL_METHODS)
        # FAHL-O and FAHL-W share the index build
        assert suite["FAHL-O"].index is suite["FAHL-W"].index
        assert suite["FAHL-W"].engine.pruning == "lemma4"
        assert suite["FAHL-O"].engine.pruning == "none"

    def test_methods_have_private_graphs(self, micro_dataset):
        suite = build_method_suite(micro_dataset, MICRO, methods=("H2H", "CH"))
        assert suite["H2H"].frn.graph is not suite["CH"].frn.graph
        assert suite["H2H"].frn.graph is not micro_dataset.frn.graph

    def test_all_methods_agree_on_spdis(self, micro_dataset):
        suite = build_method_suite(micro_dataset, MICRO)
        n = micro_dataset.num_vertices
        for s, t in [(0, n - 1), (1, n // 2)]:
            values = {
                name: built.engine.shortest_distance(s, t)
                for name, built in suite.items()
            }
            baseline = values["H2H"]
            for name, value in values.items():
                assert value == pytest.approx(baseline), name

    def test_all_methods_agree_on_fspq_result(self, micro_dataset):
        # every engine enumerates the same MCPDis candidate set, so with
        # pruning off the flow-aware optimum must coincide across methods
        config = MICRO.with_overrides(max_candidates=64)
        suite = build_method_suite(micro_dataset, config)
        n = micro_dataset.num_vertices
        query = FSPQuery(0, n - 1, 0)
        results = {
            name: built.engine.query(query)
            for name, built in suite.items()
            if name != "FAHL-W"  # lemma4 pruning may legitimately deviate
        }
        scores = {name: r.score for name, r in results.items()}
        baseline = scores["H2H"]
        for name, score in scores.items():
            assert score == pytest.approx(baseline), name

    def test_time_queries_empty(self, micro_dataset):
        suite = build_method_suite(micro_dataset, MICRO, methods=("H2H",))
        assert time_queries(suite["H2H"], []) == 0.0


class TestExperimentSmoke:
    @pytest.mark.parametrize("name", sorted(EXPERIMENTS))
    def test_runs_and_produces_rows(self, name):
        table = EXPERIMENTS[name].run(MICRO)
        assert table.rows, name
        assert len(table.headers) >= 2
        for row in table.rows:
            assert len(row) == len(table.headers)
        rendered = table.render()
        assert table.title in rendered
