"""Unit + property tests for the bi-criteria skyline search."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.core.skyline import SkylinePath, skyline_paths
from repro.errors import QueryError
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork
from repro.paths.candidates import enumerate_all_paths_within
from repro.paths.scoring import path_flow
from tests.strategies import connected_graphs


@pytest.fixture()
def diamond_frn() -> FlowAwareRoadNetwork:
    graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0),
                                  (0, 2, 2.0), (2, 3, 2.0)])
    flow = FlowSeries(np.array([[5.0, 100.0, 1.0, 5.0]]))
    return FlowAwareRoadNetwork(graph, flow)


class TestSkylineBasics:
    def test_diamond_has_two_skyline_paths(self, diamond_frn):
        result = skyline_paths(diamond_frn, 0, 3, 0)
        assert len(result) == 2
        assert result.paths[0].path == (0, 1, 3)  # shorter, busier
        assert result.paths[1].path == (0, 2, 3)  # longer, quieter
        assert not result.truncated

    def test_frontier_sorted_and_undominated(self, small_frn, rng):
        n = small_frn.num_vertices
        for _ in range(5):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            result = skyline_paths(small_frn, s, t, 0,
                                   max_distance=2.5 * 1000.0)
            dists = [p.distance for p in result.paths]
            flows = [p.flow for p in result.paths]
            assert dists == sorted(dists)
            # along increasing distance, flow must strictly decrease
            assert all(a > b for a, b in zip(flows, flows[1:]))
            for i, a in enumerate(result.paths):
                for b in result.paths[i + 1:]:
                    assert not a.dominates(b)
                    assert not b.dominates(a)

    def test_self_query(self, diamond_frn):
        result = skyline_paths(diamond_frn, 2, 2, 0)
        assert len(result) == 1
        assert result.paths[0].path == (2,)

    def test_max_distance_restricts(self, diamond_frn):
        result = skyline_paths(diamond_frn, 0, 3, 0, max_distance=2.0)
        assert [p.path for p in result.paths] == [(0, 1, 3)]

    def test_paths_are_simple(self, small_frn, rng):
        n = small_frn.num_vertices
        s, t = 0, n - 1
        result = skyline_paths(small_frn, s, t, 0, max_distance=3000.0)
        for sp in result.paths:
            assert len(sp.path) == len(set(sp.path))

    def test_validation(self, diamond_frn):
        with pytest.raises(QueryError):
            skyline_paths(diamond_frn, 0, 99, 0)
        with pytest.raises(QueryError):
            skyline_paths(diamond_frn, 0, 3, 0, max_labels_per_vertex=0)

    def test_dominates_semantics(self):
        a = SkylinePath(path=(0,), distance=1.0, flow=1.0)
        b = SkylinePath(path=(1,), distance=2.0, flow=2.0)
        c = SkylinePath(path=(2,), distance=1.0, flow=1.0)
        assert a.dominates(b)
        assert not b.dominates(a)
        assert not a.dominates(c)  # equal in both: no strict improvement


class TestSkylineVsExhaustive:
    def test_matches_brute_force_frontier(self, rng):
        graph = RoadNetwork(6, edges=[
            (0, 1, 2.0), (0, 2, 3.0), (1, 2, 1.0), (1, 3, 4.0),
            (2, 4, 2.0), (3, 5, 1.0), (4, 5, 3.0), (1, 4, 5.0),
        ])
        flows = np.array([[3.0, 20.0, 2.0, 8.0, 1.0, 4.0]])
        frn = FlowAwareRoadNetwork(graph, FlowSeries(flows))
        bound = 20.0
        result = skyline_paths(frn, 0, 5, 0, max_distance=bound)
        # brute force: all simple paths, filter dominated
        brute = enumerate_all_paths_within(graph, 0, 5, bound)
        flow_vector = frn.predicted_at(0)
        candidates = [
            SkylinePath(
                path=tuple(p),
                distance=d,
                flow=path_flow(flow_vector, p),
            )
            for p, d in zip(brute.paths, brute.distances)
        ]
        frontier = [
            c for c in candidates
            if not any(o.dominates(c) for o in candidates)
        ]
        expected = sorted({(c.distance, c.flow) for c in frontier})
        got = [(p.distance, p.flow) for p in result.paths]
        assert got == expected


class TestFSPQOnSkyline:
    def test_fspq_optimum_is_on_skyline(self, small_frn, rng):
        """Eq. 1 is monotone in both criteria: its optimum is never
        dominated, hence lies on the skyline."""
        index = build_fahl(small_frn)
        engine = FlowAwareEngine(small_frn, oracle=index, alpha=0.5,
                                 eta_u=2.0, pruning="none",
                                 max_candidates=512)
        n = small_frn.num_vertices
        checked = 0
        for _ in range(6):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            result = engine.query(FSPQuery(s, t, 0))
            if result.truncated:
                continue
            sky = skyline_paths(
                small_frn, s, t, 0,
                max_distance=2.0 * result.shortest_distance,
            )
            assert not sky.truncated
            pairs = [(p.distance, p.flow) for p in sky.paths]
            assert (result.distance, result.flow) in pairs
            checked += 1
        assert checked > 0


@given(graph=connected_graphs(max_vertices=8), data=st.data())
def test_property_skyline_members_undominated(graph, data):
    n = graph.num_vertices
    flows = np.array(
        [[float(data.draw(st.integers(1, 30))) for _ in range(n)]]
    )
    frn = FlowAwareRoadNetwork(graph, FlowSeries(flows))
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    if s == t:
        return
    from repro.baselines.dijkstra import dijkstra_distance

    spdis = dijkstra_distance(graph, s, t)
    result = skyline_paths(frn, s, t, 0, max_distance=2.0 * spdis)
    assert result.paths  # the shortest path is always on the frontier
    assert result.paths[0].distance == pytest.approx(spdis)
    for i, a in enumerate(result.paths):
        for b in result.paths[i + 1:]:
            assert not a.dominates(b) and not b.dominates(a)
