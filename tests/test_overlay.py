"""Unit tests for the delta overlay: absorb, exact serving, consolidation."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distance, dijkstra_distances
from repro.core.overlay import (
    ConsolidationTask,
    DeltaOverlay,
    OverlayOracle,
    _SnapshotGraph,
)
from repro.errors import EdgeNotFoundError, GraphError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork
from repro.labeling.h2h import build_h2h
from repro.serving import FlowUpdate, ResilientEngine, WeightUpdate
from repro.testing import FaultInjector

N = 8


def fixed_graph() -> RoadNetwork:
    edges = [
        (0, 1, 4.0), (0, 2, 7.0), (1, 2, 2.0), (1, 3, 5.0),
        (2, 4, 3.0), (3, 4, 6.0), (3, 5, 1.0), (4, 6, 8.0),
        (5, 6, 2.0), (5, 7, 9.0), (6, 7, 3.0), (0, 7, 20.0),
        (2, 5, 11.0),
    ]
    return RoadNetwork(N, edges=edges)


def assert_oracle_exact(oracle, graph) -> None:
    for s in range(graph.num_vertices):
        ref = dijkstra_distances(graph, s)
        for t in range(graph.num_vertices):
            assert oracle.distance(s, t) == pytest.approx(ref[t]), (s, t)


@pytest.fixture()
def graph() -> RoadNetwork:
    return fixed_graph()


@pytest.fixture()
def index(graph):
    return build_h2h(graph)


@pytest.fixture()
def overlay(graph, index) -> DeltaOverlay:
    return DeltaOverlay(graph, capacity=4)


class TestDeltaOverlay:
    def test_absorb_validates(self, overlay):
        with pytest.raises(GraphError):
            overlay.absorb(0, 1, 0.0)
        with pytest.raises(GraphError):
            overlay.absorb(0, 1, -2.0)
        with pytest.raises(GraphError):
            overlay.absorb(0, 1, math.nan)
        with pytest.raises(EdgeNotFoundError):
            overlay.absorb(0, 4, 5.0)
        assert overlay.is_empty
        assert overlay.version == 0

    def test_absorb_updates_live_graph_not_labels(self, graph, index, overlay):
        label_version = index.label_version
        assert overlay.absorb(0, 1, 9.0)
        assert graph.weight(0, 1) == 9.0
        assert index.label_version == label_version
        entry = overlay.edges[(0, 1)]
        assert entry.stable == 4.0
        assert entry.current == 9.0

    def test_unchanged_weight_is_a_noop(self, graph, overlay):
        assert not overlay.absorb(0, 1, graph.weight(0, 1))
        assert overlay.is_empty
        assert overlay.version == 0

    def test_revert_to_stable_keeps_entry(self, overlay):
        assert overlay.absorb(0, 1, 9.0)
        assert overlay.absorb(0, 1, 4.0)
        # the record must survive: a concurrent consolidation may already
        # have folded 9.0, and the rebase bookkeeping needs the entry
        assert (0, 1) in overlay.edges
        assert overlay.edges[(0, 1)].current == 4.0

    def test_is_full_at_capacity(self, overlay):
        for u, v in ((0, 1), (1, 2), (2, 4), (3, 5)):
            overlay.absorb(u, v, 1.5)
        assert overlay.is_full

    def test_hub_rows_stay_exact_under_mixed_updates(self, graph, overlay):
        overlay.absorb(0, 1, 9.0)   # increase
        overlay.absorb(5, 6, 0.5)   # decrease
        overlay.absorb(0, 1, 2.5)   # decrease below original
        for x in (0, 1, 5, 6):
            np.testing.assert_allclose(
                overlay._hub_rows[x], dijkstra_distances(graph, x)
            )

    def test_table_to_matches_current_dijkstra(self, graph, overlay):
        overlay.absorb(1, 3, 0.5)
        overlay.absorb(6, 7, 30.0)
        for t in range(N):
            np.testing.assert_allclose(
                overlay.table_to(t), dijkstra_distances(graph, t)
            )


class TestOverlayOracle:
    def test_empty_overlay_delegates_bit_identically(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        for s in range(N):
            for t in range(N):
                assert oracle.distance(s, t) == index.distance(s, t)

    def test_requires_shared_graph(self, index):
        foreign = DeltaOverlay(fixed_graph())
        with pytest.raises(Exception):
            OverlayOracle(index, foreign)

    def test_exact_under_increases_and_decreases(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        # (1, 2) lies on many stable shortest paths: raising it forces the
        # uncertified A* fallback for pairs whose stable optimum crossed it
        overlay.absorb(1, 2, 40.0)
        overlay.absorb(3, 5, 6.0)
        overlay.absorb(0, 7, 2.0)
        assert_oracle_exact(oracle, graph)

    def test_distance_many_matches_point_queries(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(2, 4, 12.0)
        overlay.absorb(5, 6, 0.25)
        sources = np.array([0, 1, 2, 3, 7, 6])
        targets = np.array([7, 6, 5, 4, 0, 1])
        got = oracle.distance_many(sources, targets)
        for i, (s, t) in enumerate(zip(sources, targets)):
            assert got[i] == pytest.approx(oracle.distance(int(s), int(t)))

    def test_heuristic_table_tracks_overlay_version(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(0, 1, 9.0)
        before = oracle.heuristic_table(7)
        np.testing.assert_allclose(before, dijkstra_distances(graph, 7))
        overlay.absorb(6, 7, 1.0)
        after = oracle.heuristic_table(7)
        np.testing.assert_allclose(after, dijkstra_distances(graph, 7))

    def test_path_is_valid_on_current_graph(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(1, 2, 40.0)
        overlay.absorb(5, 6, 0.5)
        for s, t in ((0, 7), (2, 6), (7, 1)):
            path = oracle.path(s, t)
            assert path[0] == s and path[-1] == t
            weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(oracle.distance(s, t))


class TestSnapshotGraph:
    def test_overrides_mask_live_mutations(self, graph):
        view = _SnapshotGraph(graph, {(0, 1): 4.0})
        graph.set_weight(0, 1, 99.0)
        assert view.weight(0, 1) == 4.0
        assert view.weight(1, 0) == 4.0
        assert graph.weight(0, 1) == 99.0
        assert dict(view.adjacency(0))[1] == 4.0
        assert (0, 1, 4.0) in list(view.edges())

    def test_set_weight_writes_override_not_base(self, graph):
        view = _SnapshotGraph(graph, {})
        view.set_weight(0, 1, 2.0)
        assert view.weight(0, 1) == 2.0
        assert graph.weight(0, 1) == 4.0

    def test_pin_freezes_mid_task_absorbs(self, graph):
        view = _SnapshotGraph(graph, {})
        view.pin(2, 4, 3.0)
        graph.set_weight(2, 4, 50.0)
        assert view.weight(2, 4) == 3.0
        # pin never clobbers an explicit maintenance write
        view.set_weight(0, 1, 6.0)
        view.pin(0, 1, 4.0)
        assert view.weight(0, 1) == 6.0


class TestConsolidationTask:
    def test_run_folds_and_swaps(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(0, 1, 9.0)
        overlay.absorb(5, 6, 0.5)
        swapped = []
        task = ConsolidationTask(index, overlay, on_commit=swapped.append)
        new_index = task.run()
        assert task.committed
        assert swapped == [new_index]
        assert new_index is not index
        assert new_index.graph is graph
        assert overlay.is_empty
        oracle.index = new_index
        assert_oracle_exact(oracle, graph)

    def test_queries_exact_between_every_step(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(1, 3, 0.5)
        overlay.absorb(6, 7, 30.0)

        def on_commit(back):
            oracle.index = back

        task = ConsolidationTask(index, overlay, on_commit=on_commit)
        while not task.done:
            task.step()
            assert_oracle_exact(oracle, graph)

    def test_mid_task_absorb_survives_swap(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(0, 1, 9.0)
        task = ConsolidationTask(
            index, overlay, on_commit=lambda back: setattr(oracle, "index", back)
        )
        task.step()  # clone
        assert overlay.absorb(2, 4, 1.0)
        task.note_absorb(2, 4, 3.0)
        task.run()
        # the mid-task edge is still pending — not silently dropped
        assert (2, 4) in overlay.edges
        assert overlay.edges[(2, 4)].stable == 3.0
        assert_oracle_exact(oracle, graph)
        # a second round (cloning the *swapped-in* index) drains it
        ConsolidationTask(
            oracle.index, overlay,
            on_commit=lambda back: setattr(oracle, "index", back),
        ).run()
        assert overlay.is_empty
        assert_oracle_exact(oracle, graph)

    def test_absorb_between_prepare_and_commit_survives(self, graph, index, overlay):
        oracle = OverlayOracle(index, overlay)
        overlay.absorb(0, 1, 9.0)
        task = ConsolidationTask(
            index, overlay, on_commit=lambda back: setattr(oracle, "index", back)
        )
        while task.state != "commit":
            task.step()
        # lands after prepare computed the rebase: must not be lost
        assert overlay.absorb(5, 7, 2.0)
        task.note_absorb(5, 7, 9.0)
        task.run()
        assert (5, 7) in overlay.edges
        assert_oracle_exact(oracle, graph)


@pytest.fixture()
def frn() -> FlowAwareRoadNetwork:
    g = fixed_graph()
    return FlowAwareRoadNetwork(g, generate_flow_series(g, days=1, seed=9))


@pytest.fixture()
def serving(frn) -> ResilientEngine:
    return ResilientEngine(
        frn, max_retries=1, backoff=0.0, update_mode="overlay",
        overlay_capacity=64,
    )


class TestOverlayServing:
    def test_weight_updates_absorb_without_label_maintenance(self, serving, frn):
        label_version = serving.index.label_version
        outcome = serving.submit(WeightUpdate(0, 1, 9.0, timestamp=1.0))
        assert outcome.applied
        assert outcome.strategy == "overlay"
        assert serving.index.label_version == label_version
        assert serving.distance(0, 1).value == pytest.approx(
            dijkstra_distance(frn.graph, 0, 1)
        )

    def test_flow_updates_queue_for_consolidation(self, serving):
        outcome = serving.submit(FlowUpdate(3, 42.0, timestamp=1.0))
        assert outcome.applied
        assert outcome.strategy == "overlay-queued"
        assert serving.status().pending_flow_updates == 1
        serving.consolidate()
        assert serving.status().pending_flow_updates == 0
        assert serving.index.flows[3] == 42.0

    def test_consolidation_drains_and_stays_exact(self, serving, frn):
        ts = 0.0
        for u, v, w in ((0, 1, 9.0), (5, 6, 0.5), (2, 4, 7.5)):
            ts += 1.0
            assert serving.submit(WeightUpdate(u, v, w, timestamp=ts)).applied
        assert serving.consolidation_pending
        while serving.consolidation_pending:
            serving.maintenance_tick(steps=1)
            for s, t in ((0, 7), (3, 6), (1, 4)):
                assert serving.distance(s, t).value == pytest.approx(
                    dijkstra_distance(frn.graph, s, t)
                )
        assert serving.status().overlay_edges == 0
        assert serving.metrics["consolidations"] >= 1
        report = serving.audit()
        assert report.ok

    def test_overlay_capacity_triggers_consolidation(self, frn):
        serving = ResilientEngine(
            frn, max_retries=1, update_mode="overlay", overlay_capacity=2
        )
        assert serving.submit(WeightUpdate(0, 1, 9.0, timestamp=1.0)).applied
        assert serving.submit(WeightUpdate(1, 2, 8.0, timestamp=2.0)).applied
        # hitting capacity consolidated inline: nothing left pending
        assert not serving.consolidation_pending
        assert serving.metrics["consolidations"] == 1

    def test_failed_consolidation_discards_clone_and_retries(self, serving, frn):
        assert serving.submit(WeightUpdate(0, 1, 9.0, timestamp=1.0)).applied
        index_before = serving.index
        with FaultInjector() as inj:
            inj.fail_at("consolidate:clone-created", times=1)
            state = serving.maintenance_tick(steps=10)
        assert state == "failed"
        assert serving.index is index_before
        assert serving.dead_letters.by_reason["consolidation-failed"] == 1
        assert serving.distance(0, 1).value == pytest.approx(
            dijkstra_distance(frn.graph, 0, 1)
        )
        # next attempt succeeds and drains the overlay
        serving.consolidate()
        assert not serving.consolidation_pending
        assert serving.index is not index_before

    def test_repeated_failures_escalate_to_repair(self, frn):
        serving = ResilientEngine(
            frn, max_retries=0, backoff=0.0, update_mode="overlay"
        )
        assert serving.submit(WeightUpdate(0, 1, 9.0, timestamp=1.0)).applied
        with FaultInjector() as inj:
            inj.fail_at("consolidate:weights-folded", times=-1)
            state = serving.maintenance_tick(steps=10)
        assert state == "rebuilt"
        assert serving.metrics["repairs"] == 1
        assert not serving.consolidation_pending
        assert serving.distance(0, 1).value == pytest.approx(
            dijkstra_distance(frn.graph, 0, 1)
        )

    def test_status_reports_overlay_fields(self, serving):
        status = serving.status()
        assert status.update_mode == "overlay"
        assert status.overlay_edges == 0
        serving.submit(WeightUpdate(0, 1, 9.0, timestamp=1.0))
        serving.submit(FlowUpdate(2, 5.0, timestamp=2.0))
        status = serving.status()
        assert status.overlay_edges == 1
        assert status.pending_flow_updates == 1
        assert status.as_dict()["update_mode"] == "overlay"
