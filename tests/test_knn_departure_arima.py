"""Unit tests for flow-aware kNN, departure planning, G-tree paths, ARIMA."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.baselines.gtree import build_gtree
from repro.core.departure import best_departure
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.knn import flow_aware_knn
from repro.errors import FlowError, QueryError
from repro.flow.arima import SeasonalARPredictor
from repro.flow.series import FlowSeries
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork


@pytest.fixture()
def small_engine(small_frn):
    index = build_fahl(small_frn)
    return FlowAwareEngine(small_frn, oracle=index, alpha=0.5, eta_u=3.0,
                           max_candidates=8)


class TestFlowAwareKNN:
    def test_returns_k_sorted_matches(self, small_engine, small_frn, rng):
        pois = [int(v) for v in rng.choice(small_frn.num_vertices, 12,
                                           replace=False)]
        source = pois.pop()
        matches = flow_aware_knn(small_engine, source, pois, k=3, timestep=0)
        assert len(matches) == 3
        assert [m.rank for m in matches] == [1, 2, 3]
        scores = [m.result.score for m in matches]
        assert scores == sorted(scores)

    def test_best_match_beats_all_shortlisted(self, small_engine, small_frn, rng):
        pois = [int(v) for v in rng.choice(small_frn.num_vertices, 8,
                                           replace=False) if v != 0]
        matches = flow_aware_knn(small_engine, 0, pois, k=len(pois),
                                 timestep=0, prefilter=len(pois))
        best = matches[0]
        for other in matches[1:]:
            assert best.result.score <= other.result.score + 1e-12

    def test_prefilter_shrinks_work(self, small_engine, small_frn, rng):
        pois = [int(v) for v in rng.choice(small_frn.num_vertices, 10,
                                           replace=False) if v != 0]
        matches = flow_aware_knn(small_engine, 0, pois, k=2, timestep=0,
                                 prefilter=3)
        assert len(matches) == 2
        # the shortlisted POIs are the spatially closest ones
        dists = sorted(
            dijkstra_distance(small_frn.graph, 0, p) for p in pois
        )
        for match in matches:
            assert dijkstra_distance(small_frn.graph, 0, match.poi) <= dists[2]

    def test_validation(self, small_engine):
        with pytest.raises(QueryError):
            flow_aware_knn(small_engine, 0, [0], k=1, timestep=0)
        with pytest.raises(QueryError):
            flow_aware_knn(small_engine, 0, [1, 2], k=0, timestep=0)
        with pytest.raises(QueryError):
            flow_aware_knn(small_engine, 0, [1, 2], k=2, timestep=0,
                           prefilter=1)


class TestBestDeparture:
    def test_picks_minimum_objective(self, small_engine, small_frn):
        target = small_frn.num_vertices - 1
        plan = best_departure(small_engine, 0, target, range(0, 24),
                              objective="flow")
        assert plan.timestep in plan.sweep
        best_flow = plan.result.flow
        assert all(best_flow <= r.flow + 1e-9 for r in plan.sweep.values())

    def test_off_peak_beats_rush_hour(self, small_engine, small_frn):
        # diurnal flow: 04:00 must carry less traffic than 08:00
        target = small_frn.num_vertices - 1
        plan = best_departure(small_engine, 0, target, [4, 8],
                              objective="flow")
        assert plan.timestep == 4
        assert plan.worst_timestep == 8

    def test_objectives_validated(self, small_engine):
        with pytest.raises(QueryError):
            best_departure(small_engine, 0, 1, [0], objective="vibes")
        with pytest.raises(QueryError):
            best_departure(small_engine, 0, 1, [])

    def test_sweep_complete(self, small_engine, small_frn):
        plan = best_departure(small_engine, 0, 5, range(0, 6))
        assert sorted(plan.sweep) == list(range(6))


class TestGTreePaths:
    def test_paths_realize_distances(self, medium_grid, rng):
        index = build_gtree(medium_grid, leaf_size=16)
        n = medium_grid.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            assert path[0] == s and path[-1] == t
            weight = sum(
                medium_grid.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert weight == pytest.approx(index.distance(s, t))

    def test_same_leaf_path(self, medium_grid):
        index = build_gtree(medium_grid, leaf_size=16)
        leaf = index._leaves[0]
        s, t = leaf.vertices[0], leaf.vertices[-1]
        path = index.path(s, t)
        weight = sum(medium_grid.weight(a, b) for a, b in zip(path, path[1:]))
        assert weight == pytest.approx(index.distance(s, t))

    def test_self_path(self, medium_grid):
        index = build_gtree(medium_grid, leaf_size=16)
        assert index.path(7, 7) == [7]


class TestSeasonalAR:
    def test_fits_and_predicts_diurnal_flow(self, small_grid):
        truth = generate_flow_series(small_grid, days=4, seed=2, noise=0.05)
        predictor = SeasonalARPredictor(ar_order=2).fit(truth)
        accuracy = predictor.accuracy(truth)
        assert accuracy > 0.8

    def test_beats_no_seasonality_on_diurnal_data(self, small_grid):
        truth = generate_flow_series(small_grid, days=4, seed=2, noise=0.05)
        with_season = SeasonalARPredictor(ar_order=2, seasonal=True).fit(truth)
        without = SeasonalARPredictor(ar_order=2, seasonal=False).fit(truth)
        assert with_season.accuracy(truth) >= without.accuracy(truth) - 0.02

    def test_predictions_nonnegative(self, small_grid):
        truth = generate_flow_series(small_grid, days=3, seed=1)
        predicted = SeasonalARPredictor().fit(truth).predict()
        assert (predicted.matrix >= 0).all()

    def test_requires_fit(self):
        with pytest.raises(FlowError):
            SeasonalARPredictor().predict()

    def test_rejects_short_series(self, small_grid):
        short = FlowSeries(np.ones((5, small_grid.num_vertices)))
        with pytest.raises(FlowError):
            SeasonalARPredictor(ar_order=2).fit(short)

    def test_validates_args(self):
        with pytest.raises(FlowError):
            SeasonalARPredictor(ar_order=0)
        with pytest.raises(FlowError):
            SeasonalARPredictor(ridge=-1.0)

    def test_usable_in_frn(self, small_grid):
        truth = generate_flow_series(small_grid, days=3, seed=0)
        predicted = SeasonalARPredictor().fit(truth).predict()
        frn = FlowAwareRoadNetwork(small_grid, truth, predicted_flow=predicted)
        assert frn.predicted_flow.num_timesteps == truth.num_timesteps
