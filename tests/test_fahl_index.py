"""Unit tests for the FAHL index (construction + Alg. 2 queries)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import FAHLIndex, build_fahl
from repro.errors import DisconnectedGraphError, IndexBuildError, IndexStateError
from repro.graph.road_network import RoadNetwork
from repro.labeling.h2h import build_h2h


class TestConstruction:
    def test_from_frn(self, small_frn):
        index = build_fahl(small_frn)
        assert index.graph is small_frn.graph
        assert index.beta == 0.5
        index.tree.validate(small_frn.graph)

    def test_flow_vector_validated(self, small_grid):
        with pytest.raises(IndexBuildError):
            FAHLIndex(small_grid, np.ones(3))

    def test_empty_graph(self):
        with pytest.raises(IndexStateError):
            FAHLIndex(RoadNetwork(0), np.empty(0))

    def test_disconnected_graph(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            FAHLIndex(graph, np.ones(4))

    def test_anchors_frozen(self, small_grid):
        flows = np.linspace(0, 100, small_grid.num_vertices)
        index = FAHLIndex(small_grid, flows)
        assert index.flow_anchors == (0.0, 100.0)

    def test_capacity_variant(self, small_grid):
        from repro.flow.capacity import synthesize_lane_counts
        from repro.flow.synthetic import generate_flow_series
        from repro.graph.frn import FlowAwareRoadNetwork

        truth = generate_flow_series(small_grid, days=1, seed=0)
        lanes = synthesize_lane_counts(small_grid, seed=1)
        frn = FlowAwareRoadNetwork(small_grid, truth, lanes=lanes)
        plain = build_fahl(frn, use_capacity=False)
        capacity = build_fahl(frn, use_capacity=True, w_c=0.3)
        assert not np.array_equal(plain.flows, capacity.flows)

    def test_beta_zero_close_to_h2h_size(self, small_grid):
        flows = np.random.default_rng(0).uniform(0, 100, small_grid.num_vertices)
        fahl = FAHLIndex(small_grid, flows, beta=0.0)
        h2h = build_h2h(small_grid)
        # beta=0 degenerates to (normalised) degree ordering; sizes match to
        # within tie-breaking noise
        ratio = fahl.index_size_entries() / h2h.index_size_entries()
        assert 0.8 < ratio < 1.25


class TestQueries:
    def test_exact_distances(self, small_frn, rng):
        index = build_fahl(small_frn)
        graph = small_frn.graph
        n = graph.num_vertices
        for _ in range(80):
            s, t = map(int, rng.integers(0, n, 2))
            ref = dijkstra_distances(graph, s)[t]
            assert index.distance(s, t) == pytest.approx(ref)

    def test_paths_match_distances(self, small_frn, rng):
        index = build_fahl(small_frn)
        graph = small_frn.graph
        n = graph.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(index.distance(s, t))

    def test_low_flow_vertices_prefer_root(self, small_grid):
        # with beta=1 ordering is purely by flow: the lowest-flow vertex is
        # eliminated last, i.e. becomes the root (paper Section III intuition)
        rng = np.random.default_rng(3)
        flows = rng.uniform(10, 100, small_grid.num_vertices)
        lowest = int(np.argmin(flows))
        index = FAHLIndex(small_grid, flows, beta=1.0)
        assert index.tree.root == lowest

    def test_phi_of_uses_anchors(self, small_grid):
        flows = np.linspace(0, 100, small_grid.num_vertices)
        index = FAHLIndex(small_grid, flows, beta=1.0)
        # importance falls with flow; a flow above the anchor max pushes the
        # (1 - normalised) term below 0
        index.flows[0] = 200.0
        assert index.phi_of(0, degree=2) < 0.0
