"""Running-example tests mirroring the paper's Figures 2-5 semantics.

The extracted paper text garbles parts of Fig. 2's label table (its
Position/Distance rows are mutually inconsistent), so these tests assert
the *semantics* the examples demonstrate — degree-flow ordering places the
lowest-flow vertex at the root (Example 1), Alg. 2's LCA query combines
label entries (Example 4), a flow change restructures only the affected
window (Examples 5-6), and a weight change propagates through shared bag
vertices (Example 7) — on a faithfully reconstructed 6-vertex network.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_update, apply_weight_update


@pytest.fixture()
def example_flows() -> np.ndarray:
    """Flows shaped like the paper's Table I (v1 lowest, v6 highest)."""
    #        v1    v2    v3    v4    v5    v6
    return np.array([5.0, 12.0, 14.0, 18.0, 15.0, 20.0])


@pytest.fixture()
def example_index(paper_like_graph, example_flows) -> FAHLIndex:
    return FAHLIndex(paper_like_graph, example_flows, beta=0.7)


class TestExample1Ordering:
    def test_lowest_flow_vertex_is_root(self, example_index):
        # Example 1: v1 has the highest joint importance (lowest flow) and
        # becomes the root of the flow-aware tree decomposition
        assert example_index.tree.root == 0

    def test_ascending_elimination(self, example_index, example_flows):
        # the eliminated-first vertex must not have the lowest flow
        first = example_index.elim.order[0]
        assert example_flows[first] > example_flows.min()


class TestExample3Labels:
    def test_label_entries_are_shortest_distances(self, example_index,
                                                  paper_like_graph):
        for v in range(6):
            ref = dijkstra_distances(paper_like_graph, v)
            anc = example_index.anc[v]
            for j, a in enumerate(anc):
                assert example_index.labels[v][j] == pytest.approx(ref[a])

    def test_position_arrays_sorted(self, example_index):
        for v in range(6):
            positions = example_index.positions[v]
            assert list(positions) == sorted(positions)


class TestExample4Query:
    def test_lca_query_equals_dijkstra(self, example_index, paper_like_graph):
        for s in range(6):
            ref = dijkstra_distances(paper_like_graph, s)
            for t in range(6):
                assert example_index.distance(s, t) == pytest.approx(ref[t])


class TestExamples5and6StructureUpdate:
    def test_flow_change_keeps_queries_exact(self, example_index,
                                             paper_like_graph):
        # Example 5/6: a vertex's flow changes, the ordering shifts, the
        # index restructures (ISU), and queries stay exact
        stats = apply_flow_update(example_index, 5, 1.0, method="isu")
        assert stats.strategy in ("noop", "isu", "gsu")
        for s in range(6):
            ref = dijkstra_distances(paper_like_graph, s)
            for t in range(6):
                assert example_index.distance(s, t) == pytest.approx(ref[t])

    def test_root_can_change_when_flows_invert(self, paper_like_graph,
                                               example_flows):
        index = FAHLIndex(paper_like_graph, example_flows, beta=1.0)
        assert index.tree.root == 0
        # make v1 the busiest vertex: it loses the root position
        apply_flow_update(index, 0, 500.0, method="gsu")
        assert index.tree.root != 0


class TestExample7LabelUpdate:
    def test_weight_change_updates_dependent_labels(self, example_index,
                                                    paper_like_graph):
        # Example 7: shrinking edge (v5, v6) re-routes distances through it
        stats = apply_weight_update(example_index, 4, 5, 1.0)
        assert stats.labels_affected >= 1
        for s in range(6):
            ref = dijkstra_distances(paper_like_graph, s)
            for t in range(6):
                assert example_index.distance(s, t) == pytest.approx(ref[t])

    def test_unrelated_weight_change_touches_few_labels(self, example_index):
        before = [lbl.copy() for lbl in example_index.labels]
        stats = apply_weight_update(example_index, 1, 2, 1.0)  # same weight
        assert stats.labels_affected == 0
        for old, new in zip(before, example_index.labels):
            assert np.array_equal(old, new)
