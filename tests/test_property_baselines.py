"""Property-based tests: every baseline oracle is exact on random graphs."""

from __future__ import annotations

import pytest
from hypothesis import given

from repro.baselines.astar import AStarOracle
from repro.baselines.ch import CHIndex
from repro.baselines.dijkstra import dijkstra_distances
from repro.baselines.gtree import TDGTree
from tests.strategies import connected_graphs


@given(graph=connected_graphs(max_vertices=14))
def test_ch_equals_dijkstra(graph):
    index = CHIndex(graph)
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert index.distance(s, t) == pytest.approx(ref[t])


@given(graph=connected_graphs(max_vertices=14))
def test_ch_paths_realize_distances(graph):
    index = CHIndex(graph)
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 3)):
        for t in range(0, n, max(1, n // 3)):
            path = index.path(s, t)
            weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(index.distance(s, t))


@given(graph=connected_graphs(max_vertices=14))
def test_gtree_equals_dijkstra(graph):
    index = TDGTree(graph, leaf_size=5)
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert index.distance(s, t) == pytest.approx(ref[t])


@given(graph=connected_graphs(max_vertices=12))
def test_astar_equals_dijkstra_without_coords(graph):
    oracle = AStarOracle(graph)  # random graphs carry no coordinates
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert oracle.distance(s, t) == pytest.approx(ref[t])
