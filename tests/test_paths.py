"""Unit tests for A* search, Yen enumeration and candidate generation."""

from __future__ import annotations

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork
from repro.labeling.h2h import build_h2h
from repro.paths.astar_search import (
    EuclideanHeuristic,
    OracleHeuristic,
    ZeroHeuristic,
    astar_path,
)
from repro.paths.candidates import (
    enumerate_all_paths_within,
    generate_candidates,
    heuristic_for,
    path_distance,
)
from repro.paths.yen import k_shortest_paths


class TestAStarSearch:
    def test_zero_heuristic_is_dijkstra(self, medium_grid, rng):
        n = medium_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            _, dist = astar_path(medium_grid, s, t, ZeroHeuristic())
            assert dist == pytest.approx(dijkstra_distance(medium_grid, s, t))

    def test_oracle_heuristic_exact_and_fast(self, medium_grid, rng):
        index = build_h2h(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            heuristic = OracleHeuristic(index, t)
            path, dist = astar_path(medium_grid, s, t, heuristic)
            assert dist == pytest.approx(index.distance(s, t))
            assert path[0] == s and path[-1] == t

    def test_euclidean_heuristic_admissible(self, medium_grid, rng):
        n = medium_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            heuristic = EuclideanHeuristic(medium_grid, t)
            _, dist = astar_path(medium_grid, s, t, heuristic)
            assert dist == pytest.approx(dijkstra_distance(medium_grid, s, t))

    def test_euclidean_requires_target_coords(self, triangle_graph):
        with pytest.raises(QueryError):
            EuclideanHeuristic(triangle_graph, 0)

    def test_banned_vertex(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0),
                                      (0, 2, 2.0), (2, 3, 2.0)])
        path, dist = astar_path(graph, 0, 3, ZeroHeuristic(),
                                banned_vertices={1})
        assert path == [0, 2, 3]
        assert dist == 4.0

    def test_banned_edge(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0),
                                      (0, 2, 2.0), (2, 3, 2.0)])
        path, _ = astar_path(graph, 0, 3, ZeroHeuristic(),
                             banned_edges={(1, 3)})
        assert path == [0, 2, 3]

    def test_cutoff_abandons(self, medium_grid):
        path, dist = astar_path(medium_grid, 0, medium_grid.num_vertices - 1,
                                ZeroHeuristic(), cutoff=1.0)
        assert path == []
        assert dist == math.inf

    def test_banned_source_unreachable(self, triangle_graph):
        path, dist = astar_path(triangle_graph, 0, 2, ZeroHeuristic(),
                                banned_vertices={0})
        assert path == [] and dist == math.inf


class TestYen:
    @pytest.fixture()
    def diamond(self) -> RoadNetwork:
        return RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0),
                                     (0, 2, 2.0), (2, 3, 2.0)])

    def test_enumerates_in_distance_order(self, diamond):
        result = k_shortest_paths(diamond, 0, 3, ZeroHeuristic(),
                                  max_distance=10.0, max_paths=10)
        assert result.distances == sorted(result.distances)
        assert result.paths[0] == [0, 1, 3]
        assert [0, 2, 3] in result.paths

    def test_respects_distance_bound(self, diamond):
        result = k_shortest_paths(diamond, 0, 3, ZeroHeuristic(),
                                  max_distance=2.0, max_paths=10)
        assert result.paths == [[0, 1, 3]]
        assert not result.truncated

    def test_truncation_reported(self, medium_grid):
        result = k_shortest_paths(medium_grid, 0, medium_grid.num_vertices - 1,
                                  ZeroHeuristic(), max_distance=math.inf,
                                  max_paths=3)
        assert len(result) == 3
        assert result.truncated

    def test_paths_simple_and_unique(self, medium_grid):
        index = build_h2h(medium_grid)
        s, t = 0, medium_grid.num_vertices - 1
        bound = index.distance(s, t) * 1.5
        result = k_shortest_paths(medium_grid, s, t, OracleHeuristic(index, t),
                                  max_distance=bound, max_paths=20)
        seen = set()
        for path, dist in zip(result.paths, result.distances):
            assert len(path) == len(set(path))
            assert tuple(path) not in seen
            seen.add(tuple(path))
            assert dist == pytest.approx(path_distance(medium_grid, path))
            assert dist <= bound + 1e-9

    def test_unreachable(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        result = k_shortest_paths(graph, 0, 2, ZeroHeuristic())
        assert len(result) == 0

    def test_invalid_max_paths(self, diamond):
        with pytest.raises(QueryError):
            k_shortest_paths(diamond, 0, 3, ZeroHeuristic(), max_paths=0)


class TestCandidates:
    def test_matches_exhaustive(self, small_grid, rng):
        index = build_h2h(small_grid)
        n = small_grid.num_vertices
        for _ in range(5):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            bound = index.distance(s, t) * 1.4
            yen = generate_candidates(small_grid, s, t, bound, oracle=index,
                                      max_candidates=10_000)
            brute = enumerate_all_paths_within(small_grid, s, t, bound)
            assert sorted(map(tuple, yen.paths)) == sorted(map(tuple, brute.paths))

    def test_heuristic_selection(self, medium_grid, triangle_graph):
        index = build_h2h(medium_grid)
        assert isinstance(heuristic_for(medium_grid, index, 0), OracleHeuristic)
        assert isinstance(heuristic_for(medium_grid, None, 0), EuclideanHeuristic)
        assert isinstance(heuristic_for(triangle_graph, None, 0), ZeroHeuristic)

    def test_exhaustive_self_query(self, small_grid):
        result = enumerate_all_paths_within(small_grid, 2, 2, 10.0)
        assert result.paths == [[2]]

    def test_path_distance_empty(self, small_grid):
        assert path_distance(small_grid, []) == math.inf
