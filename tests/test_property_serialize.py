"""Property tests: serialization round-trips on arbitrary graphs."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fahl import FAHLIndex
from repro.labeling.h2h import H2HIndex
from repro.labeling.serialize import load_index, save_index
from tests.strategies import connected_graphs


@given(graph=connected_graphs(max_vertices=10))
def test_h2h_round_trip_preserves_everything(graph, tmp_path_factory):
    index = H2HIndex(graph)
    path = tmp_path_factory.mktemp("ser") / "index.npz"
    save_index(index, path)
    loaded = load_index(path)
    assert isinstance(loaded, H2HIndex)
    n = graph.num_vertices
    for v in range(n):
        assert np.array_equal(loaded.labels[v], index.labels[v])
        assert np.array_equal(loaded.vias[v], index.vias[v])
        assert loaded.elim.bags[v] == index.elim.bags[v]
    for s in range(0, n, max(1, n // 3)):
        for t in range(n):
            assert loaded.distance(s, t) == index.distance(s, t)
            assert loaded.path(s, t) == index.path(s, t)


@given(graph=connected_graphs(max_vertices=10), data=st.data())
def test_fahl_round_trip_preserves_flows(graph, data, tmp_path_factory):
    flows = np.array(
        [float(data.draw(st.integers(0, 80))) for _ in range(graph.num_vertices)]
    )
    beta = data.draw(st.sampled_from([0.2, 0.5, 0.8]))
    index = FAHLIndex(graph, flows, beta=beta)
    path = tmp_path_factory.mktemp("ser") / "index.npz"
    save_index(index, path)
    loaded = load_index(path)
    assert isinstance(loaded, FAHLIndex)
    assert loaded.beta == pytest.approx(beta)
    assert np.array_equal(loaded.flows, index.flows)
    assert loaded.flow_anchors == index.flow_anchors
    assert loaded.elim.order == index.elim.order
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 3)):
        for t in range(n):
            assert loaded.distance(s, t) == index.distance(s, t)
