"""Tests for the stats / export-dataset CLI subcommands."""

from __future__ import annotations

import numpy as np

from repro.cli import main
from repro.graph.dimacs import load_dimacs


class TestStatsCommand:
    def test_prints_both_indexes(self, capsys):
        code = main(["stats", "BRN", "--scale", "0.05"])
        assert code == 0
        out = capsys.readouterr().out
        assert "H2H" in out
        assert "FAHL" in out
        assert "entries_ratio" in out

    def test_beta_flag(self, capsys):
        code = main(["stats", "BRN", "--scale", "0.05", "--beta", "0.9"])
        assert code == 0
        assert "FAHL(b=0.9)" in capsys.readouterr().out


class TestExportCommand:
    def test_round_trip(self, tmp_path, capsys):
        out_dir = tmp_path / "export"
        code = main([
            "export-dataset", "BRN", str(out_dir),
            "--scale", "0.05", "--days", "1",
        ])
        assert code == 0
        assert (out_dir / "brn.gr").exists()
        assert (out_dir / "brn.co").exists()
        assert (out_dir / "brn.flows.npz").exists()
        # the exported graph reloads through the DIMACS reader
        graph = load_dimacs(out_dir / "brn.gr", out_dir / "brn.co")
        assert graph.num_vertices > 10
        assert len(graph.coordinates) == graph.num_vertices
        with np.load(out_dir / "brn.flows.npz") as flows:
            assert flows["truth"].shape[1] == graph.num_vertices
            assert flows["predicted"].shape == flows["truth"].shape
            assert int(flows["interval_minutes"]) == 60

    def test_creates_directory(self, tmp_path):
        nested = tmp_path / "a" / "b"
        code = main([
            "export-dataset", "NYC", str(nested),
            "--scale", "0.05", "--days", "1",
        ])
        assert code == 0
        assert nested.exists()
