"""Hypothesis strategies for property-based tests."""

from __future__ import annotations

from hypothesis import strategies as st

from repro.graph.road_network import RoadNetwork


@st.composite
def connected_graphs(
    draw,
    min_vertices: int = 3,
    max_vertices: int = 16,
    max_weight: int = 20,
    extra_edge_factor: float = 1.0,
):
    """A random connected weighted graph (spanning tree + extra edges)."""
    n = draw(st.integers(min_vertices, max_vertices))
    graph = RoadNetwork(n)
    # random spanning tree: attach vertex i to a random earlier vertex
    for i in range(1, n):
        parent = draw(st.integers(0, i - 1))
        weight = draw(st.integers(1, max_weight))
        graph.add_edge(i, parent, float(weight))
    extra = draw(st.integers(0, max(0, int(n * extra_edge_factor))))
    for _ in range(extra):
        u = draw(st.integers(0, n - 1))
        v = draw(st.integers(0, n - 1))
        if u != v and not graph.has_edge(u, v):
            weight = draw(st.integers(1, max_weight))
            graph.add_edge(u, v, float(weight))
    return graph


@st.composite
def flow_vectors(draw, graph: RoadNetwork, max_flow: int = 100):
    """A per-vertex non-negative flow vector for ``graph``."""
    return [
        float(draw(st.integers(0, max_flow))) for _ in range(graph.num_vertices)
    ]
