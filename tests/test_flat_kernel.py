"""Flat (vectorised) FSPQ kernel: parity, invalidation, quantisation, obs.

The flat kernel (``repro.core.flatq``) must be *bit-identical* to the
scalar reference path — every test here compares full ``FSPResult``
equality (dataclass ``==``, i.e. exact float equality), not approximate
scores.  Also covers the satellites that ride along with the kernel:
the quantised label arena, ``hub_cutset``/``distances_to`` primitives,
vectorised Lemma-4 bounds, the latency-summary helpers, the DIMACS
dataset loader, and deprecation-warning caller attribution.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import obs
from repro.core.bounds import adaptive_prune_mask, lemma4_bounds
from repro.core.fahl import FAHLIndex, build_fahl
from repro.core.flatq import FlatQueryKernel
from repro.core.fpsps import KERNEL_MODES, PRUNING_MODES, FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.core.maintenance import apply_flow_update, apply_weight_update
from repro.errors import DatasetFormatError, QueryError
from repro.flow.series import FlowSeries
from repro.graph.dimacs import write_gr
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.graph.road_network import RoadNetwork
from repro.obs.export import lint_prometheus, render_prometheus
from repro.serving.engine import ResilientEngine
from repro.workloads.datasets import DIMACS_PREFIX, load_dataset


@pytest.fixture()
def grid_frn() -> FlowAwareRoadNetwork:
    """A 4x4 integer-weight grid with one deterministic flow snapshot."""
    graph = grid_network(4, 4, seed=9)
    rng = np.random.default_rng(5)
    flow = FlowSeries(rng.integers(0, 60, size=(3, 16)).astype(float))
    return FlowAwareRoadNetwork(graph, flow)


@pytest.fixture()
def grid_index(grid_frn) -> FAHLIndex:
    return build_fahl(grid_frn)


def all_queries(frn, timesteps=(0,)):
    n = frn.num_vertices
    return [
        FSPQuery(s, t, ts)
        for ts in timesteps
        for s in range(n)
        for t in range(n)
        if s != t
    ]


def answers(engine, queries):
    out = []
    for query in queries:
        try:
            out.append(engine.query(query))
        except QueryError as exc:
            out.append(str(exc))
    return out


# ----------------------------------------------------------------------
# kernel knob
# ----------------------------------------------------------------------
class TestKernelKnob:
    def test_flat_is_default(self, grid_frn):
        assert FlowAwareEngine(grid_frn).kernel == "flat"

    def test_scalar_selectable(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index, kernel="scalar")
        assert engine.kernel == "scalar"
        assert engine._flat_kernel() is None
        # and it still answers queries (the reference path)
        assert engine.query(FSPQuery(0, 15, 0)).path

    def test_rejects_unknown_kernel(self, grid_frn):
        with pytest.raises(QueryError, match="kernel"):
            FlowAwareEngine(grid_frn, kernel="simd")

    def test_kernel_modes_constant(self):
        assert KERNEL_MODES == ("flat", "scalar")

    def test_flat_engages_on_hierarchy_oracle(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index)
        assert isinstance(engine._flat_kernel(), FlatQueryKernel)

    def test_flat_disengages_without_oracle(self, grid_frn):
        assert FlowAwareEngine(grid_frn, oracle=None)._flat_kernel() is None

    def test_flat_disengages_when_exhaustive(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index, exhaustive=True)
        assert engine._flat_kernel() is None


# ----------------------------------------------------------------------
# bit-identical parity with the scalar reference
# ----------------------------------------------------------------------
class TestParity:
    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    def test_bit_identical_all_pairs(self, grid_frn, grid_index, pruning):
        flat = FlowAwareEngine(
            grid_frn, oracle=grid_index, pruning=pruning, kernel="flat"
        )
        scalar = FlowAwareEngine(
            grid_frn, oracle=grid_index, pruning=pruning, kernel="scalar"
        )
        queries = all_queries(grid_frn, timesteps=(0, 2))
        assert answers(flat, queries) == answers(scalar, queries)

    @pytest.mark.parametrize("pruning", PRUNING_MODES)
    def test_bit_identical_under_truncation(self, grid_frn, grid_index, pruning):
        """A tiny candidate budget exercises truncated/early-stop flags."""
        flat = FlowAwareEngine(
            grid_frn, oracle=grid_index, pruning=pruning, kernel="flat",
            max_candidates=2, min_candidates=1,
        )
        scalar = FlowAwareEngine(
            grid_frn, oracle=grid_index, pruning=pruning, kernel="scalar",
            max_candidates=2, min_candidates=1,
        )
        queries = all_queries(grid_frn)
        got = answers(flat, queries)
        assert got == answers(scalar, queries)
        if pruning == "none":
            # the eager collector marks overflow; lazy modes may stop
            # early (score dominance) without overflowing the budget
            assert any(r.truncated for r in got if not isinstance(r, str))

    def test_shortest_distance_via_kernel(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index)
        for s in range(grid_frn.num_vertices):
            assert engine.shortest_distance(s, 11) == grid_index.distance(s, 11)


# ----------------------------------------------------------------------
# invalidation: maintenance, explicit invalidate(), oracle swap
# ----------------------------------------------------------------------
class TestInvalidation:
    def test_invalidate_drops_cached_kernel(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index)
        engine.query(FSPQuery(0, 15, 0))
        assert engine._flat_kernel_cache is not None
        engine.invalidate()
        assert engine._flat_kernel_cache is None

    def test_weight_update_resets_kernel_state(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index)
        before = engine.query(FSPQuery(0, 15, 0))
        assert before is not None
        u, v, w = next(iter(grid_frn.graph.edges()))
        apply_weight_update(grid_index, u, v, float(w) * 3)
        # no explicit invalidate(): the kernel must notice the label
        # version bump on its own and rebuild
        scalar = FlowAwareEngine(
            grid_frn, oracle=grid_index, kernel="scalar"
        )
        queries = all_queries(grid_frn)
        assert answers(engine, queries) == answers(scalar, queries)

    def test_flow_update_resets_kernel_state(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index)
        engine.query(FSPQuery(0, 15, 0))
        apply_flow_update(grid_index, 5, 500.0, method="gsu")
        scalar = FlowAwareEngine(grid_frn, oracle=grid_index, kernel="scalar")
        queries = all_queries(grid_frn)
        assert answers(engine, queries) == answers(scalar, queries)

    def test_label_preserving_weight_update_resets_kernel(self):
        # an ILU that raises an off-shortest-path edge weight changes NO
        # label (so label_version never bumps) yet still invalidates the
        # kernel's cached adjacency: found by the maintenance property
        # test, pinned here.  Edge (0,5) is off every shortest path after
        # the raise, but path (0,5,4) sat exactly on the eta_u candidate
        # bound before it.
        graph = RoadNetwork(6)
        for u, v, w in [(1, 0, 8.0), (2, 1, 10.0), (3, 1, 3.0),
                        (4, 0, 3.0), (5, 4, 1.0), (0, 5, 8.0)]:
            graph.add_edge(u, v, w)
        flows = np.array([32.0, 78.0, 24.0, 8.0, 70.0, 54.0])
        frn = FlowAwareRoadNetwork(graph, FlowSeries(flows[None, :]))
        index = FAHLIndex(graph, flows, beta=0.5)
        flat = FlowAwareEngine(frn, oracle=index, pruning="none")
        scalar = FlowAwareEngine(
            frn, oracle=index, pruning="none", kernel="scalar"
        )
        queries = all_queries(frn)
        assert answers(flat, queries) == answers(scalar, queries)  # warm
        version_before = index.label_version
        apply_weight_update(index, 0, 5, 12.0)
        assert index.label_version == version_before  # the trap: no bump
        assert answers(flat, queries) == answers(scalar, queries)

    def test_oracle_swap_rebuilds_kernel(self, grid_frn, grid_index):
        engine = FlowAwareEngine(grid_frn, oracle=grid_index)
        engine.query(FSPQuery(0, 15, 0))
        first = engine._flat_kernel_cache
        engine.oracle = build_fahl(grid_frn)
        engine.invalidate()
        engine.query(FSPQuery(0, 15, 0))
        second = engine._flat_kernel_cache
        assert second is not first
        assert second.index is engine.oracle


# ----------------------------------------------------------------------
# quantised label arena
# ----------------------------------------------------------------------
class TestQuantisedArena:
    def test_integer_weights_quantise(self, grid_index):
        arena = grid_index.arena()
        assert arena.quantized
        assert arena.label_values_q is not None
        assert arena.label_values_q.dtype == np.int64

    def test_quantised_distances_exact(self, grid_frn, grid_index):
        n = grid_frn.num_vertices
        us, vs = np.meshgrid(np.arange(n), np.arange(n))
        us, vs = us.ravel(), vs.ravel()
        got = grid_index.distance_many(us, vs)
        expected = np.asarray(
            [grid_index.distance(int(u), int(v)) for u, v in zip(us, vs)]
        )
        assert np.array_equal(got, expected)

    def test_fractional_weights_fall_back(self):
        graph = RoadNetwork(
            3, edges=[(0, 1, 1.5), (1, 2, 2.0), (0, 2, 4.0)]
        )
        index = FAHLIndex(graph, np.zeros(3), beta=0.5)
        arena = index.arena()
        assert not arena.quantized
        assert arena.label_values_q is None
        # the float path still answers exactly
        assert index.distance(0, 2) == 3.5

    def test_fractional_weights_flat_parity(self):
        """Non-quantisable graphs still go through the flat kernel."""
        graph = RoadNetwork(
            4, edges=[(0, 1, 1.25), (1, 3, 1.0), (0, 2, 2.5), (2, 3, 2.0)]
        )
        frn = FlowAwareRoadNetwork(
            graph, FlowSeries(np.array([[5.0, 100.0, 1.0, 5.0]]))
        )
        index = build_fahl(frn)
        flat = FlowAwareEngine(frn, oracle=index, kernel="flat")
        scalar = FlowAwareEngine(frn, oracle=index, kernel="scalar")
        queries = all_queries(frn)
        assert answers(flat, queries) == answers(scalar, queries)


# ----------------------------------------------------------------------
# vectorised Lemma-4 bounds
# ----------------------------------------------------------------------
class TestVectorisedBounds:
    def test_prunes_many_matches_scalar(self, rng):
        bounds = lemma4_bounds(10.0, 90.0, alpha=0.4, eta_u=2.0)
        flows = rng.uniform(-20, 200, size=257)
        mask = bounds.prunes_many(flows)
        assert mask.dtype == np.bool_
        assert mask.tolist() == [bounds.prunes(f) for f in flows]

    def test_adaptive_mask_matches_incumbent_loop(self, rng):
        alpha = 0.35
        scores = rng.uniform(0, 1, size=128)
        flows = rng.uniform(0, 100, size=128)
        flow_min, flow_max = float(flows.min()), float(flows.max())
        mask = adaptive_prune_mask(scores, flows, flow_min, flow_max, alpha)
        # reference: the scalar engine's running-incumbent loop
        expected = []
        best = np.inf
        spread = flow_max - flow_min
        for i, (score, flow) in enumerate(zip(scores, flows)):
            if i == 0 or not np.isfinite(best):
                pruned = False
            else:
                bound = flow_min + spread * best / (1.0 - alpha)
                pruned = flow > bound
            expected.append(pruned)
            if not pruned and score < best:
                best = score
        assert mask.tolist() == expected

    def test_adaptive_mask_never_prunes_first(self, rng):
        scores = rng.uniform(0, 1, size=16)
        flows = rng.uniform(0, 50, size=16)
        mask = adaptive_prune_mask(
            scores, flows, float(flows.min()), float(flows.max()), 0.5
        )
        assert not mask[0]


# ----------------------------------------------------------------------
# hierarchy primitives backing the kernel
# ----------------------------------------------------------------------
class TestHierarchyPrimitives:
    def test_hub_cutset_is_lca_positions(self, grid_index):
        n = grid_index.graph.num_vertices
        for u in range(0, n, 3):
            for v in range(0, n, 4):
                cut = grid_index.hub_cutset(u, v)
                hub = grid_index.lca.query(u, v)
                assert np.array_equal(cut, grid_index.positions[hub])
                assert np.array_equal(cut, grid_index.hub_cutset(v, u))

    def test_hub_cutset_validates(self, grid_index):
        with pytest.raises(QueryError):
            grid_index.hub_cutset(0, 10_000)

    def test_distances_to_matches_scalar(self, grid_index):
        n = grid_index.graph.num_vertices
        for target in (0, 7, n - 1):
            got = grid_index.distances_to(target)
            expected = np.asarray(
                [grid_index.distance(u, target) for u in range(n)]
            )
            assert np.array_equal(got, expected)

    def test_distances_to_validates(self, grid_index):
        with pytest.raises(QueryError):
            grid_index.distances_to(-1)


# ----------------------------------------------------------------------
# latency helpers (repro.obs.latency)
# ----------------------------------------------------------------------
class TestLatencyHelpers:
    def test_recorder_exact_percentiles(self):
        recorder = obs.LatencyRecorder()
        for value in [0.001 * i for i in range(1, 101)]:
            recorder.observe(value)
        summary = recorder.summary()
        assert summary["count"] == 100
        assert summary["mean"] == pytest.approx(0.0505)
        assert summary["p50"] == pytest.approx(np.percentile(
            [0.001 * i for i in range(1, 101)], 50))
        assert summary["p99"] >= summary["p95"] >= summary["p50"]
        assert len(recorder) == 100

    def test_recorder_dual_writes_to_registry(self):
        registry = obs.MetricsRegistry(enabled=True)
        recorder = obs.LatencyRecorder(
            metric="repro_bench_query_seconds",
            help="benchmark query latency",
            registry=registry,
            mode="flat",
        )
        recorder.observe(0.25)
        recorder.observe(0.5)
        family = registry.get("repro_bench_query_seconds")
        assert family.count(mode="flat") == 2
        assert family.sum(mode="flat") == pytest.approx(0.75)

    def test_latency_summary_from_histogram(self):
        registry = obs.MetricsRegistry(enabled=True)
        hist = registry.histogram("repro_demo_seconds", "demo")
        for value in (0.001, 0.002, 0.004, 0.4):
            hist.observe(value)
        summary = obs.latency_summary(hist)
        assert summary["count"] == 4
        assert not summary["empty"]
        assert summary["mean"] == pytest.approx(hist.sum() / 4)
        # bucket-upper-bound estimates: ordered and bracketed
        assert summary["p50"] <= summary["p95"] <= summary["p99"]
        assert summary["p50"] >= 0.001

    def test_empty_recorder_summary_is_explicit(self):
        # regression: an empty recorder used to fabricate all-zero
        # percentiles, indistinguishable from a genuinely instant workload
        summary = obs.LatencyRecorder().summary()
        assert summary == {"count": 0, "empty": True}
        assert "p99" not in summary

    def test_empty_histogram_summary_is_explicit(self):
        registry = obs.MetricsRegistry(enabled=True)
        hist = registry.histogram("repro_demo_seconds", "demo")
        assert obs.latency_summary(hist) == {"count": 0, "empty": True}
        hist.observe(0.5, mode="flat")
        # a label set that never observed stays explicitly empty too
        assert obs.latency_summary(hist, mode="scalar") == {
            "count": 0, "empty": True,
        }


# ----------------------------------------------------------------------
# kernel telemetry: counters flow into a lint-clean Prometheus export
# ----------------------------------------------------------------------
class TestKernelTelemetry:
    def test_flat_query_metrics_lint_clean(self, grid_frn, grid_index):
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.set_registry(registry)
        try:
            engine = FlowAwareEngine(grid_frn, oracle=grid_index)
            for query in all_queries(grid_frn)[:40]:
                engine.query(query)
            serving = ResilientEngine(grid_frn, index=build_fahl(grid_frn))
            serving.query(FSPQuery(0, 15, 0))
        finally:
            obs.set_registry(previous)
        text = render_prometheus(registry)
        assert lint_prometheus(text) == []
        for family in (
            "repro_flatq_spur_searches_total",
            "repro_flatq_heuristic_builds_total",
            "repro_serving_query_seconds",
        ):
            assert family in text

    def test_memo_and_skip_counters_advance(self, grid_frn, grid_index):
        registry = obs.MetricsRegistry(enabled=True)
        previous = obs.set_registry(registry)
        try:
            engine = FlowAwareEngine(
                grid_frn, oracle=grid_index, pruning="adaptive"
            )
            for query in all_queries(grid_frn):
                engine.query(query)
        finally:
            obs.set_registry(previous)
        runs = registry.get("repro_flatq_spur_searches_total")
        builds = registry.get("repro_flatq_heuristic_builds_total")
        assert runs is not None and runs.total() > 0
        assert builds is not None and builds.total() > 0


# ----------------------------------------------------------------------
# DIMACS datasets (satellite: real networks through the whole harness)
# ----------------------------------------------------------------------
class TestDimacsDataset:
    def test_round_trip(self, tmp_path, grid_frn):
        gr = tmp_path / "grid.gr"
        write_gr(grid_frn.graph, gr)
        dataset = load_dataset(f"{DIMACS_PREFIX}{gr}", days=1, epochs=5)
        assert dataset.num_vertices == grid_frn.num_vertices
        assert dataset.num_edges == grid_frn.num_edges
        assert dataset.name == f"{DIMACS_PREFIX}{gr}"
        assert "DIMACS" in dataset.description
        # flows attached: engines can answer immediately
        engine = FlowAwareEngine(dataset.frn, oracle=build_fahl(dataset.frn))
        assert engine.query(FSPQuery(0, 5, 0)).path

    def test_disconnected_input_restricted_to_largest_component(self, tmp_path):
        graph = RoadNetwork(5, edges=[(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0)])
        gr = tmp_path / "islands.gr"
        write_gr(graph, gr)
        dataset = load_dataset(f"dimacs:{gr}", days=1, epochs=5)
        assert dataset.num_vertices == 3
        assert "largest component" in dataset.description

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetFormatError, match="not found"):
            load_dataset(f"dimacs:{tmp_path / 'absent.gr'}")

    def test_cli_dimacs_flag(self, tmp_path):
        from repro.cli import _config_from_args, build_parser

        gr = tmp_path / "net.gr"
        parser = build_parser()
        args = parser.parse_args(["run", "fig6", "--dimacs", str(gr)])
        config = _config_from_args(args)
        assert config.datasets == (f"dimacs:{gr}",)
        # without the flag, the named datasets are untouched
        args = parser.parse_args(["run", "fig6", "--datasets", "brn,nyc"])
        assert _config_from_args(args).datasets == ("BRN", "NYC")


# ----------------------------------------------------------------------
# completed deprecation cycles: the old spellings are gone (satellite c)
# ----------------------------------------------------------------------
class TestDeprecationRemoval:
    def test_invalidate_flow_cache_removed(self, grid_frn):
        engine = FlowAwareEngine(grid_frn)
        assert not hasattr(engine, "invalidate_flow_cache")
        with pytest.raises(AttributeError):
            engine.invalidate_flow_cache()

    def test_engine_status_getitem_removed(self, grid_frn):
        serving = ResilientEngine(grid_frn, max_retries=1, backoff=0.0)
        status = serving.status()
        with pytest.raises(TypeError):
            status["state"]
        # the typed surface is unaffected
        assert status.state in ("healthy", "degraded")
        assert status.as_dict()["state"] == status.state
