"""Tests for the exception hierarchy and the public API surface."""

from __future__ import annotations

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, Exception):
                if obj is not errors.ReproError:
                    assert issubclass(obj, errors.ReproError), name

    def test_lookup_errors_are_key_errors(self):
        # callers using dict-style access patterns can catch KeyError
        assert issubclass(errors.VertexNotFoundError, KeyError)
        assert issubclass(errors.EdgeNotFoundError, KeyError)

    def test_vertex_error_carries_vertex(self):
        err = errors.VertexNotFoundError(42)
        assert err.vertex == 42
        assert "42" in str(err)

    def test_edge_error_carries_edge(self):
        err = errors.EdgeNotFoundError(1, 2)
        assert err.edge == (1, 2)

    def test_constraint_error_is_query_error(self):
        from repro.core.constrained import ConstraintError

        assert issubclass(ConstraintError, errors.QueryError)

    def test_one_catch_all_suffices(self, small_grid):
        from repro.labeling.h2h import build_h2h

        index = build_h2h(small_grid)
        with pytest.raises(errors.ReproError):
            index.distance(0, 10_000)


class TestPublicAPI:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_subpackage_all_names_resolve(self):
        import repro.analysis
        import repro.baselines
        import repro.core
        import repro.experiments
        import repro.flow
        import repro.graph
        import repro.labeling
        import repro.paths
        import repro.treedec
        import repro.workloads

        for module in (
            repro.analysis, repro.baselines, repro.core, repro.flow,
            repro.graph, repro.labeling, repro.paths, repro.treedec,
            repro.workloads, repro.experiments,
        ):
            for name in module.__all__:
                assert hasattr(module, name), f"{module.__name__}.{name}"

    def test_version_string(self):
        major, minor, patch = repro.__version__.split(".")
        assert all(part.isdigit() for part in (major, minor, patch))

    def test_headline_types_importable_from_top_level(self):
        assert repro.FAHLIndex is not None
        assert repro.FlowAwareEngine is not None
        assert repro.H2HIndex is not None
        assert repro.FSPQuery is not None

    def test_public_functions_have_docstrings(self):
        import inspect

        undocumented = [
            name
            for name in repro.__all__
            if not name.startswith("__")
            and callable(getattr(repro, name))
            and not (inspect.getdoc(getattr(repro, name)) or "").strip()
        ]
        assert undocumented == []

    def test_experiment_registry_complete(self):
        from repro.experiments import EXPERIMENTS

        # every paper table/figure present plus the companions
        for key in ("table1", "table3", "fig6", "fig7ab", "fig7cd", "fig8",
                    "fig9", "fig10", "fig11", "fig12", "fig13",
                    "ablation-beta", "ablation-pruning", "quality"):
            assert key in EXPERIMENTS, key
        for module in EXPERIMENTS.values():
            assert callable(module.run)
