"""Unit tests for DIMACS file IO."""

from __future__ import annotations

import io

import pytest

from repro.errors import DatasetFormatError
from repro.graph.dimacs import load_dimacs, read_co, read_gr, write_gr
from repro.graph.generators import grid_network
from repro.graph.road_network import RoadNetwork

SAMPLE_GR = """c a comment line
p sp 3 4
a 1 2 10
a 2 1 10
a 2 3 5
a 3 2 5
"""

SAMPLE_CO = """c coordinates
p aux sp co 3
v 1 100 200
v 2 -50 75
v 3 0 0
"""


class TestReadGr:
    def test_basic_parse(self):
        graph = read_gr(io.StringIO(SAMPLE_GR))
        assert graph.num_vertices == 3
        assert graph.num_edges == 2  # both directions folded
        assert graph.weight(0, 1) == 10.0
        assert graph.weight(1, 2) == 5.0

    def test_asymmetric_arcs_keep_minimum(self):
        text = "p sp 2 2\na 1 2 10\na 2 1 4\n"
        graph = read_gr(io.StringIO(text))
        assert graph.weight(0, 1) == 4.0

    def test_missing_problem_line(self):
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO("a 1 2 3\n"))

    def test_duplicate_problem_line(self):
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO("p sp 2 0\np sp 2 0\n"))

    def test_arc_count_mismatch(self):
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO("p sp 2 3\na 1 2 1\n"))

    def test_unknown_record(self):
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO("p sp 2 0\nx nonsense\n"))

    def test_malformed_arc(self):
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO("p sp 2 1\na 1 2\n"))

    def test_out_of_range_vertex(self):
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO("p sp 2 1\na 1 5 3\n"))


class TestWriteGr:
    def test_round_trip(self, tmp_path):
        original = grid_network(5, 5, seed=2)
        path = tmp_path / "net.gr"
        write_gr(original, path)
        loaded = read_gr(path)
        assert loaded.num_vertices == original.num_vertices
        assert sorted(loaded.edges()) == sorted(original.edges())

    def test_writes_both_directions(self):
        graph = RoadNetwork(2, edges=[(0, 1, 7.0)])
        buffer = io.StringIO()
        write_gr(graph, buffer)
        text = buffer.getvalue()
        assert "a 1 2 7" in text
        assert "a 2 1 7" in text


class TestReadCo:
    def test_basic_parse(self):
        coords = read_co(io.StringIO(SAMPLE_CO))
        assert coords[0] == (100.0, 200.0)
        assert coords[1] == (-50.0, 75.0)

    def test_malformed_line(self):
        with pytest.raises(DatasetFormatError):
            read_co(io.StringIO("v 1 2\n"))


class TestLoadDimacs:
    def test_with_coordinates(self, tmp_path):
        graph = grid_network(4, 4, seed=1)
        gr = tmp_path / "g.gr"
        write_gr(graph, gr)
        co = tmp_path / "g.co"
        with open(co, "w", encoding="ascii") as handle:
            handle.write("v 1 10 20\n")
        loaded = load_dimacs(gr, co)
        assert loaded.coordinates[0] == (10.0, 20.0)
