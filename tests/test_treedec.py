"""Unit tests for orderings, the elimination game and the tree structure."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import IndexBuildError
from repro.graph.road_network import RoadNetwork
from repro.treedec.elimination import (
    eliminate,
    relax_from_bag,
    replay_prefix,
)
from repro.treedec.lca import EulerTourLCA, naive_lca
from repro.treedec.ordering import (
    degree_flow_importance,
    degree_importance,
    normalize_flows,
)
from repro.treedec.tree import TreeDecomposition


class TestOrderings:
    def test_degree_importance_ignores_vertex(self):
        imp = degree_importance()
        assert imp(0, 3) == imp(99, 3) == 3.0

    def test_normalize_flows_range(self):
        normalized = normalize_flows(np.array([10.0, 20.0, 30.0]))
        assert list(normalized) == [0.0, 0.5, 1.0]

    def test_normalize_constant_vector(self):
        assert list(normalize_flows(np.array([5.0, 5.0]))) == [0.0, 0.0]

    def test_normalize_with_anchors(self):
        normalized = normalize_flows(np.array([0.0, 50.0]), anchors=(0.0, 100.0))
        assert list(normalized) == [0.0, 0.5]

    def test_normalize_rejects_bad_input(self):
        with pytest.raises(IndexBuildError):
            normalize_flows(np.ones((2, 2)))
        with pytest.raises(IndexBuildError):
            normalize_flows(np.array([np.inf]))

    def test_degree_flow_blend(self, triangle_graph):
        flows = np.array([0.0, 50.0, 100.0])
        imp = degree_flow_importance(triangle_graph, flows, beta=0.5)
        # importance falls with flow: all degrees are 2 (term 1.0), so the
        # zero-flow vertex scores highest and the max-flow vertex lowest
        assert imp(0, 2) == pytest.approx(0.5 * 1.0 + 0.5 * 1.0)
        assert imp(2, 2) == pytest.approx(0.5 * 0.0 + 0.5 * 1.0)
        assert imp(0, 2) > imp(1, 2) > imp(2, 2)

    def test_degree_flow_beta_zero_is_degree(self, triangle_graph):
        flows = np.array([0.0, 50.0, 100.0])
        imp = degree_flow_importance(triangle_graph, flows, beta=0.0)
        assert imp(0, 2) == imp(2, 2)

    def test_degree_flow_validates(self, triangle_graph):
        with pytest.raises(IndexBuildError):
            degree_flow_importance(triangle_graph, np.array([1.0]), beta=0.5)
        with pytest.raises(IndexBuildError):
            degree_flow_importance(triangle_graph, np.zeros(3), beta=1.5)


class TestElimination:
    def test_orders_all_vertices(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        assert sorted(result.order) == list(range(small_grid.num_vertices))
        assert all(result.rank[v] == r for r, v in enumerate(result.order))

    def test_bags_contain_later_vertices(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        for v in range(small_grid.num_vertices):
            for x in result.bags[v]:
                assert result.rank[x] > result.rank[v]

    def test_empty_graph_rejected(self):
        with pytest.raises(IndexBuildError):
            eliminate(RoadNetwork(0), degree_importance())

    def test_path_graph_width_one(self):
        graph = RoadNetwork(5, edges=[(i, i + 1, 1.0) for i in range(4)])
        result = eliminate(graph, degree_importance())
        assert result.treewidth == 1

    def test_shortcut_weights_triangle_inequality(self, triangle_graph):
        # eliminating the first vertex of the triangle must not create a
        # shortcut worse than the direct edge
        result = eliminate(triangle_graph, degree_importance())
        first = result.order[0]
        others = [v for v in range(3) if v != first]
        lo = min(others, key=lambda v: result.rank[v])
        hi = max(others, key=lambda v: result.rank[v])
        direct = triangle_graph.weight(lo, hi)
        via = triangle_graph.weight(first, lo) + triangle_graph.weight(first, hi)
        assert result.bags[lo][hi] == min(direct, via)

    def test_phi_recorded(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        assert len(result.phi_at_elim) == small_grid.num_vertices
        # degree importance: first eliminated vertex has the min degree
        min_degree = min(small_grid.degree(v) for v in small_grid.vertices())
        assert result.phi_at_elim[0] == min_degree

    def test_deterministic(self, small_grid):
        a = eliminate(small_grid, degree_importance())
        b = eliminate(small_grid, degree_importance())
        assert a.order == b.order


class TestReplay:
    def test_full_replay_matches_final_state(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        adj, _ = replay_prefix(small_grid, result, small_grid.num_vertices)
        assert all(not nbrs for nbrs in adj)

    def test_prefix_replay_matches_bag_of_next(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        for k in (1, small_grid.num_vertices // 2, small_grid.num_vertices - 1):
            adj, mids = replay_prefix(small_grid, result, k)
            nxt = result.order[k]
            assert adj[nxt] == result.bags[nxt]
            assert mids[nxt] == result.middles[nxt]

    def test_replay_zero_is_original_graph(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        adj, mids = replay_prefix(small_grid, result, 0)
        for v in range(small_grid.num_vertices):
            assert adj[v] == dict(small_grid.adjacency(v))
            assert all(m is None for m in mids[v].values())

    def test_replay_reflects_current_weights(self, small_grid):
        # replay reconstructs from the *current* graph, so a base-weight
        # change made after construction shows up in the step-0 state
        result = eliminate(small_grid, degree_importance())
        u, v, w = next(iter(small_grid.edges()))
        graph = small_grid.copy()
        graph.set_weight(u, v, w + 100)
        adj, _ = replay_prefix(graph, result, 0)
        assert adj[u][v] == w + 100

    def test_relax_from_bag_applies_shortcuts(self):
        adj = [dict() for _ in range(3)]
        mids = [dict() for _ in range(3)]
        relax_from_bag(adj, mids, {1: 2.0, 2: 3.0}, middle=0, remaining={1, 2})
        assert adj[1][2] == 5.0
        assert mids[2][1] == 0

    def test_relax_from_bag_keeps_better_edge(self):
        adj = [dict(), {2: 1.0}, {1: 1.0}]
        mids = [dict(), {2: None}, {1: None}]
        relax_from_bag(adj, mids, {1: 2.0, 2: 3.0}, middle=0, remaining={1, 2})
        assert adj[1][2] == 1.0
        assert mids[1][2] is None

    def test_invalid_steps(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        with pytest.raises(IndexBuildError):
            replay_prefix(small_grid, result, -1)
        with pytest.raises(IndexBuildError):
            replay_prefix(small_grid, result, small_grid.num_vertices + 1)


class TestTreeDecomposition:
    def test_validates_def6(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        tree.validate(small_grid)  # must not raise

    def test_root_is_last_eliminated(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        assert tree.root == result.order[-1]
        assert tree.parent[tree.root] == -1
        assert tree.depth[tree.root] == 0

    def test_parent_is_lowest_rank_bag_member(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        for v in range(small_grid.num_vertices):
            if v == tree.root:
                continue
            expected = min(result.bags[v], key=lambda x: result.rank[x])
            assert tree.parent[v] == expected

    def test_depth_consistent_with_parent(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        for v in range(small_grid.num_vertices):
            if v != tree.root:
                assert tree.depth[v] == tree.depth[tree.parent[v]] + 1

    def test_ancestor_array(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        for v in (0, small_grid.num_vertices - 1):
            anc = tree.ancestor_array(v)
            assert anc[0] == tree.root
            assert anc[-1] == v
            assert len(anc) == tree.depth[v] + 1

    def test_position_array_sorted_and_includes_self(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        for v in range(small_grid.num_vertices):
            positions = tree.position_array(v)
            assert list(positions) == sorted(positions)
            assert tree.depth[v] in positions

    def test_subtree_preorder(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        whole = tree.subtree(tree.root)
        assert sorted(whole) == list(range(small_grid.num_vertices))

    def test_is_ancestor(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        v = next(x for x in range(small_grid.num_vertices) if tree.depth[x] >= 2)
        assert tree.is_ancestor(tree.root, v)
        assert tree.is_ancestor(v, v)
        assert not tree.is_ancestor(v, tree.root)

    def test_treewidth_height_positive(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        assert tree.treewidth >= 1
        assert tree.treeheight >= 1


class TestLCA:
    def test_matches_naive(self, medium_grid, rng):
        result = eliminate(medium_grid, degree_importance())
        tree = TreeDecomposition(result)
        lca = EulerTourLCA(tree)
        n = medium_grid.num_vertices
        for _ in range(200):
            u, v = map(int, rng.integers(0, n, 2))
            assert lca.query(u, v) == naive_lca(tree, u, v)

    def test_self_lca(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        lca = EulerTourLCA(tree)
        assert lca.query(3, 3) == 3

    def test_root_lca(self, small_grid):
        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        lca = EulerTourLCA(tree)
        assert lca.query(tree.root, 0) == tree.root

    def test_unknown_vertex(self, small_grid):
        from repro.errors import QueryError

        result = eliminate(small_grid, degree_importance())
        tree = TreeDecomposition(result)
        lca = EulerTourLCA(tree)
        with pytest.raises(QueryError):
            lca.query(0, 10_000)
