"""Unit tests for traffic incidents and bidirectional Dijkstra."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.baselines.bidirectional import (
    BidirectionalDijkstra,
    bidirectional_distance,
)
from repro.baselines.dijkstra import dijkstra_distance
from repro.core.fahl import build_fahl
from repro.core.maintenance import apply_flow_updates
from repro.errors import FlowError, QueryError
from repro.flow.events import (
    TrafficIncident,
    apply_incidents,
    incident_update_stream,
    random_incidents,
)
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork
from tests.strategies import connected_graphs


class TestTrafficIncident:
    def test_intensity_shape(self):
        incident = TrafficIncident(epicentre=0, start=2, duration=4,
                                   severity=5.0, radius=2)
        # full severity at epicentre, start slice
        assert incident.intensity(0, 0) == pytest.approx(5.0)
        # halves per hop
        assert incident.intensity(0, 1) == pytest.approx(3.0)
        assert incident.intensity(0, 2) == pytest.approx(2.0)
        # ramps down over time
        assert incident.intensity(2, 0) == pytest.approx(3.0)
        # outside window or radius: no effect
        assert incident.intensity(4, 0) == 1.0
        assert incident.intensity(0, 3) == 1.0

    def test_validation(self):
        with pytest.raises(FlowError):
            TrafficIncident(0, 0, duration=0)
        with pytest.raises(FlowError):
            TrafficIncident(0, 0, duration=2, severity=1.0)
        with pytest.raises(FlowError):
            TrafficIncident(0, 0, duration=2, radius=-1)


class TestApplyIncidents:
    def test_surge_localised(self, small_grid):
        series = generate_flow_series(small_grid, days=1, seed=0)
        incident = TrafficIncident(epicentre=0, start=5, duration=2,
                                   severity=4.0, radius=1)
        surged = apply_incidents(small_grid, series, [incident])
        # epicentre quadruples at the start slice
        assert surged.matrix[5, 0] == pytest.approx(series.matrix[5, 0] * 4.0)
        # untouched slices identical
        assert np.array_equal(surged.matrix[0], series.matrix[0])
        # vertices beyond the radius untouched
        far = max(
            small_grid.vertices(),
            key=lambda v: 0 if small_grid.has_edge(0, v) or v == 0 else v,
        )
        assert surged.matrix[5, far] == series.matrix[5, far]

    def test_unknown_epicentre(self, small_grid):
        series = generate_flow_series(small_grid, days=1, seed=0)
        incident = TrafficIncident(epicentre=10_000, start=0, duration=1)
        with pytest.raises(FlowError):
            apply_incidents(small_grid, series, [incident])

    def test_random_incidents_reproducible(self, small_grid):
        a = random_incidents(small_grid, 24, 5, seed=3)
        b = random_incidents(small_grid, 24, 5, seed=3)
        assert a == b
        assert len(a) == 5

    def test_update_stream_feeds_maintenance(self, small_grid):
        series = generate_flow_series(small_grid, days=1, seed=1)
        incidents = random_incidents(small_grid, 24, 3, seed=2)
        stream = incident_update_stream(small_grid, series, incidents)
        assert stream  # incidents touch at least one slice
        frn = FlowAwareRoadNetwork(small_grid, series)
        index = build_fahl(frn)
        first_slice = sorted(stream)[0]
        stats = apply_flow_updates(index, stream[first_slice], method="isu")
        assert len(stats) == len(stream[first_slice])
        index.tree.validate(small_grid)


class TestBidirectionalDijkstra:
    def test_matches_dijkstra(self, medium_grid, rng):
        n = medium_grid.num_vertices
        for _ in range(50):
            s, t = map(int, rng.integers(0, n, 2))
            dist, path = bidirectional_distance(medium_grid, s, t)
            assert dist == pytest.approx(dijkstra_distance(medium_grid, s, t))
            if path:
                weight = sum(
                    medium_grid.weight(a, b) for a, b in zip(path, path[1:])
                )
                assert weight == pytest.approx(dist)
                assert path[0] == s and path[-1] == t

    def test_self_query(self, medium_grid):
        assert bidirectional_distance(medium_grid, 3, 3) == (0.0, [3])

    def test_unreachable(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        dist, path = bidirectional_distance(graph, 0, 2)
        assert dist == float("inf")
        assert path == []

    def test_oracle_interface(self, small_grid):
        oracle = BidirectionalDijkstra(small_grid)
        assert oracle.distance(0, 5) == pytest.approx(
            dijkstra_distance(small_grid, 0, 5)
        )
        path = oracle.path(0, 5)
        assert path[0] == 0 and path[-1] == 5

    def test_unknown_vertices(self, small_grid):
        with pytest.raises(QueryError):
            bidirectional_distance(small_grid, 0, 10_000)


@given(graph=connected_graphs(max_vertices=14))
def test_property_bidirectional_equals_dijkstra(graph):
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        for t in range(0, n, max(1, n // 4)):
            dist, _ = bidirectional_distance(graph, s, t)
            assert dist == pytest.approx(dijkstra_distance(graph, s, t))
