"""Unit tests for index serialization and introspection statistics."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fahl import FAHLIndex, build_fahl
from repro.core.maintenance import apply_weight_update
from repro.core.stats import compare_indexes, index_statistics
from repro.errors import DatasetFormatError
from repro.labeling.h2h import H2HIndex, build_h2h
from repro.labeling.serialize import load_index, save_index


class TestSerialization:
    def test_h2h_round_trip(self, small_grid, tmp_path, rng):
        index = build_h2h(small_grid)
        path = tmp_path / "h2h.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, H2HIndex)
        n = small_grid.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            assert loaded.distance(s, t) == index.distance(s, t)
            assert loaded.path(s, t) == index.path(s, t)

    def test_fahl_round_trip(self, small_frn, tmp_path, rng):
        index = build_fahl(small_frn, beta=0.7)
        path = tmp_path / "fahl.npz"
        save_index(index, path)
        loaded = load_index(path)
        assert isinstance(loaded, FAHLIndex)
        assert loaded.beta == 0.7
        assert loaded.flow_anchors == index.flow_anchors
        assert np.array_equal(loaded.flows, index.flows)
        n = small_frn.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            assert loaded.distance(s, t) == index.distance(s, t)

    def test_coordinates_preserved(self, small_grid, tmp_path):
        index = build_h2h(small_grid)
        save_index(index, tmp_path / "g.npz")
        loaded = load_index(tmp_path / "g.npz")
        assert loaded.graph.coordinates == small_grid.coordinates

    def test_loaded_index_supports_maintenance(self, small_grid, tmp_path, rng):
        from repro.baselines.dijkstra import dijkstra_distances

        index = build_h2h(small_grid)
        save_index(index, tmp_path / "g.npz")
        loaded = load_index(tmp_path / "g.npz")
        u, v, w = next(iter(loaded.graph.edges()))
        apply_weight_update(loaded, u, v, w * 2)
        n = loaded.graph.num_vertices
        for _ in range(25):
            s, t = map(int, rng.integers(0, n, 2))
            ref = dijkstra_distances(loaded.graph, s)[t]
            assert loaded.distance(s, t) == pytest.approx(ref)

    def test_version_check(self, small_grid, tmp_path):
        index = build_h2h(small_grid)
        path = tmp_path / "g.npz"
        save_index(index, path)
        # corrupt the version field
        data = dict(np.load(path))
        data["meta"][0] = 99
        np.savez_compressed(path, **data)
        with pytest.raises(DatasetFormatError):
            load_index(path)

    def test_elimination_metadata_survives(self, small_frn, tmp_path):
        index = build_fahl(small_frn)
        save_index(index, tmp_path / "g.npz")
        loaded = load_index(tmp_path / "g.npz")
        assert loaded.elim.order == index.elim.order
        assert np.array_equal(loaded.elim.phi_at_elim, index.elim.phi_at_elim)
        for v in range(small_frn.num_vertices):
            assert loaded.elim.bags[v] == index.elim.bags[v]
            assert loaded.elim.middles[v] == index.elim.middles[v]


class TestIntegrity:
    def test_bit_flip_detected(self, small_grid, tmp_path):
        index = build_h2h(small_grid)
        path = tmp_path / "g.npz"
        save_index(index, path)
        data = dict(np.load(path))
        data["label_values"][3] += 1.0  # single corrupted label entry
        np.savez_compressed(path, **data)
        with pytest.raises(DatasetFormatError, match="integrity check"):
            load_index(path)

    def test_renamed_array_detected(self, small_grid, tmp_path):
        index = build_h2h(small_grid)
        path = tmp_path / "g.npz"
        save_index(index, path)
        data = dict(np.load(path))
        data["via_values_x"] = data.pop("via_values")
        np.savez_compressed(path, **data)
        with pytest.raises(DatasetFormatError, match="integrity check"):
            load_index(path)

    def test_missing_checksum_detected(self, small_grid, tmp_path):
        index = build_h2h(small_grid)
        path = tmp_path / "g.npz"
        save_index(index, path)
        data = dict(np.load(path))
        del data["checksum"]
        np.savez_compressed(path, **data)
        with pytest.raises(DatasetFormatError, match="missing its checksum"):
            load_index(path)

    def test_legacy_v1_archive_still_loads(self, small_grid, tmp_path, rng):
        index = build_h2h(small_grid)
        path = tmp_path / "g.npz"
        save_index(index, path)
        # strip the checksum and downgrade: pre-integrity archives load as-is
        data = dict(np.load(path))
        del data["checksum"]
        data["meta"][0] = 1
        np.savez_compressed(path, **data)
        loaded = load_index(path)
        n = small_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            assert loaded.distance(s, t) == index.distance(s, t)

    def test_index_checksum_tracks_content(self, small_frn):
        index = build_fahl(small_frn)
        first = index.checksum()
        assert first == index.checksum()  # deterministic
        u, v, w = next(iter(index.graph.edges()))
        apply_weight_update(index, u, v, w * 2)
        assert index.checksum() != first

    def test_round_trip_preserves_checksum(self, small_frn, tmp_path):
        index = build_fahl(small_frn)
        save_index(index, tmp_path / "g.npz")
        assert load_index(tmp_path / "g.npz").checksum() == index.checksum()


class TestStatistics:
    def test_basic_fields(self, small_grid):
        index = build_h2h(small_grid)
        stats = index_statistics(index)
        assert stats.num_vertices == small_grid.num_vertices
        assert stats.total_entries == index.index_size_entries()
        assert stats.treewidth == index.treewidth
        assert stats.max_label_length <= stats.treeheight + 1
        assert stats.mean_label_length > 0

    def test_as_rows(self, small_grid):
        stats = index_statistics(build_h2h(small_grid))
        rows = dict(stats.as_rows())
        assert rows["vertices"] == small_grid.num_vertices
        assert "treewidth" in rows

    def test_compare_indexes(self, small_frn):
        h2h = build_h2h(small_frn.graph)
        fahl = build_fahl(small_frn)
        ratios = compare_indexes(h2h, fahl)
        assert set(ratios) == {
            "entries_ratio", "bytes_ratio", "treewidth_ratio",
            "treeheight_ratio", "mean_label_ratio",
        }
        # same machinery, similar graph: ratios near 1
        assert 0.5 < ratios["entries_ratio"] < 2.0

    def test_compare_self_is_unity(self, small_grid):
        index = build_h2h(small_grid)
        ratios = compare_indexes(index, index)
        assert all(r == pytest.approx(1.0) for r in ratios.values())
