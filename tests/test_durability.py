"""Durability layer: WAL framing, checkpoint generations, recovery replay.

The crash *matrix* (a kill at every instrumented point) lives in
``test_crash_matrix.py`` under the ``crash`` marker; this file covers the
deterministic mechanics — torn-tail repair, fsync policy validation,
generation fallback, state restoration — plus the serializer integrity
fuzz (truncation / bit flips must never load silently).
"""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.core.fahl import FAHLIndex
from repro.durability import (
    Durability,
    RecoveryReport,
    WriteAheadLog,
    recover,
    scan_and_repair,
)
from repro.errors import IndexIntegrityError, RecoveryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.labeling.serialize import load_index, save_index
from repro.serving.engine import ResilientEngine
from repro.serving.updates import FlowUpdate, WeightUpdate
from repro.testing import FaultInjector


def make_frn(side: int = 5) -> FlowAwareRoadNetwork:
    graph = grid_network(side, side, seed=42)
    flow = generate_flow_series(graph, days=1, seed=3)
    return FlowAwareRoadNetwork(graph, flow)


def weight_updates(frn: FlowAwareRoadNetwork, count: int, factor: float = 1.5):
    edges = list(frn.graph.edges())[:count]
    return [
        WeightUpdate(u, v, float(w) * factor, timestamp=float(i))
        for i, (u, v, w) in enumerate(edges)
    ]


def all_pairs(engine, n: int) -> dict[tuple[int, int], float]:
    return {
        (s, t): engine.distance(s, t).value
        for s in range(n)
        for t in range(n)
    }


# ----------------------------------------------------------------------
# write-ahead log
# ----------------------------------------------------------------------
class TestWriteAheadLog:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="always")
        for i in range(5):
            seq = wal.append({"type": "update", "i": i})
            assert seq == i
        wal.close()
        records, torn = scan_and_repair(path)
        assert torn == 0
        assert [r["i"] for r in records] == list(range(5))
        assert [r["seq"] for r in records] == list(range(5))

    def test_reopen_continues_sequence(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path)
        wal.append({"type": "update"})
        wal.append({"type": "update"})
        wal.close()
        reopened = WriteAheadLog(path)
        assert len(reopened.recovered_records) == 2
        assert reopened.append({"type": "update"}) == 2
        reopened.close()

    def test_torn_tail_truncated(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="never")
        for i in range(3):
            wal.append({"type": "update", "i": i})
        wal.close()
        with open(path, "ab") as handle:
            handle.write(b"\x40\x00\x00\x00\x99\x99")  # header + no payload
        size_before = path.stat().st_size
        reopened = WriteAheadLog(path)
        assert len(reopened.recovered_records) == 3
        assert reopened.torn_bytes == 6
        assert path.stat().st_size == size_before - 6
        # appending after the repair produces a clean log again
        reopened.append({"type": "update", "i": 3})
        reopened.close()
        records, torn = scan_and_repair(path)
        assert torn == 0
        assert [r["i"] for r in records] == [0, 1, 2, 3]

    def test_bitflip_cuts_log_at_corruption(self, tmp_path):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync="never")
        offsets = []
        for i in range(4):
            offsets.append(path.stat().st_size if path.exists() else 0)
            wal.append({"type": "update", "i": i})
            wal._handle.flush()
            offsets[-1] = path.stat().st_size
        wal.close()
        # flip one payload byte inside the third record
        data = bytearray(path.read_bytes())
        data[offsets[1] + 12] ^= 0xFF
        path.write_bytes(bytes(data))
        records, torn = scan_and_repair(path)
        assert [r["i"] for r in records] == [0, 1]
        assert torn > 0

    def test_bad_magic_rejected(self, tmp_path):
        path = tmp_path / "wal.log"
        path.write_bytes(b"NOTAWAL!" + b"\x00" * 16)
        with pytest.raises(RecoveryError, match="bad magic"):
            scan_and_repair(path)

    def test_missing_file_created_empty(self, tmp_path):
        records, torn = scan_and_repair(tmp_path / "fresh.log")
        assert records == [] and torn == 0
        assert (tmp_path / "fresh.log").exists()

    def test_fsync_policy_validation(self, tmp_path):
        with pytest.raises(RecoveryError, match="fsync policy"):
            WriteAheadLog(tmp_path / "w.log", fsync="sometimes")
        with pytest.raises(RecoveryError, match="fsync_every"):
            WriteAheadLog(tmp_path / "w.log", fsync="interval", fsync_every=0)
        with pytest.raises(RecoveryError, match="fsync policy"):
            Durability(tmp_path, fsync="bogus")
        with pytest.raises(RecoveryError, match="auto_checkpoint"):
            Durability(tmp_path, auto_checkpoint=0)
        with pytest.raises(RecoveryError, match="retain"):
            Durability(tmp_path, retain=0)

    @pytest.mark.parametrize("policy", ["always", "interval", "never"])
    def test_every_fsync_policy_roundtrips(self, tmp_path, policy):
        path = tmp_path / "wal.log"
        wal = WriteAheadLog(path, fsync=policy, fsync_every=2)
        for i in range(5):
            wal.append({"type": "update", "i": i})
        wal.sync()
        wal.close()
        records, _ = scan_and_repair(path)
        assert len(records) == 5


# ----------------------------------------------------------------------
# checkpoint generations
# ----------------------------------------------------------------------
class TestCheckpoints:
    def test_checkpoint_writes_generation_and_rotates(self, tmp_path):
        frn = make_frn()
        durability = Durability(tmp_path)
        engine = ResilientEngine(frn, durability=durability)
        for update in weight_updates(frn, 3):
            assert engine.submit(update).applied
        assert durability.updates_since_checkpoint == 3
        generation = durability.checkpoint(engine)
        assert generation == 1
        directory = durability.checkpoint_dir(1)
        for name in ("index.npz", "state.json", "MANIFEST.json"):
            assert (directory / name).exists()
        assert durability.wal_path(1).exists()
        assert durability.updates_since_checkpoint == 0
        assert durability.list_checkpoints() == [1]
        durability.close()
        # a fresh manager discovers the rotated generation
        assert Durability(tmp_path).generation == 1

    def test_auto_checkpoint_cadence(self, tmp_path):
        frn = make_frn()
        durability = Durability(tmp_path, auto_checkpoint=2)
        engine = ResilientEngine(frn, durability=durability)
        updates = weight_updates(frn, 5)
        for update in updates[:2]:
            engine.submit(update)
        assert durability.generation == 1  # cadence hit at 2 updates
        for update in updates[2:4]:
            engine.submit(update)
        assert durability.generation == 2
        durability.close()

    def test_prune_keeps_retain_window(self, tmp_path):
        frn = make_frn()
        durability = Durability(tmp_path, retain=2)
        engine = ResilientEngine(frn, durability=durability)
        updates = weight_updates(frn, 4)
        for update in updates:
            engine.submit(update)
            durability.checkpoint(engine)
        assert durability.generation == 4
        assert durability.list_checkpoints() == [4, 3]
        assert not durability.checkpoint_dir(2).exists()
        assert not durability.wal_path(2).exists()
        durability.close()


# ----------------------------------------------------------------------
# recovery
# ----------------------------------------------------------------------
class TestRecover:
    @pytest.mark.parametrize("mode", ["inline", "overlay"])
    def test_recover_is_bit_identical(self, tmp_path, mode):
        frn = make_frn()
        n = frn.num_vertices
        durability = Durability(tmp_path)
        engine = ResilientEngine(
            frn, update_mode=mode, durability=durability, overlay_capacity=4
        )
        for update in weight_updates(frn, 6):
            assert engine.submit(update).applied
        engine.submit(FlowUpdate(0, 7.5, timestamp=99.0))
        engine.submit(WeightUpdate(0, 1, -4.0, timestamp=100.0))  # reject
        expected = all_pairs(engine, n)
        dlq_reasons = dict(engine.dead_letters.by_reason)
        metrics = dict(engine.metrics)
        durability.close()

        recovered = recover(tmp_path, make_frn())
        report = recovered.last_recovery
        assert isinstance(report, RecoveryReport)
        assert report.torn_bytes == 0
        assert all_pairs(recovered, n) == expected
        assert dict(recovered.dead_letters.by_reason) == dlq_reasons
        assert recovered.state == engine.state
        assert recovered.update_mode == mode
        for key, value in metrics.items():
            assert recovered.metrics[key] == value, key

    def test_recover_falls_back_to_previous_generation(self, tmp_path):
        frn = make_frn()
        n = frn.num_vertices
        durability = Durability(tmp_path, retain=2)
        engine = ResilientEngine(frn, durability=durability)
        updates = weight_updates(frn, 6)
        for update in updates[:2]:
            engine.submit(update)
        durability.checkpoint(engine)
        for update in updates[2:4]:
            engine.submit(update)
        durability.checkpoint(engine)
        for update in updates[4:]:
            engine.submit(update)
        expected = all_pairs(engine, n)
        durability.close()
        # corrupt the newest checkpoint's index payload
        newest = durability.checkpoint_dir(2) / "index.npz"
        blob = bytearray(newest.read_bytes())
        blob[len(blob) // 2] ^= 0xFF
        newest.write_bytes(bytes(blob))

        recovered = recover(tmp_path, make_frn())
        report = recovered.last_recovery
        assert report.generation == 1
        assert report.fallback_generations == 1
        assert not report.cold_rebuild
        # generation-1 tail AND generation-2 tail both replayed
        assert report.replayed_updates == 4
        assert all_pairs(recovered, n) == expected

    def test_recover_refuses_lossy_world(self, tmp_path):
        frn = make_frn()
        durability = Durability(tmp_path, retain=1)
        engine = ResilientEngine(frn, durability=durability)
        updates = weight_updates(frn, 4)
        for update in updates[:2]:
            engine.submit(update)
        durability.checkpoint(engine)
        for update in updates[2:]:
            engine.submit(update)
        durability.checkpoint(engine)  # retain=1 pruned generation-0 logs
        durability.close()
        manifest = durability.checkpoint_dir(2) / "MANIFEST.json"
        manifest.write_text("{definitely not json")
        with pytest.raises(RecoveryError, match="acknowledged updates"):
            recover(tmp_path, make_frn())

    def test_recover_rejects_missing_directory(self, tmp_path):
        with pytest.raises(RecoveryError, match="no durability directory"):
            recover(tmp_path / "typo", make_frn())

    def test_recover_cold_when_no_checkpoint_ever_written(self, tmp_path):
        frn = make_frn()
        n = frn.num_vertices
        durability = Durability(tmp_path)
        engine = ResilientEngine(frn, durability=durability)
        for update in weight_updates(frn, 4):
            engine.submit(update)
        expected = all_pairs(engine, n)
        durability.close()
        recovered = recover(tmp_path, make_frn())
        assert recovered.last_recovery.cold_rebuild
        assert all_pairs(recovered, n) == expected

    def test_deferred_and_dlq_survive_and_repair_resurfaces(self, tmp_path):
        frn = make_frn()
        n = frn.num_vertices
        durability = Durability(tmp_path)
        engine = ResilientEngine(frn, durability=durability, max_retries=0)
        for update in weight_updates(frn, 2):
            engine.submit(update)
        poisoned = FlowUpdate(3, 9.0, timestamp=50.0)
        with FaultInjector() as injector:
            injector.fail_at("flow:flow-set", times=-1)
            outcome = engine.submit(poisoned)
        assert outcome.deferred
        assert engine.degraded
        durability.close()

        recovered = recover(tmp_path, make_frn())
        # the deferred update and its quarantine entry survived the crash
        assert recovered.degraded
        assert [u for u in recovered._deferred] == [poisoned]
        assert recovered.dead_letters.by_reason["maintenance-failed"] == 1
        # repair() folds the recovered deferred update in and heals
        report = recovered.repair()
        assert report.ok
        assert not recovered.degraded
        assert recovered._deferred == []
        # the dead-letter record remains for operators after the repair
        assert recovered.dead_letters.by_reason["maintenance-failed"] == 1
        assert recovered.index.flows[3] == 9.0
        assert all_pairs(recovered, n)  # still serves

    def test_recovered_engine_keeps_logging(self, tmp_path):
        frn = make_frn()
        n = frn.num_vertices
        durability = Durability(tmp_path)
        engine = ResilientEngine(frn, durability=durability)
        updates = weight_updates(frn, 6)
        for update in updates[:3]:
            engine.submit(update)
        durability.close()
        middle = recover(tmp_path, make_frn())
        for update in updates[3:]:
            assert middle.submit(update).applied
        expected = all_pairs(middle, n)
        middle.durability.close()
        final = recover(tmp_path, make_frn())
        assert all_pairs(final, n) == expected


# ----------------------------------------------------------------------
# serializer integrity fuzz (IndexIntegrityError forensics)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def saved_index(tmp_path_factory):
    frn = make_frn(4)
    index = FAHLIndex.from_frn(frn)
    path = tmp_path_factory.mktemp("idx") / "index.npz"
    save_index(index, path)
    return path, index.checksum(), path.read_bytes()


class TestIndexIntegrity:
    def test_error_carries_forensics(self, tmp_path, saved_index):
        source, _, blob = saved_index
        target = tmp_path / "index.npz"
        target.write_bytes(blob[: len(blob) // 2])
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(target)
        error = excinfo.value
        assert error.path == target
        assert "integrity check" in str(error)

    def test_checksum_mismatch_reports_both_digests(
        self, tmp_path, saved_index
    ):
        import numpy as np

        source, _, _ = saved_index
        with np.load(source) as data:
            arrays = {key: data[key] for key in data.files}
        arrays["weights"] = arrays["weights"] + 1.0  # content no longer matches
        target = tmp_path / "tampered.npz"
        np.savez_compressed(target, **arrays)
        with pytest.raises(IndexIntegrityError) as excinfo:
            load_index(target)
        error = excinfo.value
        assert error.expected_checksum is not None
        assert error.actual_checksum is not None
        assert error.expected_checksum != error.actual_checksum
        assert error.version == 2

    @given(fraction=st.floats(min_value=0.02, max_value=0.98))
    def test_truncation_never_loads(self, saved_index, fraction, tmp_path_factory):
        _, _, blob = saved_index
        target = tmp_path_factory.mktemp("fuzz") / "t.npz"
        target.write_bytes(blob[: max(1, int(len(blob) * fraction))])
        with pytest.raises(IndexIntegrityError):
            load_index(target)

    @given(data=st.data())
    def test_bitflip_detected_or_harmless(self, saved_index, data, tmp_path_factory):
        _, checksum, blob = saved_index
        position = data.draw(st.integers(0, len(blob) - 1))
        flip = data.draw(st.integers(1, 255))
        corrupted = bytearray(blob)
        corrupted[position] ^= flip
        target = tmp_path_factory.mktemp("fuzz") / "b.npz"
        target.write_bytes(bytes(corrupted))
        try:
            loaded = load_index(target)
        except IndexIntegrityError:
            return  # detected — the desired outcome
        # the flip landed in bytes no reader consumes: content must be intact
        assert loaded.checksum() == checksum
