"""Tests for the fahl-repro command-line interface."""

from __future__ import annotations

import pytest

from repro.cli import build_parser, main
from repro.experiments import EXPERIMENTS


class TestParser:
    def test_list_command(self):
        args = build_parser().parse_args(["list"])
        assert args.command == "list"

    def test_run_defaults(self):
        args = build_parser().parse_args(["run", "fig6"])
        assert args.experiment == "fig6"
        assert args.scale == 0.35
        assert args.queries == 5

    def test_run_overrides(self):
        args = build_parser().parse_args(
            ["run", "fig8", "--scale", "0.1", "--datasets", "brn,nyc",
             "--alpha", "0.3", "--seed", "7"]
        )
        assert args.scale == 0.1
        assert args.datasets == "brn,nyc"
        assert args.alpha == 0.3
        assert args.seed == 7

    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])


class TestMain:
    def test_list_prints_every_experiment(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for key in EXPERIMENTS:
            assert key in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "fig99"]) == 2
        assert "unknown experiment" in capsys.readouterr().err

    def test_run_table3_micro(self, capsys):
        code = main(
            ["run", "table3", "--scale", "0.05", "--datasets", "BRN",
             "--queries", "1", "--groups", "1"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Table III" in out
        assert "BRN" in out

    def test_run_fig8_micro(self, capsys):
        code = main(
            ["run", "fig8", "--scale", "0.05", "--datasets", "BRN",
             "--queries", "1", "--groups", "2"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "GSU" in out and "ISU" in out
