"""Unit tests for the hierarchical labeling machinery and H2H."""

from __future__ import annotations

import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.errors import DisconnectedGraphError, IndexStateError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.labeling.h2h import build_h2h
from repro.labeling.hierarchy import build_hierarchy_index
from repro.treedec.ordering import degree_importance


def all_pairs_exact(index, graph, rng, samples=80):
    n = graph.num_vertices
    for _ in range(samples):
        s, t = map(int, rng.integers(0, n, 2))
        ref = dijkstra_distances(graph, s)[t]
        assert index.distance(s, t) == pytest.approx(ref)


class TestH2HDistances:
    def test_exact_on_grid(self, medium_grid, rng):
        index = build_h2h(medium_grid)
        all_pairs_exact(index, medium_grid, rng)

    def test_exact_on_paper_graph(self, paper_like_graph):
        index = build_h2h(paper_like_graph)
        for s in range(6):
            ref = dijkstra_distances(paper_like_graph, s)
            for t in range(6):
                assert index.distance(s, t) == pytest.approx(ref[t])

    def test_self_distance_zero(self, small_grid):
        index = build_h2h(small_grid)
        assert index.distance(5, 5) == 0.0

    def test_symmetry(self, small_grid, rng):
        index = build_h2h(small_grid)
        n = small_grid.num_vertices
        for _ in range(30):
            s, t = map(int, rng.integers(0, n, 2))
            assert index.distance(s, t) == index.distance(t, s)

    def test_unknown_vertex(self, small_grid):
        index = build_h2h(small_grid)
        with pytest.raises(QueryError):
            index.distance(0, 10_000)
        with pytest.raises(QueryError):
            index.path(-5, 0)

    def test_rejects_empty_graph(self):
        with pytest.raises(IndexStateError):
            build_h2h(RoadNetwork(0))

    def test_rejects_disconnected(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)])
        with pytest.raises(DisconnectedGraphError):
            build_h2h(graph)

    def test_two_vertex_graph(self):
        graph = RoadNetwork(2, edges=[(0, 1, 4.0)])
        index = build_h2h(graph)
        assert index.distance(0, 1) == 4.0
        assert index.path(0, 1) == [0, 1]


class TestPaths:
    def test_paths_are_shortest_walks(self, medium_grid, rng):
        index = build_h2h(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(60):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            assert path[0] == s and path[-1] == t
            weight = sum(
                medium_grid.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert weight == pytest.approx(index.distance(s, t))

    def test_paths_are_simple(self, medium_grid, rng):
        index = build_h2h(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            assert len(path) == len(set(path))

    def test_self_path(self, small_grid):
        index = build_h2h(small_grid)
        assert index.path(7, 7) == [7]


class TestStructure:
    def test_label_lengths_match_depth(self, small_grid):
        index = build_h2h(small_grid)
        for v in range(small_grid.num_vertices):
            assert len(index.labels[v]) == index.tree.depth[v] + 1
            assert index.labels[v][-1] == 0.0

    def test_label_entries_are_exact_ancestor_distances(self, small_grid):
        index = build_h2h(small_grid)
        for v in range(0, small_grid.num_vertices, 7):
            anc = index.anc[v]
            ref = dijkstra_distances(small_grid, v)
            for j, a in enumerate(anc):
                assert index.labels[v][j] == pytest.approx(ref[a])

    def test_index_size_accounting(self, small_grid):
        index = build_h2h(small_grid)
        expected = sum(len(lbl) for lbl in index.labels) + sum(
            len(p) for p in index.positions
        )
        assert index.index_size_entries() == expected
        assert index.index_size_bytes() > 0

    def test_repr_mentions_stats(self, small_grid):
        index = build_h2h(small_grid)
        text = repr(index)
        assert "treewidth" in text and "entries" in text

    def test_inverse_bags(self, small_grid):
        index = build_h2h(small_grid)
        inverse = index.inverse_bags()
        for c in range(small_grid.num_vertices):
            for x in index.elim.bags[c]:
                assert c in inverse[x]

    def test_build_hierarchy_generic_ordering(self, small_grid, rng):
        index = build_hierarchy_index(small_grid, degree_importance())
        all_pairs_exact(index, small_grid, rng, samples=30)


class TestRefreshLabels:
    def test_full_refresh_counts_everything(self, small_grid):
        index = build_h2h(small_grid)
        assert index.refresh_labels() == small_grid.num_vertices

    def test_noop_partial_refresh(self, small_grid):
        index = build_h2h(small_grid)
        # refreshing with an arbitrary seed but unchanged weights: labels
        # recompute to identical values, so nothing counts as affected
        assert index.refresh_labels(seeds={0}) == 0

    def test_force_subtree_recomputes(self, small_grid):
        index = build_h2h(small_grid)
        root = index.tree.root
        affected = index.refresh_labels(force_subtree_roots={root})
        assert affected == small_grid.num_vertices
