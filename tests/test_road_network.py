"""Unit tests for the RoadNetwork graph substrate."""

from __future__ import annotations

import pytest

from repro.errors import (
    EdgeNotFoundError,
    GraphError,
    VertexNotFoundError,
)
from repro.graph.road_network import RoadNetwork


class TestConstruction:
    def test_empty_graph(self):
        graph = RoadNetwork(0)
        assert graph.num_vertices == 0
        assert graph.num_edges == 0
        assert list(graph.edges()) == []

    def test_vertices_range(self):
        graph = RoadNetwork(5)
        assert list(graph.vertices()) == [0, 1, 2, 3, 4]
        assert len(graph) == 5

    def test_negative_vertex_count_rejected(self):
        with pytest.raises(GraphError):
            RoadNetwork(-1)

    def test_edges_from_constructor(self):
        graph = RoadNetwork(3, edges=[(0, 1, 2.0), (1, 2, 3.0)])
        assert graph.num_edges == 2
        assert graph.weight(0, 1) == 2.0

    def test_coordinates_stored(self):
        graph = RoadNetwork(2, coordinates={0: (1.0, 2.0)})
        assert graph.coordinates[0] == (1.0, 2.0)
        assert 1 not in graph.coordinates


class TestEdges:
    def test_add_edge_symmetric(self):
        graph = RoadNetwork(3)
        graph.add_edge(0, 2, 5.0)
        assert graph.weight(0, 2) == 5.0
        assert graph.weight(2, 0) == 5.0
        assert graph.has_edge(2, 0)

    def test_parallel_edges_keep_minimum(self):
        graph = RoadNetwork(2)
        graph.add_edge(0, 1, 5.0)
        graph.add_edge(0, 1, 3.0)
        graph.add_edge(0, 1, 9.0)
        assert graph.weight(0, 1) == 3.0
        assert graph.num_edges == 1

    def test_self_loop_rejected(self):
        graph = RoadNetwork(2)
        with pytest.raises(GraphError):
            graph.add_edge(1, 1, 1.0)

    def test_nonpositive_weight_rejected(self):
        graph = RoadNetwork(2)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, 0.0)
        with pytest.raises(GraphError):
            graph.add_edge(0, 1, -2.0)

    def test_unknown_vertex_rejected(self):
        graph = RoadNetwork(2)
        with pytest.raises(VertexNotFoundError):
            graph.add_edge(0, 7, 1.0)

    def test_missing_edge_weight_raises(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            graph.weight(0, 2)

    def test_set_weight_overwrites(self):
        graph = RoadNetwork(2, edges=[(0, 1, 4.0)])
        graph.set_weight(0, 1, 9.0)
        assert graph.weight(1, 0) == 9.0

    def test_set_weight_requires_edge(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        with pytest.raises(EdgeNotFoundError):
            graph.set_weight(0, 2, 2.0)

    def test_set_weight_rejects_nonpositive(self):
        graph = RoadNetwork(2, edges=[(0, 1, 1.0)])
        with pytest.raises(GraphError):
            graph.set_weight(0, 1, 0.0)

    def test_remove_edge(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0), (1, 2, 2.0)])
        graph.remove_edge(0, 1)
        assert not graph.has_edge(0, 1)
        assert graph.num_edges == 1
        with pytest.raises(EdgeNotFoundError):
            graph.remove_edge(0, 1)

    def test_edges_iterates_once_each(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0), (1, 2, 2.0), (0, 2, 3.0)])
        edges = sorted(graph.edges())
        assert edges == [(0, 1, 1.0), (0, 2, 3.0), (1, 2, 2.0)]


class TestAccessors:
    def test_degree(self, triangle_graph):
        assert all(triangle_graph.degree(v) == 2 for v in range(3))

    def test_degree_unknown_vertex(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            triangle_graph.degree(10)

    def test_neighbors(self, triangle_graph):
        assert sorted(triangle_graph.neighbors(0)) == [1, 2]

    def test_neighbor_items(self, triangle_graph):
        items = dict(triangle_graph.neighbor_items(1))
        assert items == {0: 1.0, 2: 2.0}

    def test_contains(self, triangle_graph):
        assert 0 in triangle_graph
        assert 3 not in triangle_graph
        assert -1 not in triangle_graph

    def test_total_weight(self, triangle_graph):
        assert triangle_graph.total_weight() == 7.0


class TestCopySubgraph:
    def test_copy_is_independent(self, triangle_graph):
        clone = triangle_graph.copy()
        clone.set_weight(0, 1, 99.0)
        assert triangle_graph.weight(0, 1) == 1.0
        assert clone.weight(0, 1) == 99.0

    def test_copy_preserves_coordinates(self):
        graph = RoadNetwork(2, edges=[(0, 1, 1.0)], coordinates={0: (0.0, 0.0)})
        assert graph.copy().coordinates == {0: (0.0, 0.0)}

    def test_subgraph_relabels(self, triangle_graph):
        sub, relabel = triangle_graph.subgraph([1, 2])
        assert sub.num_vertices == 2
        assert sub.num_edges == 1
        assert sub.weight(relabel[1], relabel[2]) == 2.0

    def test_subgraph_drops_external_edges(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        sub, _ = graph.subgraph([0, 1, 3])
        assert sub.num_edges == 1  # only (0, 1) survives

    def test_repr(self, triangle_graph):
        assert "n=3" in repr(triangle_graph)
        assert "m=3" in repr(triangle_graph)
