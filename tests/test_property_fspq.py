"""Property-based tests on FSPQ semantics and pruning invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.bounds import lemma4_bounds
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from tests.strategies import connected_graphs


def make_frn_with_flows(graph, flows):
    matrix = np.asarray([flows], dtype=float)
    return FlowAwareRoadNetwork(graph, FlowSeries(matrix))


@given(graph=connected_graphs(max_vertices=9), data=st.data())
def test_yen_candidates_match_exhaustive_optimum(graph, data):
    n = graph.num_vertices
    flows = [float(data.draw(st.integers(0, 50))) for _ in range(n)]
    frn = make_frn_with_flows(graph, flows)
    index = FAHLIndex(graph, np.asarray(flows), beta=0.5)
    alpha = data.draw(st.sampled_from([0.2, 0.5, 0.8]))
    eta = data.draw(st.sampled_from([1.5, 2.0]))
    engine = FlowAwareEngine(frn, oracle=index, alpha=alpha, eta_u=eta,
                             max_candidates=4096)
    reference = FlowAwareEngine(frn, alpha=alpha, eta_u=eta, exhaustive=True)
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    if s == t:
        return
    query = FSPQuery(s, t, 0)
    got = engine.query(query)
    expected = reference.query(query)
    if not got.truncated:
        assert got.score == pytest.approx(expected.score)
        assert got.path == expected.path


@given(graph=connected_graphs(max_vertices=9), data=st.data())
def test_adaptive_pruning_is_lossless(graph, data):
    n = graph.num_vertices
    flows = [float(data.draw(st.integers(0, 50))) for _ in range(n)]
    frn = make_frn_with_flows(graph, flows)
    index = FAHLIndex(graph, np.asarray(flows), beta=0.5)
    alpha = data.draw(st.sampled_from([0.2, 0.5, 0.8]))
    plain = FlowAwareEngine(frn, oracle=index, alpha=alpha, eta_u=2.0,
                            pruning="none", max_candidates=256)
    adaptive = FlowAwareEngine(frn, oracle=index, alpha=alpha, eta_u=2.0,
                               pruning="adaptive", max_candidates=256)
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    if s == t:
        return
    query = FSPQuery(s, t, 0)
    assert adaptive.query(query).score == pytest.approx(plain.query(query).score)


@given(graph=connected_graphs(max_vertices=9), data=st.data())
def test_lemma4_exact_when_no_bound_fires(graph, data):
    """When neither the flow bounds nor the score-dominance stop fired,
    FAHL-W saw the full candidate set and must match the unpruned engine."""
    n = graph.num_vertices
    flows = [float(data.draw(st.integers(0, 50))) for _ in range(n)]
    frn = make_frn_with_flows(graph, flows)
    index = FAHLIndex(graph, np.asarray(flows), beta=0.5)
    alpha, eta = 0.3, 3.0
    plain = FlowAwareEngine(frn, oracle=index, alpha=alpha, eta_u=eta,
                            pruning="none", max_candidates=256)
    pruned = FlowAwareEngine(frn, oracle=index, alpha=alpha, eta_u=eta,
                             pruning="lemma4", max_candidates=256)
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    if s == t:
        return
    query = FSPQuery(s, t, 0)
    expected = plain.query(query)
    got = pruned.query(query)
    assert got.num_candidates <= expected.num_candidates
    if got.num_pruned == 0 and not got.early_stopped:
        assert got.score == pytest.approx(expected.score)
        assert got.path == expected.path
    # lemma-4 bounds over the *enumerated* set never pruned the candidate
    # the engine itself returned
    bounds = lemma4_bounds(
        min(expected.flow, got.flow), max(expected.flow, got.flow), alpha, eta
    )
    del bounds  # interval construction must at least be valid


@given(graph=connected_graphs(max_vertices=9), data=st.data())
def test_alpha_extremes_degenerate_correctly(graph, data):
    n = graph.num_vertices
    flows = [float(data.draw(st.integers(0, 50))) for _ in range(n)]
    frn = make_frn_with_flows(graph, flows)
    index = FAHLIndex(graph, np.asarray(flows), beta=0.5)
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    if s == t:
        return
    query = FSPQuery(s, t, 0)
    # alpha -> 1: the spatial shortest path wins
    spatial = FlowAwareEngine(frn, oracle=index, alpha=0.999, eta_u=2.0,
                              max_candidates=256).query(query)
    assert spatial.distance == pytest.approx(spatial.shortest_distance)
    # alpha -> 0: the minimum-flow candidate wins
    flow_first = FlowAwareEngine(frn, oracle=index, alpha=0.001, eta_u=2.0,
                                 max_candidates=256).query(query)
    assert flow_first.flow <= spatial.flow + 1e-9 or flow_first.truncated


@given(graph=connected_graphs(max_vertices=9), data=st.data())
def test_result_respects_mcpdis(graph, data):
    n = graph.num_vertices
    flows = [float(data.draw(st.integers(0, 50))) for _ in range(n)]
    frn = make_frn_with_flows(graph, flows)
    index = FAHLIndex(graph, np.asarray(flows), beta=0.5)
    eta = data.draw(st.sampled_from([1.2, 2.0, 3.0]))
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=eta,
                             max_candidates=128)
    s = data.draw(st.integers(0, n - 1))
    t = data.draw(st.integers(0, n - 1))
    if s == t:
        return
    result = engine.query(FSPQuery(s, t, 0))
    assert result.distance <= eta * result.shortest_distance + 1e-9
    assert 0.0 <= result.score <= 1.0 + 1e-9
