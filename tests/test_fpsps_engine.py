"""Unit tests for the FPSPS flow-aware query engine (Alg. 5)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork


@pytest.fixture()
def diamond_frn() -> FlowAwareRoadNetwork:
    """Two disjoint s-t routes: short/high-flow vs long/low-flow.

    0 -(1)- 1 -(1)- 3   (distance 2, heavy flow on vertex 1)
    0 -(2)- 2 -(2)- 3   (distance 4, light flow on vertex 2)
    """
    graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0), (0, 2, 2.0), (2, 3, 2.0)])
    flow = FlowSeries(np.array([[5.0, 100.0, 1.0, 5.0]]))
    return FlowAwareRoadNetwork(graph, flow)


class TestEngineBasics:
    def test_alpha_balances_distance_and_flow(self, diamond_frn):
        index = build_fahl(diamond_frn)
        high_alpha = FlowAwareEngine(diamond_frn, oracle=index, alpha=0.9, eta_u=3.0)
        low_alpha = FlowAwareEngine(diamond_frn, oracle=index, alpha=0.1, eta_u=3.0)
        query = FSPQuery(0, 3, 0)
        assert high_alpha.query(query).path == (0, 1, 3)  # distance wins
        assert low_alpha.query(query).path == (0, 2, 3)   # flow wins

    def test_result_fields(self, diamond_frn):
        index = build_fahl(diamond_frn)
        engine = FlowAwareEngine(diamond_frn, oracle=index, alpha=0.5, eta_u=3.0)
        result = engine.query(FSPQuery(0, 3, 0))
        assert result.shortest_distance == 2.0
        assert result.num_candidates == 2
        assert not result.truncated
        assert result.distance == pytest.approx(
            sum(
                diamond_frn.graph.weight(a, b)
                for a, b in zip(result.path, result.path[1:])
            )
        )
        flow_vector = diamond_frn.predicted_at(0)
        assert result.flow == pytest.approx(
            float(sum(flow_vector[v] for v in result.path))
        )

    def test_same_vertex_query(self, diamond_frn):
        engine = FlowAwareEngine(diamond_frn)
        result = engine.query(FSPQuery(2, 2, 0))
        assert result.path == (2,)
        assert result.distance == 0.0
        assert result.score == 0.0

    def test_eta_restricts_candidates(self, diamond_frn):
        index = build_fahl(diamond_frn)
        # eta=1.5 -> MCPDis = 3 < 4: the long route is excluded
        engine = FlowAwareEngine(
            diamond_frn, oracle=index, alpha=0.1, eta_u=1.5
        )
        result = engine.query(FSPQuery(0, 3, 0))
        assert result.path == (0, 1, 3)
        assert result.num_candidates == 1

    def test_index_free_engine(self, diamond_frn):
        engine = FlowAwareEngine(diamond_frn, oracle=None, alpha=0.5, eta_u=3.0)
        result = engine.query(FSPQuery(0, 3, 0))
        assert result.shortest_distance == 2.0

    def test_validates_parameters(self, diamond_frn):
        with pytest.raises(QueryError):
            FlowAwareEngine(diamond_frn, alpha=0.0)
        with pytest.raises(QueryError):
            FlowAwareEngine(diamond_frn, eta_u=1.0)
        with pytest.raises(QueryError):
            FlowAwareEngine(diamond_frn, pruning="magic")

    def test_validates_query(self, diamond_frn):
        engine = FlowAwareEngine(diamond_frn)
        with pytest.raises(QueryError):
            engine.query(FSPQuery(0, 99, 0))
        with pytest.raises(QueryError):
            engine.query(FSPQuery(0, 1, 5))

    def test_flow_cache_invalidation(self, diamond_frn):
        engine = FlowAwareEngine(diamond_frn)
        engine.query(FSPQuery(0, 3, 0))
        assert engine._flow_cache
        engine.invalidate()
        assert not engine._flow_cache

    def test_invalidate_flow_cache_alias_removed(self, diamond_frn):
        engine = FlowAwareEngine(diamond_frn)
        assert not hasattr(engine, "invalidate_flow_cache")


class TestPruningModes:
    def test_adaptive_equals_none(self, small_frn, rng):
        index = build_fahl(small_frn)
        base = FlowAwareEngine(small_frn, oracle=index, pruning="none",
                               max_candidates=32)
        adaptive = FlowAwareEngine(small_frn, oracle=index, pruning="adaptive",
                                   max_candidates=32)
        n = small_frn.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            query = FSPQuery(s, t, int(rng.integers(small_frn.num_timesteps)))
            expected = base.query(query)
            got = adaptive.query(query)
            assert got.score == pytest.approx(expected.score)
            assert got.path == expected.path

    def test_lemma4_agrees_when_nothing_fired(self, small_frn, rng):
        alpha, eta = 0.5, 3.0
        index = build_fahl(small_frn)
        base = FlowAwareEngine(small_frn, oracle=index, alpha=alpha, eta_u=eta,
                               pruning="none", max_candidates=32)
        lemma = FlowAwareEngine(small_frn, oracle=index, alpha=alpha, eta_u=eta,
                                pruning="lemma4", max_candidates=32)
        n = small_frn.num_vertices
        checked = 0
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            query = FSPQuery(s, t, 0)
            expected = base.query(query)
            got = lemma.query(query)
            if got.num_pruned == 0 and not got.early_stopped:
                # no bound fired: FAHL-W saw the same candidates and must
                # return the same optimum
                assert got.score == pytest.approx(expected.score)
                assert got.path == expected.path
                checked += 1
        assert checked > 0

    def test_lemma4_saves_enumeration_work(self, small_frn, rng):
        """The pruned engine must enumerate no more candidates than the
        unpruned one and fire at least one bound over a workload."""
        index = build_fahl(small_frn)
        base = FlowAwareEngine(small_frn, oracle=index, alpha=0.2, eta_u=3.0,
                               pruning="none", max_candidates=32)
        lemma = FlowAwareEngine(small_frn, oracle=index, alpha=0.2, eta_u=3.0,
                                pruning="lemma4", max_candidates=32)
        n = small_frn.num_vertices
        fired = 0
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            query = FSPQuery(s, t, 0)
            expected = base.query(query)
            got = lemma.query(query)
            assert got.num_candidates <= expected.num_candidates
            fired += got.num_pruned + int(got.early_stopped)
        assert fired > 0

    def test_lemma4_result_optimal_over_enumerated_prefix(self, small_frn, rng):
        """Even with early stopping, the returned path has the minimal score
        among the candidates the engine enumerated."""
        index = build_fahl(small_frn)
        engine = FlowAwareEngine(small_frn, oracle=index, alpha=0.5, eta_u=3.0,
                                 pruning="lemma4", max_candidates=32)
        n = small_frn.num_vertices
        for _ in range(15):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            result = engine.query(FSPQuery(s, t, 0))
            assert 0.0 <= result.score <= 1.0 + 1e-9
            assert result.distance <= 3.0 * result.shortest_distance + 1e-9

    def test_all_pruned_falls_back_to_shortest(self, diamond_frn):
        # alpha=0.9, eta=3: lemma-4 upper bound is below every candidate's
        # flow except possibly the minimum; the engine must still answer
        index = build_fahl(diamond_frn)
        engine = FlowAwareEngine(diamond_frn, oracle=index, alpha=0.9,
                                 eta_u=1.2, pruning="lemma4")
        result = engine.query(FSPQuery(0, 3, 0))
        assert result.path  # never empty


class TestCapacityScoring:
    def test_capacity_changes_result(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0),
                                      (0, 2, 1.0), (2, 3, 1.0)])
        # vertex 1 heavy flow but many lanes; vertex 2 lighter flow, 1 lane
        flow = FlowSeries(np.array([[1.0, 60.0, 30.0, 1.0]]))
        lanes = np.array([1, 10, 1, 1])
        frn = FlowAwareRoadNetwork(graph, flow, lanes=lanes)
        raw = FlowAwareEngine(frn, alpha=0.2, eta_u=3.0)
        blended = FlowAwareEngine(frn, alpha=0.2, eta_u=3.0,
                                  use_capacity=True, w_c=0.1)
        query = FSPQuery(0, 3, 0)
        assert raw.query(query).path == (0, 2, 3)       # raw flow: avoid v1
        assert blended.query(query).path == (0, 1, 3)   # per-lane: v1 is fine
