"""Crash matrix: kill the process at every durability boundary, recover.

Each case runs a scripted update stream against a durable engine with a
:class:`~repro.testing.CrashInjector` armed at ONE instrumented point
(mid WAL append, before the fsync, between checkpoint files, at the
rotation), then recovers the directory exactly as the "kill -9" left it
and checks:

* every acknowledged update survives — the recovered all-pairs distances
  equal a reference engine fed the acked prefix, or that prefix plus the
  single in-flight update (which a crash may legitimately land on either
  side of the ack boundary, never anywhere else);
* quarantined dead letters survive with their reasons;
* the recovered engine audits clean and keeps serving.

``recover:mid-replay`` gets its own case (crash *during* recovery, then
recover again).  Marked ``crash`` so CI can run the matrix in a separate
timeout-bounded job.
"""

from __future__ import annotations

import pytest

from repro.durability import CRASH_POINTS, Durability, SimulatedCrash, recover
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.serving.engine import ResilientEngine
from repro.serving.updates import FlowUpdate, WeightUpdate
from repro.testing import CrashInjector

pytestmark = pytest.mark.crash

MODES = ("inline", "overlay")
MATRIX_POINTS = tuple(p for p in CRASH_POINTS if p != "recover:mid-replay")


def make_frn() -> FlowAwareRoadNetwork:
    graph = grid_network(5, 5, seed=42)
    flow = generate_flow_series(graph, days=1, seed=3)
    return FlowAwareRoadNetwork(graph, flow)


def scripted_updates(frn: FlowAwareRoadNetwork):
    """A stream long enough to cross every instrumented boundary.

    With ``auto_checkpoint=3`` the checkpoint points are crossed mid-stream
    and with ``overlay_capacity=4`` the overlay engine also consolidates;
    one invalid weight exercises the quarantine path.
    """
    edges = list(frn.graph.edges())[:8]
    updates: list[FlowUpdate | WeightUpdate] = [
        WeightUpdate(u, v, float(w) * 1.5, timestamp=float(i))
        for i, (u, v, w) in enumerate(edges)
    ]
    updates.insert(5, WeightUpdate(0, 1, -3.0, timestamp=50.0))  # reject
    updates.insert(7, FlowUpdate(2, 6.5, timestamp=51.0))
    return updates


def build_engine(root, frn, mode) -> ResilientEngine:
    durability = Durability(root, fsync="always", auto_checkpoint=3)
    return ResilientEngine(
        frn, update_mode=mode, durability=durability, overlay_capacity=4
    )


def reference_distances(updates, mode, n) -> dict[tuple[int, int], float]:
    engine = ResilientEngine(
        make_frn(), update_mode=mode, overlay_capacity=4
    )
    for update in updates:
        engine.submit(update)
    return {
        (s, t): engine.distance(s, t).value
        for s in range(n)
        for t in range(n)
    }


def is_reject(update) -> bool:
    return isinstance(update, WeightUpdate) and update.value <= 0


@pytest.mark.parametrize("mode", MODES)
@pytest.mark.parametrize("point", MATRIX_POINTS)
def test_kill_and_recover(tmp_path, point, mode):
    frn = make_frn()
    n = frn.num_vertices
    updates = scripted_updates(frn)

    engine = build_engine(tmp_path, frn, mode)
    acked: list = []
    inflight = None
    with CrashInjector() as injector:
        injector.crash_at(point)
        try:
            for update in updates:
                inflight = update
                engine.submit(update)
                acked.append(update)
                inflight = None
        except SimulatedCrash:
            pass
    assert point in injector.trace, f"script never crossed {point}"
    assert inflight is not None, f"crash at {point} never fired"
    # the injector is disarmed; closing stands in for the OS reclaiming
    # the file handle — it cannot unwrite anything a real kill would keep
    engine.durability.close()

    recovered = recover(tmp_path, make_frn())
    report = recovered.last_recovery

    got = {
        (s, t): recovered.distance(s, t).value
        for s in range(n)
        for t in range(n)
    }
    # the in-flight update was either durably acked or never happened —
    # recovery must land on one of those two worlds, bit-for-bit
    without = reference_distances(acked, mode, n)
    with_inflight = reference_distances(acked + [inflight], mode, n)
    assert got == without or got == with_inflight, (
        f"recovered distances match neither world (point={point}, "
        f"mode={mode}, report={report})"
    )

    rejected = sum(1 for u in acked if is_reject(u))
    survivors = recovered.dead_letters.by_reason.get("non-positive-weight", 0)
    assert survivors in (
        rejected,
        rejected + (1 if is_reject(inflight) else 0),
    )

    assert not recovered.degraded
    assert recovered.audit().ok
    # the recovered engine stays durable: it keeps accepting updates
    follow_up = WeightUpdate(
        *next(iter(frn.graph.edges()))[:2], 99.0, timestamp=1000.0
    )
    assert recovered.submit(follow_up).applied
    recovered.durability.close()


@pytest.mark.parametrize("mode", MODES)
def test_crash_during_recovery_then_recover_again(tmp_path, mode):
    frn = make_frn()
    n = frn.num_vertices
    updates = scripted_updates(frn)

    # no auto-checkpoint and a roomy overlay: the whole stream stays in
    # the WAL tail, so recovery has plenty of records to die in the middle of
    durability = Durability(tmp_path, fsync="always")
    engine = ResilientEngine(
        frn, update_mode=mode, durability=durability, overlay_capacity=64
    )
    for update in updates:
        engine.submit(update)
    expected = {
        (s, t): engine.distance(s, t).value
        for s in range(n)
        for t in range(n)
    }
    engine.durability.close()

    # first recovery attempt dies mid WAL replay ...
    with CrashInjector() as injector:
        injector.crash_at("recover:mid-replay", after=2)
        with pytest.raises(SimulatedCrash):
            recover(tmp_path, make_frn())
    assert injector.trace.count("recover:mid-replay") == 3

    # ... and the second attempt still lands on the exact pre-crash state
    recovered = recover(tmp_path, make_frn())
    got = {
        (s, t): recovered.distance(s, t).value
        for s in range(n)
        for t in range(n)
    }
    assert got == expected
    assert recovered.dead_letters.by_reason.get(
        "non-positive-weight", 0
    ) == 1
    assert recovered.audit().ok
    recovered.durability.close()
