"""Unit tests for the baseline methods: Dijkstra, A*, CH, G-tree."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.baselines.astar import AStarOracle
from repro.baselines.ch import CHIndex, build_ch
from repro.baselines.dijkstra import (
    DijkstraOracle,
    dijkstra_distance,
    dijkstra_distances,
    dijkstra_path,
)
from repro.baselines.gtree import TDGTree, build_gtree
from repro.errors import (
    DisconnectedGraphError,
    EdgeNotFoundError,
    GraphError,
    IndexStateError,
    QueryError,
)
from repro.graph.road_network import RoadNetwork


class TestDijkstra:
    def test_known_distances(self, triangle_graph):
        dist = dijkstra_distances(triangle_graph, 0)
        assert list(dist) == [0.0, 1.0, 3.0]

    def test_early_exit_targets(self, medium_grid):
        full = dijkstra_distances(medium_grid, 0)
        partial = dijkstra_distances(medium_grid, 0, targets={5})
        assert partial[5] == full[5]

    def test_cutoff(self, medium_grid):
        dist = dijkstra_distances(medium_grid, 0, cutoff=150.0)
        assert np.isinf(dist).any()
        finite = dist[np.isfinite(dist)]
        assert (finite <= 150.0).all()

    def test_point_to_point(self, medium_grid, rng):
        n = medium_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            assert dijkstra_distance(medium_grid, s, t) == pytest.approx(
                dijkstra_distances(medium_grid, s)[t]
            )

    def test_unreachable_is_inf(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        assert dijkstra_distance(graph, 0, 2) == math.inf
        assert dijkstra_path(graph, 0, 2) == []

    def test_path_weight_matches(self, medium_grid, rng):
        n = medium_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            path = dijkstra_path(medium_grid, s, t)
            weight = sum(
                medium_grid.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert weight == pytest.approx(dijkstra_distance(medium_grid, s, t))

    def test_unknown_vertices(self, triangle_graph):
        with pytest.raises(QueryError):
            dijkstra_distances(triangle_graph, 9)
        with pytest.raises(QueryError):
            dijkstra_distance(triangle_graph, 0, 9)

    def test_oracle_interface(self, triangle_graph):
        oracle = DijkstraOracle(triangle_graph)
        assert oracle.distance(0, 2) == 3.0
        assert oracle.path(0, 2) == [0, 1, 2]


class TestAStar:
    def test_matches_dijkstra(self, medium_grid, rng):
        oracle = AStarOracle(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(40):
            s, t = map(int, rng.integers(0, n, 2))
            assert oracle.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_path_valid(self, medium_grid, rng):
        oracle = AStarOracle(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(15):
            s, t = map(int, rng.integers(0, n, 2))
            path = oracle.path(s, t)
            assert path[0] == s and path[-1] == t

    def test_without_coordinates_falls_back(self, triangle_graph):
        oracle = AStarOracle(triangle_graph)  # no coordinates
        assert oracle.distance(0, 2) == 3.0

    def test_self_query(self, medium_grid):
        oracle = AStarOracle(medium_grid)
        assert oracle.distance(4, 4) == 0.0
        assert oracle.path(4, 4) == [4]


class TestCH:
    def test_matches_dijkstra(self, medium_grid, rng):
        index = build_ch(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(60):
            s, t = map(int, rng.integers(0, n, 2))
            assert index.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_paths_valid(self, medium_grid, rng):
        index = build_ch(medium_grid)
        n = medium_grid.num_vertices
        for _ in range(30):
            s, t = map(int, rng.integers(0, n, 2))
            path = index.path(s, t)
            assert path[0] == s and path[-1] == t
            weight = sum(
                medium_grid.weight(a, b) for a, b in zip(path, path[1:])
            )
            assert weight == pytest.approx(index.distance(s, t))

    def test_order_is_permutation(self, small_grid):
        index = build_ch(small_grid)
        assert sorted(index.order) == list(range(small_grid.num_vertices))

    def test_self_query(self, small_grid):
        index = build_ch(small_grid)
        assert index.distance(3, 3) == 0.0
        assert index.path(3, 3) == [3]

    def test_rejects_empty_and_disconnected(self):
        with pytest.raises(IndexStateError):
            CHIndex(RoadNetwork(0))
        with pytest.raises(DisconnectedGraphError):
            CHIndex(RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)]))

    def test_unknown_vertices(self, small_grid):
        index = build_ch(small_grid)
        with pytest.raises(QueryError):
            index.distance(0, 9_999)

    def test_stats(self, small_grid):
        index = build_ch(small_grid)
        assert index.index_size_entries() >= small_grid.num_edges
        assert "shortcuts" in repr(index)

    def test_witness_limits_affect_shortcuts_not_results(self, small_grid, rng):
        strict = CHIndex(small_grid.copy(), hop_limit=1, settle_limit=2)
        loose = CHIndex(small_grid.copy(), hop_limit=16, settle_limit=500)
        assert strict.num_shortcuts >= loose.num_shortcuts
        n = small_grid.num_vertices
        for _ in range(20):
            s, t = map(int, rng.integers(0, n, 2))
            assert strict.distance(s, t) == pytest.approx(loose.distance(s, t))


class TestGTree:
    def test_matches_dijkstra(self, medium_grid, rng):
        index = build_gtree(medium_grid, leaf_size=16)
        n = medium_grid.num_vertices
        for _ in range(60):
            s, t = map(int, rng.integers(0, n, 2))
            assert index.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_same_leaf_queries(self, medium_grid):
        index = build_gtree(medium_grid, leaf_size=16)
        leaf_of = index._leaf_of
        pairs = 0
        for s in range(medium_grid.num_vertices):
            for t in range(s + 1, medium_grid.num_vertices):
                if leaf_of[s] == leaf_of[t]:
                    assert index.distance(s, t) == pytest.approx(
                        dijkstra_distance(medium_grid, s, t)
                    )
                    pairs += 1
                    if pairs >= 30:
                        return
        assert pairs > 0

    def test_leaf_size_respected(self, medium_grid):
        index = build_gtree(medium_grid, leaf_size=10)
        assert all(len(leaf.vertices) <= 10 for leaf in index._leaves)

    def test_update_inside_leaf(self, medium_grid, rng):
        index = build_gtree(medium_grid, leaf_size=16)
        # find an intra-leaf edge
        edge = next(
            (u, v, w)
            for u, v, w in medium_grid.edges()
            if index._leaf_of[u] == index._leaf_of[v]
        )
        u, v, w = edge
        records = index.update_edge_weight(u, v, w * 2)
        assert records > 1
        n = medium_grid.num_vertices
        for _ in range(30):
            s, t = map(int, rng.integers(0, n, 2))
            assert index.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_update_crossing_edge(self, medium_grid, rng):
        index = build_gtree(medium_grid, leaf_size=16)
        edge = next(
            (u, v, w)
            for u, v, w in medium_grid.edges()
            if index._leaf_of[u] != index._leaf_of[v]
        )
        u, v, w = edge
        records = index.update_edge_weight(u, v, max(1.0, w / 2))
        assert records == 1
        for _ in range(30):
            s, t = map(int, rng.integers(0, medium_grid.num_vertices, 2))
            assert index.distance(s, t) == pytest.approx(
                dijkstra_distance(medium_grid, s, t)
            )

    def test_update_validation(self, small_grid):
        index = build_gtree(small_grid, leaf_size=8)
        u, v, _ = next(iter(small_grid.edges()))
        with pytest.raises(GraphError):
            index.update_edge_weight(u, v, 0.0)
        non_edge = next(
            (a, b)
            for a in range(small_grid.num_vertices)
            for b in range(a + 1, small_grid.num_vertices)
            if not small_grid.has_edge(a, b)
        )
        with pytest.raises(EdgeNotFoundError):
            index.update_edge_weight(*non_edge, 5.0)

    def test_rejects_empty_and_disconnected(self):
        with pytest.raises(IndexStateError):
            TDGTree(RoadNetwork(0))
        with pytest.raises(DisconnectedGraphError):
            TDGTree(RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)]))

    def test_stats(self, small_grid):
        index = build_gtree(small_grid, leaf_size=8)
        assert index.num_leaves >= 2
        assert index.index_size_entries() > 0
