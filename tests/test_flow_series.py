"""Unit tests for FlowSeries, synthetic flow and predictors."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flow.predictor import SeasonalNaivePredictor, TrainablePredictor
from repro.flow.series import FlowSeries
from repro.flow.synthetic import diurnal_profile, generate_flow_series


class TestFlowSeries:
    def test_shapes(self):
        series = FlowSeries(np.ones((4, 3)))
        assert series.num_timesteps == 4
        assert series.num_vertices == 3
        assert series.total_records() == 12

    def test_rejects_bad_shapes(self):
        with pytest.raises(FlowError):
            FlowSeries(np.ones(5))
        with pytest.raises(FlowError):
            FlowSeries(np.ones((2, 2, 2)))

    def test_rejects_negative_and_nonfinite(self):
        with pytest.raises(FlowError):
            FlowSeries(np.array([[-1.0, 2.0]]))
        with pytest.raises(FlowError):
            FlowSeries(np.array([[np.nan, 1.0]]))

    def test_rejects_bad_interval(self):
        with pytest.raises(FlowError):
            FlowSeries(np.ones((2, 2)), interval_minutes=0)

    def test_at_and_flow(self):
        series = FlowSeries(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert list(series.at(1)) == [3.0, 4.0]
        assert series.flow(0, 1) == 3.0

    def test_timestep_out_of_range(self):
        series = FlowSeries(np.ones((2, 2)))
        with pytest.raises(FlowError):
            series.at(5)

    def test_vertex_series(self):
        series = FlowSeries(np.array([[1.0, 2.0], [3.0, 4.0]]))
        assert list(series.vertex_series(1)) == [2.0, 4.0]
        with pytest.raises(FlowError):
            series.vertex_series(9)

    def test_with_updates_copies(self):
        series = FlowSeries(np.ones((2, 2)))
        updated = series.with_updates(0, {1: 7.0})
        assert updated.flow(1, 0) == 7.0
        assert series.flow(1, 0) == 1.0

    def test_with_updates_rejects_negative(self):
        series = FlowSeries(np.ones((2, 2)))
        with pytest.raises(FlowError):
            series.with_updates(0, {0: -1.0})

    def test_resample_coarser(self):
        series = FlowSeries(np.arange(8, dtype=float).reshape(4, 2),
                            interval_minutes=30)
        coarse = series.resampled(60)
        assert coarse.num_timesteps == 2
        assert list(coarse.at(1)) == [4.0, 5.0]

    def test_resample_finer(self):
        series = FlowSeries(np.arange(4, dtype=float).reshape(2, 2),
                            interval_minutes=60)
        fine = series.resampled(30)
        assert fine.num_timesteps == 4
        assert list(fine.at(1)) == [0.0, 1.0]

    def test_resample_incompatible(self):
        series = FlowSeries(np.ones((2, 2)), interval_minutes=60)
        with pytest.raises(FlowError):
            series.resampled(45)


class TestSyntheticFlow:
    def test_diurnal_profile_mean_one(self):
        profile = diurnal_profile(24)
        assert profile.shape == (24,)
        assert abs(profile.mean() - 1.0) < 1e-9

    def test_diurnal_has_two_peaks(self):
        profile = diurnal_profile(48)
        morning = profile[14:20].max()  # 7:00 - 10:00
        midday = profile[24:28].min()   # noon trough
        evening = profile[34:40].max()  # 17:00 - 20:00
        assert morning > midday
        assert evening > midday

    def test_generate_shapes(self, small_grid):
        series = generate_flow_series(small_grid, days=3, interval_minutes=60, seed=0)
        assert series.num_timesteps == 72
        assert series.num_vertices == small_grid.num_vertices

    def test_generate_deterministic(self, small_grid):
        a = generate_flow_series(small_grid, days=1, seed=5)
        b = generate_flow_series(small_grid, days=1, seed=5)
        assert np.array_equal(a.matrix, b.matrix)

    def test_generate_nonnegative(self, small_grid):
        series = generate_flow_series(small_grid, days=1, seed=1)
        assert (series.matrix >= 0).all()

    def test_mean_flow_respected(self, small_grid):
        series = generate_flow_series(small_grid, days=2, mean_flow=50.0, seed=2)
        assert 30.0 < series.matrix.mean() < 75.0

    def test_invalid_args(self, small_grid):
        with pytest.raises(FlowError):
            generate_flow_series(small_grid, days=0)
        with pytest.raises(FlowError):
            generate_flow_series(small_grid, interval_minutes=7)
        with pytest.raises(FlowError):
            generate_flow_series(small_grid, mean_flow=0)
        with pytest.raises(FlowError):
            generate_flow_series(small_grid, noise=-1)


class TestPredictors:
    def test_seasonal_naive_shifts_one_day(self, small_grid):
        truth = generate_flow_series(small_grid, days=2, seed=0)
        predicted = SeasonalNaivePredictor().fit(truth).predict()
        day = 24
        assert np.array_equal(predicted.matrix[day:], truth.matrix[:-day])

    def test_seasonal_requires_fit(self):
        with pytest.raises(FlowError):
            SeasonalNaivePredictor().predict()

    def test_trainable_accuracy_monotone_in_epochs(self, small_grid):
        truth = generate_flow_series(small_grid, days=2, seed=0)
        accuracies = [
            TrainablePredictor(epochs=e, seed=1).fit(truth).accuracy(truth)
            for e in (0, 50, 100, 200)
        ]
        assert accuracies == sorted(accuracies)
        assert accuracies[-1] > 0.9

    def test_trainable_error_level_decays(self):
        low = TrainablePredictor(epochs=200).error_level
        high = TrainablePredictor(epochs=0).error_level
        assert low < high

    def test_trainable_deterministic(self, small_grid):
        truth = generate_flow_series(small_grid, days=1, seed=0)
        a = TrainablePredictor(epochs=50, seed=3).fit(truth).predict()
        b = TrainablePredictor(epochs=50, seed=3).fit(truth).predict()
        assert np.array_equal(a.matrix, b.matrix)

    def test_trainable_validates_args(self):
        with pytest.raises(FlowError):
            TrainablePredictor(epochs=-1)
        with pytest.raises(FlowError):
            TrainablePredictor(decay=0.0)
        with pytest.raises(FlowError):
            TrainablePredictor(decay=1.5)

    def test_accuracy_shape_mismatch(self, small_grid):
        truth = generate_flow_series(small_grid, days=1, seed=0)
        other = generate_flow_series(small_grid, days=2, seed=0)
        predictor = TrainablePredictor(epochs=10).fit(truth)
        with pytest.raises(FlowError):
            predictor.accuracy(other)
