"""Unit tests for the graph bisection used by G-tree."""

from __future__ import annotations

import pytest

from repro.baselines.partition import bisect, recursive_bisection
from repro.errors import PartitionError
from repro.graph.road_network import RoadNetwork


class TestBisect:
    def test_partitions_all_vertices(self, medium_grid):
        vertices = list(medium_grid.vertices())
        left, right = bisect(medium_grid, vertices)
        assert sorted(left + right) == vertices
        assert left and right

    def test_balance_respected(self, medium_grid):
        vertices = list(medium_grid.vertices())
        left, right = bisect(medium_grid, vertices, balance=0.6)
        cap = 0.6 * len(vertices)
        assert len(left) <= cap + 1
        assert len(right) <= cap + 1

    def test_cut_is_reasonable_on_grid(self, medium_grid):
        # a 10x10-ish grid has a bisection cut around its side length; the
        # heuristic must stay well below a random cut (~half the edges)
        vertices = list(medium_grid.vertices())
        left, right = bisect(medium_grid, vertices)
        left_set = set(left)
        cut = sum(
            1 for u, v, _ in medium_grid.edges() if (u in left_set) != (v in left_set)
        )
        assert cut < medium_grid.num_edges / 4

    def test_path_graph(self):
        graph = RoadNetwork(10, edges=[(i, i + 1, 1.0) for i in range(9)])
        left, right = bisect(graph, list(range(10)))
        left_set = set(left)
        cut = sum(1 for i in range(9) if (i in left_set) != ((i + 1) in left_set))
        assert cut == 1

    def test_validation(self, small_grid):
        with pytest.raises(PartitionError):
            bisect(small_grid, [0])
        with pytest.raises(PartitionError):
            bisect(small_grid, list(small_grid.vertices()), balance=0.4)


class TestRecursiveBisection:
    def test_leaves_cover_graph(self, medium_grid):
        leaves = recursive_bisection(medium_grid, leaf_size=12)
        flattened = sorted(v for leaf in leaves for v in leaf)
        assert flattened == list(medium_grid.vertices())

    def test_leaf_size_bound(self, medium_grid):
        leaves = recursive_bisection(medium_grid, leaf_size=12)
        assert all(len(leaf) <= 12 for leaf in leaves)

    def test_single_leaf_when_big_enough(self, small_grid):
        leaves = recursive_bisection(small_grid, leaf_size=10_000)
        assert len(leaves) == 1

    def test_invalid_leaf_size(self, small_grid):
        with pytest.raises(PartitionError):
            recursive_bisection(small_grid, leaf_size=0)
