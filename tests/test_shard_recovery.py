"""Per-shard degraded repair and crash recovery on the sharded gateway.

One shard failing must never take the gateway down: while a shard is
degraded its queries fall back to direct Dijkstra (correct, slower) and
the *other* shards keep answering from their indexes; ``repair(shard=)``
heals exactly the asked-for shard; ``recover_shard`` restarts a crashed
shard from its own checkpoint + WAL (or rebuilds it cold when the
durability directory is beyond saving) while the rest of the fleet keeps
serving bit-identical answers.
"""

from __future__ import annotations

import pytest

from repro import ShardedGateway
from repro.durability import RecoveryReport
from repro.errors import QueryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.serving import FlowUpdate, WeightUpdate
from repro.testing import FaultInjector


def make_frn(seed: int = 3) -> FlowAwareRoadNetwork:
    graph = grid_network(8, 8, seed=seed)
    return FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=4))


@pytest.fixture()
def durable_gateway(tmp_path):
    gateway = ShardedGateway(
        make_frn(), num_shards=4, max_retries=0, backoff=0.0,
        durability_dir=tmp_path, durability_kwargs={"fsync": "never"},
    )
    yield gateway
    for engine in gateway.shards:
        if engine.durability is not None:
            engine.durability.close()


def sample_pairs(n, count=80):
    return [((5 * i) % n, (11 * i + 3) % n) for i in range(count)]


def snapshot(gateway):
    n = gateway.frn.num_vertices
    return {
        (u, v): gateway.distance(u, v).value for u, v in sample_pairs(n)
    }


def degrade_shard(gateway, shard: int) -> FlowUpdate:
    """Poison one maintenance pass so exactly ``shard`` goes degraded."""
    vertex = gateway._to_global[shard][0]
    update = FlowUpdate(vertex, 9.0, timestamp=500.0)
    with FaultInjector() as injector:
        injector.fail_at("flow:flow-set", times=-1)
        outcome = gateway.submit(update)
    assert outcome.deferred
    assert gateway.degraded_shards == (shard,)
    return update


class TestShardRepair:
    def test_repair_single_shard_heals_only_it(self, durable_gateway):
        gateway = durable_gateway
        degrade_shard(gateway, 2)
        verdicts = gateway.repair(shard=2)
        assert verdicts == {2: True}
        assert gateway.degraded_shards == ()
        # the deferred flow update was folded in by the shard's rebuild
        local = gateway._to_local[2][gateway._to_global[2][0]]
        assert gateway.shards[2].index.flows[local] == 9.0

    def test_degraded_shard_falls_back_while_others_serve(
        self, durable_gateway
    ):
        gateway = durable_gateway
        healthy = snapshot(gateway)
        degrade_shard(gateway, 1)
        inside = gateway._to_global[1][:2]
        answer = gateway.distance(inside[0], inside[1])
        assert answer.degraded and answer.source == "fallback"
        # a query that never touches the degraded shard stays indexed
        other = gateway._to_global[3][:2]
        answer = gateway.distance(other[0], other[1])
        assert not answer.degraded
        assert answer.source in ("shard", "boundary")
        # fallback or not, every answer stays exact
        assert snapshot(gateway) == healthy

    def test_repair_out_of_range_shard_rejected(self, durable_gateway):
        with pytest.raises(QueryError):
            durable_gateway.recover_shard(99)


class TestShardRecovery:
    def test_recover_shard_replays_wal_bit_identically(self, durable_gateway):
        gateway = durable_gateway
        edges = list(gateway.frn.graph.edges())[:12]
        for i, (u, v, w) in enumerate(edges):
            assert gateway.submit(
                WeightUpdate(u, v, float(w) * 1.7, timestamp=float(i))
            ).applied
        before = snapshot(gateway)
        shard_metrics = dict(gateway.shards[1].metrics)

        report = gateway.recover_shard(1)
        assert isinstance(report, RecoveryReport)
        assert gateway.metrics["shard_recoveries"] == 1
        assert gateway.metrics.get("shard_rebuilds", 0) == 0
        assert snapshot(gateway) == before
        # lifetime counters survive the restart
        recovered = gateway.shards[1].metrics
        for key, value in shard_metrics.items():
            assert recovered[key] == value, key

    def test_others_keep_serving_during_recovery(self, durable_gateway):
        gateway = durable_gateway
        before = snapshot(gateway)
        probes = [
            (u, v)
            for u, v in sample_pairs(gateway.frn.num_vertices)
            if gateway.plan.shard(u) != 0 and gateway.plan.shard(v) != 0
        ]
        gateway.recover_shard(0)
        for u, v in probes[:20]:
            answer = gateway.distance(u, v)
            assert answer.source != "fallback"
            assert answer.value == before[(u, v)]

    def test_recovered_shard_keeps_accepting_updates(self, durable_gateway):
        gateway = durable_gateway
        gateway.recover_shard(2)
        # an intra-shard edge of the recovered shard
        members = set(gateway._to_global[2])
        u, v, w = next(
            (u, v, w)
            for u, v, w in gateway.frn.graph.edges()
            if u in members and v in members
        )
        assert gateway.submit(
            WeightUpdate(u, v, float(w) * 2.0, timestamp=600.0)
        ).applied
        # and the change is durable: a second restart replays it
        before = snapshot(gateway)
        gateway.recover_shard(2)
        assert snapshot(gateway) == before

    def test_hopeless_directory_falls_back_to_cold_rebuild(
        self, durable_gateway
    ):
        gateway = durable_gateway
        before = snapshot(gateway)
        # fabricate debris recovery cannot use: a checkpoint directory
        # whose manifest is garbage, with the WAL history gone
        root = gateway.shard_durability_dir(3)
        gateway.shards[3].durability.close()
        for wal in root.glob("wal-*.log"):
            wal.unlink()
        fake = root / "ckpt-00000005"
        fake.mkdir()
        (fake / "MANIFEST.json").write_text("{broken")

        report = gateway.recover_shard(3)
        assert report is None
        assert gateway.metrics["shard_rebuilds"] == 1
        assert snapshot(gateway) == before
        # the rebuild checkpointed immediately: the next restart recovers
        # from that fresh generation instead of rebuilding again
        second = gateway.recover_shard(3)
        assert isinstance(second, RecoveryReport)
        assert not second.cold_rebuild
        assert gateway.metrics["shard_rebuilds"] == 1
        assert snapshot(gateway) == before

    def test_gateway_without_durability_dir_rejects_recover(self):
        gateway = ShardedGateway(
            make_frn(), num_shards=2, max_retries=0, backoff=0.0
        )
        with pytest.raises(QueryError, match="durability_dir"):
            gateway.recover_shard(0)

    def test_each_shard_gets_its_own_directory(self, durable_gateway):
        gateway = durable_gateway
        dirs = {
            gateway.shard_durability_dir(k)
            for k in range(gateway.plan.num_shards)
        }
        assert len(dirs) == gateway.plan.num_shards
        for k in range(gateway.plan.num_shards):
            assert gateway.shards[k].durability is not None
            assert gateway.shard_durability_dir(k).exists()
