"""Unit tests for the deterministic fault-injection harness itself."""

from __future__ import annotations

import math

import pytest

from repro.core import maintenance as maintenance_module
from repro.core.maintenance import FAULT_POINTS
from repro.testing import (
    FaultInjector,
    FaultSpec,
    WorkerFault,
    corrupt_updates,
    list_fault_points,
)


class TestFaultSpec:
    def test_fires_on_first_crossing_by_default(self):
        spec = FaultSpec(point="flow:flow-set")
        assert spec.should_fire()
        assert not spec.should_fire()  # times=1 exhausted

    def test_after_skips_crossings(self):
        spec = FaultSpec(point="flow:flow-set", after=2)
        assert [spec.should_fire() for _ in range(4)] == [
            False, False, True, False,
        ]

    def test_times_minus_one_fires_forever(self):
        spec = FaultSpec(point="flow:flow-set", times=-1)
        assert all(spec.should_fire() for _ in range(10))


class TestFaultInjector:
    def test_lists_all_points(self):
        assert list_fault_points() == FAULT_POINTS
        assert len(FAULT_POINTS) == 18

    def test_rejects_unknown_point(self):
        with pytest.raises(ValueError, match="unknown fault point"):
            FaultInjector().fail_at("isu:typo")

    def test_hook_uninstalled_on_exit(self):
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set")
            assert maintenance_module._fault_hook is not None
        assert maintenance_module._fault_hook is None

    def test_hook_uninstalled_even_after_error(self):
        with pytest.raises(RuntimeError):
            with FaultInjector() as inj:
                inj.fail_at("flow:flow-set")
                inj._hook("flow:flow-set")
        assert maintenance_module._fault_hook is None

    def test_trace_records_crossings(self):
        with FaultInjector() as inj:
            inj._hook("flow:flow-set")
            inj._hook("isu:window-eliminated")
        assert inj.trace == ["flow:flow-set", "isu:window-eliminated"]


class TestCorruptUpdates:
    def test_deterministic_for_a_seed(self):
        clean = {v: float(v * 10 + 1) for v in range(20)}
        first = corrupt_updates(clean, num_vertices=20, rate=0.5, seed=7)
        second = corrupt_updates(clean, num_vertices=20, rate=0.5, seed=7)
        assert first[1] == second[1]
        assert list(first[0]) == list(second[0])
        assert all(
            a == b or (math.isnan(a) and math.isnan(b))
            for a, b in zip(first[0].values(), second[0].values())
        )

    def test_rate_zero_is_identity(self):
        clean = {v: float(v) for v in range(10)}
        dirty, corrupted = corrupt_updates(clean, num_vertices=10, rate=0.0)
        assert dirty == clean
        assert corrupted == {}

    def test_rate_one_corrupts_everything(self):
        clean = {v: float(v + 1) for v in range(30)}
        dirty, corrupted = corrupt_updates(clean, num_vertices=30, rate=1.0)
        assert set(corrupted) == set(clean)
        # every corruption kind is exercised at this size
        assert set(corrupted.values()) == {
            "nan", "inf", "negative", "unknown-vertex",
        }

    def test_corruptions_are_invalid(self):
        clean = {v: float(v + 1) for v in range(30)}
        dirty, corrupted = corrupt_updates(clean, num_vertices=30, rate=1.0)
        for vertex, kind in corrupted.items():
            if kind == "unknown-vertex":
                assert 30 + vertex in dirty
            elif kind == "nan":
                assert math.isnan(dirty[vertex])
            elif kind == "inf":
                assert math.isinf(dirty[vertex])
            else:
                assert dirty[vertex] < 0

    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            corrupt_updates({0: 1.0}, num_vertices=1, rate=1.5)


class TestWorkerFault:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError):
            WorkerFault(position=0, kind="explode")

    def test_noop_when_position_not_in_chunk(self):
        fault = WorkerFault(position=3, kind="kill")
        fault([0, 1, 2])  # must not exit this process

    def test_hang_sleeps(self, monkeypatch):
        naps: list[float] = []
        monkeypatch.setattr("repro.testing.faults.time.sleep", naps.append)
        fault = WorkerFault(position=1, kind="hang", hang_seconds=12.0)
        fault([0, 1])
        assert naps == [12.0]
