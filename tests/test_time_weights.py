"""Unit tests for the time-dependent travel-time substrate."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.errors import GraphError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.graph.time_weights import (
    TravelTimeFunction,
    td_dijkstra,
    ttf_from_flow_profile,
)


class TestTravelTimeFunction:
    def test_constant(self):
        ttf = TravelTimeFunction.constant(7.0)
        assert ttf(0.0) == 7.0
        assert ttf(1000.0) == 7.0
        assert ttf.min_travel_time() == ttf.max_travel_time() == 7.0

    def test_interpolation_and_wraparound(self):
        ttf = TravelTimeFunction(
            np.array([0.0, 720.0]), np.array([10.0, 20.0]), period=1440.0
        )
        assert ttf(0.0) == 10.0
        assert ttf(360.0) == pytest.approx(15.0)
        assert ttf(720.0) == 20.0
        # wraps: value at period equals value at 0
        assert ttf(1440.0) == pytest.approx(10.0)
        assert ttf(1080.0) == pytest.approx(15.0)

    def test_fifo_enforced(self):
        # slope (10 - 100) / 60 = -1.5 < -1: overtaking possible -> reject
        with pytest.raises(GraphError):
            TravelTimeFunction(
                np.array([0.0, 60.0]), np.array([100.0, 10.0]), period=1440.0
            )

    def test_fifo_property_holds(self):
        ttf = TravelTimeFunction(
            np.array([0.0, 300.0, 600.0]),
            np.array([30.0, 90.0, 40.0]),
            period=1440.0,
        )
        times = np.linspace(0, 1440, 289)
        arrivals = [ttf.arrival(t) for t in times]
        assert all(b >= a - 1e-9 for a, b in zip(arrivals, arrivals[1:]))

    def test_validation(self):
        with pytest.raises(GraphError):
            TravelTimeFunction(np.array([5.0]), np.array([1.0]))  # not at 0
        with pytest.raises(GraphError):
            TravelTimeFunction(np.array([0.0, 0.0]), np.array([1.0, 1.0]))
        with pytest.raises(GraphError):
            TravelTimeFunction(np.array([0.0]), np.array([0.0]))  # zero time
        with pytest.raises(GraphError):
            TravelTimeFunction(np.array([0.0]), np.array([1.0]), period=0)


class TestTTFFromFlow:
    def test_bpr_shape(self):
        profile = np.array([10.0, 100.0, 10.0])
        ttf = ttf_from_flow_profile(30.0, profile, capacity=50.0,
                                    interval_minutes=480.0)
        # congested slice is slower than free-flow slices
        assert ttf(480.0) > ttf(0.0)
        assert ttf.min_travel_time() >= 30.0

    def test_fifo_clamping(self):
        # an abrupt drop after a huge peak would violate FIFO without the
        # clamp; construction must succeed regardless
        profile = np.array([1.0, 500.0, 1.0, 1.0])
        ttf = ttf_from_flow_profile(10.0, profile, capacity=20.0,
                                    interval_minutes=30.0)
        assert ttf.max_travel_time() > 10.0

    def test_validation(self):
        with pytest.raises(GraphError):
            ttf_from_flow_profile(0.0, np.array([1.0]), capacity=1.0)
        with pytest.raises(GraphError):
            ttf_from_flow_profile(1.0, np.array([]), capacity=1.0)


class TestTDDijkstra:
    @pytest.fixture()
    def diamond(self) -> RoadNetwork:
        return RoadNetwork(4, edges=[(0, 1, 10.0), (1, 3, 10.0),
                                     (0, 2, 15.0), (2, 3, 15.0)])

    def test_static_matches_dijkstra(self, diamond):
        arrival, path = td_dijkstra(diamond, {}, 0, 3, departure=0.0)
        assert arrival == pytest.approx(dijkstra_distance(diamond, 0, 3))
        assert path == [0, 1, 3]

    def test_congestion_shifts_route(self, diamond):
        # the fast route becomes slow during the rush window
        rush = TravelTimeFunction(
            np.array([0.0, 60.0, 120.0]),
            np.array([10.0, 60.0, 10.0]),
            period=1440.0,
        )
        functions = {(0, 1): rush, (1, 3): rush}
        # off-peak: the 0-1-3 route wins
        off_peak, path_off = td_dijkstra(diamond, functions, 0, 3, 1000.0)
        assert path_off == [0, 1, 3]
        # at the peak the detour wins
        peak, path_peak = td_dijkstra(diamond, functions, 0, 3, 60.0)
        assert path_peak == [0, 2, 3]
        assert peak == pytest.approx(60.0 + 30.0)

    def test_departure_offset_carries_through(self, diamond):
        arrival, _ = td_dijkstra(diamond, {}, 0, 3, departure=500.0)
        assert arrival == pytest.approx(500.0 + 20.0)

    def test_unreachable(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        arrival, path = td_dijkstra(graph, {}, 0, 2, 0.0)
        assert arrival == float("inf")
        assert path == []

    def test_unknown_vertices(self, diamond):
        with pytest.raises(QueryError):
            td_dijkstra(diamond, {}, 0, 99, 0.0)

    def test_fifo_monotone_arrivals(self, diamond, rng):
        rush = TravelTimeFunction(
            np.array([0.0, 400.0, 800.0]),
            np.array([12.0, 40.0, 12.0]),
            period=1440.0,
        )
        functions = {(0, 1): rush}
        arrivals = [
            td_dijkstra(diamond, functions, 0, 3, t)[0]
            for t in np.linspace(0, 1440, 37)
        ]
        assert all(b >= a - 1e-9 for a, b in zip(arrivals, arrivals[1:]))
