"""Stateful property testing: random interleaved operations on a FAHL index.

A hypothesis rule machine drives the index through arbitrary sequences of
weight updates (ILU), flow updates (ISU/GSU) and queries, comparing every
distance against a from-scratch Dijkstra on the mutated graph and
re-validating the tree decomposition along the way.  This is the strongest
consistency check in the suite — it found the stale-replay bug during
development.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import (
    RuleBasedStateMachine,
    initialize,
    invariant,
    precondition,
    rule,
)

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.fahl import FAHLIndex
from repro.core.maintenance import (
    FAULT_POINTS,
    apply_flow_update,
    apply_weight_update,
)
from repro.errors import MaintenanceError
from repro.graph.road_network import RoadNetwork
from repro.testing import FaultInjector


def _fixed_graph() -> RoadNetwork:
    """A small fixed graph: rich enough for interesting eliminations."""
    edges = [
        (0, 1, 4.0), (0, 2, 7.0), (1, 2, 2.0), (1, 3, 5.0),
        (2, 4, 3.0), (3, 4, 6.0), (3, 5, 1.0), (4, 6, 8.0),
        (5, 6, 2.0), (5, 7, 9.0), (6, 7, 3.0), (0, 7, 20.0),
        (2, 5, 11.0),
    ]
    return RoadNetwork(8, edges=edges)


class MaintenanceMachine(RuleBasedStateMachine):
    """Random ILU/ISU/GSU interleavings never break exactness."""

    @initialize(seed=st.integers(0, 2**16))
    def setup(self, seed: int) -> None:
        self.graph = _fixed_graph()
        rng = np.random.default_rng(seed)
        flows = rng.uniform(1.0, 100.0, self.graph.num_vertices)
        self.index = FAHLIndex(self.graph, flows, beta=0.5)
        self.edges = list(self.graph.edges())
        self.ops = 0

    @rule(edge_idx=st.integers(0, 12), factor=st.sampled_from(
        [0.25, 0.5, 1.0, 2.0, 4.0]))
    def weight_update(self, edge_idx: int, factor: float) -> None:
        u, v, _ = self.edges[edge_idx % len(self.edges)]
        current = self.graph.weight(u, v)
        apply_weight_update(self.index, u, v, max(1.0, round(current * factor)))
        self.ops += 1

    @rule(vertex=st.integers(0, 7), flow=st.floats(0.0, 500.0),
          method=st.sampled_from(["isu", "gsu"]))
    def flow_update(self, vertex: int, flow: float, method: str) -> None:
        apply_flow_update(self.index, vertex, flow, method=method)
        self.ops += 1

    @rule(point=st.sampled_from(FAULT_POINTS), vertex=st.integers(0, 7),
          flow=st.floats(0.0, 500.0), edge_idx=st.integers(0, 12))
    def faulted_update(self, point: str, vertex: int, flow: float,
                       edge_idx: int) -> None:
        """A fault mid-update must leave the index bit-identical — or, when
        the chosen operation never crosses the armed checkpoint, apply
        cleanly like any other rule."""
        before = self.index.checksum()
        before_weights = {(u, v): w for u, v, w in self.graph.edges()}
        fired = False
        with FaultInjector() as inj:
            inj.fail_at(point)
            try:
                if point.startswith("ilu:"):
                    u, v, _ = self.edges[edge_idx % len(self.edges)]
                    apply_weight_update(
                        self.index, u, v, self.graph.weight(u, v) + 1.0
                    )
                else:
                    method = "gsu" if point.startswith("gsu:") else "isu"
                    apply_flow_update(self.index, vertex, flow, method=method)
            except MaintenanceError:
                fired = True
        if fired:
            assert self.index.checksum() == before
            assert {(u, v): w for u, v, w in self.graph.edges()} == before_weights
        else:
            self.ops += 1

    @rule(s=st.integers(0, 7), t=st.integers(0, 7))
    def spot_check_query(self, s: int, t: int) -> None:
        expected = dijkstra_distance(self.graph, s, t)
        assert self.index.distance(s, t) == pytest.approx(expected)
        path = self.index.path(s, t)
        weight = sum(self.graph.weight(a, b) for a, b in zip(path, path[1:]))
        assert weight == pytest.approx(expected)

    @precondition(lambda self: self.ops > 0 and self.ops % 3 == 0)
    @rule()
    def full_exactness_sweep(self) -> None:
        for s in range(self.graph.num_vertices):
            for t in range(self.graph.num_vertices):
                assert self.index.distance(s, t) == pytest.approx(
                    dijkstra_distance(self.graph, s, t)
                )

    @invariant()
    def tree_is_valid_decomposition(self) -> None:
        if hasattr(self, "index"):
            self.index.tree.validate(self.graph)

    @invariant()
    def label_shapes_consistent(self) -> None:
        if hasattr(self, "index"):
            depth = self.index.tree.depth
            for v in range(self.graph.num_vertices):
                assert len(self.index.labels[v]) == depth[v] + 1
                assert self.index.labels[v][-1] == 0.0


MaintenanceMachine.TestCase.settings = settings(
    max_examples=15, stateful_step_count=12, deadline=None
)
TestMaintenanceMachine = MaintenanceMachine.TestCase
