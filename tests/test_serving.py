"""Unit tests for the resilient serving layer (admission, retry, repair)."""

from __future__ import annotations

import math

import pytest

from repro.baselines.dijkstra import dijkstra_distance
from repro.core.fahl import FAHLIndex, build_fahl
from repro.core.fspq import FSPQuery
from repro.errors import IndexStateError, QueryError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork
from repro.serving import (
    DeadLetterQueue,
    FlowUpdate,
    ResilientEngine,
    WeightUpdate,
    verify_index,
)
from repro.testing import FaultInjector


def fixed_graph() -> RoadNetwork:
    edges = [
        (0, 1, 4.0), (0, 2, 7.0), (1, 2, 2.0), (1, 3, 5.0),
        (2, 4, 3.0), (3, 4, 6.0), (3, 5, 1.0), (4, 6, 8.0),
        (5, 6, 2.0), (5, 7, 9.0), (6, 7, 3.0), (0, 7, 20.0),
        (2, 5, 11.0),
    ]
    return RoadNetwork(8, edges=edges)


@pytest.fixture()
def frn() -> FlowAwareRoadNetwork:
    graph = fixed_graph()
    flow = generate_flow_series(graph, days=1, seed=9)
    return FlowAwareRoadNetwork(graph, flow)


@pytest.fixture()
def serving(frn) -> ResilientEngine:
    return ResilientEngine(frn, max_retries=1, backoff=0.0)


class TestAdmissionControl:
    @pytest.mark.parametrize(
        "update, reason",
        [
            (FlowUpdate(3, math.nan), "non-finite"),
            (FlowUpdate(3, math.inf), "non-finite"),
            (FlowUpdate(3, -1.0), "negative-flow"),
            (FlowUpdate(99, 5.0), "unknown-vertex"),
            (FlowUpdate(-1, 5.0), "unknown-vertex"),
            (WeightUpdate(0, 99, 5.0), "unknown-vertex"),
            (WeightUpdate(0, 4, 5.0), "unknown-edge"),
            (WeightUpdate(0, 1, 0.0), "non-positive-weight"),
            (WeightUpdate(0, 1, math.nan), "non-finite"),
            (FlowUpdate(3, 5.0, timestamp=math.nan), "non-finite"),
        ],
    )
    def test_invalid_updates_quarantined(self, serving, update, reason):
        before = serving.index.checksum()
        outcome = serving.submit(update)
        assert not outcome.accepted
        assert not outcome.applied
        assert outcome.reason == reason
        assert serving.dead_letters.by_reason[reason] == 1
        assert serving.index.checksum() == before
        assert not serving.degraded

    def test_unsupported_type_quarantined(self, serving):
        outcome = serving.submit("not an update")
        assert outcome.reason == "unsupported-type"

    def test_stale_timestamp_quarantined(self, serving):
        assert serving.submit(FlowUpdate(3, 10.0, timestamp=5.0)).applied
        outcome = serving.submit(FlowUpdate(3, 12.0, timestamp=4.0))
        assert outcome.reason == "stale-timestamp"
        # a fresh timestamp on the same key is fine again
        assert serving.submit(FlowUpdate(3, 12.0, timestamp=6.0)).applied

    def test_timestamps_tracked_per_key(self, serving):
        assert serving.submit(FlowUpdate(3, 10.0, timestamp=5.0)).applied
        # a different key is not constrained by vertex 3's clock
        assert serving.submit(FlowUpdate(4, 10.0, timestamp=1.0)).applied
        assert serving.submit(WeightUpdate(0, 1, 2.0, timestamp=1.0)).applied

    def test_dead_letters_record_details(self, serving):
        serving.submit(FlowUpdate(3, math.nan))
        letters = serving.dead_letters.drain()
        assert len(letters) == 1
        assert letters[0].reason == "non-finite"
        assert letters[0].update == FlowUpdate(3, math.nan)
        assert len(serving.dead_letters) == 0
        assert serving.dead_letters.total_seen == 1


class TestGuardedMaintenance:
    def test_valid_updates_apply(self, serving, frn):
        assert serving.submit(FlowUpdate(3, 500.0)).applied
        assert serving.submit(WeightUpdate(0, 1, 2.0)).applied
        got = serving.distance(0, 1)
        assert got.source == "index"
        assert got.value == pytest.approx(dijkstra_distance(frn.graph, 0, 1))

    def test_transient_fault_is_retried(self, serving):
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set", times=1)
            outcome = serving.submit(FlowUpdate(3, 500.0))
        assert outcome.applied
        assert outcome.attempts == 2
        assert outcome.strategy == "isu"
        assert serving.metrics["retries"] == 1

    def test_isu_failure_escalates_to_gsu(self, serving):
        with FaultInjector() as inj:
            for point in ("isu:window-eliminated", "isu:frontier-compared",
                          "isu:structure-stitched", "isu:labels-refreshed"):
                inj.fail_at(point, times=-1)
            outcome = serving.submit(FlowUpdate(3, 500.0))
        assert outcome.applied
        assert outcome.strategy == "gsu"
        assert serving.metrics["escalations"] == 1

    def test_total_failure_defers_and_degrades(self, serving, frn):
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set", times=-1)
            outcome = serving.submit(FlowUpdate(3, 500.0))
        assert outcome.accepted and not outcome.applied
        assert outcome.deferred
        assert serving.degraded
        assert serving.dead_letters.by_reason["maintenance-failed"] == 1
        # degraded answers fall back to direct search but stay correct
        got = serving.distance(2, 7)
        assert got.degraded and got.source == "fallback"
        assert got.value == pytest.approx(dijkstra_distance(frn.graph, 2, 7))

    def test_repair_folds_in_deferred_updates(self, serving, frn):
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set", times=-1)
            serving.submit(FlowUpdate(3, 500.0))
        report = serving.repair()
        assert report.ok
        assert not serving.degraded
        assert serving.index.flows[3] == 500.0
        assert serving.status().deferred_updates == 0
        assert serving.distance(2, 7).source == "index"

    def test_time_budget_short_circuits_retries(self, frn):
        ticks = iter(range(0, 1000, 10))
        serving = ResilientEngine(
            frn, time_budget=5.0, max_retries=3, clock=lambda: float(next(ticks))
        )
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set", times=-1)
            outcome = serving.submit(FlowUpdate(3, 500.0))
        assert outcome.deferred
        assert outcome.attempts == 1  # budget blown after the first failure
        assert serving.metrics["budget_exhausted"] == 1

    def test_backoff_uses_injected_sleep(self, frn):
        naps: list[float] = []
        serving = ResilientEngine(
            frn, max_retries=2, backoff=0.5, sleep=naps.append
        )
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set", times=2)
            outcome = serving.submit(FlowUpdate(3, 500.0))
        assert outcome.applied
        assert naps == [0.5, 1.0]


class TestQueriesAndAudit:
    def test_query_sources(self, serving, frn):
        query = FSPQuery(0, 7, 0)
        healthy = serving.query(query)
        assert healthy.source == "index" and not healthy.degraded
        serving.state = "degraded"
        degraded = serving.query(query)
        assert degraded.source == "fallback" and degraded.degraded
        assert degraded.result.score == pytest.approx(healthy.result.score)

    def test_audit_detects_corrupted_label(self, serving):
        assert serving.audit().ok
        serving.index.labels[5][0] += 3.0  # silent corruption
        report = serving.audit()
        assert not report.ok
        assert serving.degraded
        assert serving.metrics["audits_failed"] == 1

    def test_repair_recovers_from_corruption(self, serving, frn):
        serving.index.labels[5][0] += 3.0
        serving.audit()
        assert serving.repair().ok
        assert not serving.degraded
        got = serving.distance(5, 0)
        assert got.value == pytest.approx(dijkstra_distance(frn.graph, 5, 0))

    def test_status_snapshot(self, serving):
        serving.submit(FlowUpdate(3, math.nan))
        status = serving.status()
        assert status.state == "healthy"
        assert status.dead_letters_queued == 1
        assert status.metrics["updates_rejected"] == 1
        assert status.last_audit_at is None  # no audit has run yet
        # dict-style access completed its deprecation cycle and was removed
        with pytest.raises(TypeError):
            status["state"]
        assert status.as_dict()["dead_letters_queued"] == 1

    def test_status_records_audit_timestamp(self, serving):
        serving.audit()
        status = serving.status()
        assert status.last_audit_at is not None
        assert status.last_audit_ok is True


class TestConstruction:
    def test_rejects_foreign_index(self, frn):
        other = FlowAwareRoadNetwork(fixed_graph(), frn.flow)
        index = build_fahl(other)
        with pytest.raises(IndexStateError):
            ResilientEngine(frn, index=index)

    def test_accepts_shared_graph_index(self, frn):
        index = FAHLIndex.from_frn(frn)
        serving = ResilientEngine(frn, index=index)
        assert serving.index is index

    def test_rejects_bad_parameters(self, frn):
        with pytest.raises(QueryError):
            ResilientEngine(frn, time_budget=0.0)
        with pytest.raises(QueryError):
            ResilientEngine(frn, max_retries=-1)


class TestVerifyIndex:
    def test_clean_index_passes(self, small_frn):
        index = build_fahl(small_frn)
        report = verify_index(index, samples=16, seed=1)
        assert report.ok
        assert report.checked == 16
        assert report.checksum == index.checksum()

    def test_flags_distance_mismatch(self, small_frn):
        index = build_fahl(small_frn)
        for v in range(index.graph.num_vertices):
            if len(index.labels[v]) > 1:
                index.labels[v][0] += 5.0
        report = verify_index(index, samples=32, seed=1)
        assert not report.ok
        assert report.mismatches or report.structure_errors


class TestUpdateTypes:
    def test_weight_key_is_normalized(self):
        assert WeightUpdate(2, 1, 5.0).key == WeightUpdate(1, 2, 5.0).key

    def test_flow_key_includes_vertex(self):
        assert FlowUpdate(3, 5.0).key != FlowUpdate(4, 5.0).key

    def test_dead_letter_queue_is_bounded(self):
        queue = DeadLetterQueue(capacity=4)
        for i in range(10):
            queue.push(FlowUpdate(i, -1.0), "negative-flow", "test")
        assert len(queue) == 4
        assert queue.total_seen == 10
        assert queue.by_reason["negative-flow"] == 10
        # the queue keeps the newest entries
        assert queue.drain()[-1].update.vertex == 9

    def test_rejects_bad_capacity(self):
        with pytest.raises(QueryError):
            DeadLetterQueue(capacity=0)
