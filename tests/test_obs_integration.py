"""Telemetry under fault injection: chaos scenarios must show up in metrics.

The resilience machinery (rollback, quarantine, worker recovery) only
earns its keep if its activations are observable — each scenario here
drives a fault through the real stack and asserts the corresponding
``repro_*`` family moved.
"""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.core.batch import BatchReport, batch_query
from repro.core.fahl import FAHLIndex, build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.core.maintenance import apply_flow_update
from repro.errors import MaintenanceError
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.serving.engine import EngineStatus, ResilientEngine
from repro.serving.updates import FlowUpdate, WeightUpdate
from repro.testing import FaultInjector, WorkerFault


@pytest.fixture()
def registry():
    fresh = obs.MetricsRegistry(enabled=True)
    previous = obs.set_registry(fresh)
    try:
        yield fresh
    finally:
        obs.set_registry(previous)


@pytest.fixture()
def frn():
    graph = grid_network(5, 5, seed=11)
    return FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=2))


def test_rollback_is_counted(registry, frn):
    index = FAHLIndex.from_frn(frn)
    with FaultInjector() as injector:
        injector.fail_at("flow:flow-set")
        with pytest.raises(MaintenanceError):
            apply_flow_update(index, 0, 42.0)
    counter = registry.get("repro_maintenance_rollbacks_total")
    assert counter is not None
    assert counter.value(op="apply_flow_update") >= 1


def test_serving_rollback_retry_metrics(registry, frn):
    serving = ResilientEngine(frn, max_retries=1, backoff=0.0, audit_samples=4)
    with FaultInjector() as injector:
        injector.fail_at("flow:flow-set", times=1)
        outcome = serving.submit(FlowUpdate(0, 99.0))
    assert outcome.applied
    assert registry.get("repro_maintenance_rollbacks_total").total() >= 1
    assert registry.get("repro_serving_retries_total").total() >= 1
    assert (
        registry.get("repro_serving_updates_total").value(outcome="accepted") == 1
    )


def test_quarantine_metrics_and_dlq_gauge(registry, frn):
    serving = ResilientEngine(frn, audit_samples=4)
    n = frn.num_vertices
    serving.submit(FlowUpdate(1, math.nan))
    serving.submit(FlowUpdate(n + 5, 1.0))
    serving.submit(WeightUpdate(0, n + 5, 1.0))
    quarantined = registry.get("repro_serving_quarantined_total")
    assert quarantined.value(reason="non-finite") == 1
    assert quarantined.value(reason="unknown-vertex") == 2
    assert registry.get("repro_serving_updates_total").value(outcome="rejected") == 3
    assert registry.get("repro_serving_dead_letter_depth").value() == 3

    status = serving.status()
    assert isinstance(status, EngineStatus)
    assert status.dead_letters_queued == 3
    assert status.as_dict()["dead_letters_queued"] == 3
    assert status.metrics["updates_rejected"] == 3


def test_degraded_transition_metric(registry, frn):
    serving = ResilientEngine(
        frn, max_retries=0, backoff=0.0, audit_samples=4
    )
    with FaultInjector() as injector:
        # both ISU and its GSU escalation fail -> deferred + degraded
        injector.fail_at("flow:flow-set", times=10)
        outcome = serving.submit(FlowUpdate(0, 77.0))
    assert outcome.deferred
    assert serving.degraded
    assert registry.get("repro_serving_degraded_transitions_total").total() == 1
    assert registry.get("repro_serving_updates_total").value(outcome="deferred") == 1
    assert registry.get("repro_serving_escalations_total").total() >= 1
    assert registry.get("repro_serving_deferred_depth").value() == 1
    serving.query(FSPQuery(0, 5, 0))
    assert (
        registry.get("repro_serving_queries_total").value(source="fallback") == 1
    )


@pytest.mark.chaos
def test_killed_worker_recovery_metric(registry, frn):
    engine = FlowAwareEngine(frn, oracle=build_fahl(frn), alpha=0.5, eta_u=3.0)
    n = frn.num_vertices
    queries = [
        FSPQuery(i % n, (i * 7 + 3) % n, i % frn.num_timesteps)
        for i in range(8)
        if i % n != (i * 7 + 3) % n
    ]
    report = BatchReport()
    with WorkerFault(position=0, kind="kill"):
        batch_query(engine, queries, workers=2, chunk_timeout=2.0, report=report)
    assert report.recovered_chunks >= 1
    assert registry.get("repro_batch_worker_recoveries_total").total() >= 1
    assert registry.get("repro_batch_chunk_failures_total").total() >= 1
    assert (
        registry.get("repro_batch_runs_total").value(mode="parallel-recovered") == 1
    )
    recovered = registry.get("repro_batch_chunk_seconds")
    assert recovered.count(mode="recovered") >= 1
