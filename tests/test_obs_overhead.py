"""Overhead budget: disabled telemetry must stay within 5% of baseline.

The FSPQ hot path guards its instrumentation behind one
``registry.enabled`` / tracer check and falls through to ``_query_impl``
— the uninstrumented Alg. 5 body.  This test times the public ``query``
entry point with telemetry disabled against ``_query_impl`` directly
(the registry-free baseline) and enforces the <5% latency budget from
the telemetry design.  The budget covers everything that ships enabled
by default: the always-on flight recorder and the request-context
propagation machinery are both live during the measurement (only the
registry and tracer are off, as in a production default).  Best-of-
repeats on both sides keeps scheduler noise from failing the build.
"""

from __future__ import annotations

import time

import pytest

from repro import obs
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery

ROUNDS = 7
OVERHEAD_BUDGET = 0.05


@pytest.fixture()
def engine(small_frn):
    index = FAHLIndex.from_frn(small_frn)
    return FlowAwareEngine(small_frn, oracle=index, pruning="lemma4")


def _workload(frn, count=40):
    n = frn.num_vertices
    t_max = frn.num_timesteps
    return [
        FSPQuery((3 * i) % n, (7 * i + 11) % n, i % t_max)
        for i in range(count)
        if (3 * i) % n != (7 * i + 11) % n
    ]


def _best_of(rounds, func, queries):
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        for query in queries:
            func(query)
        best = min(best, time.perf_counter() - start)
    return best


def test_disabled_telemetry_overhead_under_budget(engine, small_frn):
    assert not obs.get_registry().enabled
    assert obs.get_tracer() is None
    # the flight recorder is always on — the budget must absorb it
    assert obs.get_flight() is not None
    queries = _workload(small_frn)

    # interleave a warmup so caches/JIT-free CPython state are identical
    _best_of(1, engine._query_impl, queries)
    _best_of(1, engine.query, queries)

    baseline = _best_of(ROUNDS, engine._query_impl, queries)
    instrumented = _best_of(ROUNDS, engine.query, queries)

    overhead = (instrumented - baseline) / baseline
    assert overhead < OVERHEAD_BUDGET, (
        f"disabled-telemetry query path is {overhead:.1%} slower than the "
        f"registry-free baseline (budget {OVERHEAD_BUDGET:.0%}): "
        f"{instrumented * 1e3:.2f}ms vs {baseline * 1e3:.2f}ms"
    )


def test_disabled_path_registers_no_families(engine, small_frn):
    registry = obs.get_registry()
    assert not registry.enabled
    before = set(registry.families())
    for query in _workload(small_frn, count=10):
        engine.query(query)
    assert set(registry.families()) == before
