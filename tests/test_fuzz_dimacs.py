"""Fuzz tests: the DIMACS parser must reject garbage, round-trip graphs."""

from __future__ import annotations

import io

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import DatasetFormatError, ReproError
from repro.graph.dimacs import read_gr, write_gr
from tests.strategies import connected_graphs


@given(st.text(alphabet=st.characters(codec="ascii"), max_size=300))
def test_parser_never_crashes_on_garbage(text):
    """Arbitrary ASCII either parses or raises a *library* error — raw
    ValueError/IndexError must never escape the parser."""
    try:
        read_gr(io.StringIO(text))
    except ReproError:
        pass


@given(graph=connected_graphs(max_vertices=12))
def test_round_trip_any_graph(graph):
    buffer = io.StringIO()
    write_gr(graph, buffer)
    buffer.seek(0)
    loaded = read_gr(buffer)
    assert loaded.num_vertices == graph.num_vertices
    assert sorted(loaded.edges()) == sorted(graph.edges())


@given(st.integers(-5, 5), st.integers(-5, 5))
def test_header_count_mismatch_detected(extra_vertices, missing_arcs):
    if extra_vertices == 0 and missing_arcs == 0:
        return
    declared_arcs = max(0, 2 + missing_arcs)
    text = f"p sp {max(2, 2 + extra_vertices)} {declared_arcs}\na 1 2 3\na 2 1 3\n"
    if declared_arcs == 2:
        read_gr(io.StringIO(text))  # consistent header parses
    else:
        with pytest.raises(DatasetFormatError):
            read_gr(io.StringIO(text))
