"""Unit tests for datasets, query groups and update streams."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.errors import DatasetFormatError, QueryError
from repro.graph.validation import is_connected
from repro.workloads.datasets import (
    DATASET_NAMES,
    dataset_statistics,
    load_dataset,
    make_frn,
)
from repro.workloads.queries import (
    distance_bands,
    estimate_diameter,
    flatten_groups,
    generate_query_groups,
)
from repro.workloads.updates import (
    generate_flow_updates,
    generate_mixed_updates,
    generate_weight_updates,
)


class TestDatasets:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_all_datasets_build(self, name):
        dataset = load_dataset(name, scale=0.08, days=1)
        assert dataset.num_vertices > 10
        assert is_connected(dataset.frn.graph)
        assert dataset.frn.lanes is not None

    def test_relative_sizes_preserved(self):
        sizes = [
            load_dataset(name, scale=0.1, days=1).num_vertices
            for name in DATASET_NAMES
        ]
        assert sizes == sorted(sizes)

    def test_records_formula(self):
        dataset = load_dataset("BRN", scale=0.08, days=2, interval_minutes=60)
        assert dataset.num_records == dataset.num_vertices * 48

    def test_unknown_dataset(self):
        with pytest.raises(DatasetFormatError):
            load_dataset("ATL", scale=0.1)

    def test_invalid_scale(self):
        with pytest.raises(DatasetFormatError):
            load_dataset("BRN", scale=0.0)

    def test_deterministic(self):
        a = load_dataset("NYC", scale=0.08, days=1, seed=3)
        b = load_dataset("NYC", scale=0.08, days=1, seed=3)
        assert sorted(a.frn.graph.edges()) == sorted(b.frn.graph.edges())
        assert np.array_equal(a.frn.flow.matrix, b.frn.flow.matrix)

    def test_epochs_control_prediction_error(self, small_grid):
        sloppy = make_frn(small_grid, days=1, epochs=0, seed=0)
        sharp = make_frn(small_grid, days=1, epochs=300, seed=0)
        err_sloppy = np.abs(
            sloppy.predicted_flow.matrix - sloppy.flow.matrix
        ).mean()
        err_sharp = np.abs(sharp.predicted_flow.matrix - sharp.flow.matrix).mean()
        assert err_sharp < err_sloppy

    def test_statistics_rows(self):
        datasets = [load_dataset("BRN", scale=0.08, days=1)]
        rows = dataset_statistics(datasets)
        assert rows[0]["Dataset"] == "BRN"
        assert rows[0]["Records"] == datasets[0].num_records


class TestQueryGroups:
    def test_diameter_positive(self, medium_grid):
        diameter = estimate_diameter(medium_grid, seed=0)
        assert diameter > 0

    def test_bands_geometric_and_contiguous(self):
        bands = distance_bands(1600.0, num_groups=4, min_fraction=0.0625,
                               max_fraction=0.5)
        assert bands[0][0] == pytest.approx(100.0)
        assert bands[-1][1] == pytest.approx(800.0)
        for (lo_a, hi_a), (lo_b, _) in zip(bands, bands[1:]):
            assert hi_a == pytest.approx(lo_b)
        ratios = [hi / lo for lo, hi in bands]
        assert max(ratios) - min(ratios) < 1e-9

    def test_bands_validation(self):
        with pytest.raises(QueryError):
            distance_bands(100.0, num_groups=0)
        with pytest.raises(QueryError):
            distance_bands(100.0, min_fraction=0.9, max_fraction=0.5)

    def test_queries_fall_in_band(self, small_frn):
        groups = generate_query_groups(
            small_frn, num_groups=4, queries_per_group=4, seed=1
        )
        diameter = estimate_diameter(small_frn.graph, seed=1)
        bands = distance_bands(diameter, num_groups=4)
        for (low, high), queries in zip(bands, groups):
            for query in queries:
                dist = dijkstra_distances(small_frn.graph, query.source)[
                    query.target
                ]
                assert low < dist <= high + 1e-9

    def test_timesteps_in_range(self, small_frn):
        groups = generate_query_groups(
            small_frn, num_groups=3, queries_per_group=3, seed=2
        )
        for query in flatten_groups(groups):
            assert 0 <= query.timestep < small_frn.num_timesteps

    def test_deterministic(self, small_frn):
        a = generate_query_groups(small_frn, num_groups=3,
                                  queries_per_group=3, seed=5)
        b = generate_query_groups(small_frn, num_groups=3,
                                  queries_per_group=3, seed=5)
        assert a == b

    def test_invalid_args(self, small_frn):
        with pytest.raises(QueryError):
            generate_query_groups(small_frn, queries_per_group=0)


class TestUpdateStreams:
    def test_weight_updates_reference_real_edges(self, small_grid):
        updates = generate_weight_updates(small_grid, 10, seed=0)
        assert len(updates) == 10
        for u, v, w in updates:
            assert small_grid.has_edge(u, v)
            assert w >= 1.0

    def test_weight_updates_deterministic(self, small_grid):
        assert generate_weight_updates(small_grid, 5, seed=1) == (
            generate_weight_updates(small_grid, 5, seed=1)
        )

    def test_weight_updates_validation(self, small_grid):
        with pytest.raises(QueryError):
            generate_weight_updates(small_grid, -1)
        with pytest.raises(QueryError):
            generate_weight_updates(small_grid, 3, magnitude=(0.0, 1.0))

    def test_flow_updates_distinct_vertices(self, small_frn):
        updates = generate_flow_updates(small_frn, 8, seed=0)
        assert len(updates) == 8
        assert all(flow >= 0 for flow in updates.values())

    def test_flow_updates_validation(self, small_frn):
        with pytest.raises(QueryError):
            generate_flow_updates(small_frn, small_frn.num_vertices + 1)

    def test_mixed_updates_ratio(self, small_frn):
        flows, weights = generate_mixed_updates(
            small_frn, total=30, update_ratio=2.0, seed=0
        )
        assert len(flows) + len(weights) == 30
        assert len(flows) / max(1, len(weights)) == pytest.approx(2.0, rel=0.2)

    def test_mixed_updates_validation(self, small_frn):
        with pytest.raises(QueryError):
            generate_mixed_updates(small_frn, total=10, update_ratio=0.0)
