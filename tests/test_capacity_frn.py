"""Unit tests for capacity-based flow (Def. 4) and the FRN model (Def. 1)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import FlowError
from repro.flow.capacity import capacity_based_flow, synthesize_lane_counts
from repro.flow.series import FlowSeries
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork


class TestLaneCounts:
    def test_range(self, small_grid):
        lanes = synthesize_lane_counts(small_grid, max_lanes=5, seed=0)
        assert lanes.shape == (small_grid.num_vertices,)
        assert lanes.min() >= 1
        assert lanes.max() <= 5

    def test_deterministic(self, small_grid):
        a = synthesize_lane_counts(small_grid, seed=4)
        b = synthesize_lane_counts(small_grid, seed=4)
        assert np.array_equal(a, b)

    def test_invalid_max_lanes(self, small_grid):
        with pytest.raises(FlowError):
            synthesize_lane_counts(small_grid, max_lanes=0)


class TestCapacityBasedFlow:
    def test_formula_on_vector(self):
        flow = np.array([10.0, 20.0])
        lanes = np.array([2, 4])
        blended = capacity_based_flow(flow, lanes, w_c=0.5)
        # C_f = 0.5*P + 0.5*(P / N_l)
        assert blended[0] == pytest.approx(0.5 * 10 + 0.5 * 5)
        assert blended[1] == pytest.approx(0.5 * 20 + 0.5 * 5)

    def test_wc_extremes(self):
        flow = np.array([12.0])
        lanes = np.array([3])
        assert capacity_based_flow(flow, lanes, w_c=1.0)[0] == 12.0
        assert capacity_based_flow(flow, lanes, w_c=0.0)[0] == 4.0

    def test_full_series(self):
        series = FlowSeries(np.array([[10.0, 20.0], [30.0, 40.0]]))
        lanes = np.array([1, 2])
        blended = capacity_based_flow(series, lanes, w_c=0.5)
        assert blended.shape == (2, 2)
        assert blended[0, 1] == pytest.approx(0.5 * 20 + 0.5 * 10)

    def test_invalid_wc(self):
        with pytest.raises(FlowError):
            capacity_based_flow(np.array([1.0]), np.array([1]), w_c=1.5)

    def test_invalid_lanes(self):
        with pytest.raises(FlowError):
            capacity_based_flow(np.array([1.0]), np.array([0]))
        with pytest.raises(FlowError):
            capacity_based_flow(np.array([1.0, 2.0]), np.array([1]))


class TestFRN:
    def test_dimensions(self, small_frn):
        assert small_frn.num_vertices == small_frn.graph.num_vertices
        assert small_frn.num_timesteps == 48

    def test_mismatched_flow_rejected(self, small_grid):
        flow = FlowSeries(np.ones((4, small_grid.num_vertices + 1)))
        with pytest.raises(FlowError):
            FlowAwareRoadNetwork(small_grid, flow)

    def test_predicted_defaults_to_truth(self, small_frn):
        assert small_frn.predicted_flow is small_frn.flow

    def test_predicted_must_match_horizon(self, small_grid):
        truth = generate_flow_series(small_grid, days=2, seed=0)
        predicted = generate_flow_series(small_grid, days=1, seed=0)
        with pytest.raises(FlowError):
            FlowAwareRoadNetwork(small_grid, truth, predicted_flow=predicted)

    def test_lanes_validation(self, small_grid):
        truth = generate_flow_series(small_grid, days=1, seed=0)
        with pytest.raises(FlowError):
            FlowAwareRoadNetwork(small_grid, truth,
                                 lanes=np.zeros(small_grid.num_vertices))
        with pytest.raises(FlowError):
            FlowAwareRoadNetwork(small_grid, truth, lanes=np.array([1, 2]))

    def test_total_predicted_flow(self, small_frn):
        total = small_frn.total_predicted_flow()
        assert total.shape == (small_frn.num_vertices,)
        assert np.allclose(total, small_frn.predicted_flow.matrix.sum(axis=0))

    def test_capacity_flow_requires_lanes(self, small_frn):
        with pytest.raises(FlowError):
            small_frn.capacity_flow_at(0)

    def test_capacity_flow_with_lanes(self, small_grid):
        truth = generate_flow_series(small_grid, days=1, seed=0)
        lanes = synthesize_lane_counts(small_grid, seed=1)
        frn = FlowAwareRoadNetwork(small_grid, truth, lanes=lanes)
        blended = frn.capacity_flow_at(0, w_c=0.5)
        assert blended.shape == (small_grid.num_vertices,)
        # per-lane load never exceeds the raw flow, so the blend is <= raw
        assert (blended <= truth.at(0) + 1e-12).all()

    def test_path_flow_and_distance(self, small_frn):
        graph = small_frn.graph
        # find any 2-edge path
        v0 = 0
        v1 = next(iter(graph.neighbors(v0)))
        v2 = next(n for n in graph.neighbors(v1) if n != v0)
        path = [v0, v1, v2]
        flow_vector = small_frn.predicted_at(0)
        assert small_frn.path_flow(path, 0) == pytest.approx(
            float(flow_vector[v0] + flow_vector[v1] + flow_vector[v2])
        )
        assert small_frn.path_distance(path) == pytest.approx(
            graph.weight(v0, v1) + graph.weight(v1, v2)
        )

    def test_with_flow_updates(self, small_frn):
        updated = small_frn.with_flow_updates(0, {0: 999.0})
        assert updated.predicted_at(0)[0] == 999.0
        assert small_frn.predicted_at(0)[0] != 999.0
