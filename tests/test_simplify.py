"""Unit + property tests for degree-2 chain contraction."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given

from repro.baselines.dijkstra import dijkstra_distance
from repro.errors import GraphError
from repro.graph.road_network import RoadNetwork
from repro.graph.simplify import contract_degree_two
from tests.strategies import connected_graphs


def chain_graph() -> RoadNetwork:
    """Two hubs joined by two chains of shape vertices plus a spur.

    0 (hub) - 1 - 2 - 3 (hub) via chain, 0 - 4 - 3 via second chain,
    3 - 5 spur.
    """
    return RoadNetwork(6, edges=[
        (0, 1, 1.0), (1, 2, 2.0), (2, 3, 3.0),
        (0, 4, 2.0), (4, 3, 2.0),
        (3, 5, 7.0),
    ])


class TestContraction:
    def test_interiors_removed(self):
        result = contract_degree_two(chain_graph())
        # retained: 0 (deg 2? 0 has nbrs 1 and 4 -> degree 2!) ...
        # vertex 5 (deg 1), vertex 3 (deg 3) are retained; chains collapse
        assert 3 in result.to_new
        assert 5 in result.to_new
        assert 1 not in result.to_new
        assert 2 not in result.to_new

    def test_distances_preserved(self):
        graph = chain_graph()
        result = contract_degree_two(graph)
        for old_u in result.to_new:
            for old_v in result.to_new:
                expected = dijkstra_distance(graph, old_u, old_v)
                got = dijkstra_distance(
                    result.graph, result.to_new[old_u], result.to_new[old_v]
                )
                assert got == pytest.approx(expected)

    def test_parallel_chains_keep_minimum(self):
        graph = chain_graph()
        result = contract_degree_two(graph)
        # both chains join 3 and (the retained anchor nearest 0's side);
        # the surviving edge weight equals the cheaper chain total
        new_3 = result.to_new[3]
        new_5 = result.to_new[5]
        assert result.graph.weight(new_3, new_5) == 7.0

    def test_expand_path_round_trip(self):
        graph = chain_graph()
        result = contract_degree_two(graph)
        new_3, new_5 = result.to_new[3], result.to_new[5]
        expanded = result.expand_path([new_5, new_3])
        assert expanded == [5, 3]
        # a path across a contracted chain restores the interiors
        anchors = sorted(result.to_new)
        for a in anchors:
            for b in anchors:
                if a == b:
                    continue
                from repro.baselines.dijkstra import dijkstra_path

                simple = dijkstra_path(
                    result.graph, result.to_new[a], result.to_new[b]
                )
                expanded = result.expand_path(simple)
                assert expanded[0] == a and expanded[-1] == b
                weight = sum(
                    graph.weight(x, y)
                    for x, y in zip(expanded, expanded[1:])
                )
                assert weight == pytest.approx(
                    dijkstra_distance(graph, a, b)
                )

    def test_pure_cycle_untouched(self):
        cycle = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 2, 1.0),
                                      (2, 3, 1.0), (3, 0, 1.0)])
        result = contract_degree_two(cycle)
        assert result.graph.num_vertices == 4
        assert result.chains == {}

    def test_no_degree_two_vertices_is_identity(self, triangle_graph):
        # a triangle's vertices all have degree 2 -> it is a pure cycle
        result = contract_degree_two(triangle_graph)
        assert result.graph.num_vertices == 3

    def test_aggregate_flows(self):
        graph = chain_graph()
        result = contract_degree_two(graph)
        flows = np.arange(6, dtype=float) + 1.0  # 1..6
        aggregated = result.aggregate_flows(flows)
        assert aggregated.shape == (result.graph.num_vertices,)
        # the surviving interiors' mass is redistributed, never lost from
        # chains that survived contraction
        assert aggregated.sum() >= flows[[v for v in result.to_new]].sum()

    def test_aggregate_flow_validation(self):
        result = contract_degree_two(chain_graph())
        with pytest.raises(GraphError):
            result.aggregate_flows(np.ones(2))


@given(graph=connected_graphs(min_vertices=4, max_vertices=14))
def test_property_contraction_preserves_distances(graph):
    result = contract_degree_two(graph)
    anchors = sorted(result.to_new)
    step = max(1, len(anchors) // 4)
    for a in anchors[::step]:
        for b in anchors[::step]:
            expected = dijkstra_distance(graph, a, b)
            got = dijkstra_distance(
                result.graph, result.to_new[a], result.to_new[b]
            )
            assert got == pytest.approx(expected)
