"""Unit tests for the packed label arena: layout, caching, invalidation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_update, apply_weight_update
from repro.errors import QueryError
from repro.labeling.h2h import build_h2h


def assert_distance_many_exact(index, graph, rng, pairs=60):
    n = graph.num_vertices
    us = rng.integers(0, n, pairs)
    vs = rng.integers(0, n, pairs)
    got = index.distance_many(us, vs)
    for u, v, d in zip(us.tolist(), vs.tolist(), got.tolist()):
        assert d == index.distance(u, v), (u, v)


class TestArenaLayout:
    def test_slices_match_index_lists(self, small_grid):
        index = build_h2h(small_grid)
        arena = index.arena()
        n = small_grid.num_vertices
        for v in range(n):
            lo, hi = int(arena.label_offsets[v]), int(arena.label_offsets[v + 1])
            assert np.array_equal(arena.label_values[lo:hi], index.labels[v])
            assert np.array_equal(arena.label(v), index.labels[v])
            lo, hi = int(arena.via_offsets[v]), int(arena.via_offsets[v + 1])
            assert np.array_equal(arena.via_values[lo:hi], index.vias[v])
            lo, hi = int(arena.pos_offsets[v]), int(arena.pos_offsets[v + 1])
            assert np.array_equal(arena.pos_values[lo:hi], index.positions[v])

    def test_ancestor_storage_is_shared(self, small_grid):
        index = build_h2h(small_grid)
        arena = index.arena()
        assert arena.anc_values is index.anc_flat
        assert arena.anc_offsets is index.anc_offsets
        # the per-vertex views expose the same flat storage
        for v in range(small_grid.num_vertices):
            lo, hi = int(index.anc_offsets[v]), int(index.anc_offsets[v + 1])
            assert np.array_equal(index.anc[v], index.anc_flat[lo:hi])
            assert index.anc[v][-1] == v

    def test_padded_positions_rows(self, small_grid):
        index = build_h2h(small_grid)
        arena = index.arena()
        assert arena.pos_pad is not None
        width = arena.pos_pad.shape[1]
        for v in range(small_grid.num_vertices):
            p = index.positions[v]
            row = arena.pos_pad[v]
            assert np.array_equal(row[: len(p)], p)
            assert np.all(row[len(p):] == p[-1])
            assert len(row) == width

    def test_ragged_fallback_kernel_exact(self, small_grid, rng):
        """Without the dense matrix the segmented kernel gives the same bits."""
        index = build_h2h(small_grid)
        n = small_grid.num_vertices
        us = rng.integers(0, n, 80)
        vs = rng.integers(0, n, 80)
        dense = index.distance_many(us, vs)
        index.arena().pos_pad = None
        ragged = index.distance_many(us, vs)
        assert np.array_equal(dense, ragged)

    def test_cached_until_version_bump(self, small_grid):
        index = build_h2h(small_grid)
        first = index.arena()
        assert index.arena() is first
        index.refresh_labels()
        second = index.arena()
        assert second is not first
        assert second.version > first.version


class TestArenaInvalidation:
    """Maintenance must transparently invalidate the packed snapshot."""

    def test_ilu_invalidates(self, small_grid, rng):
        index = build_h2h(small_grid)
        stale = index.arena()
        u, v, w = next(iter(small_grid.edges()))
        apply_weight_update(index, u, v, w * 4)
        assert index.arena() is not stale
        assert_distance_many_exact(index, small_grid, rng)

    def test_isu_invalidates(self, small_grid, rng):
        flows = np.asarray(rng.uniform(0, 100, small_grid.num_vertices))
        index = FAHLIndex(small_grid, flows)
        stale = index.arena()
        stats = apply_flow_update(index, 3, 12345.0, method="isu")
        assert stats.strategy in ("isu", "gsu")
        assert index.arena() is not stale
        assert_distance_many_exact(index, small_grid, rng)

    def test_gsu_invalidates(self, small_grid, rng):
        flows = np.asarray(rng.uniform(0, 100, small_grid.num_vertices))
        index = FAHLIndex(small_grid, flows)
        stale = index.arena()
        stats = apply_flow_update(index, 5, 9999.0, method="gsu")
        assert stats.strategy in ("noop", "gsu")
        fresh = index.arena()
        if stats.strategy == "gsu":
            assert fresh is not stale
        assert_distance_many_exact(index, small_grid, rng)

    def test_distance_many_correct_after_maintenance(self, small_grid, rng):
        """End to end: vectorised answers equal Dijkstra on the new graph."""
        index = build_h2h(small_grid)
        index.distance_many(np.arange(4), np.arange(4) + 4)  # build the arena
        u, v, w = next(iter(small_grid.edges()))
        apply_weight_update(index, u, v, w * 10)
        n = small_grid.num_vertices
        ref = dijkstra_distances(small_grid, 0)
        got = index.distance_many(np.zeros(n, dtype=np.int64), np.arange(n))
        assert got == pytest.approx(ref)


class TestDistanceManyValidation:
    def test_shape_mismatch_rejected(self, small_grid):
        index = build_h2h(small_grid)
        with pytest.raises(QueryError):
            index.distance_many([0, 1], [2])
        with pytest.raises(QueryError):
            index.distance_many([[0]], [[1]])

    def test_unknown_vertices_rejected(self, small_grid):
        index = build_h2h(small_grid)
        n = small_grid.num_vertices
        with pytest.raises(QueryError):
            index.distance_many([0], [n])
        with pytest.raises(QueryError):
            index.distance_many([-1], [0])

    def test_empty_input(self, small_grid):
        index = build_h2h(small_grid)
        out = index.distance_many([], [])
        assert out.shape == (0,)

    def test_self_pairs_are_zero(self, small_grid):
        index = build_h2h(small_grid)
        vs = np.arange(small_grid.num_vertices)
        assert np.array_equal(index.distance_many(vs, vs), np.zeros(len(vs)))


class TestIndexSizeBytes:
    def test_includes_bag_views(self, small_grid):
        index = build_h2h(small_grid)
        label_bytes = (
            sum(lbl.nbytes for lbl in index.labels)
            + sum(p.nbytes for p in index.positions)
            + sum(v.nbytes for v in index.vias)
        )
        bag_bytes = (
            sum(k.nbytes for k in index.bag_keys)
            + sum(w.nbytes for w in index.bag_weights)
            + sum(p.nbytes for p in index.bag_pos)
        )
        assert bag_bytes > 0
        assert index.index_size_bytes() >= label_bytes + bag_bytes

    def test_includes_built_arena(self, small_grid):
        index = build_h2h(small_grid)
        before = index.index_size_bytes()
        arena = index.arena()
        assert index.index_size_bytes() == before + arena.nbytes
        # a stale arena must not be counted
        index.refresh_labels()
        assert index.index_size_bytes() == before
