"""Unit tests for CSR snapshots and connectivity validation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import DisconnectedGraphError
from repro.graph.csr import to_csr
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import (
    connected_components,
    is_connected,
    largest_component,
    require_connected,
)


class TestCSR:
    def test_shapes(self, triangle_graph):
        csr = to_csr(triangle_graph)
        assert csr.num_vertices == 3
        assert csr.num_edges == 3
        assert len(csr.indices) == 6  # both directions

    def test_neighbors_sorted(self, small_grid):
        csr = to_csr(small_grid)
        for v in range(csr.num_vertices):
            nbrs = csr.neighbors(v)
            assert list(nbrs) == sorted(nbrs)

    def test_weights_aligned(self, triangle_graph):
        csr = to_csr(triangle_graph)
        for v in range(3):
            for nbr, w in zip(csr.neighbors(v), csr.neighbor_weights(v)):
                assert triangle_graph.weight(v, int(nbr)) == w

    def test_degrees_match(self, small_grid):
        csr = to_csr(small_grid)
        expected = np.array([small_grid.degree(v) for v in small_grid.vertices()])
        assert np.array_equal(csr.degrees(), expected)

    def test_empty_graph(self):
        csr = to_csr(RoadNetwork(0))
        assert csr.num_vertices == 0
        assert csr.num_edges == 0


class TestValidation:
    def test_connected_graph(self, triangle_graph):
        assert is_connected(triangle_graph)
        require_connected(triangle_graph)  # must not raise

    def test_trivial_graphs_connected(self):
        assert is_connected(RoadNetwork(0))
        assert is_connected(RoadNetwork(1))

    def test_disconnected_detected(self):
        graph = RoadNetwork(4, edges=[(0, 1, 1.0), (2, 3, 1.0)])
        assert not is_connected(graph)
        with pytest.raises(DisconnectedGraphError):
            require_connected(graph, context="test")

    def test_components_largest_first(self):
        graph = RoadNetwork(5, edges=[(0, 1, 1.0), (1, 2, 1.0), (3, 4, 1.0)])
        comps = connected_components(graph)
        assert sorted(comps[0]) == [0, 1, 2]
        assert sorted(comps[1]) == [3, 4]

    def test_isolated_vertices_are_components(self):
        graph = RoadNetwork(3, edges=[(0, 1, 1.0)])
        assert len(connected_components(graph)) == 2

    def test_largest_component_subgraph(self):
        graph = RoadNetwork(5, edges=[(0, 1, 1.0), (1, 2, 2.0), (3, 4, 1.0)])
        sub, relabel = largest_component(graph)
        assert sub.num_vertices == 3
        assert sub.num_edges == 2
        assert set(relabel) == {0, 1, 2}

    def test_largest_component_empty(self):
        sub, relabel = largest_component(RoadNetwork(0))
        assert sub.num_vertices == 0
        assert relabel == {}
