"""Unit tests for Lemma-4 bounds, scoring (Eq. 1-3) and FSPQ types."""

from __future__ import annotations

import pytest

from repro.core.bounds import FlowBounds, adaptive_upper_bound, lemma4_bounds
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError
from repro.paths.scoring import (
    NormalizationContext,
    path_flow,
    score_candidates,
)


class TestLemma4Bounds:
    def test_formula(self):
        bounds = lemma4_bounds(10.0, 30.0, alpha=0.5, eta_u=3.0)
        spread = 20.0
        denom = (3.0 - 1.0) * 0.5
        assert bounds.lower == pytest.approx(10.0 - spread * 1.5 / denom)
        assert bounds.upper == pytest.approx(10.0 + spread * 0.5 / denom)

    def test_prunes_outside_interval(self):
        bounds = FlowBounds(lower=5.0, upper=15.0)
        assert bounds.prunes(4.9)
        assert bounds.prunes(15.1)
        assert not bounds.prunes(5.0)
        assert not bounds.prunes(10.0)
        assert not bounds.prunes(15.0)

    def test_small_alpha_widens_upper_bound(self):
        tight = lemma4_bounds(0.0, 1.0, alpha=0.5, eta_u=3.0)
        loose = lemma4_bounds(0.0, 1.0, alpha=0.1, eta_u=3.0)
        assert loose.upper > tight.upper

    def test_degenerate_range(self):
        bounds = lemma4_bounds(7.0, 7.0, alpha=0.5, eta_u=3.0)
        assert bounds.lower == bounds.upper == 7.0

    def test_validation(self):
        with pytest.raises(QueryError):
            lemma4_bounds(0.0, 1.0, alpha=0.0, eta_u=3.0)
        with pytest.raises(QueryError):
            lemma4_bounds(0.0, 1.0, alpha=0.5, eta_u=1.0)
        with pytest.raises(QueryError):
            lemma4_bounds(2.0, 1.0, alpha=0.5, eta_u=3.0)


class TestAdaptiveBound:
    def test_zero_best_score_prunes_everything_above_min(self):
        assert adaptive_upper_bound(0.0, 10.0, 20.0, alpha=0.5) == 10.0

    def test_scales_with_best_score(self):
        low = adaptive_upper_bound(0.1, 0.0, 1.0, alpha=0.5)
        high = adaptive_upper_bound(0.4, 0.0, 1.0, alpha=0.5)
        assert high > low

    def test_degenerate_spread(self):
        assert adaptive_upper_bound(0.5, 3.0, 3.0, alpha=0.5) == 3.0

    def test_validation(self):
        with pytest.raises(QueryError):
            adaptive_upper_bound(0.5, 0.0, 1.0, alpha=1.0)


class TestNormalization:
    def test_distance_normalization(self):
        ctx = NormalizationContext(10.0, 30.0, 0.0, 1.0)
        assert ctx.normalize_distance(10.0) == 0.0
        assert ctx.normalize_distance(30.0) == 1.0
        assert ctx.normalize_distance(20.0) == 0.5

    def test_flow_normalization(self):
        ctx = NormalizationContext(0.0, 1.0, 100.0, 300.0)
        assert ctx.normalize_flow(100.0) == 0.0
        assert ctx.normalize_flow(300.0) == 1.0

    def test_degenerate_ranges_contribute_zero(self):
        ctx = NormalizationContext(5.0, 5.0, 7.0, 7.0)
        assert ctx.normalize_distance(5.0) == 0.0
        assert ctx.normalize_flow(7.0) == 0.0


class TestScoring:
    def test_blend(self):
        ctx = NormalizationContext(0.0, 10.0, 0.0, 10.0)
        scored = score_candidates(
            [[0, 1], [0, 2]], [10.0, 0.0], [0.0, 10.0], alpha=0.3, context=ctx
        )
        # first candidate: distance'=1, flow'=0 -> 0.3; second: 0.7
        assert scored[0].path == (0, 1)
        assert scored[0].score == pytest.approx(0.3)
        assert scored[1].score == pytest.approx(0.7)

    def test_sorted_with_tiebreak(self):
        ctx = NormalizationContext(0.0, 10.0, 0.0, 10.0)
        scored = score_candidates(
            [[0], [1]], [5.0, 5.0], [5.0, 5.0], alpha=0.5, context=ctx
        )
        assert scored[0].score == scored[1].score
        assert scored[0].distance <= scored[1].distance

    def test_skips_infinite_distances(self):
        ctx = NormalizationContext(0.0, 10.0, 0.0, 10.0)
        scored = score_candidates(
            [[0], [1]], [float("inf"), 5.0], [5.0, 5.0], alpha=0.5, context=ctx
        )
        assert len(scored) == 1

    def test_validates_alpha_and_lengths(self):
        ctx = NormalizationContext(0.0, 1.0, 0.0, 1.0)
        with pytest.raises(QueryError):
            score_candidates([[0]], [1.0], [1.0], alpha=0.0, context=ctx)
        with pytest.raises(QueryError):
            score_candidates([[0]], [1.0, 2.0], [1.0], alpha=0.5, context=ctx)

    def test_path_flow(self):
        import numpy as np

        vector = np.array([1.0, 2.0, 4.0])
        assert path_flow(vector, [0, 2]) == 5.0
        assert path_flow(vector, [0, 1, 2]) == 7.0


class TestFSPQueryTypes:
    def test_validated_ok(self):
        query = FSPQuery(0, 1, 2)
        assert query.validated(5, 10) is query

    def test_validated_rejects(self):
        with pytest.raises(QueryError):
            FSPQuery(0, 9, 0).validated(5, 10)
        with pytest.raises(QueryError):
            FSPQuery(0, 1, 99).validated(5, 10)

    def test_result_is_frozen(self):
        result = FSPResult(
            path=(0, 1),
            distance=1.0,
            flow=2.0,
            score=0.5,
            shortest_distance=1.0,
            num_candidates=1,
            num_pruned=0,
            truncated=False,
        )
        with pytest.raises(AttributeError):
            result.distance = 2.0
