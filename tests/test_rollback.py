"""Transactional maintenance: rollback exactness under injected faults.

Every instrumented checkpoint in ILU/ISU/GSU (``FAULT_POINTS``) gets a
fault injected mid-update; the index must come back bit-identical
(checksum, flows, graph weights, all-pairs distances) and must remain
fully maintainable afterwards.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import FAHLIndex
from repro.core.maintenance import (
    FAULT_POINTS,
    apply_flow_update,
    apply_flow_updates,
    apply_weight_update,
    apply_weight_updates,
)
from repro.errors import GraphError, MaintenanceError
from repro.graph.road_network import RoadNetwork
from repro.testing import FaultInjector


def fixed_graph() -> RoadNetwork:
    """The 8-vertex graph used by the stateful maintenance suite."""
    edges = [
        (0, 1, 4.0), (0, 2, 7.0), (1, 2, 2.0), (1, 3, 5.0),
        (2, 4, 3.0), (3, 4, 6.0), (3, 5, 1.0), (4, 6, 8.0),
        (5, 6, 2.0), (5, 7, 9.0), (6, 7, 3.0), (0, 7, 20.0),
        (2, 5, 11.0),
    ]
    return RoadNetwork(8, edges=edges)


@pytest.fixture()
def fahl() -> FAHLIndex:
    graph = fixed_graph()
    flows = np.random.default_rng(0).uniform(1.0, 100.0, graph.num_vertices)
    return FAHLIndex(graph, flows, beta=0.5)


def all_pairs(index: FAHLIndex) -> dict[tuple[int, int], float]:
    n = index.graph.num_vertices
    return {(s, t): index.distance(s, t) for s in range(n) for t in range(n)}


def assert_exact(index: FAHLIndex) -> None:
    graph = index.graph
    for s in range(graph.num_vertices):
        ref = dijkstra_distances(graph, s)
        for t in range(graph.num_vertices):
            assert index.distance(s, t) == pytest.approx(ref[t]), (s, t)


#: the transactional-apply checkpoints; ``consolidate:*`` points belong to
#: the background ConsolidationTask and are chaos-tested in test_overlay /
#: test_chaos, where a fault discards the back buffer instead of rolling back
MAINT_POINTS = tuple(p for p in FAULT_POINTS if not p.startswith("consolidate:"))


def op_for(point: str):
    """An update operation guaranteed to cross checkpoint ``point``."""
    if point.startswith("ilu:"):
        return lambda index: apply_weight_update(index, 0, 1, 40.0)
    if point.startswith("gsu:"):
        return lambda index: apply_flow_update(index, 3, 500.0, method="gsu")
    return lambda index: apply_flow_update(index, 3, 500.0, method="isu")


class TestRollbackExactness:
    @pytest.mark.parametrize("point", MAINT_POINTS)
    def test_fault_leaves_index_bit_identical(self, fahl, point):
        before_sum = fahl.checksum()
        before_flows = fahl.flows.copy()
        before_weights = {(u, v): w for u, v, w in fahl.graph.edges()}
        before_dist = all_pairs(fahl)

        with FaultInjector() as inj:
            inj.fail_at(point)
            with pytest.raises(MaintenanceError) as err:
                op_for(point)(fahl)
        assert point in inj.trace
        assert isinstance(err.value.__cause__, RuntimeError)

        assert fahl.checksum() == before_sum
        np.testing.assert_array_equal(fahl.flows, before_flows)
        assert {(u, v): w for u, v, w in fahl.graph.edges()} == before_weights
        assert all_pairs(fahl) == before_dist

    @pytest.mark.parametrize("point", MAINT_POINTS)
    def test_index_still_maintainable_after_rollback(self, fahl, point):
        with FaultInjector() as inj:
            inj.fail_at(point)
            with pytest.raises(MaintenanceError):
                op_for(point)(fahl)
        # real updates after the rollback must behave as if nothing happened
        apply_weight_update(fahl, 2, 4, 12.0)
        apply_flow_update(fahl, 5, 250.0, method="isu")
        assert_exact(fahl)

    def test_error_carries_operation_and_cause(self, fahl):
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set", exception=KeyError)
            with pytest.raises(MaintenanceError) as err:
                apply_flow_update(fahl, 3, 500.0)
        assert err.value.operation == "apply_flow_update"
        assert "rolled back" in str(err.value)
        assert isinstance(err.value.__cause__, KeyError)

    def test_non_transactional_raises_raw_error(self, fahl):
        with FaultInjector() as inj:
            inj.fail_at("flow:flow-set")
            with pytest.raises(RuntimeError, match="injected fault"):
                apply_flow_update(fahl, 3, 500.0, transactional=False)

    def test_weight_rollback_restores_graph_weight(self, fahl):
        before = fahl.graph.weight(0, 1)
        with FaultInjector() as inj:
            inj.fail_at("ilu:labels-refreshed")
            with pytest.raises(MaintenanceError):
                apply_weight_update(fahl, 0, 1, before * 10)
        assert fahl.graph.weight(0, 1) == before


class TestAtomicBatches:
    def test_atomic_flow_batch_rolls_back_entirely(self, fahl):
        before_sum = fahl.checksum()
        before_flows = fahl.flows.copy()
        # vertex 1 is valid and applies first (sorted order); vertex 3 fails
        with pytest.raises(MaintenanceError):
            apply_flow_updates(fahl, {1: 50.0, 3: -5.0}, atomic=True)
        assert fahl.checksum() == before_sum
        np.testing.assert_array_equal(fahl.flows, before_flows)

    def test_non_atomic_flow_batch_keeps_prefix(self, fahl):
        with pytest.raises(GraphError):
            apply_flow_updates(fahl, {1: 50.0, 3: -5.0}, atomic=False)
        assert fahl.flows[1] == 50.0
        assert_exact(fahl)

    def test_atomic_weight_batch_rolls_back_entirely(self, fahl):
        before_sum = fahl.checksum()
        w01 = fahl.graph.weight(0, 1)
        with pytest.raises(MaintenanceError):
            apply_weight_updates(fahl, [(0, 1, 2.0), (1, 2, -1.0)], atomic=True)
        assert fahl.graph.weight(0, 1) == w01
        assert fahl.checksum() == before_sum

    def test_non_atomic_weight_batch_keeps_prefix(self, fahl):
        with pytest.raises(GraphError):
            apply_weight_updates(fahl, [(0, 1, 2.0), (1, 2, -1.0)], atomic=False)
        assert fahl.graph.weight(0, 1) == 2.0
        assert_exact(fahl)

    def test_atomic_batch_mid_maintenance_fault(self, fahl):
        before_sum = fahl.checksum()
        before_flows = fahl.flows.copy()
        with FaultInjector() as inj:
            # fire on the second update's flow-set: first already applied
            inj.fail_at("flow:flow-set", after=1)
            with pytest.raises(MaintenanceError):
                apply_flow_updates(fahl, {1: 50.0, 3: 500.0}, atomic=True)
        assert fahl.checksum() == before_sum
        np.testing.assert_array_equal(fahl.flows, before_flows)
        assert_exact(fahl)


class TestRollbackProperty:
    @given(
        seed=st.integers(0, 2**16),
        point=st.sampled_from(FAULT_POINTS),
        vertex=st.integers(0, 7),
        magnitude=st.floats(0.0, 1000.0),
        edge_idx=st.integers(0, 12),
    )
    def test_random_faults_roll_back_exactly(
        self, seed, point, vertex, magnitude, edge_idx
    ):
        graph = fixed_graph()
        flows = np.random.default_rng(seed).uniform(1.0, 100.0, 8)
        index = FAHLIndex(graph, flows, beta=0.5)
        before = index.checksum()
        before_flows = index.flows.copy()
        fired = False
        with FaultInjector() as inj:
            inj.fail_at(point)
            try:
                if point.startswith("ilu:"):
                    edges = list(graph.edges())
                    u, v, w = edges[edge_idx % len(edges)]
                    apply_weight_update(index, u, v, max(1.0, magnitude))
                else:
                    method = "gsu" if point.startswith("gsu:") else "isu"
                    apply_flow_update(index, vertex, magnitude, method=method)
            except MaintenanceError:
                fired = True
        if fired:
            assert index.checksum() == before
            np.testing.assert_array_equal(index.flows, before_flows)
        # faulted-and-rolled-back or applied cleanly: exact either way
        assert_exact(index)


class TestILUStaleMiddleRegression:
    def test_tied_shortcut_value_still_updates_middle(self, fahl):
        """Regression: a recomputed shortcut whose *value* ties the old one
        but whose realising middle vertex moved must still update the
        middle, or path unpacking walks a non-shortest route."""
        graph = fahl.graph
        apply_flow_update(fahl, 3, 82.0, method="isu")
        apply_weight_update(fahl, 3, 5, 4.0)
        apply_weight_update(fahl, 3, 4, 12.0)
        # pre-fix this returned [4, 3, 5] with weight 16 vs distance 10
        path = fahl.path(4, 5)
        weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
        assert weight == pytest.approx(fahl.distance(4, 5))
        # every reconstructed path must realise its reported distance
        for s in range(graph.num_vertices):
            ref = dijkstra_distances(graph, s)
            for t in range(graph.num_vertices):
                p = fahl.path(s, t)
                w = sum(graph.weight(a, b) for a, b in zip(p, p[1:]))
                assert w == pytest.approx(ref[t]), (s, t)
