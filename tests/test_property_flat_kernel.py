"""Property-based tests: the flat kernel is bit-identical to scalar.

On integer-weight graphs (every ``connected_graphs`` draw) the flat
kernel must return *exactly* the same ``FSPResult`` as the scalar
reference — dataclass equality, so every float compares bitwise — for
every pruning mode, and it must stay identical immediately after
ILU / ISU / GSU maintenance (the kernel's precomputed state has to be
invalidated by the label-version bump alone, with no explicit reset).
"""

from __future__ import annotations

import numpy as np
from hypothesis import given
from hypothesis import strategies as st

from repro.core.fahl import FAHLIndex
from repro.core.fpsps import PRUNING_MODES, FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.core.maintenance import apply_flow_update, apply_weight_update
from repro.errors import QueryError
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from tests.strategies import connected_graphs


def _engines(frn, index, pruning, max_candidates=16):
    return tuple(
        FlowAwareEngine(
            frn,
            oracle=index,
            pruning=pruning,
            kernel=kernel,
            max_candidates=max_candidates,
        )
        for kernel in ("flat", "scalar")
    )


def _answer(engine, query):
    try:
        return engine.query(query)
    except QueryError as exc:
        return ("QueryError", str(exc))


def _assert_identical(flat, scalar, graph, data, queries=4):
    n = graph.num_vertices
    for _ in range(queries):
        s = data.draw(st.integers(0, n - 1))
        t = data.draw(st.integers(0, n - 1))
        if s == t:
            continue
        query = FSPQuery(s, t, 0)
        assert _answer(flat, query) == _answer(scalar, query), (s, t)


@given(graph=connected_graphs(max_vertices=10), data=st.data())
def test_flat_bit_identical_to_scalar(graph, data):
    n = graph.num_vertices
    flows = np.array([data.draw(st.integers(0, 80)) for _ in range(n)],
                     dtype=float)
    frn = FlowAwareRoadNetwork(graph, FlowSeries(flows[None, :]))
    index = FAHLIndex(graph, flows, beta=0.5)
    pruning = data.draw(st.sampled_from(PRUNING_MODES))
    flat, scalar = _engines(frn, index, pruning)
    _assert_identical(flat, scalar, graph, data)


@given(graph=connected_graphs(max_vertices=10), data=st.data())
def test_flat_bit_identical_after_maintenance(graph, data):
    """ILU/ISU/GSU must invalidate the kernel's precomputed state."""
    n = graph.num_vertices
    flows = np.array([data.draw(st.integers(0, 80)) for _ in range(n)],
                     dtype=float)
    frn = FlowAwareRoadNetwork(graph, FlowSeries(flows[None, :]))
    index = FAHLIndex(graph, flows, beta=0.5)
    pruning = data.draw(st.sampled_from(PRUNING_MODES))
    flat, scalar = _engines(frn, index, pruning)
    # warm the kernel so maintenance has stale state to invalidate
    _assert_identical(flat, scalar, graph, data, queries=2)

    edges = list(graph.edges())
    for _ in range(data.draw(st.integers(1, 3))):
        kind = data.draw(st.sampled_from(["ilu", "isu", "gsu"]))
        if kind == "ilu":
            u, v, _ = edges[data.draw(st.integers(0, len(edges) - 1))]
            apply_weight_update(
                index, u, v, float(data.draw(st.integers(1, 40)))
            )
        else:
            vertex = data.draw(st.integers(0, n - 1))
            apply_flow_update(
                index, vertex, float(data.draw(st.integers(0, 160))),
                method=kind,
            )
        # immediately after each update: still bit-identical, with no
        # explicit invalidate() on either engine
        _assert_identical(flat, scalar, graph, data, queries=2)


@given(graph=connected_graphs(max_vertices=9), data=st.data())
def test_flat_truncation_flags_identical(graph, data):
    """Tiny budgets: truncated/early_stopped flags must agree too."""
    n = graph.num_vertices
    flows = np.array([data.draw(st.integers(0, 80)) for _ in range(n)],
                     dtype=float)
    frn = FlowAwareRoadNetwork(graph, FlowSeries(flows[None, :]))
    index = FAHLIndex(graph, flows, beta=0.5)
    pruning = data.draw(st.sampled_from(PRUNING_MODES))
    flat, scalar = _engines(frn, index, pruning, max_candidates=2)
    flat.min_candidates = scalar.min_candidates = 1
    _assert_identical(flat, scalar, graph, data, queries=6)
