"""Unit tests for the synthetic road-network generators."""

from __future__ import annotations

import pytest

from repro.errors import GraphError
from repro.graph.generators import (
    grid_network,
    random_road_network,
    ring_radial_network,
)
from repro.graph.validation import is_connected


class TestGridNetwork:
    def test_connected(self):
        assert is_connected(grid_network(8, 8, seed=1))

    def test_deterministic(self):
        a = grid_network(6, 7, seed=5)
        b = grid_network(6, 7, seed=5)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_different_seeds_differ(self):
        a = grid_network(8, 8, seed=1)
        b = grid_network(8, 8, seed=2)
        assert sorted(a.edges()) != sorted(b.edges())

    def test_no_deletions_full_lattice(self):
        graph = grid_network(4, 5, delete_fraction=0.0, diagonal_fraction=0.0, seed=0)
        assert graph.num_vertices == 20
        assert graph.num_edges == 4 * 4 + 5 * 3  # rows*cols-ish lattice count

    def test_road_like_degree(self):
        graph = grid_network(15, 15, seed=3)
        avg_degree = 2 * graph.num_edges / graph.num_vertices
        assert 2.0 <= avg_degree <= 4.5

    def test_coordinates_attached(self):
        graph = grid_network(4, 4, seed=0)
        assert len(graph.coordinates) == graph.num_vertices

    def test_integer_weights(self):
        graph = grid_network(5, 5, seed=0)
        assert all(float(w).is_integer() for _, _, w in graph.edges())

    def test_invalid_sizes(self):
        with pytest.raises(GraphError):
            grid_network(1, 5)
        with pytest.raises(GraphError):
            grid_network(5, 5, delete_fraction=1.0)


class TestRingRadial:
    def test_structure(self):
        graph = ring_radial_network(3, 8, seed=0)
        assert graph.num_vertices == 1 + 3 * 8
        assert is_connected(graph)

    def test_center_degree_equals_spokes(self):
        graph = ring_radial_network(2, 6, seed=0)
        assert graph.degree(0) == 6

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            ring_radial_network(0, 8)
        with pytest.raises(GraphError):
            ring_radial_network(2, 2)


class TestRandomRoad:
    def test_connected_component_returned(self):
        graph = random_road_network(120, seed=1)
        assert is_connected(graph)
        assert graph.num_vertices <= 120

    def test_deterministic(self):
        a = random_road_network(60, seed=9)
        b = random_road_network(60, seed=9)
        assert sorted(a.edges()) == sorted(b.edges())

    def test_invalid_args(self):
        with pytest.raises(GraphError):
            random_road_network(1)
        with pytest.raises(GraphError):
            random_road_network(10, k_nearest=0)
