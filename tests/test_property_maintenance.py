"""Property-based tests: maintenance keeps indexes exact under any updates."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_update, apply_weight_update
from repro.core.overlay import ConsolidationTask, DeltaOverlay, OverlayOracle
from repro.labeling.h2h import build_h2h
from tests.strategies import connected_graphs


def assert_index_exact(index, graph):
    n = graph.num_vertices
    for s in range(0, n, max(1, n // 4)):
        ref = dijkstra_distances(graph, s)
        for t in range(n):
            assert index.distance(s, t) == pytest.approx(ref[t]), (s, t)


@given(graph=connected_graphs(max_vertices=12), data=st.data())
def test_ilu_exact_under_random_update_sequences(graph, data):
    index = build_h2h(graph)
    edges = list(graph.edges())
    num_updates = data.draw(st.integers(1, 6))
    for _ in range(num_updates):
        u, v, _ = edges[data.draw(st.integers(0, len(edges) - 1))]
        new_weight = float(data.draw(st.integers(1, 40)))
        apply_weight_update(index, u, v, new_weight)
    assert_index_exact(index, graph)


@given(graph=connected_graphs(max_vertices=12), data=st.data())
def test_ilu_matches_fresh_rebuild(graph, data):
    index = build_h2h(graph)
    edges = list(graph.edges())
    for _ in range(data.draw(st.integers(1, 4))):
        u, v, _ = edges[data.draw(st.integers(0, len(edges) - 1))]
        apply_weight_update(index, u, v, float(data.draw(st.integers(1, 40))))
    fresh = build_h2h(graph.copy())
    assert fresh.elim.order == index.elim.order
    for v in range(graph.num_vertices):
        assert np.allclose(fresh.labels[v], index.labels[v])


@given(graph=connected_graphs(max_vertices=12), data=st.data())
def test_structure_updates_exact_under_random_flows(graph, data):
    n = graph.num_vertices
    flows = np.array([data.draw(st.integers(0, 100)) for _ in range(n)],
                     dtype=float)
    index = FAHLIndex(graph, flows, beta=0.5)
    for _ in range(data.draw(st.integers(1, 5))):
        vertex = data.draw(st.integers(0, n - 1))
        new_flow = float(data.draw(st.integers(0, 200)))
        method = data.draw(st.sampled_from(["isu", "gsu"]))
        apply_flow_update(index, vertex, new_flow, method=method)
    index.tree.validate(graph)
    assert_index_exact(index, graph)


@given(graph=connected_graphs(max_vertices=10), data=st.data())
def test_interleaved_updates_exact(graph, data):
    n = graph.num_vertices
    flows = np.array([data.draw(st.integers(0, 100)) for _ in range(n)],
                     dtype=float)
    index = FAHLIndex(graph, flows, beta=0.5)
    edges = list(graph.edges())
    for _ in range(data.draw(st.integers(2, 6))):
        if data.draw(st.booleans()):
            u, v, _ = edges[data.draw(st.integers(0, len(edges) - 1))]
            apply_weight_update(index, u, v, float(data.draw(st.integers(1, 40))))
        else:
            vertex = data.draw(st.integers(0, n - 1))
            apply_flow_update(index, vertex, float(data.draw(st.integers(0, 200))))
    index.tree.validate(graph)
    assert_index_exact(index, graph)
    # paths must stay consistent with distances too
    for s in range(0, n, max(1, n // 3)):
        for t in range(0, n, max(1, n // 3)):
            path = index.path(s, t)
            weight = sum(graph.weight(a, b) for a, b in zip(path, path[1:]))
            assert weight == pytest.approx(index.distance(s, t))


@given(graph=connected_graphs(max_vertices=10), data=st.data())
def test_overlay_interleaving_bit_identical_to_rebuild(graph, data):
    """Interleaved query/update/consolidate == rebuild-from-scratch, bitwise.

    Integer edge weights make every distance an exact float sum, so the
    overlay-served answer must equal the answer of an index built fresh on
    the current graph with ``==`` — no tolerance.
    """
    index = build_h2h(graph)
    overlay = DeltaOverlay(graph, capacity=64)
    oracle = OverlayOracle(index, overlay)
    edges = list(graph.edges())
    n = graph.num_vertices

    def check_against_rebuild():
        fresh = build_h2h(graph.copy())
        for s in range(0, n, max(1, n // 3)):
            for t in range(n):
                assert oracle.distance(s, t) == fresh.distance(s, t), (s, t)

    for _ in range(data.draw(st.integers(2, 7))):
        action = data.draw(st.sampled_from(["update", "query", "consolidate"]))
        if action == "update":
            u, v, _ = edges[data.draw(st.integers(0, len(edges) - 1))]
            overlay.absorb(u, v, float(data.draw(st.integers(1, 40))))
        elif action == "consolidate":
            task = ConsolidationTask(
                oracle.index, overlay,
                on_commit=lambda back: setattr(oracle, "index", back),
            )
            task.run()
            assert task.committed
        else:
            s = data.draw(st.integers(0, n - 1))
            t = data.draw(st.integers(0, n - 1))
            fresh = build_h2h(graph.copy())
            assert oracle.distance(s, t) == fresh.distance(s, t), (s, t)
    check_against_rebuild()
    # drain the overlay and the served answers are still the rebuilt ones
    while not overlay.is_empty:
        ConsolidationTask(
            oracle.index, overlay,
            on_commit=lambda back: setattr(oracle, "index", back),
        ).run()
    check_against_rebuild()
