"""Unit tests for the result-quality analysis helpers."""

from __future__ import annotations

import pytest

from repro.analysis.quality import (
    congestion_savings,
    prediction_regret,
    pruning_quality,
)
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.flow.predictor import TrainablePredictor
from repro.graph.frn import FlowAwareRoadNetwork


@pytest.fixture()
def engines(small_frn):
    index = build_fahl(small_frn)
    reference = FlowAwareEngine(small_frn, oracle=index, alpha=0.5,
                                eta_u=3.0, pruning="none", max_candidates=16)
    pruned = FlowAwareEngine(small_frn, oracle=index, alpha=0.5,
                             eta_u=3.0, pruning="lemma4", max_candidates=16)
    return index, reference, pruned


def sample_queries(frn, rng, count=10):
    n = frn.num_vertices
    queries = []
    while len(queries) < count:
        s, t = map(int, rng.integers(0, n, 2))
        if s != t:
            queries.append(FSPQuery(s, t, int(rng.integers(frn.num_timesteps))))
    return queries


class TestPruningQuality:
    def test_identical_engines_agree_fully(self, engines, small_frn, rng):
        _, reference, _ = engines
        queries = sample_queries(small_frn, rng)
        quality = pruning_quality(reference, reference, queries)
        assert quality.path_agreement == 1.0
        assert quality.mean_score_gap == 0.0
        assert quality.mean_candidate_ratio == pytest.approx(1.0)

    def test_pruned_engine_bounded_gap(self, engines, small_frn, rng):
        _, reference, pruned = engines
        queries = sample_queries(small_frn, rng)
        quality = pruning_quality(reference, pruned, queries)
        assert 0.0 <= quality.path_agreement <= 1.0
        assert quality.mean_score_gap <= quality.max_score_gap
        assert quality.mean_candidate_ratio <= 1.0 + 1e-9
        assert str(quality).startswith("PruningQuality")

    def test_requires_queries(self, engines):
        _, reference, pruned = engines
        with pytest.raises(QueryError):
            pruning_quality(reference, pruned, [])


class TestPredictionRegret:
    def test_perfect_prediction_zero_regret(self, small_frn, rng):
        # small_frn's predicted flow IS the truth -> zero regret
        index = build_fahl(small_frn)
        queries = sample_queries(small_frn, rng)
        summary = prediction_regret(small_frn, index, queries)
        assert summary.path_agreement == 1.0
        assert summary.mean_flow_regret == pytest.approx(0.0)

    def test_noisy_prediction_nonnegative_regret(self, small_grid, rng):
        from repro.flow.synthetic import generate_flow_series

        truth = generate_flow_series(small_grid, days=1, seed=0)
        predicted = TrainablePredictor(epochs=0, seed=5).fit(truth).predict()
        frn = FlowAwareRoadNetwork(small_grid, truth, predicted_flow=predicted)
        index = build_fahl(frn)
        queries = sample_queries(frn, rng)
        summary = prediction_regret(frn, index, queries)
        # routing on bad predictions can never *beat* the oracle on average
        assert summary.mean_flow_regret >= -1e-9
        assert str(summary).startswith("RegretSummary")

    def test_requires_queries(self, small_frn):
        index = build_fahl(small_frn)
        with pytest.raises(QueryError):
            prediction_regret(small_frn, index, [])


class TestCongestionSavings:
    def test_savings_fields(self, small_frn, rng):
        index = build_fahl(small_frn)
        queries = sample_queries(small_frn, rng)
        savings = congestion_savings(small_frn, index, queries, alpha=0.3)
        assert set(savings) == {"mean_flow_savings", "mean_detour", "queries"}
        assert savings["queries"] == len(queries)
        assert savings["mean_flow_savings"] >= -1e-9  # never worse than spatial
        assert savings["mean_detour"] >= 0.0

    def test_alpha_tradeoff(self, small_frn, rng):
        # a flow-heavy blend accepts bigger detours for bigger flow savings
        index = build_fahl(small_frn)
        queries = sample_queries(small_frn, rng, count=12)
        flow_heavy = congestion_savings(small_frn, index, queries, alpha=0.1)
        dist_heavy = congestion_savings(small_frn, index, queries, alpha=0.9)
        assert flow_heavy["mean_detour"] >= dist_heavy["mean_detour"] - 1e-9
        assert (
            flow_heavy["mean_flow_savings"]
            >= dist_heavy["mean_flow_savings"] - 1e-9
        )
