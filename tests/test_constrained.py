"""Unit tests for constrained FSPQ (the paper's future-work extension)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.constrained import (
    ConstrainedFlowAwareEngine,
    ConstraintError,
    QueryConstraints,
)
from repro.core.fahl import build_fahl
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork


@pytest.fixture()
def diamond_frn() -> FlowAwareRoadNetwork:
    """0-1-3 (short, busy) vs 0-2-3 (long, quiet)."""
    graph = RoadNetwork(4, edges=[(0, 1, 1.0), (1, 3, 1.0),
                                  (0, 2, 2.0), (2, 3, 2.0)])
    flow = FlowSeries(np.array([[5.0, 100.0, 1.0, 5.0]]))
    return FlowAwareRoadNetwork(graph, flow)


@pytest.fixture()
def engine(diamond_frn) -> ConstrainedFlowAwareEngine:
    index = build_fahl(diamond_frn)
    return ConstrainedFlowAwareEngine(
        diamond_frn, oracle=index, alpha=0.7, eta_u=3.0
    )


class TestQueryConstraints:
    def test_trivial(self):
        assert QueryConstraints().is_trivial()
        assert not QueryConstraints(max_hops=3).is_trivial()

    def test_validation(self):
        with pytest.raises(QueryError):
            QueryConstraints(max_vertex_flow=-1.0)
        with pytest.raises(QueryError):
            QueryConstraints(max_path_flow=-0.5)
        with pytest.raises(QueryError):
            QueryConstraints(max_hops=0)

    def test_admits_checks(self):
        flow = np.array([1.0, 50.0, 2.0])
        constraints = QueryConstraints(max_vertex_flow=10.0)
        assert constraints.admits([0, 2], flow)
        assert not constraints.admits([0, 1, 2], flow)
        hops = QueryConstraints(max_hops=1)
        assert hops.admits([0, 2], flow)
        assert not hops.admits([0, 1, 2], flow)
        total = QueryConstraints(max_path_flow=10.0)
        assert total.admits([0, 2], flow)
        assert not total.admits([0, 1], flow)


class TestConstrainedEngine:
    def test_trivial_constraints_match_unconstrained(self, engine):
        query = FSPQuery(0, 3, 0)
        plain = engine.query(query)
        constrained = engine.query_constrained(query, QueryConstraints())
        assert constrained.path == plain.path
        assert constrained.score == pytest.approx(plain.score)

    def test_forbidden_vertex_forces_detour(self, engine):
        query = FSPQuery(0, 3, 0)
        result = engine.query_constrained(
            query, QueryConstraints(forbidden_vertices=frozenset({1}))
        )
        assert result.path == (0, 2, 3)
        # SPDis is anchored to the constrained graph
        assert result.shortest_distance == 4.0

    def test_max_vertex_flow_avoids_congestion(self, engine):
        # alpha=0.7 would normally pick the busy short route; the vertex
        # flow cap forbids vertex 1 (flow 100)
        query = FSPQuery(0, 3, 0)
        unconstrained = engine.query_constrained(query, QueryConstraints())
        assert unconstrained.path == (0, 1, 3)
        result = engine.query_constrained(
            query, QueryConstraints(max_vertex_flow=50.0)
        )
        assert result.path == (0, 2, 3)

    def test_max_path_flow(self, engine):
        result = engine.query_constrained(
            FSPQuery(0, 3, 0), QueryConstraints(max_path_flow=50.0)
        )
        assert result.path == (0, 2, 3)
        assert result.flow <= 50.0

    def test_max_hops(self, small_frn):
        index = build_fahl(small_frn)
        engine = ConstrainedFlowAwareEngine(small_frn, oracle=index,
                                            alpha=0.5, eta_u=3.0)
        n = small_frn.num_vertices
        query = FSPQuery(0, n - 1, 0)
        base = engine.query_constrained(query, QueryConstraints())
        hops = len(base.path) - 1
        result = engine.query_constrained(
            query, QueryConstraints(max_hops=hops + 5)
        )
        assert len(result.path) - 1 <= hops + 5

    def test_infeasible_raises(self, engine):
        with pytest.raises(ConstraintError):
            engine.query_constrained(
                FSPQuery(0, 3, 0),
                QueryConstraints(forbidden_vertices=frozenset({1, 2})),
            )

    def test_forbidden_endpoint_rejected(self, engine):
        with pytest.raises(ConstraintError):
            engine.query_constrained(
                FSPQuery(0, 3, 0),
                QueryConstraints(forbidden_vertices=frozenset({0})),
            )

    def test_impossible_flow_cap(self, engine):
        with pytest.raises(ConstraintError):
            engine.query_constrained(
                FSPQuery(0, 3, 0), QueryConstraints(max_vertex_flow=0.5)
            )

    def test_self_query_respects_flow_cap(self, engine):
        result = engine.query_constrained(
            FSPQuery(2, 2, 0), QueryConstraints(max_vertex_flow=10.0)
        )
        assert result.path == (2,)
        with pytest.raises(ConstraintError):
            engine.query_constrained(
                FSPQuery(1, 1, 0), QueryConstraints(max_vertex_flow=10.0)
            )

    def test_counts_rejected_candidates(self, engine):
        result = engine.query_constrained(
            FSPQuery(0, 3, 0), QueryConstraints(max_vertex_flow=50.0)
        )
        assert result.num_pruned >= 1  # the busy route was rejected

    def test_constrained_on_grid_is_exact(self, small_frn, rng):
        """Forbidding random vertices: the engine's SPDis must equal a
        Dijkstra run on the graph minus those vertices."""
        import heapq
        import math

        index = build_fahl(small_frn)
        engine = ConstrainedFlowAwareEngine(small_frn, oracle=index,
                                            alpha=0.5, eta_u=3.0)
        graph = small_frn.graph
        n = graph.num_vertices
        for _ in range(8):
            s, t = map(int, rng.integers(0, n, 2))
            if s == t:
                continue
            banned = {
                int(v) for v in rng.choice(n, size=3, replace=False)
            } - {s, t}
            # reference Dijkstra avoiding the banned set
            dist = {s: 0.0}
            heap = [(0.0, s)]
            while heap:
                d, u = heapq.heappop(heap)
                if d > dist.get(u, math.inf):
                    continue
                for v, w in graph.neighbor_items(u):
                    if v in banned:
                        continue
                    nd = d + w
                    if nd < dist.get(v, math.inf):
                        dist[v] = nd
                        heapq.heappush(heap, (nd, v))
            expected = dist.get(t, math.inf)
            constraints = QueryConstraints(forbidden_vertices=frozenset(banned))
            if math.isinf(expected):
                with pytest.raises(ConstraintError):
                    engine.query_constrained(FSPQuery(s, t, 0), constraints)
            else:
                result = engine.query_constrained(FSPQuery(s, t, 0), constraints)
                assert result.shortest_distance == pytest.approx(expected)
                assert not set(result.path) & banned
