"""Unit tests for the ASCII renderer."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.render import render_network, render_routes
from repro.errors import QueryError


class TestRenderNetwork:
    def test_dimensions(self, small_grid):
        text = render_network(small_grid, width=40, height=12)
        lines = text.splitlines()
        assert len(lines) == 12
        assert all(len(line) == 40 for line in lines)

    def test_plain_network_uses_dots(self, small_grid):
        text = render_network(small_grid, width=30, height=10)
        assert "." in text
        assert set(text) <= {".", " ", "\n"}

    def test_flow_shading_monotone(self, small_grid):
        low = np.zeros(small_grid.num_vertices)
        high = np.arange(small_grid.num_vertices, dtype=float)
        flat = render_network(small_grid, low, width=30, height=10)
        shaded = render_network(small_grid, high, width=30, height=10)
        # a constant field shades uniformly; a spread field uses more glyphs
        assert len(set(shaded) - {" ", "\n"}) > len(set(flat) - {" ", "\n"})

    def test_requires_coordinates(self, triangle_graph):
        with pytest.raises(QueryError):
            render_network(triangle_graph)

    def test_rejects_bad_inputs(self, small_grid):
        with pytest.raises(QueryError):
            render_network(small_grid, width=1)
        with pytest.raises(QueryError):
            render_network(small_grid, np.zeros(3))


class TestRenderRoutes:
    def test_route_marks_and_legend(self, small_grid):
        route = [0, 1, 2]
        text = render_routes(small_grid, {"fast": route}, width=30, height=10)
        assert "S" in text and "T" in text
        assert "f=fast" in text

    def test_two_routes(self, small_grid):
        text = render_routes(
            small_grid,
            {"alpha": [0, 1], "beta": [3, 4]},
            width=30,
            height=10,
        )
        assert "a=alpha" in text and "b=beta" in text

    def test_rejects_empty(self, small_grid):
        with pytest.raises(QueryError):
            render_routes(small_grid, {})
        with pytest.raises(QueryError):
            render_routes(small_grid, {"x": []})
