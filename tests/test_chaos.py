"""End-to-end chaos run: the serving layer under corrupted streams + faults.

Acceptance check for the resilience work: feed the :class:`ResilientEngine`
a deterministic stream mixing clean and corrupted updates while injecting
maintenance faults (transient, escalating and fatal), and assert that

* every corrupted update is quarantined with the matching reason,
* every answered query is *correct* (index distances match Dijkstra on the
  live graph, FSPQ scores match an index-free reference engine),
* the deferred tail degrades the engine rather than corrupting it, and a
  final :meth:`repair` folds everything in and returns to healthy.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import dijkstra_distances
from repro.core.fpsps import FlowAwareEngine
from repro.core.maintenance import FAULT_POINTS
from repro.core.fspq import FSPQuery
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.road_network import RoadNetwork
from repro.serving import FlowUpdate, ResilientEngine, WeightUpdate
from repro.testing import FaultInjector, corrupt_updates

KIND_TO_REASON = {
    "nan": "non-finite",
    "inf": "non-finite",
    "negative": "negative-flow",
    "unknown-vertex": "unknown-vertex",
}

N = 8


def fixed_graph() -> RoadNetwork:
    edges = [
        (0, 1, 4.0), (0, 2, 7.0), (1, 2, 2.0), (1, 3, 5.0),
        (2, 4, 3.0), (3, 4, 6.0), (3, 5, 1.0), (4, 6, 8.0),
        (5, 6, 2.0), (5, 7, 9.0), (6, 7, 3.0), (0, 7, 20.0),
        (2, 5, 11.0),
    ]
    return RoadNetwork(N, edges=edges)


def assert_serving_correct(serving: ResilientEngine, frn) -> None:
    """Index distances match Dijkstra; FSPQ answers match an index-free run."""
    for s in range(N):
        ref = dijkstra_distances(frn.graph, s)
        for t in range(N):
            assert serving.distance(s, t).value == pytest.approx(ref[t]), (s, t)
    reference = FlowAwareEngine(frn, oracle=None, alpha=0.5, eta_u=3.0)
    for s, t in ((0, 7), (2, 6), (5, 1)):
        query = FSPQuery(s, t, 3)
        got = serving.query(query).result
        want = reference.query(query)
        assert got.score == pytest.approx(want.score), (s, t)
        assert got.distance == pytest.approx(want.distance), (s, t)


@pytest.mark.chaos
class TestChaosRun:
    def test_serving_survives_corrupted_stream_and_faults(self):
        graph = fixed_graph()
        frn = FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=5))
        serving = ResilientEngine(frn, max_retries=1, backoff=0.0)
        rng = np.random.default_rng(42)
        edges = [(u, v) for u, v, _ in graph.edges()]

        timestamp = 0.0
        expected_rejections: list[str] = []
        expected_flows = serving.index.flows.copy()
        deferred_round = 3

        for round_no in range(deferred_round + 1):
            vertices = rng.choice(N, size=4, replace=False)
            clean = {int(v): float(rng.uniform(1.0, 300.0)) for v in vertices}
            dirty, corrupted = corrupt_updates(
                clean, num_vertices=N, rate=0.4, seed=round_no
            )

            with FaultInjector() as inj:
                if round_no == 1:
                    # fatal ISU faults: every flow update escalates to GSU
                    for point in ("isu:window-eliminated", "isu:frontier-compared",
                                  "isu:structure-stitched", "isu:labels-refreshed"):
                        inj.fail_at(point, times=-1)
                elif round_no == 2:
                    # transient: retries within ISU (or escalation) recover
                    inj.fail_at("flow:flow-set", times=2)
                elif round_no == deferred_round:
                    # unrecoverable: every strategy fails, updates defer
                    inj.fail_at("flow:flow-set", times=-1)

                for vertex, value in sorted(dirty.items()):
                    timestamp += 1.0
                    outcome = serving.submit(
                        FlowUpdate(vertex, value, timestamp=timestamp)
                    )
                    if vertex >= N:
                        expected_rejections.append("unknown-vertex")
                        assert outcome.reason == "unknown-vertex"
                    elif vertex in corrupted:
                        reason = KIND_TO_REASON[corrupted[vertex]]
                        expected_rejections.append(reason)
                        assert outcome.reason == reason
                    elif round_no == deferred_round:
                        assert outcome.accepted and outcome.deferred
                        expected_flows[vertex] = value  # folded in at repair
                    else:
                        assert outcome.applied
                        if round_no == 1:
                            assert outcome.strategy == "gsu"
                        expected_flows[vertex] = value

                if round_no < deferred_round:
                    # one weight change per round keeps ILU in the mix
                    u, v = edges[round_no % len(edges)]
                    timestamp += 1.0
                    new_weight = float(rng.uniform(1.0, 15.0))
                    assert serving.submit(
                        WeightUpdate(u, v, new_weight, timestamp=timestamp)
                    ).applied
                    assert graph.weight(u, v) == new_weight

            # answered queries stay correct through every round (degraded
            # rounds fall back to direct search — latency, not wrongness)
            assert_serving_correct(serving, frn)
            if round_no < deferred_round:
                assert not serving.degraded
                np.testing.assert_array_equal(serving.index.flows, expected_flows)

        # deferred tail: degraded but quarantined, not corrupted
        assert serving.degraded
        assert serving.status().deferred_updates > 0

        # quarantine ledger matches the corruption we injected exactly
        by_reason = dict(serving.dead_letters.by_reason)
        deferred_count = by_reason.pop("maintenance-failed", 0)
        assert deferred_count == serving.status().deferred_updates
        expected_counts: dict[str, int] = {}
        for reason in expected_rejections:
            expected_counts[reason] = expected_counts.get(reason, 0) + 1
        assert by_reason == expected_counts

        # full repair folds the deferred updates in and re-healthies
        report = serving.repair()
        assert report.ok
        assert not serving.degraded
        np.testing.assert_array_equal(serving.index.flows, expected_flows)
        assert_serving_correct(serving, frn)
        assert serving.distance(0, 7).source == "index"


CONSOLIDATE_POINTS = tuple(
    p for p in FAULT_POINTS if p.startswith("consolidate:")
)


@pytest.mark.chaos
class TestOverlayConsolidationChaos:
    """Kill background consolidation at every checkpoint; queries stay exact.

    The overlay serving contract: a consolidation crash can never corrupt
    the serving pair.  Before the swap commits, a kill discards the back
    buffer and the old (index, overlay) pair keeps answering; the commit
    itself is assignment-only, so a kill at ``swap-committed`` lands the
    *complete* new pair.  Either way the engine never exposes a
    half-swapped index, and a retry (or escalation) drains the backlog.
    """

    @pytest.mark.parametrize("point", CONSOLIDATE_POINTS)
    def test_kill_at_checkpoint_keeps_queries_exact(self, point):
        graph = fixed_graph()
        frn = FlowAwareRoadNetwork(
            graph, generate_flow_series(graph, days=1, seed=5)
        )
        serving = ResilientEngine(
            frn, max_retries=1, backoff=0.0, update_mode="overlay"
        )
        ts = 0.0
        for u, v, w in ((0, 1, 9.0), (5, 6, 0.5), (2, 4, 7.5)):
            ts += 1.0
            assert serving.submit(WeightUpdate(u, v, w, timestamp=ts)).applied
        ts += 1.0
        assert serving.submit(FlowUpdate(3, 42.0, timestamp=ts)).applied

        index_before = serving.index
        with FaultInjector() as inj:
            inj.fail_at(point, times=1)
            outcome = None
            while serving.consolidation_pending:
                outcome = serving.maintenance_tick(steps=1)
                # never a half-swapped pair: the engine's index and the
                # oracle's view swap in the same assignment block
                assert serving.oracle.index is serving.index
                assert_serving_correct(serving, frn)
                if outcome in ("failed", "done", "rebuilt"):
                    break
            assert point in inj.trace

        if outcome == "done":
            # the fault fired *after* the atomic swap: new pair is live
            assert serving.index is not index_before
        elif outcome == "failed":
            # pre-swap kill: back buffer discarded, serving pair untouched
            assert serving.index is index_before
            assert serving.dead_letters.by_reason["consolidation-failed"] == 1
        else:
            pytest.fail(f"unexpected consolidation outcome {outcome!r}")
        assert not serving.degraded

        # recovery: the next rounds drain the overlay and queued flows
        while serving.consolidation_pending:
            serving.maintenance_tick(steps=1)
            assert serving.oracle.index is serving.index
        assert serving.status().overlay_edges == 0
        assert serving.index.flows[3] == 42.0
        assert_serving_correct(serving, frn)
        assert serving.audit().ok
