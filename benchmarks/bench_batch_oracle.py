"""Throughput benchmark for the batch query subsystem.

Measures, on an NYC-S-scale synthetic network (the dataset registry's NYC
topology at reduced scale):

1. **distance oracle** — a scalar ``HierarchyIndex.distance`` loop vs the
   vectorised ``distance_many`` (label arena + batched LCA) over
   ``--pairs`` random pairs; the one-off arena packing time is reported
   separately;
2. **batch FSPQ** — a plain ``engine.query`` loop vs serial
   ``batch_query`` (shared memoised oracle + bulk prefetch) vs
   ``batch_query(workers=N)`` (fork pool) over a ``--queries`` workload
   whose targets are drawn from a small pool, as in kNN / navigation
   session traffic.

Each mode runs on a fresh engine, ``--repeat`` times, best time kept, and
the results of every mode are checked for exact agreement.  The numbers
land in ``BENCH_batch_oracle.json`` (repo root by default) so later
optimisation PRs have a perf trajectory to beat.  Note that the parallel
row can only beat serial when more than one CPU is available — the
recorded ``cpu_count`` says what the numbers mean.

Run directly::

    PYTHONPATH=src python benchmarks/bench_batch_oracle.py
"""

from __future__ import annotations

import argparse
import json
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks._env import env_info
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _env import env_info
from repro.core.batch import batch_query
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.workloads.datasets import load_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _best_of(repeat: int, run) -> float:
    return min(min(run() for _ in range(repeat)), float("inf"))


def bench_distance_oracle(index, n: int, pairs: int, repeat: int, rng) -> dict:
    """Scalar loop vs vectorised ``distance_many`` over random pairs."""
    us = rng.integers(0, n, pairs)
    vs = rng.integers(0, n, pairs)
    us_list, vs_list = us.tolist(), vs.tolist()

    start = time.perf_counter()
    index.arena()
    arena_seconds = time.perf_counter() - start

    def scalar() -> float:
        start = time.perf_counter()
        for u, v in zip(us_list, vs_list):
            index.distance(u, v)
        return time.perf_counter() - start

    def vectorized() -> float:
        start = time.perf_counter()
        index.distance_many(us, vs)
        return time.perf_counter() - start

    scalar_seconds = _best_of(repeat, scalar)
    vectorized_seconds = _best_of(repeat, vectorized)
    reference = np.asarray([index.distance(u, v) for u, v in zip(us_list, vs_list)])
    exact = bool(np.array_equal(index.distance_many(us, vs), reference))
    return {
        "pairs": pairs,
        "arena_build_seconds": round(arena_seconds, 6),
        "scalar_seconds": round(scalar_seconds, 6),
        "vectorized_seconds": round(vectorized_seconds, 6),
        "speedup": round(scalar_seconds / vectorized_seconds, 2),
        "scalar_pairs_per_second": round(pairs / scalar_seconds),
        "vectorized_pairs_per_second": round(pairs / vectorized_seconds),
        "exact_match": exact,
    }


def bench_batch_fspq(
    frn, index, num_queries: int, num_targets: int, workers: int,
    repeat: int, rng,
) -> dict:
    """Plain loop vs serial ``batch_query`` vs the fork-pool path."""
    n = frn.num_vertices
    targets = rng.choice(n, size=num_targets, replace=False)
    queries: list[FSPQuery] = []
    while len(queries) < num_queries:
        source = int(rng.integers(0, n))
        target = int(rng.choice(targets))
        if source != target:
            queries.append(
                FSPQuery(source, target, int(rng.integers(frn.num_timesteps)))
            )

    def fresh_engine() -> FlowAwareEngine:
        return FlowAwareEngine(frn, oracle=index, max_candidates=8)

    def plain() -> float:
        engine = fresh_engine()
        start = time.perf_counter()
        for query in queries:
            engine.query(query)
        return time.perf_counter() - start

    def serial() -> float:
        engine = fresh_engine()
        start = time.perf_counter()
        batch_query(engine, queries)
        return time.perf_counter() - start

    def parallel() -> float:
        engine = fresh_engine()
        start = time.perf_counter()
        batch_query(engine, queries, workers=workers)
        return time.perf_counter() - start

    plain_seconds = _best_of(repeat, plain)
    serial_seconds = _best_of(repeat, serial)
    parallel_seconds = _best_of(repeat, parallel)

    engine = fresh_engine()
    reference = [engine.query(q) for q in queries]
    identical = (
        batch_query(fresh_engine(), queries) == reference
        and batch_query(fresh_engine(), queries, workers=workers) == reference
    )
    return {
        "queries": num_queries,
        "distinct_targets": num_targets,
        "workers": workers,
        "plain_loop_seconds": round(plain_seconds, 4),
        "serial_seconds": round(serial_seconds, 4),
        "parallel_seconds": round(parallel_seconds, 4),
        "serial_speedup_vs_plain": round(plain_seconds / serial_seconds, 2),
        "parallel_speedup_vs_serial": round(serial_seconds / parallel_seconds, 2),
        "results_identical": bool(identical),
    }


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NYC")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--pairs", type=int, default=10_000)
    parser.add_argument("--queries", type=int, default=200)
    parser.add_argument("--targets", type=int, default=24)
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--repeat", type=int, default=5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_batch_oracle.json")
    )
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset, scale=args.scale, days=args.days,
                           seed=args.seed)
    frn = dataset.frn
    start = time.perf_counter()
    index = build_fahl(frn)
    build_seconds = time.perf_counter() - start
    rng = np.random.default_rng(args.seed)

    payload = {
        "generated_unix": int(time.time()),
        "machine": env_info(),
        "dataset": {
            "label": f"{args.dataset}-S",
            "name": args.dataset,
            "scale": args.scale,
            "vertices": frn.num_vertices,
            "edges": frn.num_edges,
            "index_build_seconds": round(build_seconds, 4),
        },
        "distance_oracle": bench_distance_oracle(
            index, frn.num_vertices, args.pairs, args.repeat, rng
        ),
        "batch_fspq": bench_batch_fspq(
            frn, index, args.queries, args.targets, args.workers,
            args.repeat, rng,
        ),
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    oracle = payload["distance_oracle"]
    fspq = payload["batch_fspq"]
    print(f"wrote {args.out}")
    print(
        f"distance oracle: {oracle['pairs']} pairs — scalar "
        f"{oracle['scalar_seconds']:.3f}s, vectorized "
        f"{oracle['vectorized_seconds']:.4f}s ({oracle['speedup']}x), "
        f"exact={oracle['exact_match']}"
    )
    print(
        f"batch FSPQ: {fspq['queries']} queries — plain "
        f"{fspq['plain_loop_seconds']:.2f}s, serial batch "
        f"{fspq['serial_seconds']:.2f}s, workers={fspq['workers']} "
        f"{fspq['parallel_seconds']:.2f}s, identical={fspq['results_identical']}"
    )
    return payload


if __name__ == "__main__":
    main()
