"""Fig. 9 benchmark: label-update time per method (ILU vs leaf rebuild)."""

from __future__ import annotations

import pytest

from repro.baselines.gtree import TDGTree
from repro.core.maintenance import apply_weight_update
from repro.labeling.h2h import H2HIndex
from repro.workloads.updates import generate_weight_updates


@pytest.mark.parametrize("method", ["TD-G-tree", "H2H", "FAHL-W"])
def test_fig9_label_update(benchmark, brn_suite, brn_dataset, method):
    built = brn_suite[method]
    updates = generate_weight_updates(brn_dataset.frn.graph, 4, seed=9)
    # alternate between the generated weight and a bumped one so every
    # benchmark round performs a real (non-noop) update
    state = {"flip": False}

    def apply_updates():
        state["flip"] = not state["flip"]
        bump = 1.0 if state["flip"] else 0.0
        affected = 0
        for u, v, weight in updates:
            if method == "TD-G-tree":
                affected += built.index.update_edge_weight(u, v, weight + bump)
            else:
                stats = apply_weight_update(built.index, u, v, weight + bump)
                affected += stats.labels_affected
        return affected

    affected = benchmark.pedantic(apply_updates, rounds=4, iterations=1)
    benchmark.extra_info["affected_last_round"] = affected


def test_fig9_h2h_vs_gtree_sanity(brn_dataset):
    """The ILU path touches labels; the G-tree path rewrites leaf records."""
    graph_a = brn_dataset.frn.graph.copy()
    graph_b = brn_dataset.frn.graph.copy()
    h2h = H2HIndex(graph_a)
    gtree = TDGTree(graph_b)
    (u, v, w) = next(iter(graph_a.edges()))
    stats = apply_weight_update(h2h, u, v, w * 2)
    records = gtree.update_edge_weight(u, v, w * 2)
    assert stats.shortcuts_changed >= 1
    assert records >= 1
