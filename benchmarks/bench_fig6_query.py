"""Fig. 6 benchmark: FSPQ query time per method over the FQ workload."""

from __future__ import annotations

import pytest

from repro.experiments.runner import ALL_METHODS
from repro.workloads.queries import flatten_groups


@pytest.mark.parametrize("method", ALL_METHODS)
def test_fig6_query_time(benchmark, brn_suite, brn_queries, method):
    """One benchmark row per compared method, mixed FQ1..FQ4 workload."""
    built = brn_suite[method]
    queries = flatten_groups(brn_queries)
    assert queries

    def run_workload():
        for query in queries:
            built.engine.query(query)

    benchmark.pedantic(run_workload, rounds=2, iterations=1)
    benchmark.extra_info["queries"] = len(queries)
    benchmark.extra_info["index_entries"] = built.index_entries


@pytest.mark.parametrize("group_id", [0, 3])
def test_fig6_fahl_w_by_group(benchmark, brn_suite, brn_queries, group_id):
    """FAHL-W per distance band: the Fig. 6 x-axis at its two extremes."""
    built = brn_suite["FAHL-W"]
    queries = brn_queries[group_id]
    assert queries

    def run_group():
        for query in queries:
            built.engine.query(query)

    benchmark.pedantic(run_group, rounds=2, iterations=1)
