"""Fig. 8 benchmark: GSU vs ISU structure-update time per batch size."""

from __future__ import annotations

import pytest

from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_updates
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.updates import generate_flow_updates


@pytest.mark.parametrize("method", ["gsu", "isu"])
@pytest.mark.parametrize("batch", [4, 8])
def test_fig8_structure_update(benchmark, brn_dataset, method, batch):
    frn = brn_dataset.frn
    updates = generate_flow_updates(frn, batch, timestep=0, seed=batch)

    def fresh_index():
        private = FlowAwareRoadNetwork(
            frn.graph.copy(), frn.flow,
            predicted_flow=frn.predicted_flow, lanes=frn.lanes,
        )
        return (FAHLIndex.from_frn(private, beta=0.5),), {}

    def apply_batch(index):
        apply_flow_updates(index, updates, method=method)

    benchmark.pedantic(apply_batch, setup=fresh_index, rounds=3, iterations=1)
    benchmark.extra_info["flow_changes"] = batch
