"""Fig. 13 benchmark: mixed update batches at different flow/weight ratios."""

from __future__ import annotations

import pytest

from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_updates, apply_weight_update
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.updates import generate_mixed_updates


@pytest.mark.parametrize("ratio", [0.25, 1.0, 4.0])
def test_fig13_update_ratio(benchmark, brn_dataset, ratio):
    """FAHL maintenance cost for a 12-update batch split by lambda."""
    frn = brn_dataset.frn
    flow_updates, weight_updates = generate_mixed_updates(
        frn, total=12, update_ratio=ratio, seed=3
    )

    def fresh_index():
        private = FlowAwareRoadNetwork(
            frn.graph.copy(), frn.flow,
            predicted_flow=frn.predicted_flow, lanes=frn.lanes,
        )
        return (FAHLIndex.from_frn(private, beta=0.5),), {}

    def apply_batch(index):
        for u, v, weight in weight_updates:
            apply_weight_update(index, u, v, weight)
        apply_flow_updates(index, flow_updates, method="isu")

    benchmark.pedantic(apply_batch, setup=fresh_index, rounds=3, iterations=1)
    benchmark.extra_info["lambda"] = ratio
    benchmark.extra_info["flow_updates"] = len(flow_updates)
    benchmark.extra_info["weight_updates"] = len(weight_updates)
