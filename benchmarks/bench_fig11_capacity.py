"""Fig. 11 benchmark: capacity-based flow (the '+' variants) over W_c."""

from __future__ import annotations

import pytest

from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.workloads.queries import flatten_groups


@pytest.mark.parametrize("w_c", [0.3, 0.7])
@pytest.mark.parametrize("pruning", ["none", "lemma4"])
def test_fig11_capacity_flow(benchmark, brn_dataset, brn_queries, w_c, pruning):
    """FAHL-O+ / FAHL-W+ query time at two capacity blends."""
    frn = brn_dataset.frn
    index = FAHLIndex.from_frn(frn, beta=0.5, use_capacity=True, w_c=w_c)
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                             pruning=pruning, max_candidates=8,
                             use_capacity=True, w_c=w_c)
    queries = flatten_groups(brn_queries)

    def run_workload():
        for query in queries:
            engine.query(query)

    benchmark.pedantic(run_workload, rounds=2, iterations=1)
    benchmark.extra_info["w_c"] = w_c
    benchmark.extra_info["variant"] = "FAHL-W+" if pruning == "lemma4" else "FAHL-O+"
