"""Throughput benchmark for the sharded serving gateway.

Measures, on an NYC-S-scale synthetic network:

1. **batch throughput** — a monolithic ``FlowAwareEngine`` serial loop vs
   ``ShardedGateway.batch`` at K shards with a cold cache, over a mixed
   intra-/cross-shard workload.  Sharded fan-out only beats the monolith
   when more than one CPU is available — the recorded ``cpu_count`` says
   what the numbers mean (on a 1-CPU container the cap is documented, not
   beaten);
2. **cached throughput** — the same workload re-asked ``--rounds`` times,
   so every round after the first is served by the flow-interval-aware
   result cache; the achieved hit rate is recorded;
3. **exactness** — every sharded shortest distance is compared against
   the monolithic answer.

The numbers land in ``BENCH_sharded_gateway.json`` (repo root by
default).  Run directly::

    PYTHONPATH=src python benchmarks/bench_sharded_gateway.py
"""

from __future__ import annotations

import argparse
import json
import os
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks._env import env_info
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _env import env_info
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.scale import ShardedGateway
from repro.workloads.datasets import load_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _workload(frn, num_queries: int, rng) -> list[FSPQuery]:
    n = frn.num_vertices
    queries: list[FSPQuery] = []
    while len(queries) < num_queries:
        source = int(rng.integers(0, n))
        target = int(rng.integers(0, n))
        if source != target:
            queries.append(
                FSPQuery(source, target, int(rng.integers(frn.num_timesteps)))
            )
    return queries


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NYC")
    parser.add_argument("--scale", type=float, default=0.2)
    parser.add_argument("--days", type=int, default=1)
    parser.add_argument("--shards", type=int, default=4)
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--rounds", type=int, default=3,
                        help="repeated-workload rounds for the cache phase")
    parser.add_argument("--workers", type=int, default=4)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_sharded_gateway.json")
    )
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset, scale=args.scale, days=args.days,
                           seed=args.seed)
    frn = dataset.frn
    rng = np.random.default_rng(args.seed)
    queries = _workload(frn, args.queries, rng)

    start = time.perf_counter()
    index = build_fahl(frn)
    mono_build_seconds = time.perf_counter() - start
    mono = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                           pruning="none")

    start = time.perf_counter()
    gateway = ShardedGateway(frn, num_shards=args.shards,
                             max_retries=0, backoff=0.0)
    gateway_build_seconds = time.perf_counter() - start

    start = time.perf_counter()
    mono_results = [mono.query(q) for q in queries]
    mono_seconds = time.perf_counter() - start

    start = time.perf_counter()
    cold = gateway.batch(queries, workers=args.workers)
    sharded_cold_seconds = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(args.rounds - 1):
        gateway.batch(queries, workers=args.workers)
    warm_seconds = time.perf_counter() - start
    per_warm_round = warm_seconds / max(1, args.rounds - 1)

    mismatches = sum(
        1 for got, want in zip(cold, mono_results)
        if abs(got.result.shortest_distance - want.shortest_distance) > 1e-9
    )
    cache = gateway.status().cache

    cpu_count = os.cpu_count() or 1
    payload = {
        "generated_unix": int(time.time()),
        "machine": env_info(),
        "dataset": {
            "label": f"{args.dataset}-S",
            "name": args.dataset,
            "scale": args.scale,
            "vertices": frn.num_vertices,
            "edges": frn.num_edges,
            "monolithic_index_build_seconds": round(mono_build_seconds, 4),
            "gateway_build_seconds": round(gateway_build_seconds, 4),
        },
        "topology": {
            "shards": args.shards,
            "shard_sizes": list(gateway.status().shard_sizes),
            "boundary_vertices": gateway.status().boundary_vertices,
            "boundary_table_bytes": gateway.boundary.table_bytes(),
        },
        "batch_throughput": {
            "queries": len(queries),
            "workers": args.workers,
            "monolithic_seconds": round(mono_seconds, 4),
            "sharded_cold_seconds": round(sharded_cold_seconds, 4),
            "sharded_speedup_vs_monolithic": round(
                mono_seconds / sharded_cold_seconds, 2
            ),
            # a 1-CPU container caps fork-pool fan-out at ~1x; the
            # ">=2x at K=4" claim is only testable with cpu_count >= 4
            "parallelism_capped_by_cpu_count": cpu_count < args.shards,
            "distance_mismatches_vs_monolithic": mismatches,
        },
        "cached_throughput": {
            "rounds": args.rounds,
            "first_round_seconds": round(sharded_cold_seconds, 4),
            "per_warm_round_seconds": round(per_warm_round, 4),
            "warm_speedup_vs_cold": round(
                sharded_cold_seconds / max(per_warm_round, 1e-9), 2
            ),
            "cache_hit_rate": round(cache.hit_rate, 4),
            "cache_entries": cache.size,
        },
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    batch = payload["batch_throughput"]
    cached = payload["cached_throughput"]
    print(f"wrote {args.out}")
    print(
        f"batch: {batch['queries']} queries — monolithic "
        f"{batch['monolithic_seconds']:.2f}s, sharded K={args.shards} cold "
        f"{batch['sharded_cold_seconds']:.2f}s "
        f"({batch['sharded_speedup_vs_monolithic']}x, "
        f"cpu_count={cpu_count}), "
        f"mismatches={batch['distance_mismatches_vs_monolithic']}"
    )
    print(
        f"cache: warm round {cached['per_warm_round_seconds']:.3f}s "
        f"({cached['warm_speedup_vs_cold']}x vs cold), hit rate "
        f"{cached['cache_hit_rate']:.1%}"
    )
    return payload


if __name__ == "__main__":
    main()
