"""Fig. 10 benchmark: FAHL query time vs prediction-training epochs."""

from __future__ import annotations

import pytest

from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import flatten_groups, generate_query_groups

from benchmarks.conftest import BENCH_SCALE


@pytest.mark.parametrize("epochs", [50, 200])
def test_fig10_epoch_quality(benchmark, epochs):
    dataset = load_dataset("BRN", scale=BENCH_SCALE, days=2, epochs=epochs, seed=0)
    frn = dataset.frn
    index = FAHLIndex.from_frn(frn, beta=0.5)
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                             pruning="lemma4", max_candidates=8)
    queries = flatten_groups(
        generate_query_groups(frn, num_groups=3, queries_per_group=3, seed=0)
    )

    def run_workload():
        for query in queries:
            engine.query(query)

    benchmark.pedantic(run_workload, rounds=2, iterations=1)
    benchmark.extra_info["epochs"] = epochs
    benchmark.extra_info["index_entries"] = index.index_size_entries()
