"""Async micro-batching gateway benchmark: window on vs off.

Drives the same request stream through two :class:`AsyncGateway`
configurations over one shared engine/index:

* **window off** — ``max_window=1``: every request dispatches alone
  (the per-request baseline any non-batching async front door gives);
* **window on** — the default coalescing window: concurrent requests
  share one vectorised ``engine.batch`` dispatch per window.

Both run a **closed loop** (fixed concurrency, back-to-back clients)
and an **open loop** (fixed arrival rate, latency includes queueing
delay) at each request count, recording wall-clock throughput,
throughput-per-core and latency quantiles.  The claim under test: at
>= 1k concurrent requests the coalescing window wins throughput-per-core
over the per-request baseline, because each window bulk-fills the
memoised oracle with one ``distance_many`` sweep instead of thousands
of scalar label scans.

Results land in ``BENCH_async_gateway.json``.  Run directly::

    PYTHONPATH=src python benchmarks/bench_async_gateway.py
"""

from __future__ import annotations

import argparse
import asyncio
import json
import os
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks._env import env_info
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _env import env_info
from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.serving.async_demo import closed_loop, open_loop
from repro.serving.async_gateway import AsyncGateway
from repro.workloads.datasets import load_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _workload(frn, num_requests: int, distance_fraction: float, rng) -> list:
    """A mixed stream: FSPQ queries + plain distance lookups.

    Distance requests are the coalescing window's best case — one
    vectorised ``distance_many`` call per window vs one scalar label
    scan per request — while FSPQ queries exercise the ``engine.batch``
    dispatch; real navigation traffic is a blend of both.
    """
    n = frn.num_vertices
    requests: list = []
    while len(requests) < num_requests:
        source = int(rng.integers(0, n))
        target = int(rng.integers(0, n))
        if source == target:
            continue
        if rng.random() < distance_fraction:
            requests.append((source, target))
        else:
            requests.append(
                FSPQuery(source, target, int(rng.integers(frn.num_timesteps)))
            )
    return requests


def _drive(engine, queries, *, window: bool, concurrency: int,
           rate: float, window_seconds: float) -> dict:
    """One window-on/off configuration: closed + open loop summaries."""

    async def run():
        async with AsyncGateway(
            engine,
            window_seconds=window_seconds if window else 0.0,
            max_window=256 if window else 1,
            max_queue=max(len(queries), 1024),
        ) as gateway:
            closed = await closed_loop(gateway, queries, concurrency)
            opened = await open_loop(gateway, queries, rate)
            return closed, opened, gateway.stats

    closed, opened, stats = asyncio.run(run())
    cores = os.cpu_count() or 1
    out = {"window": "on" if window else "off"}
    for result in (closed, opened):
        summary = result.summary()
        summary["throughput_per_core_rps"] = round(
            summary["throughput_rps"] / cores, 2
        )
        for key in ("wall_seconds", "throughput_rps",
                    "p50_ms", "p95_ms", "p99_ms"):
            summary[key] = round(summary[key], 3)
        out[result.mode] = summary
    out["windows"] = stats.windows
    out["coalescing_ratio"] = round(stats.coalescing_ratio(), 2)
    out["largest_window"] = stats.largest_window
    return out


def main(argv=None) -> dict:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NYC")
    parser.add_argument("--scale", type=float, default=0.1)
    parser.add_argument("--days", type=int, default=1)
    parser.add_argument("--requests", type=int, nargs="+",
                        default=[1000, 10000],
                        help="request counts to sweep (default: 1000 10000)")
    parser.add_argument("--concurrency", type=int, default=256,
                        help="closed-loop virtual clients (default 256)")
    parser.add_argument("--rate", type=float, default=4000.0,
                        help="open-loop arrival rate per second")
    parser.add_argument("--distance-fraction", type=float, default=0.9,
                        help="fraction of plain distance lookups in the "
                             "mixed workload (default 0.9)")
    parser.add_argument("--window-ms", type=float, default=1.5)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_async_gateway.json")
    )
    args = parser.parse_args(argv)

    dataset = load_dataset(args.dataset, scale=args.scale, days=args.days,
                           seed=args.seed)
    frn = dataset.frn
    rng = np.random.default_rng(args.seed)

    start = time.perf_counter()
    engine = FlowAwareEngine(frn, oracle=build_fahl(frn))
    build_seconds = time.perf_counter() - start

    sweeps = []
    for count in args.requests:
        queries = _workload(frn, count, args.distance_fraction, rng)
        off = _drive(engine, queries, window=False,
                     concurrency=args.concurrency, rate=args.rate,
                     window_seconds=args.window_ms / 1000.0)
        engine.invalidate()  # both configurations start cache-cold
        on = _drive(engine, queries, window=True,
                    concurrency=args.concurrency, rate=args.rate,
                    window_seconds=args.window_ms / 1000.0)
        engine.invalidate()
        sweeps.append({
            "requests": count,
            "window_off": off,
            "window_on": on,
            "closed_throughput_per_core_gain": round(
                on["closed"]["throughput_per_core_rps"]
                / max(off["closed"]["throughput_per_core_rps"], 1e-9), 2
            ),
            "open_p99_ms_off_vs_on": [
                off["open"]["p99_ms"], on["open"]["p99_ms"]
            ],
        })

    payload = {
        "generated_unix": int(time.time()),
        "machine": env_info(),
        "dataset": {
            "label": f"{args.dataset}-S",
            "name": args.dataset,
            "scale": args.scale,
            "vertices": frn.num_vertices,
            "edges": frn.num_edges,
            "index_build_seconds": round(build_seconds, 4),
        },
        "config": {
            "concurrency": args.concurrency,
            "open_loop_rate_rps": args.rate,
            "distance_fraction": args.distance_fraction,
            "window_ms": args.window_ms,
            "max_window": 256,
        },
        "sweeps": sweeps,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.out}")
    for sweep in sweeps:
        on, off = sweep["window_on"], sweep["window_off"]
        print(
            f"  {sweep['requests']} requests: closed-loop "
            f"{off['closed']['throughput_per_core_rps']:,.0f} -> "
            f"{on['closed']['throughput_per_core_rps']:,.0f} req/s/core "
            f"({sweep['closed_throughput_per_core_gain']}x with the window), "
            f"open-loop p99 {off['open']['p99_ms']:.1f}ms -> "
            f"{on['open']['p99_ms']:.1f}ms, coalescing ratio "
            f"{on['coalescing_ratio']}"
        )
    return payload


if __name__ == "__main__":
    main()
