"""Shared fixtures for the per-figure benchmark suite.

Benchmarks run on deliberately small dataset instances (``BENCH_SCALE``) so
the whole suite finishes in minutes; the experiment CLI (`fahl-repro run`)
is the place for the full-scale numbers.  Session-scoped fixtures build
each dataset and method suite once.
"""

from __future__ import annotations

import pytest

from repro.experiments.runner import (
    ExperimentConfig,
    build_method_suite,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import generate_query_groups

BENCH_SCALE = 0.12
BENCH_CONFIG = ExperimentConfig(
    datasets=("BRN",),
    scale=BENCH_SCALE,
    days=2,
    num_groups=4,
    queries_per_group=3,
    max_candidates=8,
    seed=0,
)


@pytest.fixture(scope="session")
def bench_config() -> ExperimentConfig:
    return BENCH_CONFIG


@pytest.fixture(scope="session")
def brn_dataset():
    return load_dataset("BRN", scale=BENCH_SCALE, days=2, seed=0)


@pytest.fixture(scope="session")
def nyc_dataset():
    return load_dataset("NYC", scale=BENCH_SCALE, days=2, seed=0)


@pytest.fixture(scope="session")
def brn_suite(brn_dataset, bench_config):
    return build_method_suite(brn_dataset, bench_config)


@pytest.fixture(scope="session")
def brn_queries(brn_dataset, bench_config):
    groups = generate_query_groups(
        brn_dataset.frn,
        num_groups=bench_config.num_groups,
        queries_per_group=bench_config.queries_per_group,
        seed=bench_config.seed,
    )
    return groups
