"""Benchmarks for the extension features: ALT, PLL, kNN, trajectories.

These are the ablation/extension counterparts of the per-figure benches —
extra comparison points (ALT, PLL) on the Fig. 6/7 axes and the cost of
the downstream operations (kNN pickup search, fleet simulation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.baselines.dijkstra import DijkstraOracle
from repro.baselines.landmarks import ALTOracle
from repro.baselines.pll import PLLIndex
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.knn import flow_aware_knn
from repro.workloads.trajectories import flows_from_trips, generate_trips


@pytest.mark.parametrize("method", ["ALT", "PLL"])
def test_extra_index_construction(benchmark, brn_dataset, method):
    graph = brn_dataset.frn.graph

    def build():
        if method == "ALT":
            return ALTOracle(graph.copy(), num_landmarks=8)
        return PLLIndex(graph.copy())

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index_entries"] = index.index_size_entries()


@pytest.mark.parametrize("method", ["ALT", "PLL"])
def test_extra_index_distance_queries(benchmark, brn_dataset, method):
    graph = brn_dataset.frn.graph
    oracle = (
        ALTOracle(graph, num_landmarks=8)
        if method == "ALT"
        else PLLIndex(graph)
    )
    rng = np.random.default_rng(0)
    pairs = [
        tuple(map(int, rng.integers(0, graph.num_vertices, 2)))
        for _ in range(30)
    ]

    def run_queries():
        for s, t in pairs:
            oracle.distance(s, t)

    benchmark.pedantic(run_queries, rounds=3, iterations=1)


def test_flow_aware_knn_bench(benchmark, brn_dataset):
    frn = brn_dataset.frn
    index = FAHLIndex.from_frn(frn)
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                             pruning="lemma4", max_candidates=8)
    rng = np.random.default_rng(1)
    pois = [int(v) for v in rng.choice(frn.num_vertices, 20, replace=False)
            if v != 0]

    benchmark.pedantic(
        lambda: flow_aware_knn(engine, 0, pois, k=3, timestep=8),
        rounds=3,
        iterations=1,
    )


def test_trajectory_flow_generation(benchmark, brn_dataset):
    graph = brn_dataset.frn.graph
    oracle = DijkstraOracle(graph)

    def simulate():
        trips = generate_trips(graph, oracle, num_vehicles=60, days=1, seed=0)
        return flows_from_trips(trips, graph.num_vertices, 24)

    series = benchmark.pedantic(simulate, rounds=2, iterations=1)
    benchmark.extra_info["passages"] = int(series.matrix.sum())
