"""Single-query FSPQ latency: flat (vectorised) kernel vs scalar reference.

Runs the same query workload through two ``FlowAwareEngine`` instances
sharing one FAHL index — one with ``kernel="flat"`` (quantised label-arena
gather, lazy-Yen spur kernel, vectorised Lemma-4 scoring) and one with
``kernel="scalar"`` (the original per-candidate loops, kept as exactness
reference).  Every pair of answers is compared for full ``FSPResult``
equality, and per-query latencies are recorded with
:class:`repro.obs.LatencyRecorder` so the JSON carries exact p50/p95/p99.

The numbers land in ``BENCH_fspq_latency.json`` (repo root by default).
``--tiny`` shrinks the workload for CI smoke runs, and ``--check BASELINE``
turns the script into a regression gate: it exits non-zero when the flat
and scalar kernels disagree on any query, or when the measured flat/scalar
p50 speedup drops below half the baseline's (a ratio gate, robust to slow
CI machines).

Run directly::

    PYTHONPATH=src python benchmarks/bench_fspq_latency.py
    PYTHONPATH=src python benchmarks/bench_fspq_latency.py \
        --tiny --check BENCH_fspq_latency_tiny.json
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks._env import env_info
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _env import env_info
from repro import obs
from repro.core.fahl import build_fahl
from repro.core.fpsps import PRUNING_MODES, FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import QueryError
from repro.workloads.datasets import load_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent


def make_queries(frn, num_queries: int, rng) -> list[FSPQuery]:
    n = frn.num_vertices
    queries: list[FSPQuery] = []
    while len(queries) < num_queries:
        source = int(rng.integers(0, n))
        target = int(rng.integers(0, n))
        if source != target:
            queries.append(
                FSPQuery(source, target, int(rng.integers(frn.num_timesteps)))
            )
    return queries


def _timed_answers(engine: FlowAwareEngine, queries, recorder) -> list:
    """Answer every query, recording per-query wall time; None on QueryError."""
    answers = []
    for query in queries:
        start = time.perf_counter()
        try:
            result = engine.query(query)
        except QueryError:
            result = None
        recorder.observe(time.perf_counter() - start)
        answers.append(result)
    return answers


def bench_mode(frn, index, queries, pruning: str, max_candidates: int) -> dict:
    """Flat vs scalar engines on a shared index, full-result comparison."""
    engines = {
        kernel: FlowAwareEngine(
            frn,
            oracle=index,
            pruning=pruning,
            kernel=kernel,
            max_candidates=max_candidates,
        )
        for kernel in ("flat", "scalar")
    }
    # Warm both engines on one query so one-off setup (the flat kernel's
    # adjacency/arena build, the scalar oracle's caches) stays out of the
    # per-query percentiles, exactly like a long-lived server.
    for engine in engines.values():
        try:
            engine.query(queries[0])
        except QueryError:
            pass

    recorders = {kernel: obs.LatencyRecorder() for kernel in engines}
    answers = {
        kernel: _timed_answers(engines[kernel], queries, recorders[kernel])
        for kernel in engines
    }
    mismatches = sum(
        1 for flat, ref in zip(answers["flat"], answers["scalar"])
        if flat != ref
    )
    flat = recorders["flat"].summary()
    scalar = recorders["scalar"].summary()
    return {
        "pruning": pruning,
        "queries": len(queries),
        "mismatches": mismatches,
        "flat": {k: round(v, 9) if isinstance(v, float) else v
                 for k, v in flat.items()},
        "scalar": {k: round(v, 9) if isinstance(v, float) else v
                   for k, v in scalar.items()},
        "speedup_p50": round(scalar["p50"] / flat["p50"], 3),
        "speedup_p99": round(scalar["p99"] / flat["p99"], 3),
        "speedup_mean": round(scalar["mean"] / flat["mean"], 3),
    }


def check_against_baseline(payload: dict, baseline_path: Path) -> list[str]:
    """Regression gate: exact parity, and p50 speedup >= baseline/2."""
    problems: list[str] = []
    baseline = json.loads(baseline_path.read_text())
    baseline_modes = {m["pruning"]: m for m in baseline.get("modes", [])}
    for mode in payload["modes"]:
        name = mode["pruning"]
        if mode["mismatches"]:
            problems.append(
                f"{name}: {mode['mismatches']} flat/scalar mismatches"
            )
        reference = baseline_modes.get(name)
        if reference is None:
            continue
        floor = reference["speedup_p50"] / 2.0
        if mode["speedup_p50"] < floor:
            problems.append(
                f"{name}: p50 speedup {mode['speedup_p50']}x fell below "
                f"{floor:.2f}x (half the committed baseline "
                f"{reference['speedup_p50']}x)"
            )
    return problems


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NYC")
    parser.add_argument("--scale", type=float, default=0.35)
    parser.add_argument("--days", type=int, default=2)
    parser.add_argument("--queries", type=int, default=120)
    parser.add_argument("--candidates", type=int, default=64,
                        help="candidate-path budget per query (64 is the "
                             "engine default; experiments use 12)")
    parser.add_argument("--modes", default=",".join(PRUNING_MODES),
                        help="comma-separated pruning modes to benchmark")
    parser.add_argument("--dimacs", metavar="PATH", default=None,
                        help="benchmark a real DIMACS .gr file instead of "
                             "the synthetic dataset")
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke preset: small graph, few queries")
    parser.add_argument("--check", metavar="BASELINE_JSON", default=None,
                        help="exit non-zero on any flat/scalar mismatch or "
                             "a >2x p50-speedup regression vs this baseline")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_fspq_latency.json")
    )
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale = 0.12
        args.queries = min(args.queries, 40)

    if args.dimacs:
        dataset = load_dataset(f"dimacs:{args.dimacs}", days=args.days,
                               seed=args.seed)
    else:
        dataset = load_dataset(args.dataset, scale=args.scale,
                               days=args.days, seed=args.seed)
    frn = dataset.frn
    start = time.perf_counter()
    index = build_fahl(frn)
    build_seconds = time.perf_counter() - start
    rng = np.random.default_rng(args.seed)
    queries = make_queries(frn, args.queries, rng)

    modes = [m.strip() for m in args.modes.split(",") if m.strip()]
    payload = {
        "generated_unix": int(time.time()),
        "machine": env_info(),
        "dataset": {
            "label": dataset.name if args.dimacs else f"{args.dataset}-S",
            "name": dataset.name,
            "scale": None if args.dimacs else args.scale,
            "vertices": frn.num_vertices,
            "edges": frn.num_edges,
            "index_build_seconds": round(build_seconds, 4),
            "arena_quantized": bool(index.arena().quantized),
        },
        "workload": {
            "queries": args.queries,
            "max_candidates": args.candidates,
            "seed": args.seed,
            "tiny": bool(args.tiny),
        },
        "modes": [
            bench_mode(frn, index, queries, mode, args.candidates)
            for mode in modes
        ],
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.out}")
    for mode in payload["modes"]:
        print(
            f"{mode['pruning']:>8}: scalar p50 "
            f"{mode['scalar']['p50'] * 1000:.3f}ms, flat p50 "
            f"{mode['flat']['p50'] * 1000:.3f}ms "
            f"({mode['speedup_p50']}x; p99 {mode['speedup_p99']}x), "
            f"mismatches={mode['mismatches']}"
        )

    if args.check:
        problems = check_against_baseline(payload, Path(args.check))
        for problem in problems:
            print(f"check: {problem}", file=sys.stderr)
        if problems:
            return 1
        print(f"check: ok against {args.check}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
