"""Ablation benchmarks: the engine's quality/speed knobs.

Sweeps ``min_candidates`` (FAHL-W's early-stop floor) and the ordering
blend β, plus the degree-2 contraction preprocessing — the design choices
DESIGN.md calls out, measured.
"""

from __future__ import annotations

import pytest

from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.graph.simplify import contract_degree_two
from repro.labeling.h2h import H2HIndex
from repro.workloads.queries import flatten_groups


@pytest.mark.parametrize("floor", [1, 4, 12])
def test_ablation_min_candidates(benchmark, brn_dataset, brn_queries, floor):
    """FAHL-W speed as the early-stop quality floor rises."""
    frn = brn_dataset.frn
    index = FAHLIndex.from_frn(frn, beta=0.5)
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                             pruning="lemma4", max_candidates=16,
                             min_candidates=floor)
    queries = flatten_groups(brn_queries)

    def run_workload():
        enumerated = 0
        for query in queries:
            enumerated += engine.query(query).num_candidates
        return enumerated

    enumerated = benchmark.pedantic(run_workload, rounds=2, iterations=1)
    benchmark.extra_info["mean_candidates"] = enumerated / len(queries)


@pytest.mark.parametrize("beta", [0.0, 0.5, 1.0])
def test_ablation_beta_build(benchmark, brn_dataset, beta):
    """Index build time and size across the ordering blend."""
    frn = brn_dataset.frn

    index = benchmark.pedantic(
        lambda: FAHLIndex(frn.graph.copy(), frn.total_predicted_flow(),
                          beta=beta),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["index_entries"] = index.index_size_entries()
    benchmark.extra_info["treewidth"] = index.treewidth


def test_ablation_degree2_contraction(benchmark, brn_dataset):
    """Preprocessing effect: H2H build on the contracted vs raw graph."""
    graph = brn_dataset.frn.graph
    simplified = contract_degree_two(graph)

    index = benchmark.pedantic(
        lambda: H2HIndex(simplified.graph.copy()),
        rounds=3,
        iterations=1,
    )
    benchmark.extra_info["raw_vertices"] = graph.num_vertices
    benchmark.extra_info["contracted_vertices"] = simplified.graph.num_vertices
    benchmark.extra_info["index_entries"] = index.index_size_entries()
