"""Durability benchmark: checkpoint cost, WAL replay rate, recover vs rebuild.

Answers the operational question the durability layer exists for: after a
crash, how much faster is ``recover()`` (load newest checkpoint, replay
the WAL tail) than the alternative of rebuilding the index from scratch
and re-applying every update from the feed?

Timeline (NYC-S = the NYC dataset at ``--scale``):

1. **cold build** — construct the FAHL index + serving engine from the
   raw network (timed: the price recovery avoids paying again);
2. apply a first batch of updates, write a **checkpoint** (timed, size
   recorded) — the WAL rotates;
3. apply a second batch (the WAL tail a crash would leave behind), then
   drop the engine without ceremony;
4. **recover** — ``recover(checkpoint_on_recover=False)`` restores the
   checkpoint and replays the tail (timed; the flag keeps the timing
   honest — no fresh checkpoint is folded into the recovery number);
5. **cold restart** — what an operator without durability does: rebuild
   the index from the raw network and re-apply *all* updates (timed).

Exactness is asserted, not assumed: the recovered engine's distances on a
query sample must be bit-identical to the pre-crash engine's.  The script
exits non-zero if any distance mismatches or if recovery fails to beat
the cold restart.  Results go to ``BENCH_recovery.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_recovery.py
    PYTHONPATH=src python benchmarks/bench_recovery.py --tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks._env import env_info
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _env import env_info
from repro.durability import Durability, recover
from repro.serving import ResilientEngine, WeightUpdate
from repro.workloads.datasets import load_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent


def make_updates(frn, count, rng, start_ts=0.0):
    edges = list(frn.graph.edges())
    picks = rng.integers(0, len(edges), size=count)
    factors = rng.uniform(0.7, 1.6, size=count)
    return [
        WeightUpdate(
            edges[int(e)][0],
            edges[int(e)][1],
            float(edges[int(e)][2]) * float(f),
            timestamp=start_ts + i,
        )
        for i, (e, f) in enumerate(zip(picks, factors))
    ]


def sample_pairs(n, count, rng):
    return [
        (int(u), int(v))
        for u, v in zip(
            rng.integers(0, n, size=count), rng.integers(0, n, size=count)
        )
    ]


def distances(engine, pairs):
    return [engine.distance(u, v).value for u, v in pairs]


def run(scale, batch, seed, out_path):
    rng = np.random.default_rng(seed)
    dataset = load_dataset("NYC", scale=scale, seed=seed)
    frn = dataset.frn
    n = frn.num_vertices
    print(f"NYC-S: {n} vertices, {frn.graph.num_edges} edges")

    root = Path(tempfile.mkdtemp(prefix="bench-recovery-"))

    # 1. cold build (the work a checkpoint restore skips)
    t0 = time.perf_counter()
    durability = Durability(root, fsync="interval")
    engine = ResilientEngine(frn, durability=durability)
    cold_build_s = time.perf_counter() - t0

    # 2. first batch, then checkpoint
    first = make_updates(frn, batch, rng)
    for update in first:
        engine.submit(update)
    t0 = time.perf_counter()
    durability.checkpoint(engine)
    checkpoint_s = time.perf_counter() - t0
    ckpt_dir = durability.checkpoint_dir(durability.generation)
    checkpoint_bytes = sum(
        f.stat().st_size for f in ckpt_dir.iterdir() if f.is_file()
    )

    # 3. second batch = the WAL tail a crash strands
    second = make_updates(frn, batch, rng, start_ts=float(batch))
    for update in second:
        engine.submit(update)
    pairs = sample_pairs(n, 200, rng)
    expected = distances(engine, pairs)
    wal_bytes = durability.wal_path(durability.generation).stat().st_size
    durability.close()

    # 4. recover: checkpoint restore + WAL tail replay
    probe = load_dataset("NYC", scale=scale, seed=seed)
    t0 = time.perf_counter()
    recovered = recover(root, probe.frn, checkpoint_on_recover=False)
    recover_s = time.perf_counter() - t0
    report = recovered.last_recovery
    replayed = report.replayed_updates + report.resubmitted_updates
    mismatches = sum(
        1 for got, want in zip(distances(recovered, pairs), expected)
        if got != want
    )
    recovered.durability.close()

    # 5. cold restart: full rebuild + re-apply the entire update history
    probe2 = load_dataset("NYC", scale=scale, seed=seed)
    t0 = time.perf_counter()
    fresh = ResilientEngine(probe2.frn)
    for update in first + second:
        fresh.submit(update)
    cold_restart_s = time.perf_counter() - t0

    payload = {
        "bench": "recovery",
        "env": env_info(),
        "config": {
            "dataset": "NYC-S",
            "scale": scale,
            "seed": seed,
            "num_vertices": n,
            "num_edges": frn.graph.num_edges,
            "updates_per_batch": batch,
        },
        "results": {
            "cold_build_seconds": cold_build_s,
            "checkpoint_write_seconds": checkpoint_s,
            "checkpoint_bytes": checkpoint_bytes,
            "wal_tail_bytes": wal_bytes,
            "recover_seconds": recover_s,
            "cold_restart_seconds": cold_restart_s,
            "recover_speedup": cold_restart_s / recover_s,
            "wal_replayed_updates": replayed,
            "wal_replay_updates_per_second": (
                replayed / recover_s if recover_s > 0 else None
            ),
            "distance_mismatches": mismatches,
            "recovery_report": {
                "generation": report.generation,
                "cold_rebuild": report.cold_rebuild,
                "replayed_updates": report.replayed_updates,
                "resubmitted_updates": report.resubmitted_updates,
                "torn_bytes": report.torn_bytes,
            },
        },
    }
    out_path.write_text(json.dumps(payload, indent=2) + "\n")
    print(json.dumps(payload["results"], indent=2))
    print(f"wrote {out_path}")

    if mismatches:
        print(f"FAIL: {mismatches} recovered distances mismatch", file=sys.stderr)
        return 1
    if recover_s >= cold_restart_s:
        print(
            f"FAIL: recover ({recover_s:.3f}s) did not beat cold restart "
            f"({cold_restart_s:.3f}s)",
            file=sys.stderr,
        )
        return 1
    print(
        f"OK: recover {recover_s:.3f}s vs cold restart {cold_restart_s:.3f}s "
        f"({cold_restart_s / recover_s:.1f}x)"
    )
    return 0


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--updates", type=int, default=120,
                        help="updates per batch (two batches total)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke: small graph, few updates")
    parser.add_argument("--out", type=Path,
                        default=_REPO_ROOT / "BENCH_recovery.json")
    args = parser.parse_args()
    scale, batch = (0.06, 20) if args.tiny else (args.scale, args.updates)
    return run(scale, batch, args.seed, args.out)


if __name__ == "__main__":
    sys.exit(main())
