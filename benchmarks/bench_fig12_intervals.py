"""Fig. 12 benchmark: update-event cost at different recording intervals."""

from __future__ import annotations

import pytest

from repro.core.fahl import FAHLIndex
from repro.core.maintenance import apply_flow_updates, apply_weight_update
from repro.graph.frn import FlowAwareRoadNetwork
from repro.workloads.datasets import load_dataset
from repro.workloads.updates import generate_flow_updates, generate_weight_updates

from benchmarks.conftest import BENCH_SCALE


@pytest.mark.parametrize("interval", [30, 120])
def test_fig12_update_event(benchmark, interval):
    """One maintenance event (2 weight + 2 flow changes) per interval.

    Shorter intervals fire this event more often; the per-event cost shown
    here multiplied by the event rate gives the Fig. 12 totals.
    """
    dataset = load_dataset("BRN", scale=BENCH_SCALE, days=2,
                           interval_minutes=interval, seed=0)
    frn = dataset.frn
    weight_updates = generate_weight_updates(frn.graph, 2, seed=1)
    flow_updates = generate_flow_updates(frn, 2, timestep=0, seed=1)

    def fresh_index():
        private = FlowAwareRoadNetwork(
            frn.graph.copy(), frn.flow,
            predicted_flow=frn.predicted_flow, lanes=frn.lanes,
        )
        return (FAHLIndex.from_frn(private, beta=0.5),), {}

    def one_event(index):
        for u, v, weight in weight_updates:
            apply_weight_update(index, u, v, weight)
        apply_flow_updates(index, flow_updates, method="isu")

    benchmark.pedantic(one_event, setup=fresh_index, rounds=3, iterations=1)
    benchmark.extra_info["interval_minutes"] = interval
    benchmark.extra_info["events_per_6h"] = (6 * 60) // interval
