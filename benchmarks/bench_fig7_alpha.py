"""Fig. 7(c)(d) benchmark: FAHL-W query time across the alpha sweep.

Small alpha tightens the Lemma-4 flow bounds, so the pruned engine should
get *faster* as alpha falls — the paper's Fig. 7(c)(d) trend.
"""

from __future__ import annotations

import pytest

from repro.core.fpsps import FlowAwareEngine
from repro.workloads.queries import flatten_groups


@pytest.mark.parametrize("alpha", [0.1, 0.5, 0.9])
def test_fig7cd_alpha_sweep(benchmark, brn_suite, brn_queries, bench_config, alpha):
    built = brn_suite["FAHL-W"]
    engine = FlowAwareEngine(
        built.frn,
        oracle=built.index,
        alpha=alpha,
        eta_u=bench_config.eta_u,
        pruning="lemma4",
        max_candidates=bench_config.max_candidates,
    )
    queries = flatten_groups(brn_queries)

    def run_workload():
        pruned = 0
        for query in queries:
            pruned += engine.query(query).num_pruned
        return pruned

    pruned = benchmark.pedantic(run_workload, rounds=2, iterations=1)
    benchmark.extra_info["pruned_candidates"] = pruned
