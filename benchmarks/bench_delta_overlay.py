"""Continuous-update serving: FSPQ p99 with a delta overlay vs blocking ILU.

Simulates a serving timeline of FSPQ queries with bursts of edge-weight
updates landing between them (a flow interval re-weights several edges at
once), replayed identically through three arms:

* ``baseline`` — the query stream with every update dropped: the pure
  FSPQ latency floor with no maintenance at all.
* ``inline``   — ``update_mode="inline"``: each burst runs ILU label
  maintenance synchronously.  In-place repair mutates the very labels
  queries read, so a reader cannot overlap it; the burst's wall time is
  charged to the next query's latency (the head-of-line stall the overlay
  exists to remove).
* ``overlay``  — ``update_mode="overlay"``: updates are absorbed into the
  :class:`~repro.core.overlay.DeltaOverlay` and consolidation advances in
  :meth:`~repro.serving.ResilientEngine.maintenance_tick` steps between
  operations.  Absorbs and ticks touch only overlay-private state and the
  back buffer — never the serving labels — so they model the update /
  maintenance plane and are *not* charged to query latency; they are
  reported separately (``absorb_seconds``, ``background_consolidation_
  seconds``), along with the ``repro_overlay_swap_seconds`` histogram
  covering the only stop-the-world window the design has: the atomic
  double-buffered pointer swap.

Exactness is audited, not assumed: during the timeline every overlay-arm
answer's shortest distance is compared (outside the timed region) against
a Dijkstra run on the current graph — the numbers a rebuild-from-scratch
index would serve — and after the timeline drains, a genuinely rebuilt
FAHL index replays the whole query set.  Both mismatch counts land in the
payload and the script exits non-zero if either is not 0.  Results go to
``BENCH_delta_overlay.json``.

Run directly::

    PYTHONPATH=src python benchmarks/bench_delta_overlay.py
    PYTHONPATH=src python benchmarks/bench_delta_overlay.py --tiny
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from pathlib import Path

import numpy as np

try:
    from benchmarks._env import env_info
except ModuleNotFoundError:  # run as a script: benchmarks/ is sys.path[0]
    from _env import env_info
from repro import obs
from repro.baselines.dijkstra import dijkstra_distance
from repro.core.fahl import FAHLIndex
from repro.core.fspq import FSPQuery
from repro.obs.latency import LatencyRecorder, latency_summary
from repro.serving import ResilientEngine, WeightUpdate
from repro.workloads.datasets import load_dataset

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: acceptance bound: overlay-arm query p99 must stay within this factor of
#: the no-updates baseline p99 (the blocking inline arm is only recorded).
P99_BOUND = 1.5
_TOLERANCE = 1e-9


def make_timeline(frn, num_queries, queries_per_burst, burst_size, rng):
    """Ops: ``("query", s, t, timestep)`` with update bursts mixed in.

    Every ``queries_per_burst`` queries, a burst of ``burst_size`` edge
    re-weightings lands — the shape of a flow interval tick.  Factors in
    [0.65, 1.5] mix decreases and increases, so the overlay exercises
    seeded-Dijkstra repair and tight-row recomputation alike.
    """
    n = frn.num_vertices
    edges = list(frn.graph.edges())
    ops: list[tuple] = []
    produced = 0
    while produced < num_queries:
        if ops and produced % queries_per_burst == 0:
            for _ in range(burst_size):
                u, v, w = edges[int(rng.integers(len(edges)))]
                factor = float(rng.uniform(0.65, 1.5))
                ops.append(("update", u, v, max(w * factor, 1e-6)))
        s = int(rng.integers(0, n))
        t = int(rng.integers(0, n))
        if s == t:
            t = (t + 1) % n
        ops.append(("query", s, t, int(rng.integers(frn.num_timesteps))))
        produced += 1
    return ops


def run_arm(mode: str, dataset_args: dict, ops, overlay_capacity: int = 96):
    """Replay the timeline through one arm; returns its stats block.

    ``mode`` is ``"baseline"`` (updates dropped), ``"inline"`` or
    ``"overlay"``.  Each arm loads its own copy of the dataset so the
    graphs mutate independently; the shared seed keeps them identical.
    """
    dataset = load_dataset(**dataset_args)
    frn = dataset.frn
    build_start = time.perf_counter()
    index = FAHLIndex.from_frn(frn)
    build_seconds = time.perf_counter() - build_start
    engine = ResilientEngine(
        frn,
        index=index,
        update_mode="inline" if mode != "overlay" else "overlay",
        overlay_capacity=overlay_capacity,
        max_retries=1,
    )
    # Warm the engine on one query so one-off setup (flat-kernel arena and
    # adjacency builds) stays out of the percentiles, like a live server.
    first = next(op for op in ops if op[0] == "query")
    engine.query(FSPQuery(first[1], first[2], first[3]))

    recorder = LatencyRecorder()
    carried_stall = 0.0  # inline head-of-line blocking, charged to next query
    maintenance_seconds = 0.0
    absorb_seconds = 0.0
    background_seconds = 0.0
    mismatches = 0
    timestamp = 0.0
    for op in ops:
        if op[0] == "update":
            if mode == "baseline":
                continue
            timestamp += 1.0
            update = WeightUpdate(op[1], op[2], op[3], timestamp=timestamp)
            start = time.perf_counter()
            outcome = engine.submit(update)
            elapsed = time.perf_counter() - start
            assert outcome.applied, f"update rejected: {outcome.reason}"
            if mode == "inline":
                # in-place ILU excludes readers for its whole duration
                carried_stall += elapsed
                maintenance_seconds += elapsed
            else:
                # the absorb runs on the update plane; queries keep reading
                # the previously published overlay version meanwhile
                absorb_seconds += elapsed
        else:
            _, s, t, step = op
            start = time.perf_counter()
            result = engine.query(FSPQuery(s, t, step)).result
            recorder.observe(time.perf_counter() - start + carried_stall)
            carried_stall = 0.0
            if mode == "overlay":
                # outside the timed region: the rebuild-from-scratch
                # reference for the *current* graph is plain Dijkstra
                want = dijkstra_distance(frn.graph, s, t)
                if abs(result.shortest_distance - want) > _TOLERANCE:
                    mismatches += 1
                # the background consolidation thread: one bounded step
                # between operations, never on the query path
                start = time.perf_counter()
                engine.maintenance_tick(steps=1)
                background_seconds += time.perf_counter() - start

    assert engine.status().state == "healthy", engine.status().state
    stats: dict = {
        "mode": mode,
        "index_build_seconds": round(build_seconds, 4),
        "query_latency": {
            k: round(v, 9) if isinstance(v, float) else v
            for k, v in recorder.summary().items()
        },
    }
    if mode == "inline":
        stats["maintenance_seconds_on_query_path"] = round(
            maintenance_seconds, 6
        )
    if mode == "overlay":
        start = time.perf_counter()
        while engine.consolidation_pending:
            engine.consolidate()
        background_seconds += time.perf_counter() - start
        stats["absorb_seconds_on_update_plane"] = round(absorb_seconds, 6)
        stats["background_consolidation_seconds"] = round(background_seconds, 6)
        stats["consolidations"] = engine.metrics["consolidations"]
        stats["mismatches_vs_dijkstra"] = mismatches
        swap_hist = obs.get_registry().get("repro_overlay_swap_seconds")
        if swap_hist is not None:
            stats["swap_seconds"] = {
                k: round(v, 9) if isinstance(v, float) else v
                for k, v in latency_summary(swap_hist).items()
            }
        # rebuild-from-scratch replay on the drained final state: a fresh
        # index over the mutated graph must agree on every query
        rebuilt = ResilientEngine(frn, index=FAHLIndex.from_frn(frn))
        final_mismatches = 0
        for op in ops:
            if op[0] != "query":
                continue
            got = engine.query(FSPQuery(op[1], op[2], op[3])).result
            want = rebuilt.query(FSPQuery(op[1], op[2], op[3])).result
            if abs(got.shortest_distance
                   - want.shortest_distance) > _TOLERANCE:
                final_mismatches += 1
        stats["mismatches_vs_rebuild_final"] = final_mismatches
    return stats


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--dataset", default="NYC")
    parser.add_argument("--scale", type=float, default=0.25)
    parser.add_argument("--days", type=int, default=1)
    parser.add_argument("--queries", type=int, default=240)
    parser.add_argument("--queries-per-burst", type=int, default=8,
                        help="an update burst lands every N queries")
    parser.add_argument("--burst-size", type=int, default=6,
                        help="edge re-weightings per burst (one flow tick)")
    parser.add_argument("--tiny", action="store_true",
                        help="CI smoke preset: small graph, few queries")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--out", default=str(_REPO_ROOT / "BENCH_delta_overlay.json")
    )
    args = parser.parse_args(argv)
    if args.tiny:
        args.scale = 0.1
        args.queries = min(args.queries, 48)

    dataset_args = {
        "name": args.dataset,
        "scale": args.scale,
        "days": args.days,
        "seed": args.seed,
    }
    probe = load_dataset(**dataset_args)
    rng = np.random.default_rng(args.seed)
    ops = make_timeline(
        probe.frn, args.queries, args.queries_per_burst, args.burst_size, rng
    )
    num_updates = sum(1 for op in ops if op[0] == "update")

    obs.enable()
    arms = {
        mode: run_arm(mode, dataset_args, ops)
        for mode in ("baseline", "inline", "overlay")
    }
    obs.disable()

    base_p99 = arms["baseline"]["query_latency"]["p99"]
    overlay_p99 = arms["overlay"]["query_latency"]["p99"]
    inline_p99 = arms["inline"]["query_latency"]["p99"]
    payload = {
        "generated_unix": int(time.time()),
        "machine": env_info(),
        "dataset": {
            "label": f"{args.dataset}-S",
            "name": probe.name,
            "scale": args.scale,
            "vertices": probe.frn.num_vertices,
            "edges": probe.frn.num_edges,
        },
        "workload": {
            "queries": args.queries,
            "updates": num_updates,
            "queries_per_burst": args.queries_per_burst,
            "burst_size": args.burst_size,
            "seed": args.seed,
            "tiny": bool(args.tiny),
            "latency_model": (
                "single-threaded timeline of FSPQ queries; inline ILU "
                "mutates the serving labels in place so its wall time is "
                "charged to the next query (reader exclusion); overlay "
                "absorbs and consolidation ticks touch only overlay-private "
                "state and the back buffer, modelling the update plane, and "
                "are reported separately with the atomic-swap histogram"
            ),
        },
        "arms": arms,
        "p99_ratio_inline_vs_baseline": round(inline_p99 / base_p99, 3),
        "p99_ratio_overlay_vs_baseline": round(overlay_p99 / base_p99, 3),
        "p99_bound": P99_BOUND,
        "within_bound": overlay_p99 <= P99_BOUND * base_p99,
    }
    Path(args.out).write_text(json.dumps(payload, indent=2) + "\n")

    print(f"wrote {args.out}")
    for mode in ("baseline", "inline", "overlay"):
        lat = arms[mode]["query_latency"]
        print(
            f"{mode:>8}: p50 {lat['p50'] * 1000:.3f}ms  "
            f"p99 {lat['p99'] * 1000:.3f}ms"
        )
    print(
        f"overlay/baseline p99 ratio "
        f"{payload['p99_ratio_overlay_vs_baseline']}x "
        f"(bound {P99_BOUND}x, inline stalls at "
        f"{payload['p99_ratio_inline_vs_baseline']}x)"
    )

    problems = []
    if arms["overlay"]["mismatches_vs_dijkstra"]:
        problems.append(
            f"{arms['overlay']['mismatches_vs_dijkstra']} overlay answers "
            "disagreed with Dijkstra during the timeline"
        )
    if arms["overlay"]["mismatches_vs_rebuild_final"]:
        problems.append(
            f"{arms['overlay']['mismatches_vs_rebuild_final']} answers "
            "disagreed with the rebuilt index after consolidation"
        )
    for problem in problems:
        print(f"check: {problem}", file=sys.stderr)
    return 1 if problems else 0


if __name__ == "__main__":
    raise SystemExit(main())
