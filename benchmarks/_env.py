"""Shared environment stamp for every ``BENCH_*.json`` payload.

The ROADMAP "Benchmark reality check" caveat — the reference container
usually has a single CPU, so parallel paths (fork-pool batch workers,
sharded fan-out) cannot demonstrate real speedups there — used to live in
prose only.  Every benchmark embeds :func:`env_info` in its payload so the
caveat is machine-readable: consumers comparing two BENCH files can refuse
to compare throughput across different ``cpu_count`` values.
"""

from __future__ import annotations

import os

__all__ = ["PARALLEL_PATHS_NOTE", "env_info"]

PARALLEL_PATHS_NOTE = (
    "Recorded on a container with the cpu_count above; parallel code paths "
    "(fork-pool batch workers, sharded fan-out) cannot show real speedups "
    "when cpu_count is 1, so throughput/speedup figures are only comparable "
    "across runs with the same cpu_count."
)


def env_info() -> dict:
    """The per-run environment block embedded in each BENCH payload."""
    return {
        "cpu_count": os.cpu_count(),
        "parallel_paths_note": PARALLEL_PATHS_NOTE,
    }
