"""Benchmarks for the extension query types: skyline, constrained, batch."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import batch_query
from repro.core.constrained import ConstrainedFlowAwareEngine, QueryConstraints
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.core.skyline import skyline_paths
from repro.workloads.queries import flatten_groups


@pytest.fixture(scope="module")
def fahl_setup(brn_dataset):
    frn = brn_dataset.frn
    index = FAHLIndex.from_frn(frn, beta=0.5)
    return frn, index


def test_skyline_query(benchmark, fahl_setup, brn_queries):
    frn, index = fahl_setup
    queries = flatten_groups(brn_queries)[:4]

    def run_skylines():
        sizes = 0
        for query in queries:
            spdis = index.distance(query.source, query.target)
            result = skyline_paths(
                frn, query.source, query.target, query.timestep,
                max_distance=1.5 * spdis, max_labels_per_vertex=16,
            )
            sizes += len(result)
        return sizes

    sizes = benchmark.pedantic(run_skylines, rounds=2, iterations=1)
    benchmark.extra_info["total_skyline_paths"] = sizes


def test_constrained_query(benchmark, fahl_setup, brn_queries):
    frn, index = fahl_setup
    engine = ConstrainedFlowAwareEngine(frn, oracle=index, alpha=0.5,
                                        eta_u=3.0, max_candidates=8)
    queries = flatten_groups(brn_queries)[:6]
    rng = np.random.default_rng(0)
    constraints = [
        QueryConstraints(
            forbidden_vertices=frozenset(
                int(v)
                for v in rng.choice(frn.num_vertices, 2, replace=False)
                if v not in (q.source, q.target)
            )
        )
        for q in queries
    ]

    def run_constrained():
        from repro.core.constrained import ConstraintError

        answered = 0
        for query, constraint in zip(queries, constraints):
            try:
                engine.query_constrained(query, constraint)
                answered += 1
            except ConstraintError:
                pass
        return answered

    answered = benchmark.pedantic(run_constrained, rounds=2, iterations=1)
    benchmark.extra_info["answered"] = answered


def test_batch_vs_sequential(benchmark, fahl_setup, brn_queries):
    frn, index = fahl_setup
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                             max_candidates=8)
    base = flatten_groups(brn_queries)
    # many sources converging on few targets: the memoised batch sweet spot
    targets = sorted({q.target for q in base})[:2]
    queries = [
        FSPQuery(q.source, targets[i % len(targets)], q.timestep)
        for i, q in enumerate(base)
        if q.source not in targets
    ]

    benchmark.pedantic(
        lambda: batch_query(engine, queries), rounds=2, iterations=1
    )
    benchmark.extra_info["queries"] = len(queries)
