"""Benchmarks for Table III (dataset materialisation) and Fig. 7(a)(b)
(index size / construction time per method)."""

from __future__ import annotations

import pytest

from repro.baselines.ch import CHIndex
from repro.baselines.gtree import TDGTree
from repro.core.fahl import FAHLIndex
from repro.labeling.h2h import H2HIndex
from repro.workloads.datasets import load_dataset

from benchmarks.conftest import BENCH_SCALE


def test_table3_dataset_build(benchmark):
    """Table III: time to materialise one dataset (graph + flows + lanes)."""
    result = benchmark.pedantic(
        lambda: load_dataset("BRN", scale=BENCH_SCALE, days=2, seed=0),
        rounds=3,
        iterations=1,
    )
    assert result.num_vertices > 0


@pytest.mark.parametrize("method", ["CH", "TD-G-tree", "H2H", "FAHL"])
def test_fig7ab_construction(benchmark, brn_dataset, method):
    """Fig. 7(a)(b): construction time per index (size in extra_info)."""
    frn = brn_dataset.frn

    def build():
        graph = frn.graph.copy()
        if method == "CH":
            return CHIndex(graph)
        if method == "TD-G-tree":
            return TDGTree(graph)
        if method == "H2H":
            return H2HIndex(graph)
        return FAHLIndex(graph, frn.total_predicted_flow(), beta=0.5)

    index = benchmark.pedantic(build, rounds=3, iterations=1)
    benchmark.extra_info["index_entries"] = index.index_size_entries()
