#!/usr/bin/env python
"""Departure-time planning: the same trip across the diurnal flow cycle.

FSPQ takes the query time slice as an input (Q = <Q_u, D_u, t_q>), so a
navigation service can ask "what does my commute look like at 6:00, 8:30,
13:00, 18:00?" and compare routes and congestion.  This example sweeps the
day, showing how the flow-aware route deviates from the spatial optimum
exactly during the two rush peaks — and how the capacity-based flow of
Def. 4 (lanes matter!) changes the picture.

Run:  python examples/rush_hour_planning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FlowAwareEngine,
    FSPQuery,
    build_fahl,
    grid_network,
    synthesize_lane_counts,
)
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork


def main() -> None:
    graph = grid_network(14, 14, seed=11)
    flow = generate_flow_series(graph, days=1, interval_minutes=60,
                                mean_flow=60.0, seed=11)
    lanes = synthesize_lane_counts(graph, seed=11)
    frn = FlowAwareRoadNetwork(graph, flow, lanes=lanes)
    index = build_fahl(frn, beta=0.5)

    source, target = 3, graph.num_vertices - 5
    spatial_path = index.path(source, target)
    spatial_distance = index.distance(source, target)
    print(f"trip: {source} -> {target}, spatial optimum {spatial_distance:.0f} "
          f"over {len(spatial_path)} vertices\n")

    engine = FlowAwareEngine(frn, oracle=index, alpha=0.4, eta_u=3.0,
                             pruning="lemma4")
    capacity_engine = FlowAwareEngine(frn, oracle=index, alpha=0.4, eta_u=3.0,
                                      pruning="lemma4",
                                      use_capacity=True, w_c=0.5)

    header = (f"{'hour':>5s} {'flow route dist':>16s} {'detour %':>9s} "
              f"{'route flow':>11s} {'spatial flow':>13s} {'cap. route dist':>16s}")
    print(header)
    print("-" * len(header))
    for hour in (4, 6, 8, 10, 13, 16, 18, 21):
        query = FSPQuery(source, target, hour)
        result = engine.query(query)
        cap_result = capacity_engine.query(query)
        flow_vector = frn.predicted_at(hour)
        spatial_flow = float(np.take(flow_vector, spatial_path).sum())
        detour = 100.0 * (result.distance / spatial_distance - 1.0)
        print(f"{hour:4d}h {result.distance:16.0f} {detour:8.1f}% "
              f"{result.flow:11.1f} {spatial_flow:13.1f} "
              f"{cap_result.distance:16.0f}")

    print("\nduring the rush peaks the flow-aware route accepts a small "
          "detour to dodge congested vertices; off-peak it collapses back "
          "onto the spatial optimum.")


if __name__ == "__main__":
    main()
