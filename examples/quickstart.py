#!/usr/bin/env python
"""Quickstart: build a flow-aware road network, index it, query it.

Mirrors the paper's introduction (Fig. 1 / Table I): a commuter wants to
cross town; the spatially shortest route runs through congested vertices,
and the flow-aware query returns a slightly longer but far less congested
alternative.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FlowAwareEngine,
    FlowAwareRoadNetwork,
    FSPQuery,
    build_fahl,
    generate_flow_series,
    grid_network,
)


def main() -> None:
    # 1. a small synthetic city: a perturbed 12x12 grid road network
    graph = grid_network(12, 12, seed=7)
    print(f"road network: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 2. attach two days of hourly traffic flow (diurnal + spatial diffusion)
    flow = generate_flow_series(graph, days=2, interval_minutes=60, seed=7)
    frn = FlowAwareRoadNetwork(graph, flow)
    print(f"flow series: {flow.num_timesteps} slices, "
          f"{flow.total_records():,} records")

    # 3. build the FAHL index (degree-flow joint ordering, Alg. 1)
    index = build_fahl(frn, beta=0.5)
    print(f"FAHL index: treewidth={index.treewidth}, "
          f"treeheight={index.treeheight}, "
          f"label entries={index.index_size_entries():,}")

    # 4. exact shortest *spatial* distance and path (Alg. 2)
    source, target = 0, graph.num_vertices - 1
    spatial = index.distance(source, target)
    print(f"\nSPDis({source}, {target}) = {spatial:.0f}")
    print(f"shortest spatial path: {index.path(source, target)}")

    # 5. flow-aware shortest path during the morning rush (FPSPS, Alg. 5)
    rush_hour = 8  # 08:00 on day one
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.3, eta_u=3.0,
                             pruning="lemma4", max_candidates=24,
                             min_candidates=16)
    result = engine.query(FSPQuery(source, target, rush_hour))
    print(f"\nflow-aware query at t={rush_hour}:00")
    print(f"  path       : {list(result.path)}")
    print(f"  distance   : {result.distance:.0f}  "
          f"(spatial optimum {result.shortest_distance:.0f})")
    print(f"  path flow  : {result.flow:.1f} vehicles")
    print(f"  FSD score  : {result.score:.3f}")
    print(f"  candidates : {result.num_candidates} "
          f"({result.num_pruned} pruned by the flow bounds)")

    # 6. compare with the purely spatial route's congestion
    spatial_path = index.path(source, target)
    flow_vector = frn.predicted_at(rush_hour)
    spatial_flow = float(np.take(flow_vector, spatial_path).sum())
    print(f"\nspatial route congestion   : {spatial_flow:.1f} vehicles")
    print(f"flow-aware route congestion: {result.flow:.1f} vehicles")
    if result.flow < spatial_flow:
        saved = 100.0 * (1.0 - result.flow / spatial_flow)
        print(f"-> the flow-aware route avoids {saved:.0f}% of the congestion "
              f"for {result.distance - spatial:.0f} extra distance units")

    # 7. draw both routes over the congestion field
    from repro.analysis import render_routes

    print("\ncongestion map (darker = busier) with both routes:")
    print(render_routes(
        graph,
        {"distance-optimal": spatial_path, "aware": list(result.path)},
        flow_vector,
        width=48,
        height=14,
    ))


if __name__ == "__main__":
    main()
