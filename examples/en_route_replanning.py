#!/usr/bin/env python
"""En-route re-planning vs plan-once navigation (the paper's Fig. 1 story).

"Existing navigation services primarily consider the traffic-flow at the
time of the query ... FSPQ considers all dynamic updates from the query
location to the destination."  This example quantifies that claim: many
commuters drive the same long trip across the morning; one group plans
once at departure, the other re-plans at every time slice as the diurnal
congestion wave moves — both powered by the same FAHL index.

Run:  python examples/en_route_replanning.py
"""

from __future__ import annotations

import numpy as np

from repro import (
    FlowAwareRoadNetwork,
    build_fahl,
    generate_flow_series,
    grid_network,
)
from repro.core.fpsps import FlowAwareEngine
from repro.core.navigation import compare_static_vs_live


def main() -> None:
    graph = grid_network(14, 14, seed=31)
    flow = generate_flow_series(graph, days=1, interval_minutes=30,
                                mean_flow=60.0, seed=31)
    frn = FlowAwareRoadNetwork(graph, flow)
    index = build_fahl(frn, beta=0.5)
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.3, eta_u=3.0,
                             max_candidates=10)
    print(f"city: {graph.num_vertices} vertices; "
          f"{flow.num_timesteps} half-hour slices\n")

    rng = np.random.default_rng(31)
    n = graph.num_vertices
    header = (f"{'trip':>12s} {'depart':>7s} {'static flow':>12s} "
              f"{'live flow':>10s} {'saved':>7s} {'replans':>8s}")
    print(header)
    print("-" * len(header))

    total_static = total_live = 0.0
    for _ in range(8):
        source, target = map(int, rng.integers(0, n, 2))
        if source == target:
            continue
        departure = int(rng.integers(12, 20))  # morning window
        static, live = compare_static_vs_live(
            engine, source, target, departure=departure, hops_per_slice=3
        )
        if not (static.completed and live.completed):
            continue
        saved = 100.0 * (1.0 - live.experienced_flow /
                         max(static.experienced_flow, 1e-9))
        total_static += static.experienced_flow
        total_live += live.experienced_flow
        print(f"{source:5d}->{target:<5d} {departure:>5d}:00+ "
              f"{static.experienced_flow:12.0f} {live.experienced_flow:10.0f} "
              f"{saved:6.1f}% {live.replans:8d}")

    overall = 100.0 * (1.0 - total_live / max(total_static, 1e-9))
    print(f"\nfleet-wide experienced congestion saved by live "
          f"re-planning: {overall:.1f}%")


if __name__ == "__main__":
    main()
