#!/usr/bin/env python
"""Method shoot-out: every baseline against FAHL on one dataset.

A miniature of the paper's Fig. 6 evaluation: builds A*, CH, TD-G-tree,
H2H and FAHL (with and without pruning bounds) on the Beijing-like stand-in
dataset, runs the same flow-aware query workload through each, and prints a
comparison table — construction time, index size, average query latency,
and the result agreement check.

Run:  python examples/method_comparison.py
"""

from __future__ import annotations

import time

from repro.core.fspq import FSPQuery
from repro.experiments.runner import (
    ALL_METHODS,
    ExperimentConfig,
    build_method_suite,
)
from repro.workloads.datasets import load_dataset
from repro.workloads.queries import flatten_groups, generate_query_groups


def main() -> None:
    config = ExperimentConfig(
        datasets=("BRN",),
        scale=0.2,
        days=2,
        num_groups=6,
        queries_per_group=4,
        max_candidates=10,
        seed=1,
    )
    dataset = load_dataset("BRN", scale=config.scale, days=config.days,
                           seed=config.seed)
    print(f"dataset: {dataset.name} ({dataset.num_vertices} vertices, "
          f"{dataset.num_edges} edges, {dataset.num_records:,} flow records)")

    print("building method suite ...")
    suite = build_method_suite(dataset, config)
    queries = flatten_groups(
        generate_query_groups(dataset.frn, num_groups=config.num_groups,
                              queries_per_group=config.queries_per_group,
                              seed=config.seed)
    )
    print(f"workload: {len(queries)} flow-aware queries\n")

    header = f"{'method':10s} {'build (s)':>10s} {'entries':>10s} {'ms/query':>10s}"
    print(header)
    print("-" * len(header))
    reference_scores: dict[FSPQuery, float] = {}
    for name in ALL_METHODS:
        built = suite[name]
        start = time.perf_counter()
        scores = {}
        for query in queries:
            scores[query] = built.engine.query(query).score
        per_query_ms = (time.perf_counter() - start) / len(queries) * 1000
        print(f"{name:10s} {built.build_seconds:10.3f} "
              f"{built.index_entries:10,d} {per_query_ms:10.3f}")
        if name == "H2H":
            reference_scores = scores
        elif name not in ("FAHL-W",) and reference_scores:
            # every unpruned method must find the same flow-aware optimum
            for query, score in scores.items():
                assert abs(score - reference_scores[query]) < 1e-9, (
                    f"{name} disagrees with H2H on {query}"
                )

    print("\nall unpruned methods returned identical flow-aware optima "
          "(FAHL-W may deviate where the paper's Lemma-4 bounds prune "
          "aggressively — see EXPERIMENTS.md).")


if __name__ == "__main__":
    main()
