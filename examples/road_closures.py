#!/usr/bin/env python
"""Constrained routing: road closures, congestion caps and index shipping.

The paper's future-work section points at FSPQ over *constrained*
flow-aware road networks.  This example exercises that extension: a marathon
closes a set of streets, a hazmat truck must never cross gridlocked
vertices, and the pre-built index is serialised to disk and reloaded the
way a query server would ship it.

Run:  python examples/road_closures.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro import (
    FSPQuery,
    FlowAwareRoadNetwork,
    build_fahl,
    generate_flow_series,
    grid_network,
)
from repro.core.constrained import (
    ConstrainedFlowAwareEngine,
    ConstraintError,
    QueryConstraints,
)
from repro.labeling import load_index, save_index


def main() -> None:
    graph = grid_network(12, 12, seed=23)
    flow = generate_flow_series(graph, days=1, interval_minutes=60,
                                mean_flow=50.0, seed=23)
    frn = FlowAwareRoadNetwork(graph, flow)
    index = build_fahl(frn, beta=0.5)

    # --- ship the index like a deployment would -------------------------
    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "city.fahl.npz"
        save_index(index, path)
        size_kb = path.stat().st_size / 1024
        index = load_index(path)
        print(f"index serialised to {size_kb:.0f} KiB and reloaded "
              f"({index.index_size_entries():,} entries)\n")

    engine = ConstrainedFlowAwareEngine(frn, oracle=index, alpha=0.5,
                                        eta_u=3.0)
    trip = FSPQuery(source=5, target=graph.num_vertices - 6, timestep=8)

    baseline = engine.query_constrained(trip, QueryConstraints())
    print(f"normal routing      : dist={baseline.distance:.0f} "
          f"flow={baseline.flow:.0f} via {len(baseline.path)} vertices")

    # --- marathon: close a band of streets ------------------------------
    closed = frozenset(
        v for v in baseline.path[2:-2][:4]  # close part of the usual route
    )
    marathon = engine.query_constrained(
        trip, QueryConstraints(forbidden_vertices=closed)
    )
    print(f"marathon closures   : dist={marathon.distance:.0f} "
          f"flow={marathon.flow:.0f} (avoids {sorted(closed)})")
    assert not set(marathon.path) & closed

    # --- hazmat: never cross a gridlocked vertex ------------------------
    flow_vector = frn.predicted_at(trip.timestep)
    cap = float(np.percentile(flow_vector, 97))
    try:
        hazmat = engine.query_constrained(
            trip, QueryConstraints(max_vertex_flow=cap)
        )
        worst = max(flow_vector[v] for v in hazmat.path)
        print(f"hazmat (cap {cap:.0f})   : dist={hazmat.distance:.0f} "
              f"flow={hazmat.flow:.0f} worst-vertex={worst:.0f}")
    except ConstraintError as exc:
        print(f"hazmat (cap {cap:.0f})   : infeasible — {exc}")

    # --- both at once, plus a hop budget ---------------------------------
    try:
        combined = engine.query_constrained(
            trip,
            QueryConstraints(
                forbidden_vertices=closed,
                max_vertex_flow=cap * 1.2,
                max_hops=len(baseline.path) + 6,
            ),
        )
        print(f"combined constraints: dist={combined.distance:.0f} "
              f"flow={combined.flow:.0f} hops={len(combined.path) - 1}")
    except ConstraintError as exc:
        print(f"combined constraints: infeasible — {exc}")


if __name__ == "__main__":
    main()
