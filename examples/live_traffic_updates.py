#!/usr/bin/env python
"""Live-traffic scenario: keep the index fresh under a stream of updates.

Simulates the paper's Section IV setting: over a morning window the system
receives interleaved *flow* changes (congestion building on vertices) and
*weight* changes (roadworks, accidents re-weighting edges).  FAHL absorbs
them with ISU (structure) and ILU (labels) instead of rebuilding, and
queries stay exact throughout — verified against Dijkstra on every event.

Run:  python examples/live_traffic_updates.py
"""

from __future__ import annotations

import time

import numpy as np

from repro import (
    FlowAwareEngine,
    FlowAwareRoadNetwork,
    FSPQuery,
    apply_flow_update,
    apply_weight_update,
    build_fahl,
    generate_flow_series,
    ring_radial_network,
)
from repro.baselines.dijkstra import dijkstra_distance


def main() -> None:
    rng = np.random.default_rng(42)
    graph = ring_radial_network(rings=8, spokes=24, seed=42)
    flow = generate_flow_series(graph, days=1, interval_minutes=30, seed=42)
    frn = FlowAwareRoadNetwork(graph, flow)
    print(f"city: {graph.num_vertices} vertices, {graph.num_edges} edges, "
          f"{flow.num_timesteps} half-hour slices")

    build_start = time.perf_counter()
    index = build_fahl(frn, beta=0.5)
    print(f"FAHL built in {time.perf_counter() - build_start:.2f}s "
          f"({index.index_size_entries():,} label entries)\n")

    engine = FlowAwareEngine(frn, oracle=index, alpha=0.5, eta_u=3.0,
                             pruning="lemma4")
    edges = list(graph.edges())
    commute = FSPQuery(source=1, target=graph.num_vertices - 3, timestep=16)

    total_update_ms = 0.0
    for event in range(10):
        slice_no = 14 + event % 8  # rolling morning window
        if event % 2 == 0:
            # congestion spike on a random vertex
            vertex = int(rng.integers(graph.num_vertices))
            new_flow = float(frn.predicted_at(slice_no)[vertex] * rng.uniform(2, 5))
            start = time.perf_counter()
            stats = apply_flow_update(index, vertex, new_flow, method="isu")
            elapsed = (time.perf_counter() - start) * 1000
            detail = f"flow(v{vertex}) -> {new_flow:.0f}  [{stats.strategy}]"
        else:
            # roadworks: an edge slows down
            u, v, w = edges[int(rng.integers(len(edges)))]
            new_weight = float(round(graph.weight(u, v) * rng.uniform(1.5, 3)))
            start = time.perf_counter()
            stats = apply_weight_update(index, u, v, new_weight)
            elapsed = (time.perf_counter() - start) * 1000
            detail = (f"weight({u},{v}) -> {new_weight:.0f}  "
                      f"[{stats.labels_affected} labels touched]")
        total_update_ms += elapsed

        # the index must agree with a from-scratch Dijkstra after every event
        expected = dijkstra_distance(graph, commute.source, commute.target)
        actual = index.distance(commute.source, commute.target)
        assert abs(expected - actual) < 1e-9, "index drifted from the graph!"

        result = engine.query(commute)
        print(f"event {event}: {detail:46s} {elapsed:7.1f} ms   "
              f"commute FSD={result.score:.3f} dist={result.distance:.0f}")

    print(f"\ntotal maintenance time over 10 events: {total_update_ms:.1f} ms "
          f"(index stayed exact throughout)")


if __name__ == "__main__":
    main()
