#!/usr/bin/env python
"""Fleet simulation: trajectory-induced flows, rerouting, pickup kNN.

Closes the loop the way the paper's data pipeline does (T-drive taxis →
per-vertex flows → FSPQ): a fleet of vehicles drives shortest paths, their
passages *become* the traffic flow, FAHL indexes that flow, and then

1. the whole fleet is re-planned flow-aware and the collective congestion
   drop is measured (the SBTC-style feedback experiment);
2. a rider requests the 3 best flow-aware pickup points (ridesharing
   recommendation — one of the paper's motivating downstream tasks);
3. a commuter asks for the best departure time across the morning.

Run:  python examples/fleet_simulation.py
"""

from __future__ import annotations

import numpy as np

from repro import FlowAwareRoadNetwork, build_fahl, grid_network
from repro.baselines.dijkstra import DijkstraOracle
from repro.core.departure import best_departure
from repro.core.fpsps import FlowAwareEngine
from repro.core.knn import flow_aware_knn
from repro.workloads.trajectories import (
    flows_from_trips,
    generate_trips,
    reroute_flow_aware,
)


def main() -> None:
    rng = np.random.default_rng(3)
    graph = grid_network(13, 13, seed=3)
    print(f"city: {graph.num_vertices} vertices, {graph.num_edges} edges")

    # 1. a day of taxi trips, shortest-path routed, becomes the flow field
    oracle = DijkstraOracle(graph)
    trips = generate_trips(graph, oracle, num_vehicles=300, days=1,
                           trips_per_vehicle_per_day=2.5, seed=3)
    flow = flows_from_trips(trips, graph.num_vertices, num_timesteps=24)
    print(f"fleet: {len(trips)} trips -> {int(flow.matrix.sum()):,} vertex "
          f"passages recorded over 24 slices")

    frn = FlowAwareRoadNetwork(graph, flow)
    index = build_fahl(frn, beta=0.5)
    engine = FlowAwareEngine(frn, oracle=index, alpha=0.3, eta_u=3.0,
                             pruning="lemma4", max_candidates=10)

    # 2. re-plan the whole fleet flow-aware
    _, ratio = reroute_flow_aware(trips, engine)
    print(f"\nflow-aware re-planning: fleet congestion x{ratio:.3f} "
          f"({100 * (1 - ratio):.1f}% less flow encountered)")

    # 3. ridesharing pickup recommendation during the evening rush
    rider = int(rng.integers(graph.num_vertices))
    candidate_pickups = [int(v) for v in rng.choice(graph.num_vertices, 15,
                                                    replace=False)
                         if v != rider]
    matches = flow_aware_knn(engine, rider, candidate_pickups, k=3,
                             timestep=18)
    print(f"\ntop pickup points for rider at v{rider} (18:00):")
    for match in matches:
        r = match.result
        print(f"  #{match.rank}: v{match.poi:<4d} dist={r.distance:6.0f} "
              f"flow={r.flow:6.1f} score={r.score:.3f}")

    # 4. when should a commuter leave?
    source, target = 0, graph.num_vertices - 1
    plan = best_departure(engine, source, target, range(5, 12),
                          objective="flow")
    print(f"\ncommute {source} -> {target}: leave at "
          f"{plan.timestep:02d}:00 "
          f"(route flow {plan.result.flow:.0f}); avoid "
          f"{plan.worst_timestep:02d}:00 "
          f"(flow {plan.sweep[plan.worst_timestep].flow:.0f})")


if __name__ == "__main__":
    main()
