"""The sharded serving gateway: K shard engines behind one query front.

:class:`ShardedGateway` is the horizontal-scaling layer of the stack
(docs/API.md, "Sharded deployment topology").  It partitions the road
network into K connected shards (:mod:`repro.scale.partitioner`), gives
each shard its own :class:`~repro.serving.engine.ResilientEngine` over the
induced subgraph, and recovers *exact* full-graph distances with the
boundary distance tables of :mod:`repro.scale.boundary`:

* **routing** — a query whose endpoints share a shard and whose shortest
  path provably stays inside it is dispatched to that shard's engine
  (``route="shard"``); everything else is answered through the
  boundary-table combine (``route="boundary"``), which is exact for any
  endpoint pair.
* **degraded isolation** — a shard whose maintenance is poisoned degrades
  *alone*: queries touching it fall back to direct Dijkstra/A* on the full
  graph (``route="fallback"``) while the remaining shards keep serving
  from their indexes.
* **result cache** — answers are cached under ``(source, target,
  flow-interval)`` keys stamped with the epoch counters of the shards they
  touched; maintenance bumps epochs through the engines' unified
  invalidation hook, so stale entries die lazily without a scan
  (:mod:`repro.scale.cache`).
* **batch fan-out** — :meth:`batch` groups a workload by route, fans each
  shard's group through the existing fork-pool ``batch_query`` machinery,
  and weights worker allocation by each shard's admitted share of the
  workload.

Everything is instrumented through :mod:`repro.obs` under the
``repro_gateway_*`` metric families.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, replace
from pathlib import Path

import numpy as np

from repro import obs
from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import slo as obs_slo
from repro.baselines.dijkstra import dijkstra_distance
from repro.core.batch import BatchReport
from repro.core.fpsps import KERNEL_MODES, FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.errors import QueryError, RecoveryError
from repro.flow.series import FlowSeries
from repro.graph.frn import FlowAwareRoadNetwork
from repro.scale.boundary import BoundaryIndex
from repro.scale.cache import CacheStats, ResultCache
from repro.scale.partitioner import ShardPlan, partition_network
from repro.serving.dead_letter import DeadLetterQueue
from repro.serving.engine import (
    ResilientEngine,
    ServingDistance,
    ServingResult,
    UpdateOutcome,
)
from repro.serving.updates import FlowUpdate, WeightUpdate

__all__ = ["GatewayStatus", "ShardedGateway"]


@dataclass(frozen=True)
class GatewayStatus:
    """Typed snapshot of a :class:`ShardedGateway` for telemetry/logging."""

    num_shards: int
    shard_sizes: tuple[int, ...]
    boundary_vertices: int
    degraded_shards: tuple[int, ...]
    weight_epoch: int
    shard_epochs: tuple[int, ...]
    cache: CacheStats
    metrics: dict[str, int]
    #: accepted-but-unconsolidated updates summed over overlay-mode shards
    consolidation_lag: int = 0


class _ShardedOracle:
    """A distance oracle backed by the gateway's boundary-table combine.

    Plugged into the cross-shard :class:`FlowAwareEngine`, so its SPDis
    and candidate-generation heuristics see exact full-graph distances
    while the monolithic index stays out of the serving path.
    """

    def __init__(self, gateway: "ShardedGateway") -> None:
        self._gateway = gateway

    def distance(self, u: int, v: int) -> float:
        return self._gateway._distance_raw(u, v)


class ShardedGateway:
    """A horizontally sharded, cache-fronted FSPQ serving gateway.

    Parameters
    ----------
    frn:
        The full flow-aware road network to serve.
    num_shards:
        Requested shard count (the plan may produce fewer on tiny graphs).
    alpha, eta_u, pruning, beta:
        Query/index parameters, identical in meaning to
        :class:`~repro.core.fpsps.FlowAwareEngine` /
        :class:`~repro.core.fahl.FAHLIndex`.
    cache_capacity:
        LRU capacity of the result cache.
    balance:
        Bisection balance cap forwarded to the partitioner.
    intra_shard_local:
        When true (default), same-shard queries whose shortest path
        provably stays inside the shard are answered by the shard engine
        over its subgraph — candidate enumeration is then local to the
        shard (the usual partition-serving locality trade; distances stay
        exact either way).  Set false to force the boundary-combine route
        for every query.
    kernel:
        Query-kernel selection (``"flat"`` default, ``"scalar"``
        reference), forwarded to the per-shard engines — intra-shard
        dispatch therefore runs the vectorised flat kernel — and to the
        cross-shard/fallback engines (which fall back to scalar on their
        own, as their oracles are not hierarchy indexes).
    engine_kwargs:
        Extra keyword arguments forwarded to every per-shard
        :class:`~repro.serving.engine.ResilientEngine` (``time_budget``,
        ``max_retries``, ``audit_samples``, ...).  Pass
        ``update_mode="overlay"`` for non-blocking continuous updates:
        each shard then serves ``stable ⊕ overlay`` and consolidates in
        the background via :meth:`maintenance_tick` /
        :meth:`consolidate`, swapping its index per shard while the
        others keep serving; the routing and distance paths read the
        shard *oracles*, so answers stay exact throughout.
    durability_dir:
        When set, every shard gets its own
        :class:`~repro.durability.Durability` manager rooted at
        ``<durability_dir>/shard-<k>`` — accepted updates are
        write-ahead logged before the ack and consolidations checkpoint
        the shard index.  After a crash, :meth:`recover_shard` restarts
        one shard from its checkpoint + log while the others keep
        serving.
    durability_kwargs:
        Extra keyword arguments for each per-shard ``Durability``
        (``fsync``, ``fsync_every``, ``auto_checkpoint``, ``retain``).
    """

    def __init__(
        self,
        frn: FlowAwareRoadNetwork,
        num_shards: int = 4,
        alpha: float = 0.5,
        eta_u: float = 3.0,
        pruning: str = "none",
        beta: float = 0.5,
        cache_capacity: int = 4096,
        balance: float = 0.6,
        intra_shard_local: bool = True,
        dead_letter_capacity: int = 1024,
        kernel: str = "flat",
        durability_dir=None,
        durability_kwargs: dict | None = None,
        **engine_kwargs,
    ) -> None:
        self.frn = frn
        self.plan: ShardPlan = partition_network(
            frn.graph, num_shards, balance=balance
        )
        self.intra_shard_local = bool(intra_shard_local)
        # engine-construction parameters, kept so recover_shard() and the
        # missing-checkpoint rebuild fallback can re-create any shard
        self._alpha = alpha
        self._eta_u = eta_u
        self._pruning = pruning
        self._beta = beta
        self._dead_letter_capacity = dead_letter_capacity
        self._kernel = kernel
        self._engine_kwargs = dict(engine_kwargs)
        self._durability_dir = (
            None if durability_dir is None else Path(durability_dir)
        )
        self._durability_kwargs = dict(durability_kwargs or {})

        # -- per-shard subgraphs, FRNs and engines ----------------------
        self._to_local: list[dict[int, int]] = []
        self._to_global: list[tuple[int, ...]] = []
        self._subgraphs = []
        self._shard_frns: list[FlowAwareRoadNetwork] = []
        self.shards: list[ResilientEngine] = []
        for k in range(self.plan.num_shards):
            members = list(self.plan.members[k])
            subgraph, relabel = frn.graph.subgraph(members)
            self._subgraphs.append(subgraph)
            self._to_local.append(relabel)
            self._to_global.append(tuple(members))
            shard_frn, engine = self._build_shard_engine(k, subgraph)
            self._shard_frns.append(shard_frn)
            self.shards.append(engine)

        self.boundary = BoundaryIndex(frn.graph, self.plan, self._subgraphs)

        # -- cross-shard and degraded-fallback engines ------------------
        self._cross = FlowAwareEngine(
            frn, oracle=_ShardedOracle(self), alpha=alpha, eta_u=eta_u,
            pruning=pruning, kernel=kernel,
        )
        self._fallback = FlowAwareEngine(
            frn, oracle=None, alpha=alpha, eta_u=eta_u, pruning=pruning,
            kernel=kernel,
        )

        # -- cache + epochs (wired through the unified invalidation hook)
        self.cache = ResultCache(cache_capacity)
        self._weight_epoch = 0
        self._shard_epochs = [0] * self.plan.num_shards
        for k, engine in enumerate(self.shards):
            engine.add_invalidation_hook(
                lambda shard=k: self._on_shard_invalidated(shard)
            )

        # -- gateway-level admission state (cut edges live in no shard) -
        self.dead_letters = DeadLetterQueue(dead_letter_capacity)
        self._last_ts: dict[tuple, float] = {}
        self._deferred_weights: list[list[tuple[int, int, float]]] = [
            [] for _ in range(self.plan.num_shards)
        ]
        self.metrics: Counter[str] = Counter()
        self._cut_edge_set = {
            (u, v) for u, v, _ in self.plan.cut_edges
        }
        self._sync_gauges()

    # ------------------------------------------------------------------
    # shard construction (also the recover/rebuild path)
    # ------------------------------------------------------------------
    def shard_durability_dir(self, shard: int) -> Path:
        if self._durability_dir is None:
            raise QueryError("this gateway was built without durability_dir")
        return self._durability_dir / f"shard-{shard:02d}"

    def _shard_durability(self, shard: int):
        if self._durability_dir is None:
            return None
        from repro.durability import Durability

        return Durability(
            self.shard_durability_dir(shard), **self._durability_kwargs
        )

    def _build_shard_engine(self, k: int, subgraph=None):
        """Build shard ``k``'s FRN + engine from the gateway's current graph.

        With ``subgraph=None`` the member subgraph is re-extracted from the
        (current) full graph and installed in :attr:`_subgraphs` in place —
        the rebuild path :meth:`recover_shard` falls back to when a shard
        has no usable checkpoint.
        """
        members = list(self._to_global[k])
        if subgraph is None:
            subgraph, relabel = self.frn.graph.subgraph(members)
            self._subgraphs[k] = subgraph
            self._to_local[k] = relabel
        frn = self.frn
        cols = np.asarray(members, dtype=np.int64)
        flow = FlowSeries(frn.flow.matrix[:, cols], frn.flow.interval_minutes)
        predicted = (
            flow
            if frn.predicted_flow is frn.flow
            else FlowSeries(
                frn.predicted_flow.matrix[:, cols],
                frn.predicted_flow.interval_minutes,
            )
        )
        lanes = frn.lanes[cols] if frn.lanes is not None else None
        shard_frn = FlowAwareRoadNetwork(subgraph, flow, predicted, lanes)
        index = None
        if subgraph.num_vertices > 0:
            from repro.core.fahl import FAHLIndex

            index = FAHLIndex(
                subgraph, shard_frn.total_predicted_flow(), beta=self._beta
            )
        engine = ResilientEngine(
            shard_frn,
            index=index,
            alpha=self._alpha,
            eta_u=self._eta_u,
            pruning=self._pruning,
            dead_letter_capacity=self._dead_letter_capacity,
            kernel=self._kernel,
            durability=self._shard_durability(k),
            **self._engine_kwargs,
        )
        return shard_frn, engine

    # ------------------------------------------------------------------
    # telemetry plumbing
    # ------------------------------------------------------------------
    def _count(self, name: str, help_: str, amount: int = 1, **labels) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(name, help_).inc(amount, **labels)

    @staticmethod
    def _shard_label(shard: int | None) -> str:
        """Label value for the ``shard`` dimension (``"-"`` = no one shard)."""
        return "-" if shard is None else str(shard)

    def _count_route(
        self, route: str, amount: int = 1, shard: int | None = None
    ) -> None:
        self.metrics[f"queries_{route}"] += amount
        self._count(
            "repro_gateway_queries_total",
            "gateway queries by routing decision",
            amount,
            route=route,
            shard=self._shard_label(shard),
        )

    def _count_cache(
        self, event: str, amount: int = 1, shard: int | None = None
    ) -> None:
        if amount <= 0:
            return
        self.metrics[f"cache_{event}"] += amount
        self._count(
            "repro_gateway_cache_total",
            "result-cache lookups by outcome",
            amount,
            event=event,
            shard=self._shard_label(shard),
        )

    def _observe_query(
        self, route: str, shard: int | None, start: float
    ) -> None:
        """Record one answered query's latency: histogram + flight + SLO.

        The registry histogram only moves when telemetry is enabled; the
        flight recorder's slow-query digest and the SLO window (when a
        monitor is installed) are always on.  A fallback answer burns
        error budget even when it is fast.
        """
        elapsed = time.perf_counter() - start
        label = self._shard_label(shard)
        registry = obs.get_registry()
        if registry.enabled:
            registry.histogram(
                "repro_gateway_query_seconds",
                "gateway query latency by route and shard",
            ).observe(elapsed, route=route, shard=label)
        obs_flight.observe_query(
            "gateway.query", elapsed, route=route, shard=label
        )
        monitor = obs_slo.get_slo_monitor()
        if monitor is not None:
            monitor.observe(elapsed, ok=route != "fallback")

    def _sync_gauges(self) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        degraded = registry.gauge(
            "repro_gateway_shard_degraded", "1 when the shard serves degraded"
        )
        vertices = registry.gauge(
            "repro_gateway_shard_vertices", "vertices owned by the shard"
        )
        for k, engine in enumerate(self.shards):
            degraded.set(1.0 if engine.degraded else 0.0, shard=k)
            vertices.set(len(self.plan.members[k]), shard=k)
        registry.gauge(
            "repro_gateway_cache_entries", "live result-cache entries"
        ).set(len(self.cache))

    # ------------------------------------------------------------------
    # invalidation (the unified hook surface)
    # ------------------------------------------------------------------
    def _on_shard_invalidated(self, shard: int) -> None:
        """Shard maintenance happened: bump its epoch, drop derived caches."""
        self._shard_epochs[shard] += 1
        self._cross.invalidate()
        self._fallback.invalidate()

    def invalidate(self) -> None:
        """Drop every derived cache: epochs, engines, result cache."""
        self._weight_epoch += 1
        for k in range(self.plan.num_shards):
            self._shard_epochs[k] += 1
        self._cross.invalidate()
        self._fallback.invalidate()
        self.cache.clear()

    def _epochs_for(self, i: int, j: int) -> tuple[int, int, int]:
        return (self._weight_epoch, self._shard_epochs[i], self._shard_epochs[j])

    # ------------------------------------------------------------------
    # distances
    # ------------------------------------------------------------------
    def _check_vertex(self, vertex: int) -> None:
        if not isinstance(vertex, int) or not 0 <= vertex < self.frn.num_vertices:
            raise QueryError(
                f"vertex {vertex!r} not in [0, {self.frn.num_vertices})"
            )

    def _distance_raw(self, u: int, v: int) -> float:
        """Exact full-graph distance via the sharded tables (uncached)."""
        if u == v:
            return 0.0
        i, j = self.plan.shard(u), self.plan.shard(v)
        if self.shards[i].degraded or self.shards[j].degraded:
            return dijkstra_distance(self.frn.graph, u, v)
        u_local = self._to_local[i][u]
        v_local = self._to_local[j][v]
        if i == j:
            # the shard *oracle*, not the raw index: in overlay mode the
            # labels legitimately lag the live weights between
            # consolidations and the oracle folds the correction back in
            d_local = self.shards[i].oracle.distance(u_local, v_local)
            return self.boundary.combine_intra(i, u_local, v_local, d_local)
        return self.boundary.combine_cross(i, u_local, j, v_local)

    def distance(self, u: int, v: int) -> ServingDistance:
        """Exact shortest spatial distance between any two global vertices."""
        self._check_vertex(u)
        self._check_vertex(v)
        i, j = self.plan.shard(u), self.plan.shard(v)
        epochs = self._epochs_for(i, j)
        key = ("d", u, v) if u <= v else ("d", v, u)
        stale_before = self.cache.stale_drops
        cached = self.cache.lookup(key, epochs)
        self._count_cache("stale", self.cache.stale_drops - stale_before, shard=i)
        if cached is not None:
            self._count_cache("hit", shard=i)
            return cached
        self._count_cache("miss", shard=i)
        degraded = self.shards[i].degraded or self.shards[j].degraded
        if degraded:
            self._count_route("fallback")
            answer = ServingDistance(
                value=dijkstra_distance(self.frn.graph, u, v),
                degraded=True,
                source="fallback",
            )
        else:
            route = "shard" if i == j else "boundary"
            self._count_route(route, shard=i if route == "shard" else None)
            answer = ServingDistance(
                value=self._distance_raw(u, v), degraded=False, source=route
            )
        self.cache.put(key, answer, epochs)
        self._sync_gauges()
        return answer

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def _remap_result(self, shard: int, result: FSPResult) -> FSPResult:
        to_global = self._to_global[shard]
        return replace(result, path=tuple(to_global[v] for v in result.path))

    def _route_class(self, query: FSPQuery) -> tuple[str, int, int]:
        """Routing decision for one query: ``(route, i, j)``."""
        i = self.plan.shard(query.source)
        j = self.plan.shard(query.target)
        if self.shards[i].degraded or self.shards[j].degraded:
            return "fallback", i, j
        if (
            i == j
            and self.intra_shard_local
            and query.source != query.target
        ):
            u_local = self._to_local[i][query.source]
            v_local = self._to_local[i][query.target]
            d_local = self.shards[i].oracle.distance(u_local, v_local)
            if math.isfinite(d_local) and (
                self.boundary.combine_intra(i, u_local, v_local, d_local)
                == d_local
            ):
                return "shard", i, j
        return "boundary", i, j

    def _evaluate(self, query: FSPQuery, route: str, i: int) -> ServingResult:
        if route == "fallback":
            return ServingResult(
                result=self._fallback.query(query), degraded=True,
                source="fallback",
            )
        if route == "shard":
            local = FSPQuery(
                self._to_local[i][query.source],
                self._to_local[i][query.target],
                query.timestep,
            )
            served = self.shards[i].query(local)
            return ServingResult(
                result=self._remap_result(i, served.result),
                degraded=served.degraded,
                source="shard",
            )
        return ServingResult(
            result=self._cross.query(query), degraded=False, source="boundary"
        )

    def query(self, query: FSPQuery) -> ServingResult:
        """Answer one FSPQ query through the sharded topology + cache."""
        query.validated(self.frn.num_vertices, self.frn.num_timesteps)
        if obs.get_tracer() is not None:
            with obs_context.request_scope():
                with obs.trace(
                    "gateway.query", src=query.source, dst=query.target
                ):
                    return self._query_impl(query)
        return self._query_impl(query)

    def _query_impl(self, query: FSPQuery) -> ServingResult:
        start = time.perf_counter()
        i = self.plan.shard(query.source)
        j = self.plan.shard(query.target)
        epochs = self._epochs_for(i, j)
        key = ("q", query.source, query.target, query.timestep)
        stale_before = self.cache.stale_drops
        cached = self.cache.lookup(key, epochs)
        self._count_cache("stale", self.cache.stale_drops - stale_before, shard=i)
        if cached is not None:
            self._count_cache("hit", shard=i)
            self._observe_query("cache", i, start)
            return cached
        self._count_cache("miss", shard=i)
        route, i, j = self._route_class(query)
        shard = i if route == "shard" else None
        self._count_route(route, shard=shard)
        answer = self._evaluate(query, route, i)
        self.cache.put(key, answer, epochs)
        self._sync_gauges()
        self._observe_query(route, shard, start)
        return answer

    def explain(self, source: int, target: int, timestep: int = 0):
        """EXPLAIN one query through the gateway's routing topology.

        Takes the exact routing decision :meth:`query` would take for the
        pair (cache probe → route class → shard/boundary/fallback engine),
        runs the chosen engine's own :meth:`explain` — which evaluates the
        query for real, so ``distance`` is bit-identical to
        :meth:`query` — and annotates the result with the gateway-level
        provenance: route taken, shard pair, cache verdict with the epoch
        stamp the entry would carry, and the boundary-table size the
        combine paths cross.  The cache probe is observational only: it
        does not count toward the cache metrics, and the answer is *not*
        inserted, so explaining a query never perturbs serving state.
        """
        query = FSPQuery(source, target, timestep).validated(
            self.frn.num_vertices, self.frn.num_timesteps
        )
        i = self.plan.shard(source)
        j = self.plan.shard(target)
        epochs = self._epochs_for(i, j)
        cache_hit = (
            self.cache.lookup(
                ("q", source, target, timestep), epochs
            )
            is not None
        )
        route, i, j = self._route_class(query)
        if route == "shard":
            inner = self.shards[i].explain(
                self._to_local[i][source], self._to_local[i][target], timestep
            )
            to_global = self._to_global[i]
            inner = replace(
                inner,
                source=source,
                target=target,
                path=tuple(to_global[v] for v in inner.path),
            )
        elif route == "fallback":
            inner = self._fallback.explain(source, target, timestep)
        else:
            inner = self._cross.explain(source, target, timestep)
        return replace(
            inner,
            engine="gateway",
            route=route,
            shards=(i, j),
            cache_hit=cache_hit,
            cache_epochs=epochs,
            boundary_vertices=self.boundary.num_boundary_vertices,
            answer_source=route,
            degraded=route == "fallback",
        )

    def batch(
        self,
        queries: list[FSPQuery],
        workers: int = 1,
        timeout: float | None = None,
        kernel: str | None = None,
        report: BatchReport | None = None,
    ) -> list[ServingResult]:
        """Evaluate a workload, fanning shard groups through the fork pool.

        Cache hits are answered immediately; misses are grouped by routing
        decision, each shard group runs through the existing
        :func:`~repro.core.batch.batch_query` machinery on that shard's
        engine, and the pool workers available are split across groups in
        proportion to the work each one admitted (degraded-fallback
        queries always run serially in the gateway process).  ``timeout``
        and ``kernel`` follow the unified protocol batch signature
        (docs/API.md): per-chunk budget and kernel-mode override, passed
        through to every group's engine.
        """
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        if kernel is not None and kernel not in KERNEL_MODES:
            raise QueryError(
                f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
            )
        for query in queries:
            query.validated(self.frn.num_vertices, self.frn.num_timesteps)
        if obs.get_tracer() is not None:
            with obs_context.request_scope():
                with obs.trace(
                    "gateway.batch", queries=len(queries), workers=workers
                ):
                    return self._batch_impl(queries, workers, timeout, kernel, report)
        return self._batch_impl(queries, workers, timeout, kernel, report)

    def _batch_impl(
        self,
        queries: list[FSPQuery],
        workers: int,
        timeout: float | None,
        kernel: str | None,
        report: BatchReport | None,
    ) -> list[ServingResult]:
        results: list[ServingResult | None] = [None] * len(queries)
        pending: dict[str, list[tuple[int, FSPQuery, int, tuple[int, ...]]]] = {}
        hits_by_shard: Counter[int] = Counter()
        misses_by_shard: Counter[int] = Counter()
        for position, query in enumerate(queries):
            i = self.plan.shard(query.source)
            j = self.plan.shard(query.target)
            epochs = self._epochs_for(i, j)
            key = ("q", query.source, query.target, query.timestep)
            stale_before = self.cache.stale_drops
            cached = self.cache.lookup(key, epochs)
            self._count_cache(
                "stale", self.cache.stale_drops - stale_before, shard=i
            )
            if cached is not None:
                results[position] = cached
                hits_by_shard[i] += 1
                continue
            misses_by_shard[i] += 1
            route, i, j = self._route_class(query)
            group = f"shard:{i}" if route == "shard" else route
            pending.setdefault(group, []).append((position, query, i, epochs))
        for shard, amount in sorted(hits_by_shard.items()):
            self._count_cache("hit", amount, shard=shard)
        for shard, amount in sorted(misses_by_shard.items()):
            self._count_cache("miss", amount, shard=shard)
        total_misses = sum(len(v) for v in pending.values())

        def _finish(
            position: int, query: FSPQuery, answer: ServingResult,
            epochs: tuple[int, ...],
        ) -> None:
            key = ("q", query.source, query.target, query.timestep)
            self.cache.put(key, answer, epochs)
            results[position] = answer

        for group, entries in pending.items():
            # admission-weighted allocation: each group gets pool workers in
            # proportion to its share of the admitted (non-cached) workload.
            share = max(
                1, round(workers * len(entries) / max(1, total_misses))
            )
            if group == "fallback":
                self._count_route("fallback", len(entries))
                with self._fallback.kernel_override(kernel):
                    for position, query, _, epochs in entries:
                        _finish(
                            position, query,
                            ServingResult(
                                result=self._fallback.query(query),
                                degraded=True, source="fallback",
                            ),
                            epochs,
                        )
            elif group == "boundary":
                self._count_route("boundary", len(entries))
                answers = self._cross.batch(
                    [query for _, query, _, _ in entries],
                    workers=share,
                    timeout=timeout,
                    kernel=kernel,
                    report=report,
                )
                for (position, query, _, epochs), result in zip(entries, answers):
                    _finish(
                        position, query,
                        ServingResult(
                            result=result, degraded=False, source="boundary"
                        ),
                        epochs,
                    )
            else:
                shard = entries[0][2]
                self._count_route("shard", len(entries), shard=shard)
                local = [
                    FSPQuery(
                        self._to_local[shard][query.source],
                        self._to_local[shard][query.target],
                        query.timestep,
                    )
                    for _, query, _, _ in entries
                ]
                served = self.shards[shard].batch(
                    local, workers=share, timeout=timeout, kernel=kernel,
                    report=report,
                )
                for (position, query, _, epochs), answer in zip(entries, served):
                    _finish(
                        position, query,
                        ServingResult(
                            result=self._remap_result(shard, answer.result),
                            degraded=answer.degraded,
                            source="shard",
                        ),
                        epochs,
                    )
        self._sync_gauges()
        return results  # type: ignore[return-value]

    # ------------------------------------------------------------------
    # updates
    # ------------------------------------------------------------------
    def _reject(self, update, kind: str, reason: str, detail: str) -> UpdateOutcome:
        self.dead_letters.push(update, reason, detail)
        self.metrics["updates_rejected"] += 1
        self._count(
            "repro_gateway_updates_total",
            "gateway updates by kind and outcome",
            kind=kind,
            outcome="rejected",
        )
        return UpdateOutcome(accepted=False, applied=False, reason=reason)

    def _record_outcome(self, kind: str, outcome: UpdateOutcome) -> UpdateOutcome:
        token = (
            "applied" if outcome.applied
            else "deferred" if outcome.deferred
            else "rejected"
        )
        self.metrics[f"updates_{token}"] += 1
        self._count(
            "repro_gateway_updates_total",
            "gateway updates by kind and outcome",
            kind=kind,
            outcome=token,
        )
        self._sync_gauges()
        return outcome

    def submit(self, update: FlowUpdate | WeightUpdate) -> UpdateOutcome:
        """Route one update to its owning shard; never raises on bad input.

        Flow updates go to the vertex's shard engine.  Weight updates on a
        within-shard edge go to that shard engine *and*, once applied, are
        mirrored onto the full graph so the boundary tables and fallback
        paths see the same weights.  Weight updates on *cut edges* (which
        belong to no shard subgraph) are admitted by the gateway itself and
        applied to the full graph directly.
        """
        if isinstance(update, FlowUpdate):
            if not (
                isinstance(update.vertex, int)
                and 0 <= update.vertex < self.frn.num_vertices
            ):
                return self._reject(
                    update, "flow", "unknown-vertex",
                    f"vertex {update.vertex!r} not in "
                    f"[0, {self.frn.num_vertices})",
                )
            shard = self.plan.shard(update.vertex)
            local = FlowUpdate(
                self._to_local[shard][update.vertex],
                update.value,
                update.timestamp,
            )
            outcome = self.shards[shard].submit(local)
            return self._record_outcome("flow", outcome)
        if isinstance(update, WeightUpdate):
            return self._record_outcome("weight", self._submit_weight(update))
        return self._reject(
            update, "unknown", "unsupported-type",
            f"cannot apply {type(update).__name__}",
        )

    def _submit_weight(self, update: WeightUpdate) -> UpdateOutcome:
        for vertex in (update.u, update.v):
            if not (
                isinstance(vertex, int)
                and 0 <= vertex < self.frn.num_vertices
            ):
                return self._reject(
                    update, "weight", "unknown-vertex",
                    f"vertex {vertex!r} not in [0, {self.frn.num_vertices})",
                )
        i = self.plan.shard(update.u)
        j = self.plan.shard(update.v)
        if i == j:
            shard = i
            local = WeightUpdate(
                self._to_local[shard][update.u],
                self._to_local[shard][update.v],
                update.value,
                update.timestamp,
            )
            outcome = self.shards[shard].submit(local)
            if outcome.applied:
                # mirror onto the full graph so cross-shard candidate
                # generation and degraded Dijkstra see the new weight,
                # then refresh every distance structure derived from it.
                self.frn.graph.set_weight(update.u, update.v, update.value)
                self.boundary.rebuild_shard(shard)
                self.boundary.rebuild_global()
                self._weight_epoch += 1
                self._cross.invalidate()
                self._fallback.invalidate()
            elif outcome.deferred:
                self._deferred_weights[shard].append(
                    (update.u, update.v, update.value)
                )
            return outcome
        # cut edge: owned by the gateway, not by any shard subgraph
        return self._submit_cut_weight(update)

    def _submit_cut_weight(self, update: WeightUpdate) -> UpdateOutcome:
        key = (update.u, update.v) if update.u <= update.v else (update.v, update.u)
        if key not in self._cut_edge_set:
            return self._reject(
                update, "cut-weight", "unknown-edge",
                f"edge ({update.u}, {update.v}) not in graph",
            )
        value, timestamp = update.value, update.timestamp
        if not (isinstance(value, (int, float)) and math.isfinite(value)):
            return self._reject(
                update, "cut-weight", "non-finite",
                f"weight {value!r} is not finite",
            )
        if value <= 0:
            return self._reject(
                update, "cut-weight", "non-positive-weight",
                f"weight {value} is not positive",
            )
        if not (isinstance(timestamp, (int, float)) and math.isfinite(timestamp)):
            return self._reject(
                update, "cut-weight", "non-finite",
                f"timestamp {timestamp!r} is not finite",
            )
        last = self._last_ts.get(update.key)
        if last is not None and timestamp < last:
            return self._reject(
                update, "cut-weight", "stale-timestamp",
                f"timestamp {timestamp} predates last accepted {last}",
            )
        self._last_ts[update.key] = timestamp
        self.frn.graph.set_weight(update.u, update.v, float(value))
        self.boundary.rebuild_global()
        self._weight_epoch += 1
        self._cross.invalidate()
        self._fallback.invalidate()
        return UpdateOutcome(
            accepted=True, applied=True, strategy="cut-edge", attempts=1
        )

    # ------------------------------------------------------------------
    # health / repair
    # ------------------------------------------------------------------
    @property
    def degraded_shards(self) -> tuple[int, ...]:
        return tuple(
            k for k, engine in enumerate(self.shards) if engine.degraded
        )

    def repair(self, shard: int | None = None) -> dict[int, bool]:
        """Repair degraded shards (all of them when ``shard`` is ``None``).

        Each repaired shard's deferred weight updates are folded into the
        full graph too, then the boundary tables are rebuilt so the
        combine paths see the recovered weights.  Returns the post-repair
        audit verdict per repaired shard.
        """
        targets = [shard] if shard is not None else list(self.degraded_shards)
        verdicts: dict[int, bool] = {}
        rebuilt = False
        for k in targets:
            report = self.shards[k].repair()
            verdicts[k] = report.ok
            for u, v, value in self._deferred_weights[k]:
                self.frn.graph.set_weight(u, v, value)
                rebuilt = True
            self._deferred_weights[k].clear()
            if rebuilt:
                self.boundary.rebuild_shard(k)
            self.metrics["repairs"] += 1
            self._count(
                "repro_gateway_repairs_total", "per-shard repair passes"
            )
        if rebuilt:
            self.boundary.rebuild_global()
        if targets:
            self._weight_epoch += 1
            self._cross.invalidate()
            self._fallback.invalidate()
        self._sync_gauges()
        return verdicts

    def recover_shard(self, shard: int):
        """Restart one crashed shard from its checkpoint + WAL tail.

        The other shards keep serving throughout — recovery only touches
        shard-local structures until the final boundary-table refresh.
        The shard's durability directory is replayed through
        :func:`repro.durability.recover`; when nothing usable survives
        there (no checkpoint ever written *and* the log history is
        incomplete), the shard is rebuilt cold from the gateway's current
        graph and immediately checkpointed, so the next crash recovers
        fast.

        Returns the :class:`~repro.durability.RecoveryReport` of the
        replay, or ``None`` when the shard had to be rebuilt cold.
        """
        from repro.durability import recover

        if not 0 <= shard < self.plan.num_shards:
            raise QueryError(
                f"shard {shard!r} not in [0, {self.plan.num_shards})"
            )
        old = self.shards[shard]
        if old.durability is not None:
            old.durability.close()
        report = None
        try:
            engine = recover(
                self.shard_durability_dir(shard),
                self._shard_frns[shard],
                alpha=self._alpha,
                eta_u=self._eta_u,
                pruning=self._pruning,
                dead_letter_capacity=self._dead_letter_capacity,
                kernel=self._kernel,
                **self._engine_kwargs,
                **self._durability_kwargs,
            )
            report = engine.last_recovery
            # BoundaryIndex shares this list object: replacing the element
            # in place is what rebuild_shard() below will read
            self._subgraphs[shard] = engine.frn.graph
            self._shard_frns[shard] = engine.frn
        except RecoveryError:
            _, engine = self._build_shard_engine(shard)
            self._shard_frns[shard] = engine.frn
            if engine.durability is not None:
                # make the directory coherent again: a fresh generation
                # supersedes whatever debris defeated recovery
                engine.durability.checkpoint(engine)
            self.metrics["shard_rebuilds"] += 1
            self._count(
                "repro_gateway_shard_recoveries_total",
                "per-shard restarts by restore source",
                source="rebuild",
            )
        else:
            self._count(
                "repro_gateway_shard_recoveries_total",
                "per-shard restarts by restore source",
                source="checkpoint",
            )
        self.shards[shard] = engine
        engine.add_invalidation_hook(
            lambda: self._on_shard_invalidated(shard)
        )
        # mirror the recovered shard's live weights onto the full graph so
        # the boundary combine and degraded Dijkstra agree with the shard
        to_global = self._to_global[shard]
        full = self.frn.graph
        for u, v, weight in engine.frn.graph.edges():
            full.set_weight(to_global[u], to_global[v], weight)
        self.boundary.rebuild_shard(shard)
        self.boundary.rebuild_global()
        self._weight_epoch += 1
        self._shard_epochs[shard] += 1
        self._cross.invalidate()
        self._fallback.invalidate()
        self.cache.clear()
        self.metrics["shard_recoveries"] += 1
        self._sync_gauges()
        return report

    def maintenance_tick(self, steps: int = 1) -> dict[int, str]:
        """Advance every shard's background consolidation a little.

        Overlay-mode shards fold their pending overlays/flows into back
        buffers one cooperative step at a time; each committed swap bumps
        that shard's epoch through the unified invalidation hook, so the
        result cache self-invalidates without a scan.  Inline-mode shards
        are no-ops.  Returns the per-shard task state after the tick.
        """
        states: dict[int, str] = {}
        for k, engine in enumerate(self.shards):
            state = engine.maintenance_tick(steps=steps)
            if state is not None:
                states[k] = state
        self._sync_gauges()
        return states

    def consolidate(self) -> dict[int, str]:
        """Run every pending shard consolidation to the committed swap."""
        states: dict[int, str] = {}
        for k, engine in enumerate(self.shards):
            state = engine.consolidate()
            if state is not None:
                states[k] = state
        self._sync_gauges()
        return states

    @property
    def flow_engine(self) -> FlowAwareEngine:
        """The gateway's exact-distance flow engine (for kNN & friends)."""
        return self._cross

    def status(self) -> GatewayStatus:
        """Typed snapshot for telemetry/logging."""
        lag = 0
        for engine in self.shards:
            if engine.overlay is not None:
                lag += len(engine.overlay) + len(engine._pending_flows)
        return GatewayStatus(
            num_shards=self.plan.num_shards,
            shard_sizes=tuple(len(m) for m in self.plan.members),
            boundary_vertices=self.boundary.num_boundary_vertices,
            degraded_shards=self.degraded_shards,
            weight_epoch=self._weight_epoch,
            shard_epochs=tuple(self._shard_epochs),
            cache=self.cache.stats(),
            metrics=dict(self.metrics),
            consolidation_lag=lag,
        )
