"""Horizontal scaling: network sharding, boundary labels, serving gateway.

The :class:`ShardedGateway` partitions the road network into K connected
shards (:func:`partition_network`), runs one resilient engine per shard,
recovers exact full-graph distances through :class:`BoundaryIndex`'s
boundary-vertex tables, and fronts everything with the epoch-invalidated
:class:`ResultCache`.  See docs/API.md for the deployment topology.
"""

from repro.scale.boundary import BoundaryIndex
from repro.scale.cache import CacheStats, ResultCache
from repro.scale.gateway import GatewayStatus, ShardedGateway
from repro.scale.partitioner import ShardPlan, partition_network

__all__ = [
    "BoundaryIndex",
    "CacheStats",
    "GatewayStatus",
    "ResultCache",
    "ShardPlan",
    "ShardedGateway",
    "partition_network",
]
