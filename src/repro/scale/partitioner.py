"""K-way network partitioning for the sharded serving gateway.

The gateway shards the road network the same way the partition-based
hierarchies of the literature do (TD-G-tree in the paper, Hierarchical Cut
Labelling): recursive balanced bisection with boundary refinement, reusing
the cut machinery of :mod:`repro.baselines.partition`.  On top of the raw
cuts this module adds what a *serving* tier needs and a query hierarchy
does not:

* **connectivity repair** — every shard must induce a connected subgraph,
  because each shard builds its own FAHL index (construction requires a
  connected graph).  Stray components left by the bisection heuristic are
  migrated to the neighbouring shard that owns most of their external
  edges; each migration strictly reduces the total number of
  (shard, component) pairs, so the repair terminates.
* **boundary bookkeeping** — per shard, the vertices with an edge into
  another shard (the cut vertices through which every cross-shard path
  must travel), plus the explicit cut-edge list.  These drive the
  boundary distance tables of :mod:`repro.scale.boundary`.
"""

from __future__ import annotations

from collections import Counter, deque
from dataclasses import dataclass

import numpy as np

from repro.baselines.partition import bisect
from repro.errors import PartitionError
from repro.graph.road_network import RoadNetwork

__all__ = ["ShardPlan", "partition_network"]


@dataclass(frozen=True)
class ShardPlan:
    """An immutable K-way vertex partition of a road network.

    Attributes
    ----------
    num_shards:
        Number of shards actually produced (may be less than requested on
        tiny graphs).
    shard_of:
        ``int64`` array mapping every global vertex id to its shard.
    members:
        Per shard, the sorted tuple of global vertex ids it owns.
    boundary:
        Per shard, the sorted tuple of its boundary vertices — members
        with at least one edge into a different shard.
    cut_edges:
        Every edge ``(u, v, weight)`` crossing two shards, with ``u < v``.
        Cut edges belong to no shard subgraph; the gateway maintains them
        on the full graph.
    """

    num_shards: int
    shard_of: np.ndarray
    members: tuple[tuple[int, ...], ...]
    boundary: tuple[tuple[int, ...], ...]
    cut_edges: tuple[tuple[int, int, float], ...]

    def shard(self, vertex: int) -> int:
        """Owning shard of a global vertex id."""
        return int(self.shard_of[vertex])


def _components(graph: RoadNetwork, vertices: list[int]) -> list[list[int]]:
    """Connected components of the subgraph induced by ``vertices``."""
    allowed = set(vertices)
    seen: set[int] = set()
    components: list[list[int]] = []
    for start in vertices:
        if start in seen:
            continue
        component = [start]
        seen.add(start)
        queue = deque([start])
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if v in allowed and v not in seen:
                    seen.add(v)
                    component.append(v)
                    queue.append(v)
        components.append(component)
    return components


def _repair_connectivity(graph: RoadNetwork, parts: list[list[int]]) -> list[list[int]]:
    """Migrate stray components until every part induces a connected graph.

    A non-largest component of a part is reassigned to the neighbouring
    part owning the majority of its external edges.  The component is
    adjacent to that part by construction, so the move merges it into at
    least one existing component there: the global count of
    (part, component) pairs strictly decreases and the loop terminates.
    """
    assignment: dict[int, int] = {}
    for k, part in enumerate(parts):
        for v in part:
            assignment[v] = k
    changed = True
    while changed:
        changed = False
        for k in range(len(parts)):
            part = [v for v, s in assignment.items() if s == k]
            if not part:
                continue
            components = _components(graph, part)
            if len(components) <= 1:
                continue
            components.sort(key=len, reverse=True)
            for component in components[1:]:
                votes: Counter[int] = Counter()
                inside = set(component)
                for u in component:
                    for v in graph.neighbors(u):
                        if v not in inside and assignment[v] != k:
                            votes[assignment[v]] += 1
                if not votes:
                    # no edge leaves the component except into its own
                    # shard: the *graph* is disconnected here and the
                    # component can stay (index construction rejects it
                    # upstream, like the monolithic path would).
                    continue
                target = votes.most_common(1)[0][0]
                for u in component:
                    assignment[u] = target
                changed = True
    repaired: list[list[int]] = [[] for _ in parts]
    for v, k in assignment.items():
        repaired[k].append(v)
    return [sorted(part) for part in repaired if part]


def partition_network(
    graph: RoadNetwork,
    num_shards: int,
    balance: float = 0.6,
) -> ShardPlan:
    """Partition ``graph`` into up to ``num_shards`` connected shards.

    The largest part is bisected repeatedly until the target shard count
    is reached (or no part is splittable), then stray components are
    migrated so every shard induces a connected subgraph.

    Parameters
    ----------
    num_shards:
        Requested shard count; the plan records how many were achieved.
    balance:
        Per-bisection balance cap, forwarded to
        :func:`repro.baselines.partition.bisect`.
    """
    if num_shards < 1:
        raise PartitionError(f"num_shards must be >= 1, got {num_shards}")
    if graph.num_vertices == 0:
        raise PartitionError("cannot partition an empty graph")
    parts: list[list[int]] = [sorted(graph.vertices())]
    while len(parts) < num_shards:
        parts.sort(key=len, reverse=True)
        largest = parts[0]
        if len(largest) < 2:
            break
        left, right = bisect(graph, largest, balance=balance)
        parts = [left, right] + parts[1:]
    if num_shards > 1:
        parts = _repair_connectivity(graph, parts)
    parts.sort(key=lambda part: part[0])

    shard_of = np.full(graph.num_vertices, -1, dtype=np.int64)
    for k, part in enumerate(parts):
        for v in part:
            shard_of[v] = k
    if (shard_of < 0).any():
        raise PartitionError("partition did not cover every vertex")

    boundary: list[tuple[int, ...]] = []
    for k, part in enumerate(parts):
        boundary.append(
            tuple(
                v
                for v in part
                if any(shard_of[nbr] != k for nbr in graph.neighbors(v))
            )
        )
    cut_edges = tuple(
        (u, v, w)
        for u, v, w in graph.edges()
        if shard_of[u] != shard_of[v]
    )
    return ShardPlan(
        num_shards=len(parts),
        shard_of=shard_of,
        members=tuple(tuple(part) for part in parts),
        boundary=tuple(boundary),
        cut_edges=cut_edges,
    )
