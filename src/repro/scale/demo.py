"""A small instrumented sharded-gateway workload (`fahl-repro serve-sharded`).

Mirrors :mod:`repro.obs.demo` one tier up: build a grid FRN, front it with
a :class:`~repro.scale.gateway.ShardedGateway`, push a repeated query
workload through the cache, stream a few updates (good and bad) through
shard maintenance, and return a summary the CLI prints next to the
metrics report.  CI runs this and lints the Prometheus export.
"""

from __future__ import annotations

import math
import random

from repro.core.fspq import FSPQuery
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.scale.gateway import ShardedGateway
from repro.serving.updates import FlowUpdate, WeightUpdate

__all__ = ["run_sharded_demo"]


def run_sharded_demo(
    side: int = 8,
    shards: int = 4,
    queries: int = 60,
    repeat: int = 3,
    updates: int = 6,
    workers: int = 1,
    seed: int = 0,
) -> dict:
    """Run the demo and return a summary dict (gateway status + workload)."""
    rng = random.Random(seed)
    graph = grid_network(side, side, seed=seed)
    frn = FlowAwareRoadNetwork(graph, generate_flow_series(graph, days=1, seed=seed))
    gateway = ShardedGateway(
        frn, num_shards=shards, max_retries=1, backoff=0.0
    )

    n, steps = frn.num_vertices, frn.num_timesteps
    unique = []
    while len(unique) < queries:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            unique.append(FSPQuery(u, v, rng.randrange(steps)))
    # a repeated workload: the same query mix arrives in `repeat` rounds,
    # so every round after the first is served from the result cache
    results = []
    for _ in range(repeat):
        workload = list(unique)
        rng.shuffle(workload)
        results.extend(gateway.batch(workload, workers=workers))

    applied = 0
    for i in range(updates):
        vertex = rng.randrange(n)
        if i % 3 == 2:
            update = FlowUpdate(vertex, math.nan, timestamp=float(i))
        elif i % 3 == 1:
            u, v, w = gateway.plan.cut_edges[i % len(gateway.plan.cut_edges)]
            update = WeightUpdate(u, v, w + 1.0, timestamp=float(i))
        else:
            update = FlowUpdate(vertex, 40.0 + i, timestamp=float(i))
        if gateway.submit(update).applied:
            applied += 1
    # re-ask the same workload: entries for updated shards die lazily
    gateway.batch(unique, workers=workers)

    status = gateway.status()
    return {
        "vertices": n,
        "shards": status.num_shards,
        "boundary_vertices": status.boundary_vertices,
        "queries": len(unique) * (repeat + 1),
        "results": len(results),
        "accepted_updates": applied,
        "degraded_shards": list(status.degraded_shards),
        "cache_hit_rate": status.cache.hit_rate,
        "cache_stale_drops": status.cache.stale_drops,
        "dead_letters": status.metrics.get("updates_rejected", 0),
    }
