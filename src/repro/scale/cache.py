"""Flow-interval-aware result cache with epoch-based invalidation.

The gateway caches query answers keyed on ``(source, target, flow-interval
epoch)`` — concretely the FSPQ triple ``(source, target, timestep)`` for
full queries and ``(u, v)`` for pure distances.  Instead of scanning the
cache on every maintenance operation, each entry records the *epochs* it
was computed under:

* a **global weight epoch**, bumped on any accepted weight update (a
  weight change anywhere can reroute any path via the boundary tables);
* the **per-shard epochs** of the source and target shards, bumped by each
  shard's maintenance through the unified invalidation hook.

A lookup whose recorded epochs no longer match the current ones simply
drops the entry — stale results die lazily, O(1) per touch, without any
scan.  Eviction is LRU via :class:`collections.OrderedDict`.

Overlay-mode serving rides the same machinery with no cache changes: an
overlay **absorb** fires the shard's invalidation hook (epoch bump — the
answer changed even though the labels did not), and the background
consolidation's atomic **swap** fires it again through the engine's full
``invalidate()``.  Entries computed against any pre-swap
``stable ⊕ overlay`` pair therefore self-invalidate exactly like inline
maintenance, and a query can never read a result cached under a
half-consolidated state — the swap is a single epoch transition.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass

from repro.errors import QueryError

__all__ = ["CacheStats", "ResultCache"]


@dataclass(frozen=True)
class CacheStats:
    """Counter snapshot of one :class:`ResultCache`."""

    hits: int
    misses: int
    stale_drops: int
    evictions: int
    size: int
    capacity: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class ResultCache:
    """An LRU cache whose entries self-invalidate on epoch mismatch.

    Parameters
    ----------
    capacity:
        Maximum number of live entries; least-recently-used entries are
        evicted beyond it.
    """

    def __init__(self, capacity: int = 4096) -> None:
        if capacity < 1:
            raise QueryError(f"cache capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self._entries: OrderedDict[tuple, tuple[object, tuple[int, ...]]] = (
            OrderedDict()
        )
        self.hits = 0
        self.misses = 0
        self.stale_drops = 0
        self.evictions = 0

    def lookup(self, key: tuple, epochs: tuple[int, ...]):
        """The cached payload, or ``None`` on miss / stale entry.

        ``epochs`` is the tuple of *current* epochs relevant to ``key``;
        an entry recorded under different epochs is deleted on touch.
        """
        entry = self._entries.get(key)
        if entry is None:
            self.misses += 1
            return None
        payload, recorded = entry
        if recorded != epochs:
            del self._entries[key]
            self.stale_drops += 1
            self.misses += 1
            return None
        self._entries.move_to_end(key)
        self.hits += 1
        return payload

    def put(self, key: tuple, payload: object, epochs: tuple[int, ...]) -> None:
        """Record ``payload`` for ``key`` under the given epochs."""
        if key in self._entries:
            self._entries.move_to_end(key)
        self._entries[key] = (payload, epochs)
        while len(self._entries) > self.capacity:
            self._entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self.hits,
            misses=self.misses,
            stale_drops=self.stale_drops,
            evictions=self.evictions,
            size=len(self._entries),
            capacity=self.capacity,
        )
