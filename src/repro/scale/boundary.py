"""Boundary-vertex distance tables for exact cross-shard distances.

Every path that leaves a shard crosses one of its boundary vertices, so
shard-local labels plus a global boundary-to-boundary table recover exact
full-graph distances (the standard partition-hierarchy argument, cf.
TD-G-tree and Hierarchical Cut Labelling):

* ``u`` and ``v`` in *different* shards ``i`` / ``j``::

      d(u, v) = min over b in B_i, b' in B_j of
                d_i(u, b) + D(b, b') + d_j(b', v)

  where ``d_k`` is the distance *inside* shard ``k``'s subgraph and ``D``
  is the full-graph distance between boundary vertices.

* ``u`` and ``v`` in the *same* shard ``k``: the shortest path may detour
  through other shards, so::

      d(u, v) = min(d_k(u, v),
                    min over b, b' in B_k of d_k(u, b) + D(b, b') + d_k(b', v))

Both formulas are exact: decompose any optimal path at the first boundary
vertex from which it leaves the shard and the last one through which it
re-enters — the prefix and suffix stay inside their shards, the middle is
a full-graph path between boundary vertices.

The tables are plain numpy arrays, so the min-plus combines above are
single vectorised expressions.  ``rebuild_shard`` / ``rebuild_global``
re-derive them after weight maintenance (a weight change anywhere can
reroute boundary-to-boundary paths, so the global table is rebuilt on any
accepted weight update; flow updates never touch distances).
"""

from __future__ import annotations

import numpy as np

from repro import obs
from repro.baselines.dijkstra import dijkstra_distances
from repro.graph.road_network import RoadNetwork
from repro.scale.partitioner import ShardPlan

__all__ = ["BoundaryIndex"]


class BoundaryIndex:
    """Shard-local boundary labels plus the global boundary table.

    Parameters
    ----------
    graph:
        The full road network (shared with the gateway; reread on
        :meth:`rebuild_global`).
    plan:
        The shard plan the tables are derived from.
    subgraphs:
        Per shard, the induced subgraph in *local* vertex ids (the same
        objects the shard engines serve).
    """

    def __init__(
        self,
        graph: RoadNetwork,
        plan: ShardPlan,
        subgraphs: list[RoadNetwork],
    ) -> None:
        self._graph = graph
        self._plan = plan
        self._subgraphs = subgraphs
        # global ids of every boundary vertex, concatenated shard by shard
        self._boundary_ids: list[int] = [
            v for shard_boundary in plan.boundary for v in shard_boundary
        ]
        self._rows: list[np.ndarray] = []  # per shard: row indices into the table
        offset = 0
        for shard_boundary in plan.boundary:
            size = len(shard_boundary)
            self._rows.append(np.arange(offset, offset + size, dtype=np.int64))
            offset += size
        # local boundary ids per shard (position of each boundary vertex in
        # the shard's local numbering — members are sorted, so searchsorted)
        self._local_boundary: list[np.ndarray] = []
        for k, shard_boundary in enumerate(plan.boundary):
            members = np.asarray(plan.members[k], dtype=np.int64)
            self._local_boundary.append(
                np.searchsorted(members, np.asarray(shard_boundary, dtype=np.int64))
            )
        self._local: list[np.ndarray] = [
            self._compute_local(k) for k in range(plan.num_shards)
        ]
        self._table = self._compute_global()

    # ------------------------------------------------------------------
    # table construction / maintenance
    # ------------------------------------------------------------------
    def _compute_local(self, k: int) -> np.ndarray:
        """``(|B_k|, n_k)`` distances from each boundary vertex, in-shard."""
        subgraph = self._subgraphs[k]
        local_ids = self._local_boundary[k]
        if len(local_ids) == 0:
            return np.empty((0, subgraph.num_vertices), dtype=np.float64)
        return np.vstack(
            [dijkstra_distances(subgraph, int(b)) for b in local_ids]
        )

    def _compute_global(self) -> np.ndarray:
        """``(|B|, |B|)`` full-graph distances between boundary vertices."""
        ids = self._boundary_ids
        if not ids:
            return np.empty((0, 0), dtype=np.float64)
        targets = set(ids)
        columns = np.asarray(ids, dtype=np.int64)
        return np.vstack(
            [dijkstra_distances(self._graph, b, targets=targets)[columns] for b in ids]
        )

    def _count_rebuild(self, scope: str) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_gateway_boundary_rebuilds_total",
                "boundary distance-table rebuilds after weight maintenance",
            ).inc(scope=scope)

    def rebuild_shard(self, k: int) -> None:
        """Recompute shard ``k``'s local boundary labels (weights changed)."""
        self._local[k] = self._compute_local(k)
        self._count_rebuild("shard")

    def rebuild_global(self) -> None:
        """Recompute the boundary-to-boundary table from the full graph."""
        self._table = self._compute_global()
        self._count_rebuild("global")

    # ------------------------------------------------------------------
    # distance combines
    # ------------------------------------------------------------------
    def to_boundary(self, k: int, local_vertex: int) -> np.ndarray:
        """In-shard distances from a local vertex to shard ``k``'s boundary."""
        return self._local[k][:, local_vertex]

    def combine_intra(self, k: int, u_local: int, v_local: int, d_local: float) -> float:
        """Exact same-shard distance given the in-shard distance."""
        rows = self._rows[k]
        if len(rows) == 0:
            return d_local
        du = self._local[k][:, u_local]
        dv = self._local[k][:, v_local]
        block = self._table[np.ix_(rows, rows)]
        via = float((du[:, None] + block + dv[None, :]).min())
        return min(d_local, via)

    def combine_cross(self, i: int, u_local: int, j: int, v_local: int) -> float:
        """Exact cross-shard distance via the boundary tables."""
        rows_i, rows_j = self._rows[i], self._rows[j]
        if len(rows_i) == 0 or len(rows_j) == 0:
            return float("inf")
        du = self._local[i][:, u_local]
        dv = self._local[j][:, v_local]
        block = self._table[np.ix_(rows_i, rows_j)]
        return float((du[:, None] + block + dv[None, :]).min())

    @property
    def num_boundary_vertices(self) -> int:
        return len(self._boundary_ids)

    def table_bytes(self) -> int:
        """Memory footprint of all tables (the sharding overhead)."""
        return self._table.nbytes + sum(local.nbytes for local in self._local)
