"""Exception hierarchy for the FAHL reproduction library.

All library-specific failures derive from :class:`ReproError`, so callers can
catch one base class at an API boundary.  Subclasses are deliberately
fine-grained: invalid graph shapes, missing vertices, index misuse, and
malformed dataset files fail in distinct, testable ways.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by :mod:`repro`."""


class GraphError(ReproError):
    """The graph structure is invalid for the requested operation."""


class VertexNotFoundError(GraphError, KeyError):
    """A vertex id was referenced that is not part of the graph."""

    def __init__(self, vertex: int) -> None:
        super().__init__(f"vertex {vertex!r} is not in the graph")
        self.vertex = vertex


class EdgeNotFoundError(GraphError, KeyError):
    """An edge was referenced that is not part of the graph."""

    def __init__(self, u: int, v: int) -> None:
        super().__init__(f"edge ({u!r}, {v!r}) is not in the graph")
        self.edge = (u, v)


class DisconnectedGraphError(GraphError):
    """An operation that requires a connected graph received one that is not."""


class FlowError(ReproError):
    """Traffic-flow data is malformed or inconsistent with the graph."""


class IndexBuildError(ReproError):
    """An index could not be constructed from the given inputs."""


class IndexStateError(ReproError):
    """An index was used before construction or after invalidation."""


class QueryError(ReproError):
    """A query was malformed (unknown vertices, bad time step, bad bounds)."""


class MaintenanceError(IndexStateError):
    """A maintenance operation failed and the index was rolled back.

    Raised by the transactional paths of :mod:`repro.core.maintenance` after
    the index has been restored to its exact pre-update state: catching this
    error means the index is still consistent and queryable, the update just
    did not happen.  The original failure is chained as ``__cause__``.
    """

    def __init__(self, operation: str, cause: BaseException) -> None:
        super().__init__(
            f"{operation} failed ({type(cause).__name__}: {cause}); "
            "the index was rolled back to its pre-update state"
        )
        self.operation = operation


class DatasetFormatError(ReproError):
    """A dataset file (e.g. DIMACS ``.gr``) could not be parsed."""


class IndexIntegrityError(DatasetFormatError):
    """A persisted index file failed integrity verification.

    Raised by :func:`repro.labeling.serialize.load_index` when an archive
    is truncated, bit-flipped, missing arrays, or carries a checksum that
    does not match its content.  Subclasses :class:`DatasetFormatError`
    so pre-existing callers keep working, but exposes the forensic detail
    a recovery path needs to decide between generations:

    ``expected_checksum`` / ``actual_checksum``
        Hex digests (stored vs recomputed) when the failure was a
        checksum mismatch, else ``None``.
    ``version``
        The archive's declared format version when it could be read.
    """

    def __init__(
        self,
        path: object,
        detail: str,
        *,
        expected_checksum: str | None = None,
        actual_checksum: str | None = None,
        version: int | None = None,
    ) -> None:
        super().__init__(f"index file {path} failed integrity check: {detail}")
        self.path = path
        self.detail = detail
        self.expected_checksum = expected_checksum
        self.actual_checksum = actual_checksum
        self.version = version


class RecoveryError(ReproError):
    """Crash recovery could not restore a consistent serving engine.

    Raised by :func:`repro.durability.recover` when no valid checkpoint
    generation survives and the write-ahead log alone cannot reconstruct
    the acknowledged history (e.g. every retained checkpoint is corrupt
    and older logs were already pruned).
    """


class PartitionError(ReproError):
    """Graph partitioning failed (e.g. requested more parts than vertices)."""


class AdmissionError(QueryError):
    """A request was refused at admission (per-client token bucket).

    Raised by the async serving front door when a client exceeds its
    admitted request rate.  Carries the ``client`` identity and the
    seconds until the bucket would admit again (``retry_after``), so
    callers can back off instead of hammering the gateway.
    """

    def __init__(self, client: str, retry_after: float) -> None:
        super().__init__(
            f"client {client!r} exceeded its admitted request rate; "
            f"retry in {retry_after:.3f}s"
        )
        self.client = client
        self.retry_after = retry_after


class BackpressureError(QueryError):
    """The serving queue is full and the request was rejected, not queued.

    Raised by the async serving front door when its bounded request queue
    is at capacity — the typed alternative to unbounded queue growth or a
    silent hang.  ``depth`` is the queue depth at rejection time.
    """

    def __init__(self, depth: int) -> None:
        super().__init__(
            f"request rejected: serving queue is full ({depth} pending)"
        )
        self.depth = depth
