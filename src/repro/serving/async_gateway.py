"""Asyncio micro-batching front door over any :class:`repro.api.Engine`.

The stack below this module answers one blocking Python call per query —
which wastes the vectorised ``distance_many`` oracle and the sharded
result cache the moment many clients arrive at once.  :class:`AsyncGateway`
turns concurrent requests back into the batch shape the lower layers are
fast at:

* **coalescing window** — requests arriving within ``window_seconds``
  (default 1.5 ms) of each other are collected into one window (capped at
  ``max_window``) and dispatched as a *single* ``engine.batch`` call — the
  sharded gateway then fans one group per shard, the batch pool bulk-fills
  its memoised oracle with ``distance_many``, and every request in the
  window shares that work.  Distance requests ride the same window and,
  for a bare :class:`~repro.core.fpsps.FlowAwareEngine` over a
  ``distance_many``-capable oracle, resolve through one vectorised call.
* **admission** — per-client token buckets
  (:class:`~repro.serving.admission.ClientAdmission`) reject over-rate
  clients with a typed :class:`~repro.errors.AdmissionError` *before*
  they occupy queue slots.
* **backpressure** — the pending queue is bounded (``max_queue``); a full
  queue rejects with :class:`~repro.errors.BackpressureError` instead of
  growing without bound or hanging the caller.
* **observability** — per-window and per-request latency histograms
  (``repro_async_window_seconds`` / ``repro_async_request_seconds``),
  window-size and queue-depth gauges, and ``async.window`` /
  ``async.request`` spans.  Each request snapshots its
  :class:`~repro.obs.RequestContext` wire at submit time and its span is
  re-emitted under that context at resolve time, so a trace stays one
  stitched tree across the coalescing boundary (the same wire protocol
  the fork pool uses).

Answers are whatever the wrapped engine's own ``query``/``distance``
return — bare :class:`~repro.core.fspq.FSPResult`/``float`` or serving
envelopes — so :func:`repro.as_result` / :func:`repro.as_distance`
normalise sync and async answers identically, and coalesced answers are
bit-identical to per-request ``engine.query()`` calls (property-tested).

Two ways to run it::

    async with AsyncGateway(engine) as gateway:          # asyncio-native
        results = await asyncio.gather(
            *(gateway.aquery(q) for q in queries)
        )

    gateway = AsyncGateway(engine).start()               # background loop
    future = gateway.submit(FSPQuery(0, 9, 0))           # sync escape hatch
    result = future.result()
    gateway.close()

All engine work runs on the gateway's event-loop thread — the engines
stay effectively single-threaded, exactly as their contracts require.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import os
import threading
import time
from collections import Counter
from dataclasses import dataclass, field
from typing import Sequence

from repro import obs
from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import slo as obs_slo
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.errors import AdmissionError, BackpressureError, QueryError
from repro.serving.admission import ClientAdmission

__all__ = ["AsyncGateway", "GatewayWindowStats"]

_QUERY = "query"
_DISTANCE = "distance"


@dataclass
class GatewayWindowStats:
    """Lifetime counters of one :class:`AsyncGateway` (instance view).

    The process-global picture lives on the :mod:`repro.obs` registry as
    the ``repro_async_*`` families; this mirror keeps tests and callers
    independent of registry state, same as the engines' ``metrics``.
    """

    windows: int = 0
    requests: int = 0
    resolved: int = 0
    errors: int = 0
    rejected_backpressure: int = 0
    rejected_admission: int = 0
    largest_window: int = 0

    def coalescing_ratio(self) -> float:
        """Mean requests per dispatched window (1.0 = no coalescing won)."""
        if not self.windows:
            return 0.0
        return self.requests / self.windows


@dataclass
class _Pending:
    """One queued request: payload + future + telemetry snapshot."""

    kind: str
    payload: object
    future: asyncio.Future | concurrent.futures.Future
    client: str
    submitted_perf: float
    submitted_wall: float
    wire: dict | None = None
    attrs: dict = field(default_factory=dict)


class AsyncGateway:
    """Micro-batching asyncio front door over one sync :class:`Engine`.

    Parameters
    ----------
    engine:
        Any object satisfying the :class:`repro.api.Engine` protocol
        (``FlowAwareEngine``, ``ResilientEngine``, ``ShardedGateway``).
    window_seconds:
        Length of the coalescing window.  ``0`` still coalesces whatever
        is simultaneously pending (one event-loop tick) without adding
        latency; the default 1.5 ms trades worst-case added latency for
        much larger windows under load.
    max_window:
        Requests dispatched per window at most; the rest stay queued for
        the next window (they are *not* rejected).
    max_queue:
        Bound of the pending queue.  Submissions beyond it fail with
        :class:`~repro.errors.BackpressureError`.
    admission_rate, admission_burst:
        Per-client token-bucket parameters.  ``admission_rate=None``
        (default) disables admission control.
    workers:
        Forwarded to ``engine.batch`` — ``1`` keeps the whole dispatch on
        the loop thread; ``> 1`` lets the batch pool fork.
    kernel, batch_timeout:
        Forwarded to ``engine.batch`` (kernel selection and per-chunk
        timeout passthrough of the unified batch signature).
    """

    def __init__(
        self,
        engine,
        *,
        window_seconds: float = 0.0015,
        max_window: int = 256,
        max_queue: int = 1024,
        admission_rate: float | None = None,
        admission_burst: float = 16.0,
        workers: int = 1,
        kernel: str | None = None,
        batch_timeout: float | None = None,
    ) -> None:
        if window_seconds < 0:
            raise QueryError(
                f"window_seconds must be >= 0, got {window_seconds}"
            )
        if max_window < 1:
            raise QueryError(f"max_window must be >= 1, got {max_window}")
        if max_queue < 1:
            raise QueryError(f"max_queue must be >= 1, got {max_queue}")
        if workers < 1:
            raise QueryError(f"workers must be >= 1, got {workers}")
        self.engine = engine
        self.window_seconds = float(window_seconds)
        self.max_window = int(max_window)
        self.max_queue = int(max_queue)
        self.workers = int(workers)
        self.kernel = kernel
        self.batch_timeout = batch_timeout
        self.admission = (
            None
            if admission_rate is None
            else ClientAdmission(admission_rate, admission_burst)
        )
        self.stats = GatewayWindowStats()
        self.metrics: Counter[str] = Counter()
        self._pending: list[_Pending] = []
        self._loop: asyncio.AbstractEventLoop | None = None
        self._thread: threading.Thread | None = None
        self._flush_task: asyncio.Task | None = None
        self._window_id = 0
        self._closed = False

    # ------------------------------------------------------------------
    # protocol accessors (mirror the sync Engine surface)
    # ------------------------------------------------------------------
    @property
    def flow_engine(self) -> FlowAwareEngine:
        return self.engine.flow_engine

    def invalidate(self) -> None:
        self.engine.invalidate()

    # ------------------------------------------------------------------
    # telemetry plumbing
    # ------------------------------------------------------------------
    def _count(self, name: str, help_: str, amount: int = 1, **labels) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(name, help_).inc(amount, **labels)

    def _sync_gauges(self, window_size: int | None = None) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.gauge(
            "repro_async_queue_depth",
            "requests waiting in the async gateway's coalescing queue",
        ).set(len(self._pending))
        if window_size is not None:
            registry.gauge(
                "repro_async_window_size",
                "requests coalesced into the last dispatched window",
            ).set(window_size)

    # ------------------------------------------------------------------
    # event-loop binding
    # ------------------------------------------------------------------
    def _bind_running_loop(self) -> asyncio.AbstractEventLoop:
        loop = asyncio.get_running_loop()
        if self._loop is None:
            self._loop = loop
        elif self._loop is not loop:
            raise QueryError(
                "AsyncGateway is already bound to another event loop; "
                "create one gateway per loop"
            )
        return loop

    def start(self) -> "AsyncGateway":
        """Run the gateway on its own background event-loop thread.

        Enables the sync :meth:`submit` escape hatch from any thread.
        Idempotent until :meth:`close`.
        """
        if self._thread is not None:
            return self
        if self._loop is not None:
            raise QueryError(
                "AsyncGateway is already bound to a running event loop; "
                "start() needs a fresh gateway"
            )
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="fahl-async-gateway",
            daemon=True,
        )
        self._thread.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Flush the queue, stop the background loop (if any), reject late."""
        if self._closed:
            return
        self._closed = True
        loop, thread = self._loop, self._thread
        if loop is None or thread is None:
            self._reject_all_pending()
            return
        handle = asyncio.run_coroutine_threadsafe(self._drain(), loop)
        try:
            handle.result(timeout)
        finally:
            loop.call_soon_threadsafe(loop.stop)
            thread.join(timeout)
            loop.close()
            self._loop = None
            self._thread = None

    async def aclose(self) -> None:
        """Flush the queue and stop accepting work (asyncio-native close)."""
        self._closed = True
        await self._drain()

    async def __aenter__(self) -> "AsyncGateway":
        self._bind_running_loop()
        return self

    async def __aexit__(self, exc_type, exc, tb) -> None:
        await self.aclose()

    async def _drain(self) -> None:
        while self._pending or (
            self._flush_task is not None and not self._flush_task.done()
        ):
            if self._flush_task is not None:
                task = self._flush_task
                try:
                    await task
                except asyncio.CancelledError:  # pragma: no cover - teardown
                    break
            elif self._pending:
                self._dispatch_window()
            await asyncio.sleep(0)

    def _reject_all_pending(self) -> None:
        for item in self._pending:
            if not item.future.done():
                item.future.set_exception(
                    BackpressureError(len(self._pending))
                )
        self._pending.clear()

    # ------------------------------------------------------------------
    # submission (async + sync escape hatch)
    # ------------------------------------------------------------------
    def _admit(self, client: str) -> None:
        """Raise the typed rejection for over-rate / over-capacity input."""
        if self._closed:
            raise QueryError("AsyncGateway is closed")
        if self.admission is not None:
            retry_after = self.admission.admit(client)
            if retry_after is not None:
                self.stats.rejected_admission += 1
                self.metrics["rejected_admission"] += 1
                self._count(
                    "repro_async_rejected_total",
                    "async-gateway submissions rejected, by reason",
                    reason="admission",
                )
                raise AdmissionError(client, retry_after)
        if len(self._pending) >= self.max_queue:
            self.stats.rejected_backpressure += 1
            self.metrics["rejected_backpressure"] += 1
            self._count(
                "repro_async_rejected_total",
                "async-gateway submissions rejected, by reason",
                reason="backpressure",
            )
            raise BackpressureError(len(self._pending))

    def _snapshot_wire(self) -> dict | None:
        if obs.get_tracer() is None:
            return None
        with obs_context.request_scope():
            return obs_context.current_wire()

    def _enqueue(
        self,
        kind: str,
        payload: object,
        client: str,
        future: asyncio.Future | concurrent.futures.Future,
    ) -> None:
        """Admission + queueing; runs on the loop thread only."""
        self._admit(client)
        self._pending.append(
            _Pending(
                kind=kind,
                payload=payload,
                future=future,
                client=client,
                submitted_perf=time.perf_counter(),
                submitted_wall=time.time(),
                wire=self._snapshot_wire(),
            )
        )
        self.stats.requests += 1
        self.metrics["requests"] += 1
        self._count(
            "repro_async_requests_total",
            "requests submitted to the async gateway, by kind",
            kind=kind,
        )
        self._sync_gauges()
        if self._flush_task is None or self._flush_task.done():
            loop = self._loop
            assert loop is not None
            self._flush_task = loop.create_task(self._run_window())

    async def _submit_async(self, kind: str, payload: object, client: str):
        loop = self._bind_running_loop()
        future: asyncio.Future = loop.create_future()
        self._enqueue(kind, payload, client, future)
        return await future

    async def aquery(self, query: FSPQuery, *, client: str = "default"):
        """Answer one FSPQ query through the next coalescing window.

        Returns exactly what ``engine.query(query)`` would (bare result or
        serving envelope) — normalise with :func:`repro.as_result`.
        """
        return await self._submit_async(_QUERY, query, client)

    async def adistance(self, u: int, v: int, *, client: str = "default"):
        """Shortest spatial distance through the next coalescing window."""
        return await self._submit_async(_DISTANCE, (u, v), client)

    async def abatch(
        self, queries: Sequence[FSPQuery], *, client: str = "default"
    ) -> list:
        """Submit many queries at once and gather their answers in order.

        Every query is admitted individually (so admission/backpressure
        rejections surface per request, as exceptions in the result slots
        would — the first rejection propagates).
        """
        return list(
            await asyncio.gather(
                *(self.aquery(query, client=client) for query in queries)
            )
        )

    def submit(
        self, query: FSPQuery, *, client: str = "default"
    ) -> concurrent.futures.Future:
        """Sync escape hatch: enqueue from any thread, get a ``Future``.

        Needs the gateway started via :meth:`start` (its own loop thread)
        or already bound to a live loop.  Admission and backpressure
        rejections surface on the returned future, never synchronously —
        the caller's thread is not the loop thread, so the queue state is
        only knowable there.
        """
        if not isinstance(query, FSPQuery):
            raise QueryError(
                f"submit() takes an FSPQuery, got {type(query).__name__} "
                "(updates go to gateway.engine.submit())"
            )
        loop = self._loop
        if loop is None:
            raise QueryError(
                "AsyncGateway.submit() needs start() first (or an aquery() "
                "from inside a running event loop to bind one)"
            )
        future: concurrent.futures.Future = concurrent.futures.Future()

        def _enqueue_on_loop() -> None:
            try:
                self._enqueue(_QUERY, query, client, future)
            except Exception as exc:  # noqa: BLE001 — typed rejections too
                if not future.done():
                    future.set_exception(exc)

        loop.call_soon_threadsafe(_enqueue_on_loop)
        return future

    # ------------------------------------------------------------------
    # the dispatcher
    # ------------------------------------------------------------------
    async def _run_window(self) -> None:
        """One coalescing window: sleep it open, then dispatch the batch."""
        if self.window_seconds > 0:
            await asyncio.sleep(self.window_seconds)
        else:
            # one explicit tick, so simultaneous submitters still coalesce
            await asyncio.sleep(0)
        self._dispatch_window()
        if self._pending:
            loop = self._loop
            assert loop is not None
            self._flush_task = loop.create_task(self._run_window())

    def _dispatch_window(self) -> None:
        if not self._pending:
            return
        window = self._pending[: self.max_window]
        del self._pending[: len(window)]
        self._window_id += 1
        self.stats.windows += 1
        self.metrics["windows"] += 1
        self.stats.largest_window = max(self.stats.largest_window, len(window))
        start = time.perf_counter()
        if obs.get_tracer() is not None:
            with obs_context.request_scope():
                with obs.trace(
                    "async.window",
                    window=self._window_id,
                    requests=len(window),
                ):
                    self._evaluate_window(window)
        else:
            self._evaluate_window(window)
        elapsed = time.perf_counter() - start
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_async_windows_total",
                "coalescing windows dispatched by the async gateway",
            ).inc()
            registry.histogram(
                "repro_async_window_seconds",
                "dispatch latency of one coalesced window",
            ).observe(elapsed)
        self._sync_gauges(window_size=len(window))

    def _evaluate_window(self, window: list[_Pending]) -> None:
        queries = [item for item in window if item.kind == _QUERY]
        distances = [item for item in window if item.kind == _DISTANCE]
        if queries:
            self._evaluate_queries(queries)
        if distances:
            self._evaluate_distances(distances)

    def _evaluate_queries(self, items: list[_Pending]) -> None:
        """One vectorised ``engine.batch`` call for the whole window."""
        payloads = [item.payload for item in items]
        try:
            answers = self.engine.batch(
                payloads,
                workers=self.workers,
                timeout=self.batch_timeout,
                kernel=self.kernel,
            )
        except Exception:  # noqa: BLE001 — isolate the poisoned request
            # one bad request (disconnected pair, bad timestep) must not
            # fail its window neighbours: re-evaluate per request so each
            # future gets its own answer or its own typed error.
            self._evaluate_serially(items)
            return
        for item, answer in zip(items, answers):
            self._resolve(item, answer)

    def _evaluate_serially(self, items: list[_Pending]) -> None:
        for item in items:
            try:
                answer = self.engine.query(item.payload)
            except Exception as exc:  # noqa: BLE001 — typed per-request
                self._resolve_error(item, exc)
            else:
                self._resolve(item, answer)

    def _evaluate_distances(self, items: list[_Pending]) -> None:
        """Distances: one ``distance_many`` call when the oracle can."""
        engine = self.engine
        oracle = getattr(engine, "oracle", None)
        if (
            isinstance(engine, FlowAwareEngine)
            and engine.kernel == "flat"
            and oracle is not None
            and callable(getattr(oracle, "distance_many", None))
            and engine._flat_kernel() is not None
        ):
            import numpy as np

            pairs = [item.payload for item in items]
            us = np.asarray([u for u, _ in pairs], dtype=np.int64)
            vs = np.asarray([v for _, v in pairs], dtype=np.int64)
            try:
                values = oracle.distance_many(us, vs)
            except Exception:  # noqa: BLE001 — fall back per request
                values = None
            if values is not None:
                for item, value in zip(items, values):
                    self._resolve(item, float(value))
                return
        for item in items:
            try:
                answer = engine.distance(*item.payload)
            except Exception as exc:  # noqa: BLE001 — typed per-request
                self._resolve_error(item, exc)
            else:
                self._resolve(item, answer)

    # ------------------------------------------------------------------
    # resolution + per-request telemetry
    # ------------------------------------------------------------------
    def _observe_request(self, item: _Pending, outcome: str) -> None:
        elapsed = time.perf_counter() - item.submitted_perf
        if outcome == "resolved":
            self.stats.resolved += 1
        else:
            self.stats.errors += 1
        self.metrics[f"requests_{outcome}"] += 1
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_async_resolved_total",
                "async-gateway requests resolved, by kind and outcome",
            ).inc(kind=item.kind, outcome=outcome)
            registry.histogram(
                "repro_async_request_seconds",
                "submit-to-resolve latency through the async gateway",
            ).observe(elapsed, kind=item.kind)
        obs_flight.observe_query(
            "async.request", elapsed, kind=item.kind, outcome=outcome
        )
        monitor = obs_slo.get_slo_monitor()
        if monitor is not None:
            monitor.observe(elapsed, ok=outcome == "resolved")
        tracer = obs.get_tracer()
        if tracer is not None:
            # re-emit the request's span under its *own* context wire, so
            # the trace stitches across the coalescing boundary exactly
            # like the fork-pool chunk hand-off does
            event = {
                "event": "span",
                "name": "async.request",
                "span": tracer._next_id(),
                "parent": (item.wire or {}).get("span"),
                "start": item.submitted_wall,
                "end": time.time(),
                "dur_s": elapsed,
                "pid": os.getpid(),
                "attrs": {
                    "kind": item.kind,
                    "window": self._window_id,
                    "outcome": outcome,
                    "client": item.client,
                },
            }
            if item.wire is not None:
                event["trace"] = item.wire["trace"]
                event["request"] = item.wire["request"]
            tracer.emit(event)

    def _resolve(self, item: _Pending, answer: object) -> None:
        self._observe_request(item, "resolved")
        if not item.future.done():
            item.future.set_result(answer)

    def _resolve_error(self, item: _Pending, error: Exception) -> None:
        self._observe_request(item, "error")
        if not item.future.done():
            item.future.set_exception(error)
