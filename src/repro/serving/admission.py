"""Per-client admission control for the serving front doors.

The resilient engine's admission layer validates *updates* (finite values,
known vertices, timestamp monotonicity — :meth:`ResilientEngine._validate`);
this module is the request-side counterpart: a classic token-bucket rate
limiter keyed by client identity, shared by the async gateway so one noisy
client cannot starve the coalescing window for everyone else.

A :class:`TokenBucket` admits ``rate`` requests per second with bursts up
to ``burst``; :class:`ClientAdmission` keeps one lazily-created bucket per
client id (bounded — least-recently-seen buckets are evicted, which only
ever *loosens* limits for clients quiet long enough to refill anyway).
Rejections are typed (:class:`~repro.errors.AdmissionError`) and counted
under ``repro_async_rejected_total{reason="admission"}`` by the caller.
"""

from __future__ import annotations

import time
from collections import OrderedDict
from typing import Callable

from repro.errors import QueryError

__all__ = ["ClientAdmission", "TokenBucket"]


class TokenBucket:
    """Admit up to ``rate`` requests/second with bursts of ``burst``.

    The bucket holds at most ``burst`` tokens and refills continuously at
    ``rate`` tokens per second; each admitted request spends one token.
    ``clock`` is injectable so tests stay instant and deterministic.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_clock")

    def __init__(
        self,
        rate: float,
        burst: float,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if rate <= 0:
            raise QueryError(f"token-bucket rate must be positive, got {rate}")
        if burst < 1:
            raise QueryError(f"token-bucket burst must be >= 1, got {burst}")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._stamp = clock()
        self._clock = clock

    def _refill(self) -> None:
        now = self._clock()
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._stamp = now

    def try_admit(self) -> bool:
        """Spend one token if available; ``False`` means rate-limited."""
        self._refill()
        if self._tokens >= 1.0:
            self._tokens -= 1.0
            return True
        return False

    def retry_after(self) -> float:
        """Seconds until the next token exists (0 when admissible now)."""
        self._refill()
        if self._tokens >= 1.0:
            return 0.0
        return (1.0 - self._tokens) / self.rate

    @property
    def tokens(self) -> float:
        self._refill()
        return self._tokens


class ClientAdmission:
    """One :class:`TokenBucket` per client id, bounded LRU of buckets.

    ``admit(client)`` returns ``None`` when the request is admitted, or
    the positive retry-after seconds when it is rate-limited.  Unknown
    clients start with a full bucket.  ``max_clients`` bounds memory: the
    least-recently-seen bucket is dropped at capacity, which can only
    loosen limits for clients that have been idle the longest.
    """

    def __init__(
        self,
        rate: float,
        burst: float,
        max_clients: int = 4096,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if max_clients < 1:
            raise QueryError(
                f"max_clients must be >= 1, got {max_clients}"
            )
        self.rate = float(rate)
        self.burst = float(burst)
        self.max_clients = int(max_clients)
        self._clock = clock
        self._buckets: OrderedDict[str, TokenBucket] = OrderedDict()

    def bucket(self, client: str) -> TokenBucket:
        bucket = self._buckets.get(client)
        if bucket is None:
            bucket = TokenBucket(self.rate, self.burst, clock=self._clock)
            self._buckets[client] = bucket
            while len(self._buckets) > self.max_clients:
                self._buckets.popitem(last=False)
        else:
            self._buckets.move_to_end(client)
        return bucket

    def admit(self, client: str) -> float | None:
        """``None`` = admitted; a float = rejected, retry after that many s."""
        bucket = self.bucket(client)
        if bucket.try_admit():
            return None
        return bucket.retry_after()

    def __len__(self) -> int:
        return len(self._buckets)
