"""Typed update messages for the resilient serving layer.

Production update feeds are untrusted: sensors emit NaNs, messages arrive
out of order, and upstream bugs reference vertices that do not exist.  The
serving layer therefore works on small, typed envelopes carrying an
explicit ``timestamp`` (a logical or wall clock supplied by the producer)
so staleness can be detected per key.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["FlowUpdate", "WeightUpdate", "DeadLetter"]


@dataclass(frozen=True)
class FlowUpdate:
    """A vertex's predicted flow changed (triggers ISU/GSU maintenance)."""

    vertex: int
    value: float
    timestamp: float = 0.0

    @property
    def key(self) -> tuple[str, int]:
        return ("flow", self.vertex)


@dataclass(frozen=True)
class WeightUpdate:
    """An edge's travel weight changed (triggers ILU maintenance)."""

    u: int
    v: int
    value: float
    timestamp: float = 0.0

    @property
    def key(self) -> tuple[str, int, int]:
        lo, hi = (self.u, self.v) if self.u <= self.v else (self.v, self.u)
        return ("weight", lo, hi)


@dataclass(frozen=True)
class DeadLetter:
    """A quarantined update: the message, why it was rejected, and when.

    ``reason`` is a stable machine-readable token (``"non-finite"``,
    ``"negative-flow"``, ``"non-positive-weight"``, ``"unknown-vertex"``,
    ``"unknown-edge"``, ``"stale-timestamp"``, ``"unsupported-type"``,
    ``"maintenance-failed"``); ``detail`` is the human-readable expansion.

    ``flight`` is the flight-recorder dump captured at quarantine time —
    the last few events the engine saw before this letter was written
    (empty for letters restored from a write-ahead log, where the ring's
    contents died with the crashed process).
    """

    update: object
    reason: str
    detail: str
    sequence: int
    flight: tuple = ()
