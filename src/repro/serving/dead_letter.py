"""Bounded dead-letter queue for quarantined updates.

Rejected updates must not raise (one poisoned message would take down the
feed consumer) and must not be silently dropped (operators need to see what
was rejected and why).  The queue is a bounded ring: oldest letters are
evicted first, the total-seen counter keeps telemetry honest even after
eviction.
"""

from __future__ import annotations

from collections import Counter, deque
from typing import Iterator

from repro.errors import QueryError
from repro.obs import flight as obs_flight
from repro.serving.updates import DeadLetter

__all__ = ["DeadLetterQueue"]


class DeadLetterQueue:
    """FIFO ring of :class:`DeadLetter` entries with per-reason counters."""

    def __init__(self, capacity: int = 1024) -> None:
        if capacity < 1:
            raise QueryError(f"dead-letter capacity must be >= 1, got {capacity}")
        self._letters: deque[DeadLetter] = deque(maxlen=capacity)
        self._sequence = 0
        self.total_seen = 0
        self.by_reason: Counter[str] = Counter()

    def push(self, update: object, reason: str, detail: str) -> DeadLetter:
        # note first, then dump: the letter's flight capture includes the
        # quarantine event itself plus whatever preceded it
        obs_flight.note("serving.dead_letter", reason=reason)
        letter = DeadLetter(
            update=update,
            reason=reason,
            detail=detail,
            sequence=self._sequence,
            flight=obs_flight.dump(last=16),
        )
        self._sequence += 1
        self.total_seen += 1
        self.by_reason[reason] += 1
        self._letters.append(letter)
        return letter

    def drain(self) -> list[DeadLetter]:
        """Remove and return every queued letter (counters are kept)."""
        letters = list(self._letters)
        self._letters.clear()
        return letters

    def __len__(self) -> int:
        return len(self._letters)

    def __iter__(self) -> Iterator[DeadLetter]:
        return iter(self._letters)

    def __repr__(self) -> str:
        reasons = dict(self.by_reason)
        return f"DeadLetterQueue(queued={len(self)}, seen={self.total_seen}, {reasons})"
