"""A resilient serving wrapper around a FAHL index and its FPSPS engine.

The paper's maintenance algorithms assume well-formed updates and
fault-free execution; a production serving tier gets neither.
:class:`ResilientEngine` therefore wraps the index behind three shields:

* **Admission control** — every incoming update is validated (finite
  values, known vertices/edges, per-key timestamp monotonicity) and
  rejects are *quarantined* into a bounded dead-letter queue instead of
  raising into the feed consumer.
* **Guarded maintenance** — accepted updates run through the transactional
  maintenance layer under a wall-clock budget with retry and strategy
  escalation (ISU → GSU for flow updates); an update whose every attempt
  fails is *deferred*: the engine flips to degraded mode and remembers the
  update for the next full :meth:`repair` rebuild.  Thanks to rollback the
  index stays exactly consistent the whole time.
* **Degraded serving** — while degraded (mid-repair or failed
  :meth:`audit`), queries are answered by direct Dijkstra/A* on the
  current graph and flagged as such: correctness degrades to *latency*,
  never to wrong answers.

Two update modes select *where* accepted updates land:

* ``update_mode="inline"`` (default) — the paper's model: each update runs
  ILU/ISU/GSU on the serving index synchronously, blocking queries for the
  duration of the repair.
* ``update_mode="overlay"`` — non-blocking continuous updates: weight
  updates are absorbed O(1)-ish into a :class:`~repro.core.overlay.DeltaOverlay`
  and queries answer exactly from ``stable ⊕ overlay`` through an
  :class:`~repro.core.overlay.OverlayOracle`; flow updates queue for the
  next consolidation (they steer ordering quality, not answer
  correctness).  :meth:`maintenance_tick` folds the backlog into a back
  buffer in small cooperative steps and swaps it in atomically; a
  consolidation that keeps failing escalates through retries to the full
  :meth:`repair` rebuild valve, with each failure recorded in the
  dead-letter queue.

The engine is deliberately synchronous and single-threaded — it models the
per-shard serving loop; sharding/replication live a layer above.
"""

from __future__ import annotations

import math
import time
from collections import Counter
from dataclasses import dataclass, field, replace
from typing import Callable

from repro import obs
from repro.obs import context as obs_context
from repro.obs import flight as obs_flight
from repro.obs import slo as obs_slo
from repro.baselines.dijkstra import dijkstra_distance
from repro.core.fahl import FAHLIndex
from repro.core.fpsps import KERNEL_MODES, FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.core.maintenance import apply_flow_update, apply_weight_update
from repro.core.overlay import ConsolidationTask, DeltaOverlay, OverlayOracle
from repro.errors import IndexStateError, MaintenanceError, QueryError
from repro.graph.frn import FlowAwareRoadNetwork
from repro.serving.audit import AuditReport, verify_index
from repro.serving.dead_letter import DeadLetterQueue
from repro.serving.updates import FlowUpdate, WeightUpdate

__all__ = [
    "EngineStatus",
    "ResilientEngine",
    "ServingDistance",
    "ServingResult",
    "UpdateOutcome",
]

HEALTHY = "healthy"
DEGRADED = "degraded"


@dataclass(frozen=True)
class EngineStatus:
    """Typed snapshot of a :class:`ResilientEngine` for telemetry/logging.

    ``metrics`` is the engine's per-instance counter view (the
    process-global picture lives on the :mod:`repro.obs` registry as the
    ``repro_serving_*`` families).  ``last_audit_at`` is a wall-clock
    ``time.time()`` timestamp, ``None`` until the first :meth:`~ResilientEngine.audit`.

    Access is attribute-style (``status.state``) or via :meth:`as_dict`;
    the deprecated dict-style ``status["state"]`` spelling completed its
    cycle and was removed (docs/API.md, "Deprecation policy").
    """

    state: str
    deferred_updates: int
    dead_letters_queued: int
    dead_letters_seen: int
    last_audit_at: float | None = None
    last_audit_ok: bool | None = None
    metrics: dict[str, int] = field(default_factory=dict)
    update_mode: str = "inline"
    overlay_edges: int = 0
    overlay_hubs: int = 0
    pending_flow_updates: int = 0
    consolidation_state: str | None = None

    def as_dict(self) -> dict:
        return {
            "state": self.state,
            "deferred_updates": self.deferred_updates,
            "dead_letters_queued": self.dead_letters_queued,
            "dead_letters_seen": self.dead_letters_seen,
            "last_audit_at": self.last_audit_at,
            "last_audit_ok": self.last_audit_ok,
            "metrics": dict(self.metrics),
            "update_mode": self.update_mode,
            "overlay_edges": self.overlay_edges,
            "overlay_hubs": self.overlay_hubs,
            "pending_flow_updates": self.pending_flow_updates,
            "consolidation_state": self.consolidation_state,
        }


@dataclass(frozen=True)
class UpdateOutcome:
    """What happened to one submitted update.

    ``accepted`` — passed validation (not quarantined).
    ``applied`` — the index reflects it (via ``strategy``).
    ``deferred`` — accepted but waiting for the next :meth:`~ResilientEngine.repair`.
    """

    accepted: bool
    applied: bool
    reason: str | None = None
    strategy: str | None = None
    attempts: int = 0
    deferred: bool = False


@dataclass(frozen=True)
class ServingResult:
    """An FSPQ answer plus how it was produced (``"index"`` | ``"fallback"``)."""

    result: FSPResult
    degraded: bool
    source: str


@dataclass(frozen=True)
class ServingDistance:
    """A distance answer plus how it was produced."""

    value: float
    degraded: bool
    source: str


class ResilientEngine:
    """Fault-tolerant serving facade over an FRN + FAHL index.

    Parameters
    ----------
    frn:
        The flow-aware road network to serve.
    index:
        An existing :class:`FAHLIndex` over ``frn.graph`` (built from the
        FRN's predicted flow when omitted).  Must share the FRN's graph
        object — maintenance and degraded Dijkstra must see the same
        weights.
    time_budget:
        Wall-clock seconds one update may spend in maintenance before
        remaining retries are skipped and the update is deferred.
    max_retries:
        Extra attempts per strategy after the first failure.
    backoff:
        Seconds slept between attempts (scaled by attempt number).
    audit_samples, audit_seed:
        Size and seed of the sampled Dijkstra cross-check in :meth:`audit`.
    dead_letter_capacity:
        Bound of the quarantine ring buffer.
    clock, sleep:
        Injectable time sources (tests pass fakes; chaos stays fast).
    kernel:
        Query-kernel selection forwarded to both wrapped engines
        (``"flat"`` default, ``"scalar"`` reference) — see
        :class:`~repro.core.fpsps.FlowAwareEngine`.
    update_mode:
        ``"inline"`` (default) repairs the serving index synchronously per
        update; ``"overlay"`` absorbs updates into a delta overlay and
        consolidates in the background (see the module docstring).
    overlay_capacity:
        Overlay-mode only: pending-edge count at which :meth:`submit`
        triggers a consolidation run.
    durability:
        Optional :class:`~repro.durability.Durability` manager.  When set,
        every accepted update is appended to the write-ahead log *before*
        the maintenance attempt (and therefore before the ack), its
        outcome is logged after, admission rejects and consolidation
        failures land in the log as dead-letter records, and each
        committed consolidation or :meth:`repair` writes a checkpoint and
        rotates the log.  :func:`repro.durability.recover` turns that
        directory back into a serving engine after a crash.
    """

    def __init__(
        self,
        frn: FlowAwareRoadNetwork,
        index: FAHLIndex | None = None,
        alpha: float = 0.5,
        eta_u: float = 3.0,
        pruning: str = "none",
        time_budget: float = 5.0,
        max_retries: int = 1,
        backoff: float = 0.0,
        audit_samples: int = 24,
        audit_seed: int = 0,
        dead_letter_capacity: int = 1024,
        clock: Callable[[], float] = time.monotonic,
        sleep: Callable[[float], None] = time.sleep,
        kernel: str = "flat",
        update_mode: str = "inline",
        overlay_capacity: int = 64,
        durability=None,
    ) -> None:
        if index is None:
            index = FAHLIndex.from_frn(frn)
        if index.graph is not frn.graph:
            raise IndexStateError(
                "ResilientEngine needs the index and FRN to share one graph "
                "object — degraded Dijkstra must see the weights the index saw"
            )
        if time_budget <= 0:
            raise QueryError(f"time_budget must be positive, got {time_budget}")
        if max_retries < 0:
            raise QueryError(f"max_retries must be >= 0, got {max_retries}")
        if update_mode not in ("inline", "overlay"):
            raise QueryError(
                f"update_mode must be 'inline' or 'overlay', got {update_mode!r}"
            )
        self.frn = frn
        self.index = index
        self.update_mode = update_mode
        if update_mode == "overlay":
            self.overlay: DeltaOverlay | None = DeltaOverlay(
                frn.graph, capacity=overlay_capacity
            )
            self.oracle = OverlayOracle(index, self.overlay)
        else:
            self.overlay = None
            self.oracle = index
        self._engine = FlowAwareEngine(
            frn, oracle=self.oracle, alpha=alpha, eta_u=eta_u, pruning=pruning,
            kernel=kernel,
        )
        self._fallback = FlowAwareEngine(
            frn, oracle=None, alpha=alpha, eta_u=eta_u, pruning=pruning,
            kernel=kernel,
        )
        self.time_budget = float(time_budget)
        self.max_retries = int(max_retries)
        self.backoff = float(backoff)
        self.audit_samples = int(audit_samples)
        self.audit_seed = int(audit_seed)
        self._clock = clock
        self._sleep = sleep
        self.dead_letters = DeadLetterQueue(dead_letter_capacity)
        self.state = HEALTHY
        self.metrics: Counter[str] = Counter()
        self._last_ts: dict[tuple, float] = {}
        self._deferred: list[FlowUpdate | WeightUpdate] = []
        self._last_audit_at: float | None = None
        self._last_audit_ok: bool | None = None
        self._invalidation_hooks: list[Callable[[], None]] = []
        self._task: ConsolidationTask | None = None
        self._pending_flows: dict[int, float] = {}
        self._consolidation_failures = 0
        self.durability = durability
        #: True while :func:`repro.durability.recover` replays the WAL —
        #: suppresses re-logging records that are already in the log
        self._replaying = False
        self.last_recovery = None
        #: flight-recorder dump captured at the last healthy->degraded flip
        self.last_degraded_flight: tuple = ()

    # ------------------------------------------------------------------
    # unified invalidation hook
    # ------------------------------------------------------------------
    def add_invalidation_hook(self, hook: Callable[[], None]) -> None:
        """Register a callback fired on every :meth:`invalidate`.

        Layers stacked above the engine (the sharded gateway's result
        cache, memoised oracles, ...) register here so one maintenance
        event refreshes *every* derived cache — the engine's own flow
        cache and the listeners are bumped by the same call, never
        separately.
        """
        self._invalidation_hooks.append(hook)

    def invalidate(self) -> None:
        """Drop the engines' derived caches and notify every listener."""
        self._engine.invalidate()
        self._fallback.invalidate()
        self._notify_listeners()

    def _notify_listeners(self) -> None:
        """Fire the registered hooks without nuking the engines' caches.

        Overlay absorbs use this lighter path: the flat kernel resyncs
        itself off the overlay version and the flow cache does not depend
        on weights, but result caches stacked above (the gateway) key off
        epochs and must still be bumped.
        """
        for hook in self._invalidation_hooks:
            hook()

    # ------------------------------------------------------------------
    # telemetry plumbing (dual-write: self.metrics + the obs registry)
    # ------------------------------------------------------------------
    def _count(self, name: str, help_: str, amount: int = 1, **labels) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(name, help_).inc(amount, **labels)

    def _sync_depth_gauges(self) -> None:
        registry = obs.get_registry()
        if not registry.enabled:
            return
        registry.gauge(
            "repro_serving_dead_letter_depth", "updates currently quarantined"
        ).set(len(self.dead_letters))
        registry.gauge(
            "repro_serving_deferred_depth", "updates parked for the next repair"
        ).set(len(self._deferred))
        if self.overlay is not None:
            registry.gauge(
                "repro_serving_consolidation_lag",
                "accepted updates not yet folded into the stable index",
            ).set(len(self.overlay) + len(self._pending_flows))

    # ------------------------------------------------------------------
    # write-ahead logging (no-ops without a durability manager, and during
    # WAL replay — replayed records are already in the log)
    # ------------------------------------------------------------------
    def _log_update(self, update: FlowUpdate | WeightUpdate) -> int | None:
        if self.durability is None or self._replaying:
            return None
        return self.durability.log_update(update)

    def _log_outcome(
        self,
        wal_seq: int | None,
        applied: bool,
        strategy: str | None,
        detail: str | None = None,
    ) -> None:
        if wal_seq is None or self.durability is None or self._replaying:
            return
        self.durability.log_outcome(wal_seq, applied, strategy, detail)

    def _log_dlq(self, update: object, reason: str, detail: str) -> None:
        if self.durability is None or self._replaying:
            return
        self.durability.log_dlq(update, reason, detail)

    def _set_state(self, new_state: str) -> None:
        if self.state == HEALTHY and new_state == DEGRADED:
            self._count(
                "repro_serving_degraded_transitions_total",
                "healthy-to-degraded state flips",
            )
            # black box: record the flip, then freeze what the engine was
            # doing right before it (the note itself is in the dump)
            obs_flight.note("serving.degraded_transition", state=new_state)
            self.last_degraded_flight = obs_flight.dump(last=16)
        self.state = new_state

    # ------------------------------------------------------------------
    # admission control
    # ------------------------------------------------------------------
    def _validate(self, update: object) -> tuple[str, str] | None:
        """Reject reason ``(token, detail)`` or ``None`` when admissible."""
        n = self.frn.num_vertices
        if isinstance(update, FlowUpdate):
            if not isinstance(update.vertex, int) or not 0 <= update.vertex < n:
                return "unknown-vertex", f"vertex {update.vertex!r} not in [0, {n})"
            if not _finite(update.value):
                return "non-finite", f"flow {update.value!r} is not finite"
            if update.value < 0:
                return "negative-flow", f"flow {update.value} is negative"
        elif isinstance(update, WeightUpdate):
            for vertex in (update.u, update.v):
                if not isinstance(vertex, int) or not 0 <= vertex < n:
                    return "unknown-vertex", f"vertex {vertex!r} not in [0, {n})"
            if not self.frn.graph.has_edge(update.u, update.v):
                return "unknown-edge", f"edge ({update.u}, {update.v}) not in graph"
            if not _finite(update.value):
                return "non-finite", f"weight {update.value!r} is not finite"
            if update.value <= 0:
                return "non-positive-weight", f"weight {update.value} is not positive"
        else:
            return "unsupported-type", f"cannot apply {type(update).__name__}"
        if not _finite(update.timestamp):
            return "non-finite", f"timestamp {update.timestamp!r} is not finite"
        last = self._last_ts.get(update.key)
        if last is not None and update.timestamp < last:
            return (
                "stale-timestamp",
                f"timestamp {update.timestamp} predates last accepted {last}",
            )
        return None

    # ------------------------------------------------------------------
    # update path
    # ------------------------------------------------------------------
    def submit(self, update: FlowUpdate | WeightUpdate) -> UpdateOutcome:
        """Validate and apply one update; never raises on bad input.

        Invalid updates land in :attr:`dead_letters`; maintenance failures
        are retried/escalated and, as a last resort, deferred to the next
        :meth:`repair` (flipping the engine into degraded mode).
        """
        rejection = self._validate(update)
        if rejection is not None:
            reason, detail = rejection
            self._log_dlq(update, reason, detail)
            self.dead_letters.push(update, reason, detail)
            self.metrics["updates_rejected"] += 1
            self._count(
                "repro_serving_updates_total",
                "submitted updates by admission outcome",
                outcome="rejected",
            )
            self._count(
                "repro_serving_quarantined_total",
                "updates quarantined at admission, by rejection reason",
                reason=reason,
            )
            self._sync_depth_gauges()
            return UpdateOutcome(accepted=False, applied=False, reason=reason)
        self._last_ts[update.key] = update.timestamp
        # log-before-ack: the update is in the WAL before any attempt to
        # apply it, so a crash from here on can never lose it
        wal_seq = self._log_update(update)
        if self.update_mode == "overlay":
            return self._submit_overlay(update, wal_seq=wal_seq)

        strategies = (
            ("isu", "gsu") if isinstance(update, FlowUpdate) else ("ilu",)
        )
        start = self._clock()
        attempts = 0
        last_error: MaintenanceError | None = None
        for strategy in strategies:
            if strategy != strategies[0]:
                self.metrics["escalations"] += 1
                self._count(
                    "repro_serving_escalations_total",
                    "maintenance strategy escalations (ISU exhausted, trying GSU)",
                )
            for retry in range(self.max_retries + 1):
                attempts += 1
                if retry > 0:
                    self.metrics["retries"] += 1
                    self._count(
                        "repro_serving_retries_total",
                        "maintenance retries after a failed attempt",
                    )
                    if self.backoff > 0:
                        self._sleep(self.backoff * retry)
                try:
                    self._apply(update, strategy)
                except MaintenanceError as exc:
                    last_error = exc
                    if self._clock() - start > self.time_budget:
                        self.metrics["budget_exhausted"] += 1
                        self._count(
                            "repro_serving_budget_exhausted_total",
                            "updates deferred because the time budget ran out",
                        )
                        return self._defer(update, attempts, exc, wal_seq=wal_seq)
                else:
                    self._log_outcome(wal_seq, True, strategy)
                    self.metrics["updates_accepted"] += 1
                    self._count(
                        "repro_serving_updates_total",
                        "submitted updates by admission outcome",
                        outcome="accepted",
                    )
                    self.invalidate()
                    if self.durability is not None and not self._replaying:
                        self.durability.maybe_checkpoint(self)
                    return UpdateOutcome(
                        accepted=True,
                        applied=True,
                        strategy=strategy,
                        attempts=attempts,
                    )
        assert last_error is not None
        return self._defer(update, attempts, last_error, wal_seq=wal_seq)

    def _apply(self, update: FlowUpdate | WeightUpdate, strategy: str) -> None:
        if isinstance(update, FlowUpdate):
            apply_flow_update(self.index, update.vertex, update.value, method=strategy)
        else:
            apply_weight_update(self.index, update.u, update.v, update.value)

    def _defer(
        self,
        update: FlowUpdate | WeightUpdate,
        attempts: int,
        error: MaintenanceError,
        wal_seq: int | None = None,
    ) -> UpdateOutcome:
        """Every attempt failed: park the update and degrade the engine."""
        self._log_outcome(wal_seq, False, None, detail=str(error))
        self._deferred.append(update)
        self._set_state(DEGRADED)
        self.metrics["updates_deferred"] += 1
        self._count(
            "repro_serving_updates_total",
            "submitted updates by admission outcome",
            outcome="deferred",
        )
        self.dead_letters.push(
            update,
            "maintenance-failed",
            f"deferred to next repair after {attempts} attempts: {error}",
        )
        self._sync_depth_gauges()
        return UpdateOutcome(
            accepted=True,
            applied=False,
            reason="maintenance-failed",
            attempts=attempts,
            deferred=True,
        )

    # ------------------------------------------------------------------
    # overlay update path (update_mode="overlay")
    # ------------------------------------------------------------------
    def _submit_overlay(
        self,
        update: FlowUpdate | WeightUpdate,
        wal_seq: int | None = None,
    ) -> UpdateOutcome:
        """Absorb one validated update without touching the labels.

        Weight updates land in the overlay (the live graph changes, the
        index does not — queries answer from ``stable ⊕ overlay``); flow
        updates queue for the next consolidation, since flows steer the
        elimination ordering, never answer correctness.  Either way the
        serving index is never blocked on a label repair.
        """
        overlay = self.overlay
        assert overlay is not None
        if isinstance(update, WeightUpdate):
            changed = overlay.absorb(update.u, update.v, update.value)
            if changed:
                if self._task is not None:
                    entry = overlay.edges[
                        (update.u, update.v) if update.u < update.v
                        else (update.v, update.u)
                    ]
                    self._task.note_absorb(update.u, update.v, entry.stable)
                # results changed: bump listener epochs; the engines' own
                # caches resync off the overlay version without a rebuild
                self._notify_listeners()
            strategy = "overlay"
        else:
            self._pending_flows[update.vertex] = update.value
            strategy = "overlay-queued"
        # outcome goes in *before* the is_full trigger below, so the
        # update/outcome pair always lands in the same WAL generation as
        # the consolidation marker + rotation it may cause
        self._log_outcome(wal_seq, True, strategy)
        self.metrics["updates_accepted"] += 1
        self._count(
            "repro_serving_updates_total",
            "submitted updates by admission outcome",
            outcome="accepted",
        )
        self._sync_depth_gauges()
        if overlay.is_full and self._task is None:
            self.consolidate()
        elif self.durability is not None and not self._replaying:
            self.durability.maybe_checkpoint(self)
        return UpdateOutcome(
            accepted=True, applied=True, strategy=strategy, attempts=1
        )

    @property
    def consolidation_pending(self) -> bool:
        """True when there is unconsolidated state (or a task in flight)."""
        if self.overlay is None:
            return False
        return (
            self._task is not None
            or not self.overlay.is_empty
            or bool(self._pending_flows)
        )

    def maintenance_tick(self, steps: int = 1) -> str | None:
        """Advance background consolidation by up to ``steps`` small steps.

        The serving loop calls this between queries; each step is one
        bounded unit of :class:`~repro.core.overlay.ConsolidationTask`
        work, so queries never wait behind a full repair.  Returns the
        task state after the tick (``None`` when nothing is pending).
        A failed step discards the back buffer — the serving index was
        never touched — and counts toward the retry/escalation budget:
        after ``max_retries`` consecutive failures the engine pulls the
        full-rebuild valve.
        """
        if self.overlay is None or not self.consolidation_pending:
            return None
        if self._task is None:
            self._task = ConsolidationTask(
                self.index,
                self.overlay,
                flow_updates=dict(self._pending_flows),
                on_commit=self._install_back_buffer,
            )
        task = self._task
        try:
            state = task.state
            for _ in range(max(1, steps)):
                state = task.step()
                if state == "done":
                    break
        except Exception as exc:  # noqa: BLE001 — chaos faults are arbitrary
            self._task = None
            if task.committed:
                # the fault fired after the atomic swap: the new index is
                # live and exact, only bookkeeping remained
                self._finish_consolidation(task)
                return "done"
            return self._consolidation_failed(task, exc)
        if task.done:
            self._finish_consolidation(task)
        return task.state

    def consolidate(self) -> str | None:
        """Run consolidation to completion (a "tick" of unbounded size)."""
        state = self.maintenance_tick(steps=1)
        while self._task is not None and state not in (None, "done"):
            state = self.maintenance_tick(steps=1)
        return state

    def _install_back_buffer(self, back: FAHLIndex) -> None:
        """The atomic swap body — plain assignments only, nothing raises."""
        self.index = back
        self.oracle.index = back

    def _finish_consolidation(self, task: ConsolidationTask) -> None:
        self._task = None
        self._consolidation_failures = 0
        for vertex, flow in task.consolidated_flows.items():
            if self._pending_flows.get(vertex) == flow:
                del self._pending_flows[vertex]
        self.metrics["consolidations"] += 1
        self._count(
            "repro_serving_consolidations_total",
            "background consolidation swaps committed",
        )
        self.invalidate()
        # rebuild the flat kernel here, on the consolidation plane — the
        # first query after the swap must not pay the arena rebuild
        self._engine.prime()
        self._sync_depth_gauges()
        if self.durability is not None and not self._replaying:
            # the fold is committed: mark it, persist the new stable index
            # and rotate the log so recovery replays only the fresh tail
            self.durability.log_consolidated()
            self.durability.checkpoint(self)

    def _consolidation_failed(
        self, task: ConsolidationTask, error: Exception
    ) -> str:
        """A consolidation step failed before the swap: discard and escalate.

        The back buffer is thrown away (the serving pair was never touched,
        so queries stay exact), the failure is recorded in the dead-letter
        queue, and after ``max_retries`` consecutive failures the engine
        escalates to the full :meth:`repair` rebuild valve — which does not
        depend on the incremental paths at all.
        """
        self._consolidation_failures += 1
        self.metrics["consolidation_failures"] += 1
        self._count(
            "repro_serving_consolidation_failures_total",
            "consolidation attempts aborted before the swap",
        )
        detail = (
            f"attempt {self._consolidation_failures} died in state "
            f"{task.state!r}: {error}"
        )
        self._log_dlq(None, "consolidation-failed", detail)
        self.dead_letters.push(None, "consolidation-failed", detail)
        self._sync_depth_gauges()
        if self._consolidation_failures > self.max_retries:
            self.metrics["escalations"] += 1
            self._count(
                "repro_serving_escalations_total",
                "maintenance strategy escalations (ISU exhausted, trying GSU)",
            )
            self._consolidation_failures = 0
            self.repair()
            return "rebuilt"
        return "failed"
    @property
    def degraded(self) -> bool:
        return self.state != HEALTHY

    def query(self, query: FSPQuery) -> ServingResult:
        """Answer an FSPQ query, degrading to index-free search if needed."""
        degraded = self.degraded
        source = "fallback" if degraded else "index"
        engine = self._fallback if degraded else self._engine
        self.metrics["queries_degraded" if degraded else "queries_index"] += 1
        self._count(
            "repro_serving_queries_total",
            "served queries by answer source",
            source=source,
        )
        start = time.perf_counter()
        if obs.get_tracer() is not None:
            with obs_context.request_scope():
                with obs.trace(
                    "serving.query",
                    source=source,
                    src=query.source,
                    dst=query.target,
                ):
                    result = engine.query(query)
        else:
            result = engine.query(query)
        elapsed = time.perf_counter() - start
        registry = obs.get_registry()
        if registry.enabled:
            registry.histogram(
                "repro_serving_query_seconds", "end-to-end serving query latency"
            ).observe(elapsed, source=source)
        # always-on tail: slow-query digests into the flight recorder and,
        # when a monitor is installed, the rolling SLO window (a degraded
        # answer burns error budget even when it is fast)
        obs_flight.observe_query("serving.query", elapsed, source=source)
        monitor = obs_slo.get_slo_monitor()
        if monitor is not None:
            monitor.observe(elapsed, ok=not degraded)
        return ServingResult(result=result, degraded=degraded, source=source)

    def explain(self, source: int, target: int, timestep: int = 0):
        """EXPLAIN one query through the serving facade.

        Delegates to the engine :meth:`query` would use (fallback when
        degraded), so the answer fields stay bit-identical to a real
        query; see :meth:`repro.core.fpsps.FlowAwareEngine.explain`.
        """
        degraded = self.degraded
        engine = self._fallback if degraded else self._engine
        inner = engine.explain(source, target, timestep)
        return replace(
            inner,
            engine="resilient",
            degraded=degraded,
            answer_source="fallback" if degraded else "index",
        )

    def distance(self, u: int, v: int) -> ServingDistance:
        """Shortest spatial distance, degrading to direct Dijkstra if needed."""
        if self.degraded:
            self.metrics["queries_degraded"] += 1
            self._count(
                "repro_serving_queries_total",
                "served queries by answer source",
                source="fallback",
            )
            return ServingDistance(
                value=dijkstra_distance(self.frn.graph, u, v),
                degraded=True,
                source="fallback",
            )
        self.metrics["queries_index"] += 1
        self._count(
            "repro_serving_queries_total",
            "served queries by answer source",
            source="index",
        )
        return ServingDistance(
            value=self.oracle.distance(u, v), degraded=False, source="index"
        )

    def batch(
        self,
        queries: list[FSPQuery],
        workers: int = 1,
        timeout: float | None = None,
        kernel: str | None = None,
        report=None,
    ) -> list[ServingResult]:
        """Evaluate a workload, degrading to the index-free path if needed.

        Healthy engines fan the workload through
        :func:`repro.core.batch.batch_query` (shared memoised oracle, fork
        pool with ``workers > 1``); degraded engines answer serially from
        the fallback engine, query by query, exactly like :meth:`query`.
        ``timeout`` bounds each pool chunk; ``kernel`` overrides the
        kernel mode of whichever engine answers (the unified protocol
        batch signature, docs/API.md).
        """
        if kernel is not None and kernel not in KERNEL_MODES:
            raise QueryError(
                f"kernel must be one of {KERNEL_MODES}, got {kernel!r}"
            )
        if obs.get_tracer() is not None:
            with obs_context.request_scope():
                with obs.trace(
                    "serving.batch", queries=len(queries), workers=workers
                ):
                    return self._batch_impl(queries, workers, timeout, kernel, report)
        return self._batch_impl(queries, workers, timeout, kernel, report)

    def _batch_impl(
        self,
        queries: list[FSPQuery],
        workers: int,
        timeout,
        kernel,
        report,
    ) -> list[ServingResult]:
        if self.degraded:
            self.metrics["queries_degraded"] += len(queries)
            self._count(
                "repro_serving_queries_total",
                "served queries by answer source",
                len(queries),
                source="fallback",
            )
            with self._fallback.kernel_override(kernel):
                return [
                    ServingResult(
                        result=self._fallback.query(query),
                        degraded=True,
                        source="fallback",
                    )
                    for query in queries
                ]
        self.metrics["queries_index"] += len(queries)
        self._count(
            "repro_serving_queries_total",
            "served queries by answer source",
            len(queries),
            source="index",
        )
        results = self._engine.batch(
            queries, workers=workers, timeout=timeout, kernel=kernel, report=report
        )
        return [
            ServingResult(result=result, degraded=False, source="index")
            for result in results
        ]

    @property
    def flow_engine(self) -> FlowAwareEngine:
        """The flow-aware engine answering right now (protocol accessor)."""
        return self._fallback if self.degraded else self._engine

    # ------------------------------------------------------------------
    # health / repair
    # ------------------------------------------------------------------
    def audit(self) -> AuditReport:
        """Run the sampled self-audit; a failed audit degrades the engine.

        In overlay mode the probe checks what queries actually see —
        ``stable ⊕ overlay`` through the oracle — since the raw labels
        legitimately lag the live weights between consolidations.
        """
        report = verify_index(
            self.index,
            samples=self.audit_samples,
            seed=self.audit_seed,
            oracle=self.oracle if self.overlay is not None else None,
        )
        self._last_audit_at = time.time()
        self._last_audit_ok = report.ok
        self._count(
            "repro_serving_audits_total",
            "sampled self-audits by result",
            ok=str(report.ok).lower(),
        )
        if not report.ok:
            self._set_state(DEGRADED)
            self.metrics["audits_failed"] += 1
        elif not self._deferred:
            self.state = HEALTHY
        return report

    def repair(self) -> AuditReport:
        """Rebuild the index from scratch, folding in deferred updates.

        A full rebuild does not depend on the incremental maintenance paths
        at all, so it recovers even from failures that defeat ISU, GSU and
        ILU alike.  The engine returns to healthy only if the post-repair
        audit passes.
        """
        graph = self.frn.graph
        flows = self.index.flows.copy()
        for vertex, value in self._pending_flows.items():
            flows[vertex] = value
        for update in self._deferred:
            if isinstance(update, FlowUpdate):
                flows[update.vertex] = update.value
            else:
                graph.set_weight(update.u, update.v, update.value)
        index = FAHLIndex(graph, flows, beta=self.index.beta)
        # nothing below raises: the engine flips to the new index whole
        self.index = index
        if self.overlay is not None:
            # the rebuild saw the *current* weights, so the overlay empties:
            # its stable baseline is now the live graph itself
            self._task = None
            self.oracle.index = index
            self.overlay.commit_rebase(({}, [], {}))
            self._pending_flows.clear()
        else:
            self.oracle = index
        self._engine.oracle = self.oracle
        self.invalidate()
        self._deferred.clear()
        self.metrics["repairs"] += 1
        self._count("repro_serving_repairs_total", "full index rebuilds")
        self._sync_depth_gauges()
        report = self.audit()
        if self.durability is not None and not self._replaying:
            # a rebuild invalidates everything the old WAL tail would
            # replay — persist the new world and start a fresh log
            self.durability.checkpoint(self)
        return report

    def status(self) -> EngineStatus:
        """Typed snapshot for telemetry/logging (attribute access only)."""
        return EngineStatus(
            state=self.state,
            deferred_updates=len(self._deferred),
            dead_letters_queued=len(self.dead_letters),
            dead_letters_seen=self.dead_letters.total_seen,
            last_audit_at=self._last_audit_at,
            last_audit_ok=self._last_audit_ok,
            metrics=dict(self.metrics),
            update_mode=self.update_mode,
            overlay_edges=0 if self.overlay is None else len(self.overlay),
            overlay_hubs=0 if self.overlay is None else self.overlay.num_hubs,
            pending_flow_updates=len(self._pending_flows),
            consolidation_state=None if self._task is None else self._task.state,
        )


def _finite(value: object) -> bool:
    try:
        return math.isfinite(float(value))  # type: ignore[arg-type]
    except (TypeError, ValueError):
        return False
