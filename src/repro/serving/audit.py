"""Index self-audit: sampled label-vs-Dijkstra checks plus structural sanity.

``verify_index`` is the serving layer's health probe.  It cross-checks a
deterministic sample of label distances against fresh Dijkstra runs on the
*current* graph (the ground truth labels must agree with), validates label
shapes against the tree decomposition, and checks version coherence of the
packed arena.  A probe is O(samples x Dijkstra) — cheap enough to run after
every repair and periodically in the background, far cheaper than a full
all-pairs sweep.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.baselines.dijkstra import dijkstra_distance
from repro.labeling.hierarchy import HierarchyIndex

__all__ = ["AuditReport", "verify_index"]


@dataclass(frozen=True)
class AuditReport:
    """Outcome of one :func:`verify_index` probe."""

    ok: bool
    checked: int
    mismatches: tuple[tuple[int, int, float, float], ...] = ()
    structure_errors: tuple[str, ...] = ()
    checksum: str = ""


def verify_index(
    index: HierarchyIndex,
    samples: int = 32,
    seed: int = 0,
    tolerance: float = 1e-9,
    oracle=None,
) -> AuditReport:
    """Audit ``index`` against the graph it serves.

    Parameters
    ----------
    samples:
        Number of random vertex pairs to cross-check against Dijkstra.
    seed:
        RNG seed — audits are deterministic and replayable.
    tolerance:
        Maximum absolute distance disagreement tolerated.
    oracle:
        Optional serving-path oracle whose ``distance`` answers are probed
        instead of the raw labels.  Overlay-mode engines pass their
        :class:`~repro.core.overlay.OverlayOracle` here: between
        consolidations the labels legitimately lag the live weights, and
        the health question is whether *queries* agree with the graph.

    Returns an :class:`AuditReport`; ``report.ok`` is the health verdict.
    """
    graph = index.graph
    n = graph.num_vertices
    structure_errors: list[str] = []

    # label shapes must match the tree decomposition depth-for-depth
    depth = index.tree.depth
    for v in range(n):
        if len(index.labels[v]) != int(depth[v]) + 1:
            structure_errors.append(
                f"label of vertex {v} has {len(index.labels[v])} entries, "
                f"expected depth+1 = {int(depth[v]) + 1}"
            )
            break
        if index.labels[v][-1] != 0.0:
            structure_errors.append(f"label of vertex {v} has non-zero self entry")
            break

    # a cached arena must carry the live label version (stale packs are
    # rebuilt lazily, but a *future* version would mean state corruption)
    arena = index._arena
    if arena is not None and arena.version > index.label_version:
        structure_errors.append(
            f"arena version {arena.version} is ahead of index version "
            f"{index.label_version}"
        )

    rng = np.random.default_rng(seed)
    probe = index if oracle is None else oracle
    mismatches: list[tuple[int, int, float, float]] = []
    checked = 0
    if not structure_errors and n > 0:
        for _ in range(samples):
            s = int(rng.integers(n))
            t = int(rng.integers(n))
            got = probe.distance(s, t)
            want = dijkstra_distance(graph, s, t)
            checked += 1
            if not abs(got - want) <= tolerance:
                mismatches.append((s, t, got, want))
    return AuditReport(
        ok=not structure_errors and not mismatches,
        checked=checked,
        mismatches=tuple(mismatches),
        structure_errors=tuple(structure_errors),
        checksum=index.checksum(),
    )
