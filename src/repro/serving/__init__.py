"""Resilient serving layer: admission control, guarded maintenance,
degraded-mode querying and index self-audits (see docs/RESILIENCE.md)."""

from repro.serving.audit import AuditReport, verify_index
from repro.serving.dead_letter import DeadLetterQueue
from repro.serving.engine import (
    EngineStatus,
    ResilientEngine,
    ServingDistance,
    ServingResult,
    UpdateOutcome,
)
from repro.serving.updates import DeadLetter, FlowUpdate, WeightUpdate

__all__ = [
    "AuditReport",
    "DeadLetter",
    "DeadLetterQueue",
    "EngineStatus",
    "FlowUpdate",
    "ResilientEngine",
    "ServingDistance",
    "ServingResult",
    "UpdateOutcome",
    "WeightUpdate",
    "verify_index",
]
