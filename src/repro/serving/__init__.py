"""Resilient serving layer: admission control, guarded maintenance,
degraded-mode querying, index self-audits (see docs/RESILIENCE.md) and
the asyncio micro-batching front door (docs/API.md, "Async serving")."""

from repro.serving.admission import ClientAdmission, TokenBucket
from repro.serving.async_gateway import AsyncGateway, GatewayWindowStats
from repro.serving.audit import AuditReport, verify_index
from repro.serving.dead_letter import DeadLetterQueue
from repro.serving.engine import (
    EngineStatus,
    ResilientEngine,
    ServingDistance,
    ServingResult,
    UpdateOutcome,
)
from repro.serving.updates import DeadLetter, FlowUpdate, WeightUpdate

__all__ = [
    "AsyncGateway",
    "AuditReport",
    "ClientAdmission",
    "DeadLetter",
    "DeadLetterQueue",
    "EngineStatus",
    "FlowUpdate",
    "GatewayWindowStats",
    "ResilientEngine",
    "ServingDistance",
    "ServingResult",
    "TokenBucket",
    "UpdateOutcome",
    "WeightUpdate",
    "verify_index",
]
