"""Closed/open-loop load driving for the async gateway (`serve-async`).

The two canonical load models for benchmarking a serving front door:

* **closed loop** — ``concurrency`` virtual clients, each awaiting its
  answer before issuing the next request.  Throughput is limited by
  latency (classic back-to-back benchmarking); with the coalescing
  window on, concurrent clients land in shared windows.
* **open loop** — requests arrive on a fixed schedule (``rate`` per
  second) regardless of completions, the arrival model real traffic
  follows.  Latency here includes queueing delay, so an under-provisioned
  gateway shows p99 blow-up instead of a comforting closed-loop plateau.

Both drivers return a :class:`LoadResult` with wall-clock throughput and
latency quantiles; :func:`run_async_demo` wires them to a demo grid
engine for ``fahl-repro serve-async`` and CI, and
``benchmarks/bench_async_gateway.py`` reuses them for the real
window-on/window-off comparison.
"""

from __future__ import annotations

import asyncio
import random
import time
from dataclasses import dataclass, field

from repro.core.fahl import build_fahl
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.serving.async_gateway import AsyncGateway

__all__ = ["LoadResult", "closed_loop", "open_loop", "run_async_demo"]


@dataclass
class LoadResult:
    """Outcome of one load-driver run (latencies in seconds)."""

    mode: str
    requests: int
    errors: int
    wall_seconds: float
    latencies: list[float] = field(default_factory=list, repr=False)

    @property
    def throughput(self) -> float:
        """Completed requests per wall-clock second."""
        if self.wall_seconds <= 0:
            return 0.0
        return (self.requests - self.errors) / self.wall_seconds

    def quantile(self, q: float) -> float:
        if not self.latencies:
            return 0.0
        ordered = sorted(self.latencies)
        index = min(len(ordered) - 1, int(q * len(ordered)))
        return ordered[index]

    def summary(self) -> dict:
        return {
            "mode": self.mode,
            "requests": self.requests,
            "errors": self.errors,
            "wall_seconds": self.wall_seconds,
            "throughput_rps": self.throughput,
            "p50_ms": self.quantile(0.50) * 1000.0,
            "p95_ms": self.quantile(0.95) * 1000.0,
            "p99_ms": self.quantile(0.99) * 1000.0,
        }


def _issue(gateway: AsyncGateway, item, client: str):
    """One workload item: an ``FSPQuery`` -> ``aquery``, a pair -> ``adistance``."""
    if isinstance(item, FSPQuery):
        return gateway.aquery(item, client=client)
    u, v = item
    return gateway.adistance(u, v, client=client)


async def closed_loop(
    gateway: AsyncGateway,
    queries: list,
    concurrency: int = 32,
    client: str = "closed-loop",
) -> LoadResult:
    """``concurrency`` clients issue back-to-back requests until done."""
    pending = iter(queries)
    latencies: list[float] = []
    errors = 0

    async def worker() -> None:
        nonlocal errors
        while True:
            query = next(pending, None)
            if query is None:
                return
            begin = time.perf_counter()
            try:
                await _issue(gateway, query, client)
            except Exception:  # noqa: BLE001 — typed rejections count as errors
                errors += 1
            else:
                latencies.append(time.perf_counter() - begin)

    start = time.perf_counter()
    await asyncio.gather(*(worker() for _ in range(max(1, concurrency))))
    wall = time.perf_counter() - start
    return LoadResult(
        mode="closed",
        requests=len(queries),
        errors=errors,
        wall_seconds=wall,
        latencies=latencies,
    )


async def open_loop(
    gateway: AsyncGateway,
    queries: list,
    rate: float = 2000.0,
    client: str = "open-loop",
) -> LoadResult:
    """Fixed-rate arrivals: one request every ``1/rate`` seconds.

    Arrivals never wait for completions (the open-loop property), so
    measured latency includes queueing delay under overload.
    """
    if rate <= 0:
        raise ValueError(f"rate must be positive, got {rate}")
    interval = 1.0 / rate
    latencies: list[float] = []
    errors = 0

    async def one(query) -> None:
        nonlocal errors
        begin = time.perf_counter()
        try:
            await _issue(gateway, query, client)
        except Exception:  # noqa: BLE001 — typed rejections count as errors
            errors += 1
        else:
            latencies.append(time.perf_counter() - begin)

    start = time.perf_counter()
    tasks = []
    for i, query in enumerate(queries):
        # schedule against the ideal arrival clock, not the drifting one
        behind = start + i * interval - time.perf_counter()
        if behind > 0:
            await asyncio.sleep(behind)
        tasks.append(asyncio.ensure_future(one(query)))
    await asyncio.gather(*tasks)
    wall = time.perf_counter() - start
    return LoadResult(
        mode="open",
        requests=len(queries),
        errors=errors,
        wall_seconds=wall,
        latencies=latencies,
    )


def _demo_workload(
    frn: FlowAwareRoadNetwork, requests: int, seed: int
) -> list[FSPQuery]:
    rng = random.Random(seed)
    n, steps = frn.num_vertices, frn.num_timesteps
    workload = []
    while len(workload) < requests:
        u, v = rng.randrange(n), rng.randrange(n)
        if u != v:
            workload.append(FSPQuery(u, v, rng.randrange(steps)))
    return workload


def run_async_demo(
    side: int = 8,
    requests: int = 400,
    concurrency: int = 64,
    rate: float = 4000.0,
    window_seconds: float = 0.0015,
    admission_rate: float | None = None,
    seed: int = 0,
) -> dict:
    """Drive closed- and open-loop load through one demo gateway.

    Returns a summary dict: both loops' throughput/latency numbers plus
    the gateway's coalescing statistics.
    """
    graph = grid_network(side, side, seed=seed)
    frn = FlowAwareRoadNetwork(
        graph, generate_flow_series(graph, days=1, seed=seed)
    )
    engine = FlowAwareEngine(frn, oracle=build_fahl(frn))
    workload = _demo_workload(frn, requests, seed)

    async def drive() -> tuple[LoadResult, LoadResult, object]:
        async with AsyncGateway(
            engine,
            window_seconds=window_seconds,
            admission_rate=admission_rate,
        ) as gateway:
            closed = await closed_loop(gateway, workload, concurrency)
            opened = await open_loop(gateway, workload, rate)
            stats = gateway.stats
            return closed, opened, stats

    closed, opened, stats = asyncio.run(drive())
    return {
        "vertices": frn.num_vertices,
        "requests_per_loop": requests,
        "window_seconds": window_seconds,
        "closed": closed.summary(),
        "open": opened.summary(),
        "windows": stats.windows,
        "coalescing_ratio": stats.coalescing_ratio(),
        "largest_window": stats.largest_window,
        "rejected_admission": stats.rejected_admission,
        "rejected_backpressure": stats.rejected_backpressure,
    }
