"""The stable public query surface of the FAHL stack (docs/API.md).

Three serving classes answer queries — :class:`~repro.core.fpsps.FlowAwareEngine`
(the bare Alg.-5 evaluator), :class:`~repro.serving.engine.ResilientEngine`
(fault-tolerant single process) and :class:`~repro.scale.gateway.ShardedGateway`
(horizontally sharded, cache-fronted).  This module pins down what makes
them drop-in interchangeable:

* the :class:`Engine` protocol — ``query(FSPQuery)``, ``distance(u, v)``
  and ``batch(queries, workers=...)``, plus the ``invalidate()`` hook and
  the ``flow_engine`` accessor;
* :func:`as_result` / :func:`as_distance` — normalisers that unwrap the
  serving layers' envelopes (:class:`ServingResult` /
  :class:`ServingDistance`) to the plain :class:`FSPResult` / ``float``
  the bare engine returns, so callers can stay engine-agnostic;
* the :class:`AsyncEngine` protocol — the async-first serving surface
  (``aquery``/``adistance``/``abatch`` coroutines plus a sync
  ``submit() -> Future`` escape hatch) — with :func:`to_async`, the
  adapter that wraps any :class:`Engine` in the micro-batching
  :class:`~repro.serving.async_gateway.AsyncGateway` so all three tiers
  satisfy it; envelope normalisation via :func:`as_result` /
  :func:`as_distance` applies identically to sync and async answers;
* harmonised, :class:`FSPQuery`-accepting front doors for the extension
  queries: :func:`knn`, :func:`constrained` and :func:`skyline`.  The
  legacy positional ``source``/``timestep`` spellings completed their
  deprecation cycle and were **removed** — they now raise
  :class:`~repro.errors.QueryError` with a migration hint (docs/API.md,
  "Deprecation policy").
"""

from __future__ import annotations

import math
from typing import Protocol, Sequence, runtime_checkable

from repro.core.constrained import (
    ConstrainedFlowAwareEngine,
    QueryConstraints,
)
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.core.knn import KNNMatch, flow_aware_knn
from repro.core.skyline import SkylineResult, skyline_paths
from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork

__all__ = [
    "AsyncEngine",
    "Engine",
    "as_distance",
    "as_result",
    "constrained",
    "knn",
    "skyline",
    "to_async",
]


@runtime_checkable
class Engine(Protocol):
    """What every serving class guarantees (the stable engine protocol).

    ``query`` returns either a bare :class:`FSPResult` or an envelope with
    a ``.result`` attribute; ``distance`` a ``float`` or an envelope with
    ``.value`` — normalise with :func:`as_result` / :func:`as_distance`
    when you need engine-agnostic values.

    ``batch`` is keyword-consistent across every tier: ``workers`` fans
    chunks out to the fork pool, ``timeout`` bounds each pool chunk
    (``None`` = the pool default) and ``kernel`` overrides the query
    kernel (``"flat"``/``"scalar"``) for the whole batch — asserted by
    ``tests/test_api_surface.py``.
    """

    def query(self, query: FSPQuery): ...

    def distance(self, u: int, v: int): ...

    def batch(
        self,
        queries: Sequence[FSPQuery],
        workers: int = 1,
        timeout: float | None = None,
        kernel: str | None = None,
    ): ...

    def invalidate(self) -> None: ...

    @property
    def flow_engine(self) -> FlowAwareEngine: ...


@runtime_checkable
class AsyncEngine(Protocol):
    """The async-first serving surface (asyncio-native front doors).

    ``aquery``/``adistance``/``abatch`` are coroutines answering through
    the implementation's coalescing/dispatch machinery; ``submit`` is the
    sync escape hatch returning a :class:`concurrent.futures.Future` so
    threaded callers can use the same gateway without an event loop.
    Answers carry whatever envelope the wrapped engine produces — the
    same :func:`as_result` / :func:`as_distance` normalisers apply to
    sync and async answers identically.

    Satisfy it with :func:`to_async` — every :class:`Engine` tier adapts
    via :class:`~repro.serving.async_gateway.AsyncGateway`.
    """

    async def aquery(self, query: FSPQuery): ...

    async def adistance(self, u: int, v: int): ...

    async def abatch(self, queries: Sequence[FSPQuery]): ...

    def submit(self, query: FSPQuery): ...


def to_async(engine, **gateway_kwargs):
    """Adapt any :class:`Engine` to the :class:`AsyncEngine` protocol.

    An engine that already satisfies :class:`AsyncEngine` is returned
    unchanged (``gateway_kwargs`` must then be empty); a sync
    :class:`Engine` is wrapped in a
    :class:`~repro.serving.async_gateway.AsyncGateway`, forwarding
    ``gateway_kwargs`` (``window_seconds``, ``max_window``, ``max_queue``,
    ``admission_rate``, ...).  Anything else raises
    :class:`~repro.errors.QueryError`.
    """
    from repro.serving.async_gateway import AsyncGateway

    if isinstance(engine, AsyncEngine):
        if gateway_kwargs:
            raise QueryError(
                f"{type(engine).__name__} is already an AsyncEngine; "
                "gateway options cannot be applied to it"
            )
        return engine
    if isinstance(engine, Engine):
        return AsyncGateway(engine, **gateway_kwargs)
    raise QueryError(
        f"{type(engine).__name__} satisfies neither the Engine nor the "
        "AsyncEngine protocol"
    )


def as_result(outcome) -> FSPResult:
    """Unwrap any engine's query answer to the plain :class:`FSPResult`."""
    if isinstance(outcome, FSPResult):
        return outcome
    inner = getattr(outcome, "result", None)
    if isinstance(inner, FSPResult):
        return inner
    raise QueryError(
        f"cannot extract an FSPResult from {type(outcome).__name__}"
    )


def as_distance(outcome) -> float:
    """Unwrap any engine's distance answer to a plain ``float``."""
    if isinstance(outcome, (int, float)):
        return float(outcome)
    value = getattr(outcome, "value", None)
    if isinstance(value, (int, float)):
        return float(value)
    raise QueryError(
        f"cannot extract a distance from {type(outcome).__name__}"
    )


# ----------------------------------------------------------------------
# harmonised extension-query front doors
# ----------------------------------------------------------------------
def _flow_engine(engine) -> FlowAwareEngine:
    if isinstance(engine, FlowAwareEngine):
        return engine
    inner = getattr(engine, "flow_engine", None)
    if isinstance(inner, FlowAwareEngine):
        return inner
    raise QueryError(
        f"{type(engine).__name__} does not expose a flow engine; pass a "
        "FlowAwareEngine, ResilientEngine or ShardedGateway"
    )


def _require_query(query, caller: str) -> FSPQuery:
    """The front doors take :class:`FSPQuery` only (positional removed)."""
    if isinstance(query, FSPQuery):
        return query
    raise QueryError(
        f"repro.{caller}() takes an FSPQuery, got {type(query).__name__} — "
        f"the legacy positional spelling was removed; build "
        f"FSPQuery(source, target, timestep) instead (docs/API.md)"
    )


def knn(
    engine,
    query: FSPQuery,
    pois: Sequence[int],
    k: int,
    *,
    prefilter: int | None = None,
) -> list[KNNMatch]:
    """Flow-aware k-nearest POIs from ``query.source`` at ``query.timestep``.

    ``query.target`` is ignored (kNN ranks the POI set instead).  Works
    with any :class:`Engine`; serving layers contribute their flow engine,
    so e.g. a :class:`ShardedGateway` ranks with exact sharded distances.
    """
    query = _require_query(query, "knn")
    return flow_aware_knn(
        _flow_engine(engine),
        query.source,
        list(pois),
        k,
        query.timestep,
        prefilter=prefilter,
    )


def constrained(
    engine,
    query: FSPQuery,
    constraints: QueryConstraints,
) -> FSPResult:
    """One FSPQ query under :class:`QueryConstraints`, on any engine."""
    query = _require_query(query, "constrained")
    inner = _flow_engine(engine)
    if isinstance(inner, ConstrainedFlowAwareEngine):
        return inner.query_constrained(query, constraints)
    shim = ConstrainedFlowAwareEngine(
        inner.frn,
        oracle=inner.oracle,
        alpha=inner.alpha,
        eta_u=inner.eta_u,
        pruning=inner.pruning,
        max_candidates=inner.max_candidates,
        use_capacity=inner.use_capacity,
        w_c=inner.w_c,
        exhaustive=inner.exhaustive,
        min_candidates=inner.min_candidates,
    )
    return shim.query_constrained(query, constraints)


def skyline(
    source_of_frn,
    query: FSPQuery,
    *,
    max_distance: float = math.inf,
    max_labels_per_vertex: int = 64,
) -> SkylineResult:
    """The (distance, flow) Pareto frontier for one FSPQ triple.

    ``source_of_frn`` is an FRN or any :class:`Engine` (its FRN is used).
    """
    frn = source_of_frn
    if not isinstance(frn, FlowAwareRoadNetwork):
        frn = getattr(source_of_frn, "frn", None)
        if not isinstance(frn, FlowAwareRoadNetwork):
            raise QueryError(
                f"{type(source_of_frn).__name__} carries no FlowAwareRoadNetwork"
            )
    query = _require_query(query, "skyline")
    return skyline_paths(
        frn,
        query.source,
        query.target,
        query.timestep,
        max_distance=max_distance,
        max_labels_per_vertex=max_labels_per_vertex,
    )
