"""The stable public query surface of the FAHL stack (docs/API.md).

Three serving classes answer queries — :class:`~repro.core.fpsps.FlowAwareEngine`
(the bare Alg.-5 evaluator), :class:`~repro.serving.engine.ResilientEngine`
(fault-tolerant single process) and :class:`~repro.scale.gateway.ShardedGateway`
(horizontally sharded, cache-fronted).  This module pins down what makes
them drop-in interchangeable:

* the :class:`Engine` protocol — ``query(FSPQuery)``, ``distance(u, v)``
  and ``batch(queries, workers=...)``, plus the ``invalidate()`` hook and
  the ``flow_engine`` accessor;
* :func:`as_result` / :func:`as_distance` — normalisers that unwrap the
  serving layers' envelopes (:class:`ServingResult` /
  :class:`ServingDistance`) to the plain :class:`FSPResult` / ``float``
  the bare engine returns, so callers can stay engine-agnostic;
* harmonised, :class:`FSPQuery`-accepting front doors for the extension
  queries: :func:`knn`, :func:`constrained` and :func:`skyline` (the
  legacy positional ``source``/``timestep`` spellings still work but emit
  :class:`DeprecationWarning` and disappear one release after 1.0 — see
  docs/API.md, "Deprecation policy").
"""

from __future__ import annotations

import math
import warnings
from typing import Protocol, Sequence, runtime_checkable

from repro.core.constrained import (
    ConstrainedFlowAwareEngine,
    QueryConstraints,
)
from repro.core.fpsps import FlowAwareEngine
from repro.core.fspq import FSPQuery, FSPResult
from repro.core.knn import KNNMatch, flow_aware_knn
from repro.core.skyline import SkylineResult, skyline_paths
from repro.errors import QueryError
from repro.graph.frn import FlowAwareRoadNetwork

__all__ = [
    "Engine",
    "as_distance",
    "as_result",
    "constrained",
    "knn",
    "skyline",
]


@runtime_checkable
class Engine(Protocol):
    """What every serving class guarantees (the stable engine protocol).

    ``query`` returns either a bare :class:`FSPResult` or an envelope with
    a ``.result`` attribute; ``distance`` a ``float`` or an envelope with
    ``.value`` — normalise with :func:`as_result` / :func:`as_distance`
    when you need engine-agnostic values.
    """

    def query(self, query: FSPQuery): ...

    def distance(self, u: int, v: int): ...

    def batch(self, queries: Sequence[FSPQuery], workers: int = 1): ...

    def invalidate(self) -> None: ...

    @property
    def flow_engine(self) -> FlowAwareEngine: ...


def as_result(outcome) -> FSPResult:
    """Unwrap any engine's query answer to the plain :class:`FSPResult`."""
    if isinstance(outcome, FSPResult):
        return outcome
    inner = getattr(outcome, "result", None)
    if isinstance(inner, FSPResult):
        return inner
    raise QueryError(
        f"cannot extract an FSPResult from {type(outcome).__name__}"
    )


def as_distance(outcome) -> float:
    """Unwrap any engine's distance answer to a plain ``float``."""
    if isinstance(outcome, (int, float)):
        return float(outcome)
    value = getattr(outcome, "value", None)
    if isinstance(value, (int, float)):
        return float(value)
    raise QueryError(
        f"cannot extract a distance from {type(outcome).__name__}"
    )


# ----------------------------------------------------------------------
# harmonised extension-query front doors
# ----------------------------------------------------------------------
def _flow_engine(engine) -> FlowAwareEngine:
    if isinstance(engine, FlowAwareEngine):
        return engine
    inner = getattr(engine, "flow_engine", None)
    if isinstance(inner, FlowAwareEngine):
        return inner
    raise QueryError(
        f"{type(engine).__name__} does not expose a flow engine; pass a "
        "FlowAwareEngine, ResilientEngine or ShardedGateway"
    )


def _source_and_timestep(query, timestep, caller: str) -> tuple[int, int]:
    if isinstance(query, FSPQuery):
        return query.source, query.timestep
    warnings.warn(
        f"passing a positional source/timestep to repro.{caller}() is "
        "deprecated; pass an FSPQuery (removed one release after 1.0)",
        DeprecationWarning,
        stacklevel=3,
    )
    if timestep is None:
        raise QueryError(
            f"legacy repro.{caller}(source, ...) calls need timestep="
        )
    return int(query), int(timestep)


def knn(
    engine,
    query: FSPQuery | int,
    pois: Sequence[int],
    k: int,
    *,
    prefilter: int | None = None,
    timestep: int | None = None,
) -> list[KNNMatch]:
    """Flow-aware k-nearest POIs from ``query.source`` at ``query.timestep``.

    ``query.target`` is ignored (kNN ranks the POI set instead).  Works
    with any :class:`Engine`; serving layers contribute their flow engine,
    so e.g. a :class:`ShardedGateway` ranks with exact sharded distances.
    """
    source, t = _source_and_timestep(query, timestep, "knn")
    return flow_aware_knn(
        _flow_engine(engine), source, list(pois), k, t, prefilter=prefilter
    )


def constrained(
    engine,
    query: FSPQuery,
    constraints: QueryConstraints,
) -> FSPResult:
    """One FSPQ query under :class:`QueryConstraints`, on any engine."""
    inner = _flow_engine(engine)
    if isinstance(inner, ConstrainedFlowAwareEngine):
        return inner.query_constrained(query, constraints)
    shim = ConstrainedFlowAwareEngine(
        inner.frn,
        oracle=inner.oracle,
        alpha=inner.alpha,
        eta_u=inner.eta_u,
        pruning=inner.pruning,
        max_candidates=inner.max_candidates,
        use_capacity=inner.use_capacity,
        w_c=inner.w_c,
        exhaustive=inner.exhaustive,
        min_candidates=inner.min_candidates,
    )
    return shim.query_constrained(query, constraints)


def skyline(
    source_of_frn,
    query: FSPQuery | int,
    *,
    target: int | None = None,
    timestep: int | None = None,
    max_distance: float = math.inf,
    max_labels_per_vertex: int = 64,
) -> SkylineResult:
    """The (distance, flow) Pareto frontier for one FSPQ triple.

    ``source_of_frn`` is an FRN or any :class:`Engine` (its FRN is used).
    """
    frn = source_of_frn
    if not isinstance(frn, FlowAwareRoadNetwork):
        frn = getattr(source_of_frn, "frn", None)
        if not isinstance(frn, FlowAwareRoadNetwork):
            raise QueryError(
                f"{type(source_of_frn).__name__} carries no FlowAwareRoadNetwork"
            )
    if isinstance(query, FSPQuery):
        src, dst, t = query.source, query.target, query.timestep
    else:
        warnings.warn(
            "passing positional source/target/timestep to repro.skyline() "
            "is deprecated; pass an FSPQuery (removed one release after 1.0)",
            DeprecationWarning,
            stacklevel=2,
        )
        if target is None or timestep is None:
            raise QueryError(
                "legacy repro.skyline(source, ...) calls need "
                "target= and timestep="
            )
        src, dst, t = int(query), int(target), int(timestep)
    return skyline_paths(
        frn,
        src,
        dst,
        t,
        max_distance=max_distance,
        max_labels_per_vertex=max_labels_per_vertex,
    )
