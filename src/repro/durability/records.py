"""WAL record payloads: typed envelopes and their JSON wire form.

Four record types cover everything the serving layer acknowledges:

``update``
    An accepted :class:`~repro.serving.updates.WeightUpdate` or
    :class:`~repro.serving.updates.FlowUpdate`, appended *before* the
    maintenance attempt (and therefore before the ack).
``outcome``
    What happened to a previously logged update (``ref`` is its WAL
    sequence number): applied with some strategy, or deferred to the next
    repair.  An ``update`` with no ``outcome`` in the log means the crash
    raced the attempt — recovery re-submits it through the full machinery.
``dlq``
    A dead-letter push that replay cannot re-derive (admission rejects,
    consolidation-failure notes).  ``update`` may be ``None``.
``consolidated``
    The overlay was folded into the stable index and the swap committed.
    Normally followed immediately by a checkpoint + WAL rotation; the
    marker only survives in a log whose checkpoint never completed, where
    it tells replay to re-run the fold.

Payloads are JSON objects — small, stdlib-only, self-describing; the
framing/checksum layer lives in :mod:`repro.durability.wal`.
"""

from __future__ import annotations

from repro.errors import RecoveryError
from repro.serving.updates import FlowUpdate, WeightUpdate

__all__ = [
    "consolidated_record",
    "decode_update",
    "dlq_record",
    "encode_update",
    "outcome_record",
    "update_record",
]


def encode_update(update: FlowUpdate | WeightUpdate) -> dict:
    if isinstance(update, WeightUpdate):
        return {
            "kind": "weight",
            "u": update.u,
            "v": update.v,
            "value": update.value,
            "timestamp": update.timestamp,
        }
    if isinstance(update, FlowUpdate):
        return {
            "kind": "flow",
            "vertex": update.vertex,
            "value": update.value,
            "timestamp": update.timestamp,
        }
    raise RecoveryError(
        f"cannot serialize {type(update).__name__} into the write-ahead log"
    )


def decode_update(payload: dict | None) -> FlowUpdate | WeightUpdate | None:
    if payload is None:
        return None
    kind = payload.get("kind")
    if kind == "weight":
        return WeightUpdate(
            int(payload["u"]),
            int(payload["v"]),
            float(payload["value"]),
            float(payload["timestamp"]),
        )
    if kind == "flow":
        return FlowUpdate(
            int(payload["vertex"]),
            float(payload["value"]),
            float(payload["timestamp"]),
        )
    raise RecoveryError(f"unknown update kind {kind!r} in the write-ahead log")


def update_record(update: FlowUpdate | WeightUpdate) -> dict:
    return {"type": "update", "update": encode_update(update)}


def outcome_record(
    ref: int, applied: bool, strategy: str | None, detail: str | None = None
) -> dict:
    record = {"type": "outcome", "ref": ref, "applied": applied,
              "strategy": strategy}
    if detail is not None:
        record["detail"] = detail
    return record


def dlq_record(
    update: FlowUpdate | WeightUpdate | None, reason: str, detail: str
) -> dict:
    return {
        "type": "dlq",
        "update": None if update is None else encode_update(update),
        "reason": reason,
        "detail": detail,
    }


def consolidated_record() -> dict:
    return {"type": "consolidated"}
