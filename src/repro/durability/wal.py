"""Append-only, checksummed write-ahead log for the serving layer.

File layout::

    FAHLWAL1                     8-byte magic
    <u32 length><u32 crc32><payload bytes>   repeated

Each payload is one compact-JSON record (:mod:`repro.durability.records`)
carrying its own monotonically increasing ``seq``.  The crc32 covers the
payload bytes, so a bit-flip, a truncated write, or a record overwritten
mid-append all fail verification.

Durability knob (``fsync``):

``"always"``
    flush + ``os.fsync`` after every append — nothing acknowledged is ever
    lost, at one fsync per update.
``"interval"``
    flush every append, fsync every ``fsync_every`` appends (and at every
    :meth:`sync`, which checkpoints call) — bounded loss window of at most
    ``fsync_every - 1`` acknowledged records on a *power* failure (a plain
    process crash loses nothing: the OS still holds the flushed pages).
``"never"``
    flush only — the benchmark floor and an explicit opt-out.

Torn-tail handling: :meth:`WriteAheadLog.open` scans the existing file
record by record and **truncates at the first corrupt or incomplete
record** instead of failing — a crash mid-append must cost the in-flight
(unacknowledged) record only, never the log.  The scan result is kept on
the instance (:attr:`recovered_records`, :attr:`torn_bytes`) so recovery
does not read the file twice.
"""

from __future__ import annotations

import json
import os
import struct
import zlib
from pathlib import Path

from repro import obs
from repro.durability.crashpoints import crash_point
from repro.errors import RecoveryError

__all__ = ["FSYNC_POLICIES", "WriteAheadLog", "scan_and_repair"]

_MAGIC = b"FAHLWAL1"
_HEADER = struct.Struct("<II")
#: sanity cap on a single record — anything bigger is framing corruption
_MAX_RECORD = 16 * 1024 * 1024

FSYNC_POLICIES = ("always", "interval", "never")


def scan_and_repair(path: str | Path) -> tuple[list[dict], int]:
    """Read every valid record of ``path``; truncate at the first bad one.

    Returns ``(records, torn_bytes)`` where ``torn_bytes`` counts what the
    repair cut off (0 for a clean log).  A missing file is created with
    just the magic header — an empty log — so a crash between manifest
    publication and WAL rotation (the log never existed) reads as "no
    tail to replay" instead of an error.
    """
    path = Path(path)
    if not path.exists():
        path.parent.mkdir(parents=True, exist_ok=True)
        with open(path, "wb") as handle:
            handle.write(_MAGIC)
        return [], 0
    with open(path, "rb") as handle:
        data = handle.read()
    if data[: len(_MAGIC)] != _MAGIC:
        raise RecoveryError(f"{path} is not a FAHL write-ahead log (bad magic)")
    records: list[dict] = []
    offset = len(_MAGIC)
    good_end = offset
    while offset + _HEADER.size <= len(data):
        length, crc = _HEADER.unpack_from(data, offset)
        start = offset + _HEADER.size
        end = start + length
        if length > _MAX_RECORD or end > len(data):
            break  # incomplete/insane tail
        payload = data[start:end]
        if zlib.crc32(payload) != crc:
            break  # bit-flipped or half-overwritten record
        try:
            record = json.loads(payload)
        except ValueError:
            break
        records.append(record)
        offset = good_end = end
    torn_bytes = len(data) - good_end
    if torn_bytes:
        with open(path, "r+b") as handle:
            handle.truncate(good_end)
    return records, torn_bytes


class WriteAheadLog:
    """One log file, opened for appending after a torn-tail repair scan."""

    def __init__(
        self,
        path: str | Path,
        fsync: str = "interval",
        fsync_every: int = 32,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise RecoveryError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if fsync_every < 1:
            raise RecoveryError(f"fsync_every must be >= 1, got {fsync_every}")
        self.path = Path(path)
        self.fsync = fsync
        self.fsync_every = int(fsync_every)
        self.recovered_records: list[dict] = []
        self.torn_bytes = 0
        self.next_seq = 0
        self.appended = 0
        self._since_sync = 0
        self._scan_and_repair()
        self._handle = open(self.path, "ab")

    # ------------------------------------------------------------------
    # torn-tail repair scan
    # ------------------------------------------------------------------
    def _scan_and_repair(self) -> None:
        """Load the surviving records and truncate any torn tail."""
        self.recovered_records, self.torn_bytes = scan_and_repair(self.path)
        if self.recovered_records:
            self.next_seq = (
                max(int(r.get("seq", -1)) for r in self.recovered_records) + 1
            )

    # ------------------------------------------------------------------
    # append path
    # ------------------------------------------------------------------
    def append(self, record: dict) -> int:
        """Frame, checksum and append one record; returns its ``seq``.

        The caller decides when the record is *acknowledged*; with
        ``fsync="always"`` the record is durable when this returns.
        """
        crash_point("wal:append-start")
        seq = self.next_seq
        record = dict(record)
        record["seq"] = seq
        payload = json.dumps(record, separators=(",", ":")).encode()
        header = _HEADER.pack(len(payload), zlib.crc32(payload))
        # two writes on purpose: the gap between them is the torn-record
        # window the repair scan must (and does) survive
        self._handle.write(header)
        crash_point("wal:append-header")
        self._handle.write(payload)
        crash_point("wal:append-payload")
        self.next_seq = seq + 1
        self.appended += 1
        self._since_sync += 1
        self._handle.flush()
        if self.fsync == "always" or (
            self.fsync == "interval" and self._since_sync >= self.fsync_every
        ):
            self._fsync()
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_durability_wal_appends_total",
                "write-ahead log records appended, by record type",
            ).inc(type=str(record.get("type", "unknown")))
            registry.counter(
                "repro_durability_wal_bytes_total",
                "write-ahead log bytes appended (framing included)",
            ).inc(len(header) + len(payload))
        return seq

    def _fsync(self) -> None:
        crash_point("wal:fsync")
        os.fsync(self._handle.fileno())
        self._since_sync = 0
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_durability_fsyncs_total", "write-ahead log fsync calls"
            ).inc()

    def sync(self) -> None:
        """Force outstanding records to disk (checkpoint barrier)."""
        if self.fsync == "never":
            self._handle.flush()
            return
        self._handle.flush()
        self._fsync()

    def close(self) -> None:
        if self._handle.closed:
            return
        self._handle.flush()
        if self.fsync != "never":
            os.fsync(self._handle.fileno())
        self._handle.close()

    def __len__(self) -> int:
        return len(self.recovered_records) + self.appended

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"WriteAheadLog({self.path.name}, fsync={self.fsync!r}, "
            f"recovered={len(self.recovered_records)}, appended={self.appended})"
        )
