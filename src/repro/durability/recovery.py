"""``recover(path)``: rebuild a serving engine from checkpoint + WAL tail.

The contract (tested by the crash matrix in ``tests/test_crash_matrix.py``):
after a kill at *any* instrumented point, ``recover`` returns an engine
whose answers are bit-identical to an index rebuilt from scratch on the
same acknowledged update history — zero acknowledged updates lost, the
dead-letter queue intact.

Strategy
--------
1. Walk checkpoint generations newest-first; use the first one whose
   manifest, file digests, archive checksum and index fingerprint all
   verify (:exc:`~repro.errors.IndexIntegrityError` and digest mismatches
   demote a generation, they never abort recovery while an older valid
   generation remains).
2. Restore the engine around the checkpoint: rewind the graph to the
   overlay's *stable* weights, re-absorb the overlay deltas, restore
   admission timestamps, deferred updates, pending flows and the DLQ.
3. Replay the WAL tail(s) — every log from the recovered generation up to
   the newest — through the ordinary maintenance/overlay machinery:
   ``outcome`` records route each logged update exactly where it went
   live (applied with its recorded strategy, or deferred); updates whose
   outcome never reached the log (the crash raced the ack) are re-run
   through the full :meth:`~repro.serving.engine.ResilientEngine.submit`
   machinery; ``dlq`` records re-materialise quarantined letters.
4. If *no* checkpoint generation survives but the complete log history
   does (typically: the engine crashed before its first checkpoint),
   rebuild the index cold from the caller's FRN and replay everything.
   Otherwise raise :class:`~repro.errors.RecoveryError` — losing
   acknowledged updates silently is the one thing this module must never
   do.
"""

from __future__ import annotations

import json
import time
from collections import Counter
from dataclasses import dataclass
from pathlib import Path

from repro import obs
from repro.obs import flight as obs_flight
from repro.durability.crashpoints import crash_point
from repro.durability.manager import MANIFEST, Durability, _file_digest
from repro.durability.records import decode_update
from repro.durability.wal import scan_and_repair
from repro.errors import (
    IndexIntegrityError,
    MaintenanceError,
    RecoveryError,
    ReproError,
)
from repro.graph.frn import FlowAwareRoadNetwork
from repro.labeling.serialize import load_index
from repro.serving.engine import DEGRADED, ResilientEngine
from repro.serving.updates import DeadLetter

__all__ = ["RecoveryReport", "recover"]


@dataclass(frozen=True)
class RecoveryReport:
    """What one :func:`recover` run did, for operators and tests."""

    #: checkpoint generation restored from (``None`` = cold rebuild)
    generation: int | None
    #: newer generations skipped because they failed verification
    fallback_generations: int
    #: the index was rebuilt from the FRN instead of a checkpoint
    cold_rebuild: bool
    #: logged updates routed through their recorded outcome
    replayed_updates: int
    #: logged updates whose outcome never hit the log (re-submitted whole)
    resubmitted_updates: int
    #: dead-letter records re-materialised from the log
    replayed_dead_letters: int
    #: consolidation markers re-run
    replayed_consolidations: int
    #: bytes cut off torn WAL tails during the repair scans
    torn_bytes: int
    #: total WAL records read (all replayed generations)
    wal_records: int
    duration_seconds: float
    #: flight-recorder tail captured when the report was cut — the span
    #: events and slow-query digests leading into/through the recovery,
    #: for post-mortem without a live tracer attached
    flight: tuple = ()


def _verify_generation(
    durability: Durability, generation: int
) -> tuple[object, dict]:
    """Load one checkpoint generation, verifying every integrity layer.

    Raises :class:`IndexIntegrityError` (or any :class:`ReproError`) on
    the first problem; the caller treats that as "try the next-older
    generation".
    """
    directory = durability.checkpoint_dir(generation)
    manifest_path = directory / MANIFEST
    try:
        manifest = json.loads(manifest_path.read_bytes())
    except (OSError, ValueError) as exc:
        raise IndexIntegrityError(manifest_path, f"unreadable manifest: {exc}")
    for name, expected in manifest.get("files", {}).items():
        path = directory / name
        if not path.exists():
            raise IndexIntegrityError(path, "file named in manifest is missing")
        actual = _file_digest(path)
        if actual != expected:
            raise IndexIntegrityError(
                path, "file digest does not match its manifest entry",
                expected_checksum=expected, actual_checksum=actual,
            )
    index = load_index(directory / "index.npz")
    state = json.loads((directory / "state.json").read_bytes())
    fingerprint = index.checksum()
    if state.get("index_checksum") != fingerprint:
        raise IndexIntegrityError(
            directory / "state.json",
            "index fingerprint does not match the checkpointed state",
            expected_checksum=state.get("index_checksum"),
            actual_checksum=fingerprint,
        )
    return index, state


def _restore_engine_state(engine: ResilientEngine, state: dict) -> None:
    """Install the checkpointed wrapper state on a fresh engine."""
    engine._last_ts = {tuple(key): ts for key, ts in state["last_ts"]}
    engine._deferred = [decode_update(item) for item in state["deferred"]]
    engine._pending_flows = {
        int(vertex): value for vertex, value in state["pending_flows"].items()
    }
    letters = state["dead_letters"]
    for item in letters["letters"]:
        engine.dead_letters._letters.append(
            DeadLetter(
                update=decode_update(item["update"]),
                reason=item["reason"],
                detail=item["detail"],
                sequence=int(item["sequence"]),
            )
        )
    engine.dead_letters.total_seen = int(letters["total_seen"])
    engine.dead_letters.by_reason = Counter(letters["by_reason"])
    engine.dead_letters._sequence = int(letters["total_seen"])
    engine.metrics = Counter(state["metrics"])
    engine.state = state["state"]


def _replay_outcome(engine: ResilientEngine, update, record: dict) -> None:
    """Route one logged update exactly where its recorded outcome went."""
    engine._last_ts[update.key] = update.timestamp
    if not record.get("applied", False):
        # live, every maintenance attempt failed and the update was parked
        engine._deferred.append(update)
        engine._set_state(DEGRADED)
        engine.metrics["updates_deferred"] += 1
        engine.dead_letters.push(
            update,
            "maintenance-failed",
            record.get("detail") or "deferred update recovered from the WAL",
        )
        return
    strategy = record.get("strategy")
    if strategy in ("overlay", "overlay-queued"):
        engine._submit_overlay(update)
        return
    try:
        engine._apply(update, strategy or "ilu")
    except MaintenanceError as exc:
        # it applied live but not here (should not happen — replay is
        # deterministic); degrade honestly rather than serve wrong answers
        engine._defer(update, attempts=1, error=exc)
        return
    engine.metrics["updates_accepted"] += 1
    engine.invalidate()


def _sniff_update_mode(durability: Durability) -> str:
    """Infer the crashed engine's update mode from its WAL outcomes.

    Only needed on a cold rebuild: the mode normally rides in checkpoint
    state, but an engine that crashed before its first checkpoint completed
    never persisted it.  Any overlay strategy in the log is proof the
    engine was running in overlay mode; a log with none replays
    identically under inline.
    """
    for generation in range(durability.generation + 1):
        if generation == durability.generation:
            records = durability.wal.recovered_records
        else:
            records, _ = scan_and_repair(durability.wal_path(generation))
        for record in records:
            strategy = record.get("strategy")
            if strategy and strategy.startswith("overlay"):
                return "overlay"
    return "inline"


def recover(
    path: str | Path,
    frn: FlowAwareRoadNetwork,
    *,
    fsync: str = "interval",
    fsync_every: int = 32,
    auto_checkpoint: int | None = None,
    retain: int = 2,
    checkpoint_on_recover: bool = True,
    **engine_kwargs,
) -> ResilientEngine:
    """Restore a :class:`ResilientEngine` from a durability directory.

    Parameters
    ----------
    path:
        The directory a :class:`~repro.durability.Durability` manager was
        (or will be) rooted at.
    frn:
        A flow-aware road network built the same way as the crashed
        engine's (same dataset, scale and seed).  Recovery serves from the
        checkpointed *graph* (weights included) but borrows the FRN's flow
        series and lanes, which the checkpoint does not store.
    checkpoint_on_recover:
        Write a fresh checkpoint once replay finishes (default), so a
        second crash recovers fast and the replayed log is retired.
    engine_kwargs:
        Forwarded to :class:`ResilientEngine` (``alpha``, ``kernel``,
        ``time_budget``, ...).  ``update_mode`` is taken from the
        checkpoint when one is restored.

    Returns the recovered engine with a fresh durability manager attached
    and the :class:`RecoveryReport` available as ``engine.last_recovery``.
    """
    start = time.perf_counter()
    obs_flight.note("durability.recover", path=str(path))
    if not Path(path).is_dir():
        # a Durability manager always creates its root eagerly, so a
        # missing directory is an operator typo, not an empty world
        raise RecoveryError(f"no durability directory at {path}")
    durability = Durability(
        path, fsync=fsync, fsync_every=fsync_every,
        auto_checkpoint=auto_checkpoint, retain=retain,
    )
    torn_bytes = durability.wal.torn_bytes

    index = None
    state: dict | None = None
    used_generation: int | None = None
    fallbacks = 0
    for generation in durability.list_checkpoints():
        try:
            index, state = _verify_generation(durability, generation)
        except ReproError:
            fallbacks += 1
            continue
        used_generation = generation
        break

    if used_generation is not None:
        assert index is not None and state is not None
        graph = index.graph
        if graph.num_vertices != frn.num_vertices:
            raise RecoveryError(
                f"checkpoint graph has {graph.num_vertices} vertices but the "
                f"supplied FRN has {frn.num_vertices} — recover() needs the "
                "FRN the engine was built from"
            )
        # index.npz stores the *live* graph; the labels assume the stable
        # weights.  Rewind, then re-absorb so stable ⊕ overlay is rebuilt
        # exactly as it was.
        overlay_entries = state.get("overlay", [])
        for u, v, stable, _current in overlay_entries:
            graph.set_weight(int(u), int(v), float(stable))
        recovered_frn = FlowAwareRoadNetwork(
            graph, frn.flow, frn.predicted_flow, frn.lanes
        )
        engine_kwargs = dict(engine_kwargs)
        engine_kwargs["update_mode"] = state["update_mode"]
        engine = ResilientEngine(
            recovered_frn, index=index, durability=durability, **engine_kwargs
        )
        engine._replaying = True
        for u, v, _stable, current in overlay_entries:
            engine.overlay.absorb(int(u), int(v), float(current))
        _restore_engine_state(engine, state)
        replay_generations = range(used_generation, durability.generation + 1)
    else:
        # no checkpoint survived: cold rebuild is exact only with the
        # complete log history (nothing pruned)
        missing = [
            g for g in range(durability.generation + 1)
            if not durability.wal_path(g).exists()
        ]
        if durability.list_checkpoints() or missing:
            durability.close()
            raise RecoveryError(
                f"no checkpoint generation under {path} verifies and the WAL "
                f"history is incomplete (missing generations {missing}) — "
                "acknowledged updates would be lost"
            )
        engine_kwargs = dict(engine_kwargs)
        engine_kwargs.setdefault("update_mode", _sniff_update_mode(durability))
        engine = ResilientEngine(frn, durability=durability, **engine_kwargs)
        engine._replaying = True
        replay_generations = range(durability.generation + 1)

    # ------------------------------------------------------------------
    # WAL tail replay
    # ------------------------------------------------------------------
    replayed = resubmitted = dlq_replayed = consolidations = 0
    wal_records = 0
    for generation in replay_generations:
        if generation == durability.generation:
            records = durability.wal.recovered_records
        else:
            records, torn = scan_and_repair(durability.wal_path(generation))
            torn_bytes += torn
        wal_records += len(records)
        pending: dict[int, object] = {}
        for record in records:
            crash_point("recover:mid-replay")
            kind = record.get("type")
            if kind == "update":
                pending[int(record["seq"])] = decode_update(record["update"])
            elif kind == "outcome":
                update = pending.pop(int(record["ref"]), None)
                if update is not None:
                    _replay_outcome(engine, update, record)
                    replayed += 1
            elif kind == "dlq":
                update = decode_update(record["update"])
                engine.dead_letters.push(
                    update, record["reason"], record["detail"]
                )
                # keep the lifetime counters honest: a quarantined update
                # was an admission reject, an update-less letter a
                # consolidation-failure note
                if update is not None:
                    engine.metrics["updates_rejected"] += 1
                else:
                    engine.metrics["consolidation_failures"] += 1
                dlq_replayed += 1
            elif kind == "consolidated":
                engine.consolidate()
                consolidations += 1
        # updates whose ack raced the crash: run the full machinery
        for update in pending.values():
            engine.submit(update)
            resubmitted += 1

    engine._replaying = False
    engine.invalidate()
    engine._sync_depth_gauges()
    if checkpoint_on_recover:
        durability.checkpoint(engine)

    duration = time.perf_counter() - start
    report = RecoveryReport(
        generation=used_generation,
        fallback_generations=fallbacks,
        cold_rebuild=used_generation is None,
        replayed_updates=replayed,
        resubmitted_updates=resubmitted,
        replayed_dead_letters=dlq_replayed,
        replayed_consolidations=consolidations,
        torn_bytes=torn_bytes,
        wal_records=wal_records,
        duration_seconds=duration,
        # the note above plus everything recorded since — replayed
        # dead-letter pushes, slow queries, span events — ends up here
        flight=obs_flight.dump(last=32),
    )
    engine.last_recovery = report
    registry = obs.get_registry()
    if registry.enabled:
        registry.counter(
            "repro_durability_recoveries_total",
            "recover() runs by restore source",
            source="cold" if report.cold_rebuild else "checkpoint",
        ).inc()
        registry.counter(
            "repro_durability_replayed_total",
            "WAL records re-applied during recovery, by kind",
        ).inc(replayed + resubmitted, kind="update")
        registry.counter(
            "repro_durability_replayed_total",
            "WAL records re-applied during recovery, by kind",
        ).inc(dlq_replayed, kind="dlq")
        registry.histogram(
            "repro_durability_recovery_seconds",
            "wall time of one recover() run",
        ).observe(duration)
    return engine
