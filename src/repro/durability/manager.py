"""The durability manager: one WAL + checkpoint generations per engine.

Directory layout (one directory per :class:`~repro.serving.engine.ResilientEngine`,
so a sharded deployment gives every shard its own)::

    <root>/
      wal-00000000.log      generation-0 log (before any checkpoint)
      ckpt-00000001/        checkpoint generation 1
        index.npz           the serving index (.npz format v2, checksummed)
        state.json          overlay / DLQ / deferred / timestamp state
        MANIFEST.json       written last, atomically (tmp + rename)
      wal-00000001.log      records accepted *after* checkpoint 1
      ...

A checkpoint is **valid** iff its ``MANIFEST.json`` exists and every file
digest in it matches — the manifest is renamed into place only after
``index.npz`` and ``state.json`` are fsynced, so a kill anywhere inside
:meth:`Durability.checkpoint` leaves either a complete generation or an
ignorable partial one, never a half-trusted one.  The WAL is rotated in
the same step: records accepted after generation ``g`` land in
``wal-g.log``, which is exactly the tail :func:`repro.durability.recover`
replays on top of checkpoint ``g``.  The previous ``retain`` generations
(checkpoint + log) are kept as fallbacks; older ones are pruned.
"""

from __future__ import annotations

import hashlib
import json
import os
import shutil
import time
from pathlib import Path

from repro import obs
from repro.durability.crashpoints import crash_point
from repro.durability.records import (
    consolidated_record,
    dlq_record,
    encode_update,
    outcome_record,
    update_record,
)
from repro.durability.wal import FSYNC_POLICIES, WriteAheadLog
from repro.errors import RecoveryError

__all__ = ["Durability"]

_STATE_FORMAT = 1
MANIFEST = "MANIFEST.json"


def _file_digest(path: Path) -> str:
    h = hashlib.blake2b(digest_size=16)
    with open(path, "rb") as handle:
        for chunk in iter(lambda: handle.read(1 << 20), b""):
            h.update(chunk)
    return h.hexdigest()


def _fsync_path(path: Path) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def engine_state(engine) -> dict:
    """Everything a :class:`ResilientEngine` holds outside its index.

    The index itself (labels + graph) goes to ``index.npz``; this JSON
    document captures the serving wrapper: admission timestamps, deferred
    updates, the dead-letter queue, pending flows and — crucially — the
    overlay's ``(stable, current)`` weight pairs, because ``index.npz``
    stores the *live* graph weights while the labels assume the *stable*
    ones.  Recovery rewinds the graph to stable and re-absorbs.
    """
    overlay = []
    if engine.overlay is not None:
        overlay = [
            [e.u, e.v, e.stable, e.current]
            for e in engine.overlay.edges.values()
        ]
    return {
        "format": _STATE_FORMAT,
        "update_mode": engine.update_mode,
        "state": engine.state,
        "index_checksum": engine.index.checksum(),
        "last_ts": [[list(key), ts] for key, ts in engine._last_ts.items()],
        "deferred": [encode_update(u) for u in engine._deferred],
        "pending_flows": {
            str(vertex): value
            for vertex, value in engine._pending_flows.items()
        },
        "overlay": overlay,
        "dead_letters": {
            "capacity": engine.dead_letters._letters.maxlen,
            "total_seen": engine.dead_letters.total_seen,
            "by_reason": dict(engine.dead_letters.by_reason),
            "letters": [
                {
                    "update": (
                        None if letter.update is None
                        else encode_update(letter.update)
                    ),
                    "reason": letter.reason,
                    "detail": letter.detail,
                    "sequence": letter.sequence,
                }
                for letter in engine.dead_letters
            ],
        },
        "metrics": dict(engine.metrics),
    }


class Durability:
    """WAL + checkpoint lifecycle for one engine directory.

    Parameters
    ----------
    root:
        Directory owning this engine's log and checkpoint generations
        (created if missing).
    fsync:
        ``"always"`` | ``"interval"`` | ``"never"`` — see
        :mod:`repro.durability.wal`.
    fsync_every:
        Interval-policy fsync cadence, in appended records.
    auto_checkpoint:
        When set, :meth:`maybe_checkpoint` triggers a checkpoint every
        this-many logged updates (consolidations and :meth:`checkpoint`
        calls reset the counter).  ``None`` disables the cadence —
        checkpoints then happen only at consolidations/repairs.
    retain:
        Checkpoint generations (and their WAL tails) kept as fallbacks.
    """

    def __init__(
        self,
        root: str | Path,
        fsync: str = "interval",
        fsync_every: int = 32,
        auto_checkpoint: int | None = None,
        retain: int = 2,
    ) -> None:
        if fsync not in FSYNC_POLICIES:
            raise RecoveryError(
                f"fsync policy must be one of {FSYNC_POLICIES}, got {fsync!r}"
            )
        if auto_checkpoint is not None and auto_checkpoint < 1:
            raise RecoveryError(
                f"auto_checkpoint must be >= 1 or None, got {auto_checkpoint}"
            )
        if retain < 1:
            raise RecoveryError(f"retain must be >= 1, got {retain}")
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self.fsync = fsync
        self.fsync_every = int(fsync_every)
        self.auto_checkpoint = auto_checkpoint
        self.retain = int(retain)
        self.generation = self._discover_generation()
        self.updates_since_checkpoint = 0
        self.wal = WriteAheadLog(
            self.wal_path(self.generation), fsync=fsync, fsync_every=fsync_every
        )

    # ------------------------------------------------------------------
    # layout
    # ------------------------------------------------------------------
    def wal_path(self, generation: int) -> Path:
        return self.root / f"wal-{generation:08d}.log"

    def checkpoint_dir(self, generation: int) -> Path:
        return self.root / f"ckpt-{generation:08d}"

    def _discover_generation(self) -> int:
        """Newest generation with *any* on-disk trace (manifest or log)."""
        newest = 0
        for path in self.root.iterdir():
            name = path.name
            if name.startswith("ckpt-") and (path / MANIFEST).exists():
                newest = max(newest, int(name[len("ckpt-"):]))
            elif name.startswith("wal-") and name.endswith(".log"):
                newest = max(newest, int(name[len("wal-"):-len(".log")]))
        return newest

    def list_checkpoints(self) -> list[int]:
        """Manifest-bearing generations, newest first."""
        found = [
            int(path.name[len("ckpt-"):])
            for path in self.root.iterdir()
            if path.name.startswith("ckpt-") and (path / MANIFEST).exists()
        ]
        return sorted(found, reverse=True)

    # ------------------------------------------------------------------
    # engine-facing logging (all called before the ack they protect)
    # ------------------------------------------------------------------
    def log_update(self, update) -> int:
        seq = self.wal.append(update_record(update))
        self.updates_since_checkpoint += 1
        self._sync_lag_gauge()
        return seq

    def log_outcome(
        self, ref: int, applied: bool, strategy: str | None,
        detail: str | None = None,
    ) -> int:
        return self.wal.append(outcome_record(ref, applied, strategy, detail))

    def log_dlq(self, update, reason: str, detail: str) -> int:
        return self.wal.append(dlq_record(update, reason, detail))

    def log_consolidated(self) -> int:
        return self.wal.append(consolidated_record())

    def should_checkpoint(self) -> bool:
        return (
            self.auto_checkpoint is not None
            and self.updates_since_checkpoint >= self.auto_checkpoint
        )

    def _sync_lag_gauge(self) -> None:
        registry = obs.get_registry()
        if registry.enabled:
            registry.gauge(
                "repro_durability_wal_lag",
                "acknowledged updates not yet covered by a checkpoint",
            ).set(self.updates_since_checkpoint)

    # ------------------------------------------------------------------
    # checkpointing
    # ------------------------------------------------------------------
    def checkpoint(self, engine) -> int:
        """Persist ``engine`` as a new generation, then rotate the WAL.

        Ordering is the whole design: every file of the generation is
        written and fsynced *before* the manifest rename publishes it,
        and the manifest is durable *before* the old log stops being the
        current one.  A kill at any point leaves the previous generation
        plus its complete log — nothing acknowledged is ever stranded.
        """
        from repro.labeling.serialize import save_index

        start = time.perf_counter()
        self.wal.sync()  # barrier: the log covers everything acked so far
        generation = self.generation + 1
        directory = self.checkpoint_dir(generation)
        crash_point("checkpoint:start")
        if directory.exists():
            # debris from a previously killed attempt at this generation
            shutil.rmtree(directory)
        directory.mkdir(parents=True)
        index_path = directory / "index.npz"
        save_index(engine.index, index_path)
        _fsync_path(index_path)
        crash_point("checkpoint:index-written")
        state_path = directory / "state.json"
        state_bytes = json.dumps(engine_state(engine), indent=1).encode()
        with open(state_path, "wb") as handle:
            handle.write(state_bytes)
            handle.flush()
            os.fsync(handle.fileno())
        crash_point("checkpoint:state-written")
        manifest = {
            "format": _STATE_FORMAT,
            "generation": generation,
            "files": {
                "index.npz": _file_digest(index_path),
                "state.json": _file_digest(state_path),
            },
            "wal": self.wal_path(generation).name,
        }
        tmp_path = directory / (MANIFEST + ".tmp")
        with open(tmp_path, "wb") as handle:
            handle.write(json.dumps(manifest, indent=1).encode())
            handle.flush()
            os.fsync(handle.fileno())
        crash_point("checkpoint:manifest")
        os.replace(tmp_path, directory / MANIFEST)
        _fsync_path(directory)
        crash_point("checkpoint:rotate")
        old_wal = self.wal
        self.wal = WriteAheadLog(
            self.wal_path(generation), fsync=self.fsync,
            fsync_every=self.fsync_every,
        )
        old_wal.close()
        self.generation = generation
        self.updates_since_checkpoint = 0
        self._prune()
        self._sync_lag_gauge()
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_durability_checkpoints_total",
                "checkpoint generations written",
            ).inc()
            registry.histogram(
                "repro_durability_checkpoint_seconds",
                "wall time to write one checkpoint generation",
            ).observe(time.perf_counter() - start)
        return generation

    def maybe_checkpoint(self, engine) -> int | None:
        """Run the auto-cadence checkpoint when it is due."""
        if self.should_checkpoint():
            return self.checkpoint(engine)
        return None

    def _prune(self) -> None:
        """Drop generations older than the ``retain`` fallback window."""
        floor = self.generation - self.retain + 1
        for path in list(self.root.iterdir()):
            name = path.name
            if name.startswith("ckpt-"):
                generation = int(name[len("ckpt-"):])
                if generation < floor:
                    shutil.rmtree(path, ignore_errors=True)
            elif name.startswith("wal-") and name.endswith(".log"):
                generation = int(name[len("wal-"):-len(".log")])
                if generation < floor:
                    path.unlink(missing_ok=True)

    # ------------------------------------------------------------------
    def close(self) -> None:
        self.wal.close()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Durability({self.root}, generation={self.generation}, "
            f"fsync={self.fsync!r}, lag={self.updates_since_checkpoint})"
        )
