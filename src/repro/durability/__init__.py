"""Durable crash recovery for the serving stack.

Three cooperating pieces:

:mod:`repro.durability.wal`
    Append-only, checksummed write-ahead log with torn-tail repair and an
    fsync policy knob (``always`` | ``interval`` | ``never``).
:mod:`repro.durability.manager`
    :class:`Durability` — one WAL plus atomically-published checkpoint
    generations per engine directory; rotation retires replayed logs.
:mod:`repro.durability.recovery`
    :func:`recover` — newest valid checkpoint + WAL-tail replay back into
    a live :class:`~repro.serving.engine.ResilientEngine`, falling back
    generation by generation when a checkpoint fails verification.

Crash-point instrumentation (:mod:`repro.durability.crashpoints`) lets the
test suite kill the process model at every append/fsync/checkpoint/rotate
boundary and prove recovery loses nothing that was acknowledged.
"""

from repro.durability.crashpoints import (
    CRASH_POINTS,
    SimulatedCrash,
    crash_point,
    set_crash_hook,
)
from repro.durability.manager import Durability, engine_state
from repro.durability.records import decode_update, encode_update
from repro.durability.recovery import RecoveryReport, recover
from repro.durability.wal import FSYNC_POLICIES, WriteAheadLog, scan_and_repair

__all__ = [
    "CRASH_POINTS",
    "Durability",
    "FSYNC_POLICIES",
    "RecoveryReport",
    "SimulatedCrash",
    "WriteAheadLog",
    "crash_point",
    "decode_update",
    "encode_update",
    "engine_state",
    "recover",
    "scan_and_repair",
    "set_crash_hook",
]
