"""Named crash points inside the durability layer (chaos test seam).

Durable recovery is only trustworthy if it survives a kill at *every*
point where disk state is mid-mutation.  Each such point in the WAL
append path, the checkpoint writer and the recovery replay loop calls
:func:`crash_point` with a stable name; the chaos harness
(:class:`repro.testing.faults.CrashInjector`) arms a hook that raises
:class:`SimulatedCrash` there, modelling a SIGKILL whose only surviving
evidence is whatever already reached the filesystem.

``SimulatedCrash`` derives from :class:`BaseException` on purpose: a real
power cut cannot be caught by an ``except Exception`` recovery path, so
the simulated one must not be either.

Nothing here is used by production code beyond the (default ``None``)
hook indirection — the same pattern as
:data:`repro.core.maintenance.FAULT_POINTS`.
"""

from __future__ import annotations

from typing import Callable

__all__ = ["CRASH_POINTS", "SimulatedCrash", "crash_point", "set_crash_hook"]

#: every instrumented kill point, in rough execution order
CRASH_POINTS: tuple[str, ...] = (
    # WAL append path (submit() calls these before acknowledging)
    "wal:append-start",     # nothing written yet — the update was never logged
    "wal:append-header",    # length+crc written, payload missing: a torn record
    "wal:append-payload",   # full record buffered, not yet flushed to the OS
    "wal:fsync",            # flushed, killed before fsync returned
    # checkpoint writer (consolidate()/auto-cadence call these)
    "checkpoint:start",           # checkpoint directory created, nothing in it
    "checkpoint:index-written",   # index.npz durable, state.json missing
    "checkpoint:state-written",   # state.json durable, manifest missing
    "checkpoint:manifest",        # manifest tmp written, not yet renamed
    "checkpoint:rotate",          # manifest durable, WAL not rotated/pruned
    # recovery itself (a crash during recovery must stay recoverable)
    "recover:mid-replay",
)


class SimulatedCrash(BaseException):
    """The process died here.  Deliberately *not* an :class:`Exception`."""


_hook: Callable[[str], None] | None = None


def set_crash_hook(hook: Callable[[str], None] | None) -> None:
    """Install (or clear) the process-wide crash hook (tests only)."""
    global _hook
    _hook = hook


def crash_point(name: str) -> None:
    """Announce a named kill point; the armed hook may raise here."""
    if _hook is not None:
        _hook(name)
