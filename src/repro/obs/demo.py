"""A small fully-instrumented workload exercising every telemetry layer.

``run_demo`` builds a FAHL index over a synthetic grid FRN (build-phase
metrics), answers an FSPQ workload through both the serving engine and the
batch path (query + batch metrics, including the Lemma-4 pruning
counters), streams accepted/corrupt/failing updates through the resilient
serving layer (maintenance + admission + rollback metrics) and returns a
tiny summary.  The CLI (``fahl-repro obs report``) and the CI telemetry
job both run exactly this, so the exported Prometheus text always covers
the full metric catalogue of ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import math

from repro.core.batch import BatchReport, batch_query
from repro.core.fspq import FSPQuery
from repro.flow.synthetic import generate_flow_series
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import grid_network
from repro.serving.engine import ResilientEngine
from repro.serving.updates import FlowUpdate, WeightUpdate

__all__ = ["run_demo"]


def run_demo(
    side: int = 6,
    queries: int = 12,
    updates: int = 6,
    seed: int = 0,
    workers: int = 1,
) -> dict:
    """Run the instrumented demo workload; returns a small result summary.

    Telemetry lands on the *active* registry/tracer — callers enable or
    swap them first (the CLI installs a fresh enabled registry).
    """
    from repro.testing.faults import FaultInjector  # deterministic rollback demo

    graph = grid_network(side, side, seed=seed)
    flow = generate_flow_series(graph, days=1, seed=seed + 1)
    frn = FlowAwareRoadNetwork(graph, flow)
    serving = ResilientEngine(
        frn, pruning="lemma4", max_retries=1, backoff=0.0, audit_samples=8
    )
    n = frn.num_vertices
    t_max = frn.num_timesteps

    # -- query workload: serving path + batch path ----------------------
    workload = [
        FSPQuery((3 * i) % n, (7 * i + 5) % n, i % t_max)
        for i in range(queries)
        if (3 * i) % n != (7 * i + 5) % n
    ]
    for query in workload[: max(1, len(workload) // 3)]:
        serving.query(query)
    report = BatchReport()
    batch_query(serving._engine, workload, workers=workers, report=report)

    # -- maintenance: ILU (weight), ISU/GSU (flow), one rollback --------
    edges = list(graph.edges())[: max(1, updates // 2)]
    for i, (u, v, w) in enumerate(edges):
        serving.submit(WeightUpdate(u, v, max(1.0, w * (1.25 + 0.1 * i))))
    for i in range(max(1, updates - len(edges))):
        vertex = (11 * i + 1) % n
        serving.submit(FlowUpdate(vertex, 50.0 + 10.0 * i, timestamp=float(i)))
    # a transient maintenance fault: first attempt rolls back (counted),
    # the retry applies — the demo's rollback/retry metrics are real.
    with FaultInjector() as injector:
        injector.fail_at("flow:flow-set", times=1)
        serving.submit(FlowUpdate(0, 123.0, timestamp=99.0))

    # -- admission control: corrupt updates are quarantined -------------
    serving.submit(FlowUpdate(1, math.nan, timestamp=100.0))
    serving.submit(FlowUpdate(n + 5, 1.0, timestamp=100.0))
    serving.submit(WeightUpdate(0, n + 5, 1.0, timestamp=100.0))

    serving.audit()
    status = serving.status()
    return {
        "vertices": n,
        "queries": len(workload),
        "batch_mode": report.mode,
        "state": status.state,
        "dead_letters": status.dead_letters_queued,
        "accepted_updates": status.metrics.get("updates_accepted", 0),
    }
