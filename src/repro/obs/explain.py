"""Structured query EXPLAIN: what one FSPQ evaluation actually did.

:class:`QueryExplain` is the per-query breakdown production tuning needs
(PLL/road-network engineering folklore: most wins come from per-query
label/pruning profiles, not aggregates): which kernel answered, how many
hub-label entries were touched, how the Lemma-4/Eq.-1 bounds behaved,
whether the answer came from the stable index or the delta overlay, and
— through the serving layers — route, cache, and boundary provenance.

Engines produce it (``FlowAwareEngine.explain``, ``ResilientEngine
.explain``, ``ShardedGateway.explain``); the ``fahl-repro explain`` CLI
renders it for humans or as JSON.  The contract tested by the property
suite: ``explain(u, v).distance`` is **bit-identical** to
``query(u, v).distance`` — EXPLAIN runs the real evaluation path under a
private capture registry, it never re-implements it.
"""

from __future__ import annotations

from dataclasses import asdict, dataclass, field

__all__ = ["QueryExplain"]


@dataclass(frozen=True)
class QueryExplain:
    """Structured breakdown of one FSPQ evaluation."""

    # the query and its answer (bit-identical to ``query()``)
    source: int
    target: int
    timestep: int
    distance: float
    flow: float
    score: float
    shortest_distance: float
    path: tuple[int, ...]

    # evaluation shape
    engine: str  # "flow" | "resilient" | "gateway"
    kernel: str  # "flat" | "scalar"
    pruning: str
    num_candidates: int
    num_pruned: int
    bound_evals: int  # Lemma-4/Eq.-1 bound evaluations (0 when pruning off)
    bound_prunes: int
    truncated: bool
    early_stopped: bool

    # label work (hierarchy oracles only; 0/None otherwise)
    hub_cutset_size: int | None = None
    label_entries_source: int | None = None
    label_entries_target: int | None = None
    labels_scanned: int = 0  # label entries read (scalar probes + arena gathers)

    # flat-kernel work counters (0 on the scalar path)
    spur_searches: int = 0
    spur_memo_hits: int = 0
    spur_skips: int = 0
    heuristic_builds: int = 0

    # provenance
    provenance: str = "stable"  # "stable" | "overlay"
    overlay_edges: int = 0
    degraded: bool = False
    answer_source: str = "index"  # index | fallback | shard | boundary

    # gateway provenance (None outside a sharded deployment)
    route: str | None = None  # shard | boundary | fallback
    shards: tuple[int, int] | None = None
    cache_hit: bool | None = None
    cache_epochs: tuple[int, ...] | None = None
    boundary_vertices: int | None = None  # boundary-table crossing width

    # timings and trace identity
    stage_seconds: dict = field(default_factory=dict)
    trace_id: str | None = None
    request_id: str | None = None

    # ------------------------------------------------------------------
    def to_dict(self) -> dict:
        """JSON-able dict (tuples become lists; reversed by from_dict)."""
        out = asdict(self)
        out["path"] = list(self.path)
        if self.shards is not None:
            out["shards"] = list(self.shards)
        if self.cache_epochs is not None:
            out["cache_epochs"] = list(self.cache_epochs)
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "QueryExplain":
        """Inverse of :meth:`to_dict` (accepts ``json.loads`` output)."""
        data = dict(data)
        data["path"] = tuple(data["path"])
        if data.get("shards") is not None:
            data["shards"] = tuple(data["shards"])
        if data.get("cache_epochs") is not None:
            data["cache_epochs"] = tuple(data["cache_epochs"])
        return cls(**data)

    # ------------------------------------------------------------------
    def render(self) -> str:
        """Human-readable multi-line rendering for the CLI."""
        lines = [
            f"EXPLAIN query ({self.source} -> {self.target}) @ t={self.timestep}",
            f"  engine: {self.engine}  kernel: {self.kernel}  "
            f"pruning: {self.pruning}",
            f"  answer: distance={self.distance:.6g} flow={self.flow:.6g} "
            f"score={self.score:.6g}",
            f"  spdis: {self.shortest_distance:.6g}  "
            f"path: {len(self.path)} vertices",
        ]
        lines.append(
            f"  candidates: {self.num_candidates} enumerated, "
            f"{self.num_pruned} pruned"
            + (" (truncated)" if self.truncated else "")
            + (" (early stop)" if self.early_stopped else "")
        )
        if self.bound_evals:
            lines.append(
                f"  bounds: {self.bound_evals} evaluations, "
                f"{self.bound_prunes} prunes"
            )
        if self.hub_cutset_size is not None:
            lines.append(
                f"  labels: hub cut-set {self.hub_cutset_size}, "
                f"|L(s)|={self.label_entries_source} "
                f"|L(t)|={self.label_entries_target}, "
                f"{self.labels_scanned} entries scanned"
            )
        if self.kernel == "flat":
            lines.append(
                f"  flat kernel: {self.spur_searches} spur searches "
                f"({self.spur_memo_hits} memo hits, {self.spur_skips} "
                f"skipped), {self.heuristic_builds} heuristic builds"
            )
        provenance = self.provenance
        if self.overlay_edges:
            provenance += f" (+{self.overlay_edges} overlay edges)"
        lines.append(f"  provenance: {provenance}  source: {self.answer_source}")
        if self.degraded:
            lines.append("  DEGRADED: answered by the fallback engine")
        if self.route is not None:
            gateway = f"  gateway: route={self.route}"
            if self.shards is not None:
                gateway += f" shards={self.shards[0]}->{self.shards[1]}"
            if self.cache_hit is not None:
                gateway += f" cache={'hit' if self.cache_hit else 'miss'}"
            if self.cache_epochs is not None:
                gateway += f" epochs={tuple(self.cache_epochs)}"
            lines.append(gateway)
            if self.boundary_vertices is not None:
                lines.append(
                    f"  boundary: {self.boundary_vertices} boundary "
                    "vertices crossed"
                )
        if self.stage_seconds:
            stages = "  ".join(
                f"{name}={seconds * 1000.0:.3f}ms"
                for name, seconds in self.stage_seconds.items()
            )
            lines.append(f"  stages: {stages}")
        if self.trace_id is not None:
            lines.append(
                f"  trace: {self.trace_id}  request: {self.request_id}"
            )
        return "\n".join(lines)
