"""Latency percentile helpers: one spelling for p50/p95/p99 everywhere.

Two consumers need percentiles: offline benchmarks, which hold every sample
and want *exact* percentiles, and live telemetry, which only has the
registry's log-bucket histograms and can do no better than bucket-upper-
bound estimates.  Before this module each call site did its own arithmetic
(``sorted(xs)[int(0.95 * len(xs))]`` in one file, ``family.quantile(0.95)``
in another); these helpers make both spellings canonical:

* :class:`LatencyRecorder` — keeps exact samples for benchmark-grade
  percentiles and (optionally) dual-writes every observation into a
  registry histogram, so a benchmark run leaves a Prometheus-exportable
  trail for free.
* :func:`latency_summary` — the bucket-estimate summary of an existing
  registry histogram, for reports over live telemetry.

Both return the same dict shape (``count``/``mean``/``p50``/``p95``/
``p99``), so report code does not care where the numbers came from.
"""

from __future__ import annotations

import numpy as np

from repro.obs.registry import Histogram, MetricsRegistry

__all__ = ["LatencyRecorder", "latency_summary"]

#: the canonical report quantiles: median, tail, extreme tail
DEFAULT_QUANTILES = (0.5, 0.95, 0.99)


def _quantile_field(q: float) -> str:
    """``0.5 -> "p50"``, ``0.99 -> "p99"``, ``0.999 -> "p99.9"``."""
    pct = 100.0 * q
    if pct == int(pct):
        return f"p{int(pct)}"
    return f"p{pct:g}"


class LatencyRecorder:
    """Exact-sample latency aggregation with optional registry dual-write.

    Parameters
    ----------
    metric:
        Registry histogram family to mirror observations into (e.g.
        ``"repro_fspq_bench_seconds"``).  ``None`` keeps samples local.
    registry:
        Target registry for the mirror; defaults to the active process
        registry.  Disabled registries cost one no-op call per observe.
    labels:
        Fixed labels for the mirrored histogram series.
    """

    def __init__(
        self,
        metric: str | None = None,
        help: str = "",
        registry: MetricsRegistry | None = None,
        **labels: object,
    ) -> None:
        self.samples: list[float] = []
        self._metric = metric
        self._help = help
        self._registry = registry
        self._labels = labels

    def observe(self, seconds: float) -> None:
        """Record one latency sample (seconds)."""
        self.samples.append(float(seconds))
        if self._metric is not None:
            from repro import obs

            registry = self._registry if self._registry is not None else (
                obs.get_registry()
            )
            registry.histogram(self._metric, self._help).observe(
                seconds, **self._labels
            )

    def __len__(self) -> int:
        return len(self.samples)

    def percentile(self, q: float) -> float:
        """Exact ``q``-quantile over the recorded samples (0 when empty)."""
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        if not self.samples:
            return 0.0
        return float(np.percentile(self.samples, 100.0 * q))

    def summary(self, quantiles: tuple[float, ...] = DEFAULT_QUANTILES) -> dict:
        """``{"count", "empty", "mean", "p50", "p95", "p99"}`` over exact samples.

        An empty recorder returns the explicit
        ``{"count": 0, "empty": True}`` — no fabricated zero percentiles
        that read as "instant" downstream.
        """
        if not self.samples:
            return {"count": 0, "empty": True}
        out: dict[str, float | int | bool] = {
            "count": len(self.samples),
            "empty": False,
            "mean": float(np.mean(self.samples)),
        }
        for q in quantiles:
            out[_quantile_field(q)] = self.percentile(q)
        return out


def latency_summary(
    histogram: Histogram,
    quantiles: tuple[float, ...] = DEFAULT_QUANTILES,
    **labels: object,
) -> dict:
    """Percentile summary of a registry histogram series.

    Same shape as :meth:`LatencyRecorder.summary`, but quantiles are the
    histogram's bucket-upper-bound estimates (Prometheus-style resolution)
    because the raw samples are gone.  A series with no observations
    returns the explicit ``{"count": 0, "empty": True}`` instead of
    degenerate all-zero percentiles.
    """
    count = histogram.count(**labels)
    if count == 0:
        return {"count": 0, "empty": True}
    out: dict[str, float | int | bool] = {
        "count": count,
        "empty": False,
        "mean": histogram.mean(**labels),
    }
    for q in quantiles:
        out[_quantile_field(q)] = histogram.quantile(q, **labels)
    return out
