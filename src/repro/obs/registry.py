"""Process-local metrics registry: counters, gauges, histograms.

Zero-dependency and deliberately boring: a :class:`MetricsRegistry` is a
named collection of instrument *families*; each family holds one value per
label set.  Three properties make it safe to wire into hot paths:

* **No-op when disabled.**  A disabled registry hands out shared null
  instruments whose ``inc``/``set``/``observe`` are empty methods, and
  registers nothing — an uninstrumented run pays one attribute check per
  call site and allocates no state.  The process-default registry starts
  disabled, so importing :mod:`repro` never taxes library users.
* **Idempotent family creation.**  ``registry.counter(name)`` returns the
  existing family when there is one (re-registering with a different kind
  raises), so call sites can fetch instruments inline without module-level
  caching — which in turn means swapping the active registry (tests, the
  CLI) retargets every instrumented path at once.
* **Log-scale histogram buckets.**  Latencies span six orders of
  magnitude; the default buckets double from 1µs to ~2min so one fixed
  layout serves micro-benchmarks and full maintenance runs alike.

Metric names follow the Prometheus convention enforced by
:func:`repro.obs.export.lint_prometheus`: ``^repro_[a-z0-9_]+$``, counters
suffixed ``_total``, durations suffixed ``_seconds``.
"""

from __future__ import annotations

import threading
from bisect import bisect_left

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_COUNTER",
    "NULL_GAUGE",
    "NULL_HISTOGRAM",
    "default_latency_buckets",
]

#: Label values keyed by the sorted ``(key, value)`` tuple — hashable and
#: deterministic in exports.
LabelKey = tuple[tuple[str, str], ...]


def default_latency_buckets() -> tuple[float, ...]:
    """Fixed log-scale (powers of two) latency buckets, 1µs .. ~134s."""
    return tuple(1e-6 * 2.0 ** i for i in range(28))


def _label_key(labels: dict[str, object]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


class _Instrument:
    """Shared plumbing: name, help text and per-label-set storage."""

    kind = "untyped"

    def __init__(self, name: str, help: str = "") -> None:
        self.name = name
        self.help = help
        self._lock = threading.Lock()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({self.name!r})"


class Counter(_Instrument):
    """A monotonically increasing value per label set."""

    kind = "counter"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.name} cannot decrease by {amount}")
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def total(self) -> float:
        """Sum over every label set of the family."""
        return sum(self._values.values())

    def samples(self) -> dict[LabelKey, float]:
        return dict(self._values)


class Gauge(_Instrument):
    """A value that can go up and down (depths, sizes, states)."""

    kind = "gauge"

    def __init__(self, name: str, help: str = "") -> None:
        super().__init__(name, help)
        self._values: dict[LabelKey, float] = {}

    def set(self, value: float, **labels: object) -> None:
        with self._lock:
            self._values[_label_key(labels)] = float(value)

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        key = _label_key(labels)
        with self._lock:
            self._values[key] = self._values.get(key, 0.0) + amount

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        self.inc(-amount, **labels)

    def value(self, **labels: object) -> float:
        return self._values.get(_label_key(labels), 0.0)

    def samples(self) -> dict[LabelKey, float]:
        return dict(self._values)


class _HistogramSeries:
    """Bucket counts + sum + count for one label set."""

    __slots__ = ("bucket_counts", "total", "count")

    def __init__(self, num_buckets: int) -> None:
        self.bucket_counts = [0] * num_buckets
        self.total = 0.0
        self.count = 0


class Histogram(_Instrument):
    """Observations bucketed against fixed, sorted upper bounds.

    The bucket layout is frozen at family creation (Prometheus semantics:
    ``le`` upper bounds are cumulative in the export; stored here as
    per-bucket counts with an implicit ``+Inf`` overflow bucket).
    """

    kind = "histogram"

    def __init__(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> None:
        super().__init__(name, help)
        bounds = tuple(buckets) if buckets is not None else default_latency_buckets()
        if not bounds or list(bounds) != sorted(bounds):
            raise ValueError(f"histogram {name} needs sorted, non-empty buckets")
        self.buckets = bounds
        self._series: dict[LabelKey, _HistogramSeries] = {}

    def observe(self, value: float, **labels: object) -> None:
        key = _label_key(labels)
        # bisect_left keeps Prometheus `le` semantics: a value exactly on a
        # bucket's upper bound belongs in that bucket, not the next one.
        idx = bisect_left(self.buckets, value)
        with self._lock:
            series = self._series.get(key)
            if series is None:
                series = self._series[key] = _HistogramSeries(len(self.buckets) + 1)
            series.bucket_counts[idx] += 1
            series.total += value
            series.count += 1

    # -- read side -----------------------------------------------------
    def count(self, **labels: object) -> int:
        series = self._series.get(_label_key(labels))
        return series.count if series else 0

    def sum(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        return series.total if series else 0.0

    def mean(self, **labels: object) -> float:
        series = self._series.get(_label_key(labels))
        if not series or not series.count:
            return 0.0
        return series.total / series.count

    def quantile(self, q: float, **labels: object) -> float:
        """Bucket-resolution quantile estimate (upper bound of the bucket).

        Good enough for reports; exactness is bounded by the log-scale
        bucket width, like any Prometheus-style histogram.
        """
        if not 0.0 <= q <= 1.0:
            raise ValueError(f"quantile must be in [0, 1], got {q}")
        series = self._series.get(_label_key(labels))
        if not series or not series.count:
            return 0.0
        rank = q * series.count
        cumulative = 0
        for i, n in enumerate(series.bucket_counts):
            cumulative += n
            if cumulative >= rank and n:
                if i < len(self.buckets):
                    return self.buckets[i]
                return float("inf")
        return float("inf")

    def samples(self) -> dict[LabelKey, _HistogramSeries]:
        return dict(self._series)

    def label_sets(self) -> list[LabelKey]:
        return list(self._series)


class _NullInstrument:
    """Accepts every instrument operation and does nothing.

    One shared instance per kind is handed out by disabled registries;
    every mutator and reader is a cheap no-op so call sites need no
    ``if enabled`` guards of their own (though hot paths may still add one
    to skip building label kwargs).
    """

    kind = "null"
    name = "null"
    buckets: tuple[float, ...] = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: object) -> None:
        pass

    def set(self, value: float, **labels: object) -> None:
        pass

    def observe(self, value: float, **labels: object) -> None:
        pass

    def value(self, **labels: object) -> float:
        return 0.0

    def total(self) -> float:
        return 0.0

    def count(self, **labels: object) -> int:
        return 0

    def sum(self, **labels: object) -> float:
        return 0.0

    def mean(self, **labels: object) -> float:
        return 0.0

    def quantile(self, q: float, **labels: object) -> float:
        return 0.0

    def samples(self) -> dict:
        return {}

    def label_sets(self) -> list:
        return []


NULL_COUNTER = _NullInstrument()
NULL_GAUGE = _NullInstrument()
NULL_HISTOGRAM = _NullInstrument()


class MetricsRegistry:
    """A named collection of metric families with an enable switch.

    ``enabled`` is read on every instrument fetch: a disabled registry
    returns the shared null instruments and records nothing, which is what
    keeps the uninstrumented FSPQ hot path within its overhead budget
    (``tests/test_obs_overhead.py`` enforces <5%).
    """

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = bool(enabled)
        self._families: dict[str, _Instrument] = {}
        self._lock = threading.Lock()

    # -- lifecycle -----------------------------------------------------
    def enable(self) -> "MetricsRegistry":
        self.enabled = True
        return self

    def disable(self) -> "MetricsRegistry":
        self.enabled = False
        return self

    def reset(self) -> None:
        """Drop every family (names included) — test isolation helper."""
        with self._lock:
            self._families.clear()

    # -- family creation ----------------------------------------------
    def _family(self, cls, name: str, help: str, **kwargs) -> _Instrument:
        existing = self._families.get(name)
        if existing is not None:
            if not isinstance(existing, cls):
                raise ValueError(
                    f"metric {name!r} already registered as {existing.kind}, "
                    f"cannot re-register as {cls.kind}"
                )
            return existing
        with self._lock:
            existing = self._families.get(name)
            if existing is None:
                existing = self._families[name] = cls(name, help, **kwargs)
        return existing

    def counter(self, name: str, help: str = "") -> Counter:
        if not self.enabled:
            return NULL_COUNTER  # type: ignore[return-value]
        return self._family(Counter, name, help)  # type: ignore[return-value]

    def gauge(self, name: str, help: str = "") -> Gauge:
        if not self.enabled:
            return NULL_GAUGE  # type: ignore[return-value]
        return self._family(Gauge, name, help)  # type: ignore[return-value]

    def histogram(
        self,
        name: str,
        help: str = "",
        buckets: tuple[float, ...] | None = None,
    ) -> Histogram:
        if not self.enabled:
            return NULL_HISTOGRAM  # type: ignore[return-value]
        return self._family(Histogram, name, help, buckets=buckets)  # type: ignore[return-value]

    # -- read side -----------------------------------------------------
    def families(self) -> dict[str, _Instrument]:
        return dict(self._families)

    def get(self, name: str) -> _Instrument | None:
        return self._families.get(name)

    def snapshot(self) -> dict:
        """JSON-able dump of every family (used by the JSONL exporter)."""
        out: dict[str, dict] = {}
        for name, family in sorted(self._families.items()):
            entry: dict = {"kind": family.kind, "help": family.help}
            if isinstance(family, Histogram):
                entry["buckets"] = list(family.buckets)
                entry["series"] = [
                    {
                        "labels": dict(key),
                        "bucket_counts": list(series.bucket_counts),
                        "sum": series.total,
                        "count": series.count,
                    }
                    for key, series in sorted(family.samples().items())
                ]
            else:
                entry["series"] = [
                    {"labels": dict(key), "value": value}
                    for key, value in sorted(family.samples().items())
                ]
            out[name] = entry
        return out

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"MetricsRegistry({state}, families={len(self._families)})"
