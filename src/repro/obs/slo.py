"""Rolling SLO monitor: windowed latency percentiles + error-budget burn.

Builds on :mod:`repro.obs.latency`'s exact-sample quantiles, but over a
sliding wall-time window instead of a whole run: the monitor keeps recent
``(when, latency, ok)`` samples, evicts anything older than
``window_seconds``, and reports p50/p95/p99 plus how fast the error
budget is burning.

SLO semantics: a sample is *good* when it was served healthily
(``ok=True``) **and** met the latency objective.  With availability
target ``target`` (e.g. ``0.99``), the window's error budget is
``(1 - target) * count`` bad samples; ``burn_rate`` is the ratio of the
observed bad fraction to the allowed fraction — ``1.0`` means burning
exactly at budget, ``>1`` means the budget will be exhausted early.

The monitor is opt-in (install with :func:`set_slo_monitor`); the
uninstalled hot-path cost is one global read and a ``None`` check.
"""

from __future__ import annotations

import threading
import time
from collections import deque
from typing import Callable

import numpy as np

from repro.obs.latency import DEFAULT_QUANTILES, _quantile_field

__all__ = ["SLOMonitor", "get_slo_monitor", "set_slo_monitor"]


class SLOMonitor:
    """Sliding-window latency/availability tracker for one objective."""

    def __init__(
        self,
        objective_seconds: float = 0.1,
        target: float = 0.99,
        window_seconds: float = 300.0,
        max_samples: int = 8192,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if not 0.0 < target < 1.0:
            raise ValueError(f"SLO target must be in (0, 1), got {target}")
        if objective_seconds <= 0.0:
            raise ValueError(
                f"latency objective must be positive, got {objective_seconds}"
            )
        if window_seconds <= 0.0:
            raise ValueError(f"window must be positive, got {window_seconds}")
        self.objective_seconds = float(objective_seconds)
        self.target = float(target)
        self.window_seconds = float(window_seconds)
        self._clock = clock
        # bounded: eviction by age plus a hard maxlen backstop
        self._samples: deque[tuple[float, float, bool]] = deque(maxlen=max_samples)
        self._lock = threading.Lock()

    def observe(self, seconds: float, ok: bool = True) -> None:
        """Record one served request (``ok=False`` for degraded answers)."""
        with self._lock:
            self._samples.append((self._clock(), float(seconds), bool(ok)))

    def _window(self) -> list[tuple[float, float, bool]]:
        cutoff = self._clock() - self.window_seconds
        with self._lock:
            while self._samples and self._samples[0][0] < cutoff:
                self._samples.popleft()
            return list(self._samples)

    def summary(self) -> dict:
        """Windowed percentiles + budget burn as a JSON-able dict."""
        window = self._window()
        base = {
            "window_seconds": self.window_seconds,
            "objective_ms": self.objective_seconds * 1000.0,
            "target": self.target,
            "count": len(window),
        }
        if not window:
            return {**base, "empty": True}
        latencies = np.asarray([seconds for _, seconds, _ in window])
        bad = sum(
            1
            for _, seconds, ok in window
            if not ok or seconds > self.objective_seconds
        )
        count = len(window)
        allowed_fraction = 1.0 - self.target
        bad_fraction = bad / count
        summary = {
            **base,
            "empty": False,
            "mean_ms": float(latencies.mean()) * 1000.0,
            "violations": bad,
            "good_fraction": 1.0 - bad_fraction,
            # burn_rate 1.0 == consuming budget exactly as fast as allowed
            "burn_rate": bad_fraction / allowed_fraction,
            "budget_remaining": 1.0 - min(1.0, bad_fraction / allowed_fraction),
        }
        for quantile in DEFAULT_QUANTILES:
            field = f"{_quantile_field(quantile)}_ms"
            summary[field] = float(np.quantile(latencies, quantile)) * 1000.0
        return summary


# ----------------------------------------------------------------------
# module-global monitor (opt-in; mirrors the registry pattern)
# ----------------------------------------------------------------------
_SLO: SLOMonitor | None = None


def get_slo_monitor() -> SLOMonitor | None:
    return _SLO


def set_slo_monitor(monitor: SLOMonitor | None) -> SLOMonitor | None:
    """Install the process SLO monitor; returns the previous one."""
    global _SLO
    previous = _SLO
    _SLO = monitor
    return previous
