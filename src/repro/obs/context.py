"""Request-scoped trace context, propagated across process boundaries.

A :class:`RequestContext` carries one request's identity — request id,
trace id, the span to parent remote work under, and an optional wall-clock
deadline — through every serving layer.  In-process propagation rides the
same :mod:`contextvars` machinery as the span stack, so gateway shard
fan-out and nested engine calls inherit the context for free.  Crossing a
process boundary (the fork-pool chunk hand-off in ``repro.core.batch``)
uses the wire form: :func:`current_wire` snapshots the context plus the
innermost live span into a plain picklable dict, and :func:`activate_wire`
adopts it on the far side, resetting the span stack so worker-side spans
parent deterministically under the serialized span id.

Rules (also documented in ``docs/OBSERVABILITY.md``):

* Entry points (gateway/serving ``query``/``batch``) open a scope with
  :func:`request_scope` **only when a tracer is installed** — the traced
  path pays one contextvar read, the untraced path pays nothing.
* Interior layers never create contexts; they inherit whatever scope the
  entry point opened (or none).
* Wire dicts are one-shot: activate, run, and let the scope close.  Span
  events emitted under a context carry ``trace``/``request`` fields, which
  is what lets a cross-process JSONL merge stitch one tree per request.
"""

from __future__ import annotations

import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

from repro.obs.trace import _REQUEST_CTX, _SPAN_STACK

__all__ = [
    "RequestContext",
    "activate_wire",
    "current_context",
    "current_wire",
    "new_context",
    "request_scope",
    "use_context",
]


@dataclass(frozen=True)
class RequestContext:
    """Identity of one in-flight request (immutable, safe to share)."""

    request_id: str
    trace_id: str
    parent_span: str | None = None
    deadline: float | None = None  # wall-clock (``time.time()``) seconds

    def remaining(self) -> float | None:
        """Seconds until the deadline (negative if blown), or ``None``."""
        if self.deadline is None:
            return None
        return self.deadline - time.time()


def new_context(
    deadline: float | None = None, timeout: float | None = None
) -> RequestContext:
    """Mint a fresh root context (new request id and trace id).

    ``timeout`` is a convenience for ``deadline = now + timeout``; an
    explicit ``deadline`` wins when both are given.
    """
    if deadline is None and timeout is not None:
        deadline = time.time() + timeout
    token = uuid.uuid4().hex
    return RequestContext(
        request_id=token[:16], trace_id=token[16:], deadline=deadline
    )


def current_context() -> RequestContext | None:
    """The active request context, or ``None`` outside any scope."""
    return _REQUEST_CTX.get()


@contextmanager
def use_context(ctx: RequestContext) -> Iterator[RequestContext]:
    """Make ``ctx`` the active context for the duration of the block."""
    token = _REQUEST_CTX.set(ctx)
    try:
        yield ctx
    finally:
        _REQUEST_CTX.reset(token)


@contextmanager
def request_scope(
    timeout: float | None = None,
) -> Iterator[RequestContext]:
    """Reuse the active context, or open a fresh root scope.

    This is the entry-point primitive: idempotent under nesting, so a
    gateway query that lands on a shard engine (which also calls
    ``request_scope``) still yields exactly one trace id.
    """
    ctx = _REQUEST_CTX.get()
    if ctx is not None:
        yield ctx
        return
    ctx = new_context(timeout=timeout)
    token = _REQUEST_CTX.set(ctx)
    try:
        yield ctx
    finally:
        _REQUEST_CTX.reset(token)


def current_wire() -> dict | None:
    """Picklable snapshot of the active context for a process hop.

    The innermost live span becomes the remote side's parent, so spans
    opened after :func:`activate_wire` attach to the span that was open
    at serialization time — one stitched tree, not two roots.
    """
    ctx = _REQUEST_CTX.get()
    if ctx is None:
        return None
    stack = _SPAN_STACK.get()
    parent = stack[-1] if stack else ctx.parent_span
    return {
        "request": ctx.request_id,
        "trace": ctx.trace_id,
        "span": parent,
        "deadline": ctx.deadline,
    }


@contextmanager
def activate_wire(wire: dict) -> Iterator[RequestContext]:
    """Adopt a :func:`current_wire` snapshot in another process.

    Resets the span stack to the wire's span id so new spans parent under
    the serialized span rather than whatever the forked child inherited.
    """
    ctx = RequestContext(
        request_id=wire["request"],
        trace_id=wire["trace"],
        parent_span=wire.get("span"),
        deadline=wire.get("deadline"),
    )
    ctx_token = _REQUEST_CTX.set(ctx)
    parent = wire.get("span")
    stack_token = _SPAN_STACK.set((parent,) if parent else ())
    try:
        yield ctx
    finally:
        _SPAN_STACK.reset(stack_token)
        _REQUEST_CTX.reset(ctx_token)
