"""Exporters: Prometheus text format, a round-trip parser, and a linter.

The renderer emits the classic Prometheus exposition format (text/plain
version 0.0.4): one ``# HELP``/``# TYPE`` pair per family followed by its
samples; histograms expand into cumulative ``_bucket{le=...}`` series plus
``_sum``/``_count``.  :func:`parse_prometheus` reads that text back into a
comparable structure — the unit tests assert render→parse is lossless —
and :func:`lint_prometheus` is the CI gate: every family must match
``^repro_[a-z0-9_]+$``, be declared exactly once, and carry only samples
that belong to it.

A registry snapshot can also be dumped as JSON lines via
:func:`write_snapshot_jsonl` (one line per metric family), the machine
companion to the human ``fahl-repro obs report`` table.
"""

from __future__ import annotations

import json
import math
import re
from typing import IO

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = [
    "METRIC_NAME_RE",
    "SPAN_CATALOGUE",
    "SPAN_NAME_RE",
    "lint_prometheus",
    "lint_spans",
    "parse_prometheus",
    "render_prometheus",
    "write_snapshot_jsonl",
]

METRIC_NAME_RE = re.compile(r"^repro_[a-z0-9_]+$")

#: span-name convention: dotted lowercase ``layer.operation``
SPAN_NAME_RE = re.compile(r"^[a-z0-9_]+(\.[a-z0-9_]+)+$")

#: every span name the stack may emit — MUST stay in sync with the
#: "Span taxonomy" table in docs/OBSERVABILITY.md (tested); uncatalogued
#: names fail ``fahl-repro obs lint --trace`` and the test-suite lint
SPAN_CATALOGUE = frozenset(
    {
        "async.request",
        "async.window",
        "batch.chunk",
        "batch.query",
        "build.elimination",
        "build.labeling",
        "build.structure",
        "cli.experiment",
        "cli.explain",
        "cli.recover",
        "fpsps.query",
        "gateway.batch",
        "gateway.query",
        "maintenance.flow_update",
        "maintenance.weight_update",
        "serving.batch",
        "serving.query",
    }
)

#: prefixes under which parameterised span names are allowed (the
#: experiment harness stamps figure ids into its span names)
SPAN_NAME_PREFIXES = ("experiment.",)

_LABEL_ESCAPES = {"\\": "\\\\", '"': '\\"', "\n": "\\n"}


def _escape_label(value: str) -> str:
    for raw, escaped in _LABEL_ESCAPES.items():
        value = value.replace(raw, escaped)
    return value


def _format_labels(labels: tuple[tuple[str, str], ...], extra: str = "") -> str:
    parts = [f'{k}="{_escape_label(v)}"' for k, v in labels]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if float(value).is_integer() and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def render_prometheus(registry: MetricsRegistry) -> str:
    """The registry's current contents in Prometheus text format."""
    lines: list[str] = []
    for name, family in sorted(registry.families().items()):
        help_text = family.help or name.replace("_", " ")
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} {family.kind}")
        if isinstance(family, (Counter, Gauge)):
            samples = family.samples() or {(): 0.0}
            for labels, value in sorted(samples.items()):
                lines.append(
                    f"{name}{_format_labels(labels)} {_format_value(value)}"
                )
        elif isinstance(family, Histogram):
            for labels, series in sorted(family.samples().items()):
                cumulative = 0
                for bound, count in zip(
                    family.buckets, series.bucket_counts
                ):
                    cumulative += count
                    le = 'le="' + _format_value(bound) + '"'
                    rendered = _format_labels(labels, le)
                    lines.append(f"{name}_bucket{rendered} {cumulative}")
                cumulative += series.bucket_counts[-1]
                rendered = _format_labels(labels, 'le="+Inf"')
                lines.append(f"{name}_bucket{rendered} {cumulative}")
                lines.append(
                    f"{name}_sum{_format_labels(labels)} "
                    f"{_format_value(series.total)}"
                )
                lines.append(
                    f"{name}_count{_format_labels(labels)} {series.count}"
                )
    return "\n".join(lines) + ("\n" if lines else "")


# ----------------------------------------------------------------------
# parsing (round-trip tests + lint)
# ----------------------------------------------------------------------
_SAMPLE_RE = re.compile(
    r"^(?P<name>[A-Za-z_:][A-Za-z0-9_:]*)"
    r"(?:\{(?P<labels>[^}]*)\})?"
    r"\s+(?P<value>\S+)\s*$"
)
_LABEL_RE = re.compile(r'([A-Za-z_][A-Za-z0-9_]*)="((?:\\.|[^"\\])*)"')


def _unescape_label(value: str) -> str:
    return (
        value.replace("\\n", "\n").replace('\\"', '"').replace("\\\\", "\\")
    )


def _parse_value(raw: str) -> float:
    if raw == "+Inf":
        return math.inf
    if raw == "-Inf":
        return -math.inf
    return float(raw)


def parse_prometheus(text: str) -> dict:
    """Parse exposition text into ``{family: {type, help, samples}}``.

    ``samples`` maps ``(sample_name, sorted_label_items)`` to the float
    value.  Raises :class:`ValueError` on syntactically invalid lines —
    the linter converts that into a finding instead.
    """
    families: dict[str, dict] = {}
    for lineno, line in enumerate(text.splitlines(), start=1):
        line = line.strip()
        if not line:
            continue
        if line.startswith("# HELP "):
            parts = line[len("# HELP "):].split(None, 1)
            name = parts[0]
            families.setdefault(
                name, {"type": None, "help": "", "samples": {}}
            )["help"] = parts[1] if len(parts) > 1 else ""
            continue
        if line.startswith("# TYPE "):
            parts = line[len("# TYPE "):].split()
            if len(parts) != 2:
                raise ValueError(f"line {lineno}: malformed TYPE line: {line!r}")
            name, kind = parts
            entry = families.setdefault(
                name, {"type": None, "help": "", "samples": {}}
            )
            if entry["type"] is not None:
                raise ValueError(f"line {lineno}: duplicate TYPE for {name}")
            entry["type"] = kind
            continue
        if line.startswith("#"):
            continue
        match = _SAMPLE_RE.match(line)
        if match is None:
            raise ValueError(f"line {lineno}: unparseable sample: {line!r}")
        sample_name = match.group("name")
        labels_raw = match.group("labels") or ""
        labels = tuple(
            sorted(
                (key, _unescape_label(value))
                for key, value in _LABEL_RE.findall(labels_raw)
            )
        )
        value = _parse_value(match.group("value"))
        family = _family_of(sample_name, families)
        families.setdefault(
            family, {"type": None, "help": "", "samples": {}}
        )["samples"][(sample_name, labels)] = value
    return families


def _family_of(sample_name: str, families: dict) -> str:
    """Map a sample name to its family (histogram suffix aware)."""
    for suffix in ("_bucket", "_sum", "_count"):
        if sample_name.endswith(suffix):
            base = sample_name[: -len(suffix)]
            if base in families and families[base].get("type") == "histogram":
                return base
    return sample_name


def lint_prometheus(text: str, name_re: re.Pattern = METRIC_NAME_RE) -> list[str]:
    """Validate exposition text; returns a list of problems (empty = clean).

    Checks: parseability, family names matching ``name_re`` (the repo
    convention ``^repro_[a-z0-9_]+$``), no duplicate family declarations,
    every sample attached to a declared family, counters finite and
    non-negative, and histogram bucket series cumulative.
    """
    problems: list[str] = []
    seen_types: dict[str, int] = {}
    for line in text.splitlines():
        stripped = line.strip()
        if stripped.startswith("# TYPE "):
            parts = stripped[len("# TYPE "):].split()
            if len(parts) == 2:
                seen_types[parts[0]] = seen_types.get(parts[0], 0) + 1
    for name, count in sorted(seen_types.items()):
        if count > 1:
            problems.append(f"duplicate family declaration: {name} ({count}x)")

    try:
        families = parse_prometheus(text)
    except ValueError as exc:
        problems.append(str(exc))
        return problems

    for name, entry in sorted(families.items()):
        if not name_re.match(name):
            problems.append(
                f"family name {name!r} does not match {name_re.pattern!r}"
            )
        if entry["type"] is None:
            problems.append(f"family {name} has samples but no TYPE line")
        if entry["type"] == "counter":
            for (sample, labels), value in entry["samples"].items():
                if not math.isfinite(value) or value < 0:
                    problems.append(
                        f"counter {sample}{dict(labels)} has invalid value {value}"
                    )
        if entry["type"] == "histogram":
            by_labels: dict[tuple, list[tuple[float, float]]] = {}
            for (sample, labels), value in entry["samples"].items():
                if sample.endswith("_bucket"):
                    le = dict(labels).get("le")
                    rest = tuple(
                        (k, v) for k, v in labels if k != "le"
                    )
                    by_labels.setdefault(rest, []).append(
                        (_parse_value(le) if le else math.inf, value)
                    )
            for rest, buckets in by_labels.items():
                ordered = sorted(buckets)
                counts = [c for _, c in ordered]
                if counts != sorted(counts):
                    problems.append(
                        f"histogram {name}{dict(rest)} bucket counts "
                        "are not cumulative"
                    )
    return problems


# ----------------------------------------------------------------------
# span-name taxonomy lint
# ----------------------------------------------------------------------
def lint_spans(
    events,
    catalogue: frozenset = SPAN_CATALOGUE,
    name_re: re.Pattern = SPAN_NAME_RE,
    prefixes: tuple[str, ...] = SPAN_NAME_PREFIXES,
) -> list[str]:
    """Validate span events against the name taxonomy (empty = clean).

    ``events`` is an iterable of span event dicts or JSONL strings (the
    tracer's export format).  Each distinct span name must match the
    dotted-lowercase ``layer.operation`` convention *and* be catalogued —
    either verbatim in ``catalogue`` or under an allowed parameterised
    prefix.  Non-span events (flight notes, slow-query digests) pass
    through untouched.
    """
    problems: list[str] = []
    seen: set[str] = set()
    for lineno, event in enumerate(events, start=1):
        if isinstance(event, (str, bytes)):
            stripped = event.strip()
            if not stripped:
                continue
            try:
                event = json.loads(stripped)
            except json.JSONDecodeError as exc:
                problems.append(f"line {lineno}: unparseable JSON: {exc}")
                continue
        if not isinstance(event, dict) or event.get("event") != "span":
            continue
        name = event.get("name")
        if not isinstance(name, str) or not name:
            problems.append(f"line {lineno}: span event without a name")
            continue
        if name in seen:
            continue
        seen.add(name)
        if not name_re.match(name):
            problems.append(
                f"span name {name!r} does not match {name_re.pattern!r} "
                "(dotted lowercase layer.operation)"
            )
        elif name not in catalogue and not any(
            name.startswith(prefix) for prefix in prefixes
        ):
            problems.append(
                f"span name {name!r} is not catalogued in "
                "docs/OBSERVABILITY.md (SPAN_CATALOGUE)"
            )
    return problems


# ----------------------------------------------------------------------
# JSONL snapshot
# ----------------------------------------------------------------------
def write_snapshot_jsonl(registry: MetricsRegistry, sink: IO[str]) -> int:
    """Write one JSON line per metric family; returns the line count."""
    snapshot = registry.snapshot()
    written = 0
    for name, entry in snapshot.items():
        sink.write(json.dumps({"metric": name, **entry}, sort_keys=True) + "\n")
        written += 1
    return written
