"""Human-readable report over a captured telemetry run.

``render_report(registry)`` turns the raw metric families into the
per-phase tables an operator (or the paper's Section VI reader) actually
wants: query latency quantiles and the Lemma-4 pruning rate computed from
the real bound-evaluation counters, per-strategy maintenance cost, serving
admission/quarantine/degradation counts, batch-pool health, and index
build phase timings.  This is the single source the ``fahl-repro obs
report`` CLI prints — the experiment figures and the serving status read
the very same registry.
"""

from __future__ import annotations

from repro.obs import slo as _slo
from repro.obs.latency import latency_summary
from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

__all__ = ["render_report"]

_LATENCY_HEADERS = ["runs", "total ms", "mean ms", "p50 ms", "p95 ms", "p99 ms"]


def _fmt(value: float) -> str:
    if value == 0:
        return "0"
    if isinstance(value, float) and not value.is_integer():
        if abs(value) < 0.01 or abs(value) >= 1e6:
            return f"{value:.3e}"
        return f"{value:,.3f}"
    return f"{int(value):,}"


def _table(title: str, headers: list[str], rows: list[list[object]]) -> str:
    cells = [[_fmt(v) if isinstance(v, (int, float)) else str(v) for v in row]
             for row in rows]
    widths = [
        max(len(headers[i]), *(len(row[i]) for row in cells))
        if cells else len(headers[i])
        for i in range(len(headers))
    ]
    lines = [f"-- {title} --"]
    lines.append("  ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append("  ".join("-" * w for w in widths))
    for row in cells:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _counter_rows(family: Counter | None, label: str) -> list[list[object]]:
    if family is None:
        return []
    return [
        [dict(key).get(label, "(all)") if key else "(all)", value]
        for key, value in sorted(family.samples().items())
    ]


def _hist_rows(family: Histogram | None, label: str) -> list[list[object]]:
    """count / total / mean / p50 / p95 / p99 per label value of a family."""
    if family is None:
        return []
    rows = []
    for key in sorted(family.label_sets()):
        labels = dict(key)
        name = labels.get(label, "(all)") if labels else "(all)"
        summary = latency_summary(family, **labels)
        if summary["empty"]:
            continue
        rows.append([
            name,
            summary["count"],
            family.sum(**labels) * 1000.0,
            summary["mean"] * 1000.0,
            summary["p50"] * 1000.0,
            summary["p95"] * 1000.0,
            summary["p99"] * 1000.0,
        ])
    return rows


def render_report(registry: MetricsRegistry) -> str:
    """Render every populated telemetry section as aligned plain text."""
    get = registry.get
    sections: list[str] = ["== repro obs report =="]

    # ------------------------------------------------------------- build
    build = get("repro_build_phase_seconds")
    if isinstance(build, Histogram) and build.label_sets():
        sections.append(_table(
            "index build (per phase)",
            ["phase", *_LATENCY_HEADERS],
            _hist_rows(build, "phase"),
        ))

    # ------------------------------------------------------------- query
    query_seconds = get("repro_query_seconds")
    if isinstance(query_seconds, Histogram) and query_seconds.label_sets():
        sections.append(_table(
            "FSPQ queries (per pruning mode)",
            ["pruning", *_LATENCY_HEADERS],
            _hist_rows(query_seconds, "pruning"),
        ))
        evals = get("repro_query_bound_evals_total")
        pruned = get("repro_query_pruned_total")
        candidates = get("repro_query_candidates_total")
        scanned = get("repro_label_entries_scanned_total")
        early = get("repro_query_early_stops_total")
        truncated = get("repro_query_truncated_total")
        n_evals = evals.total() if isinstance(evals, Counter) else 0.0
        n_pruned = pruned.total() if isinstance(pruned, Counter) else 0.0
        rows: list[list[object]] = [
            ["candidates enumerated",
             candidates.total() if isinstance(candidates, Counter) else 0.0],
            ["Lemma-4 bound evaluations", n_evals],
            ["Lemma-4 prunes", n_pruned],
            ["Lemma-4 pruning rate",
             (n_pruned / n_evals) if n_evals else 0.0],
            ["label entries scanned",
             scanned.total() if isinstance(scanned, Counter) else 0.0],
            ["early stops",
             early.total() if isinstance(early, Counter) else 0.0],
            ["truncated enumerations",
             truncated.total() if isinstance(truncated, Counter) else 0.0],
        ]
        sections.append(_table("FSPQ pruning effectiveness", ["counter", "value"], rows))

    # ------------------------------------------------------- maintenance
    maint = get("repro_maintenance_seconds")
    if isinstance(maint, Histogram) and maint.label_sets():
        sections.append(_table(
            "maintenance (per strategy)",
            ["op", *_LATENCY_HEADERS],
            _hist_rows(maint, "op"),
        ))
        rows = []
        for counter_name, title in (
            ("repro_maintenance_affected_labels_total", "affected labels"),
            ("repro_maintenance_bags_rebuilt_total", "bags rebuilt"),
            ("repro_maintenance_shortcuts_changed_total", "shortcuts changed"),
            ("repro_maintenance_rollbacks_total", "rollbacks"),
            ("repro_maintenance_isu_fallbacks_total", "ISU->GSU fallbacks"),
        ):
            family = get(counter_name)
            if isinstance(family, Counter) and family.samples():
                for key, value in sorted(family.samples().items()):
                    op = dict(key).get("op", "")
                    rows.append([f"{title} [{op}]" if op else title, value])
        if rows:
            sections.append(_table("maintenance work", ["counter", "value"], rows))

    # ------------------------------------------------------------ serving
    serving_rows: list[list[object]] = []
    updates = get("repro_serving_updates_total")
    if isinstance(updates, Counter):
        for key, value in sorted(updates.samples().items()):
            serving_rows.append(
                [f"updates {dict(key).get('outcome', '(all)')}", value]
            )
    quarantined = get("repro_serving_quarantined_total")
    if isinstance(quarantined, Counter):
        for key, value in sorted(quarantined.samples().items()):
            serving_rows.append(
                [f"quarantined [{dict(key).get('reason', '')}]", value]
            )
    for name, title in (
        ("repro_serving_retries_total", "retries"),
        ("repro_serving_escalations_total", "ISU->GSU escalations"),
        ("repro_serving_budget_exhausted_total", "budget exhausted"),
        ("repro_serving_repairs_total", "repairs"),
        ("repro_serving_degraded_transitions_total", "degraded transitions"),
    ):
        family = get(name)
        if isinstance(family, Counter) and family.samples():
            serving_rows.append([title, family.total()])
    queries = get("repro_serving_queries_total")
    if isinstance(queries, Counter):
        for key, value in sorted(queries.samples().items()):
            serving_rows.append(
                [f"queries via {dict(key).get('source', '(all)')}", value]
            )
    audits = get("repro_serving_audits_total")
    if isinstance(audits, Counter):
        for key, value in sorted(audits.samples().items()):
            serving_rows.append([f"audits ok={dict(key).get('ok', '?')}", value])
    dlq = get("repro_serving_dead_letter_depth")
    if isinstance(dlq, Gauge) and dlq.samples():
        serving_rows.append(["dead-letter depth (gauge)", dlq.value()])
    deferred = get("repro_serving_deferred_depth")
    if isinstance(deferred, Gauge) and deferred.samples():
        serving_rows.append(["deferred updates (gauge)", deferred.value()])
    if serving_rows:
        sections.append(_table("serving engine", ["counter", "value"], serving_rows))
    serving_latency = get("repro_serving_query_seconds")
    if isinstance(serving_latency, Histogram) and serving_latency.label_sets():
        sections.append(_table(
            "serving queries (per answer source)",
            ["source", *_LATENCY_HEADERS],
            _hist_rows(serving_latency, "source"),
        ))

    # -------------------------------------------------------------- batch
    batch_rows: list[list[object]] = []
    for name, title in (
        ("repro_batch_runs_total", "batch runs"),
        ("repro_batch_queries_total", "batch queries"),
        ("repro_batch_worker_recoveries_total", "worker recoveries"),
    ):
        family = get(name)
        if isinstance(family, Counter) and family.samples():
            batch_rows.append([title, family.total()])
    fallbacks = get("repro_batch_fallbacks_total")
    if isinstance(fallbacks, Counter):
        for key, value in sorted(fallbacks.samples().items()):
            batch_rows.append(
                [f"fallback [{dict(key).get('reason', '')}]", value]
            )
    chunk = get("repro_batch_chunk_seconds")
    if isinstance(chunk, Histogram) and chunk.label_sets():
        if batch_rows:
            sections.append(_table("batch pool", ["counter", "value"], batch_rows))
            batch_rows = []
        sections.append(_table(
            "batch chunks (per mode)",
            ["mode", *_LATENCY_HEADERS],
            _hist_rows(chunk, "mode"),
        ))
    if batch_rows:
        sections.append(_table("batch pool", ["counter", "value"], batch_rows))

    # ------------------------------------------------------------ gateway
    gateway_rows: list[list[object]] = []
    routes = get("repro_gateway_queries_total")
    if isinstance(routes, Counter):
        for key, value in sorted(routes.samples().items()):
            labels = dict(key)
            route = labels.get("route", "(all)")
            shard = labels.get("shard", "-")
            gateway_rows.append([f"queries [{route}] shard={shard}", value])
    cache = get("repro_gateway_cache_total")
    if isinstance(cache, Counter):
        for key, value in sorted(cache.samples().items()):
            labels = dict(key)
            event = labels.get("event", "(all)")
            shard = labels.get("shard", "-")
            gateway_rows.append([f"cache {event} shard={shard}", value])
    for name, title in (
        ("repro_gateway_repairs_total", "repairs"),
        ("repro_gateway_shard_recoveries_total", "shard recoveries"),
    ):
        family = get(name)
        if isinstance(family, Counter) and family.samples():
            gateway_rows.append([title, family.total()])
    if gateway_rows:
        sections.append(_table(
            "gateway (per route/shard)", ["counter", "value"], gateway_rows
        ))
    gateway_latency = get("repro_gateway_query_seconds")
    if isinstance(gateway_latency, Histogram) and gateway_latency.label_sets():
        rows = []
        for key in sorted(gateway_latency.label_sets()):
            labels = dict(key)
            summary = latency_summary(gateway_latency, **labels)
            if summary["empty"]:
                continue
            rows.append([
                f"{labels.get('route', '(all)')}/{labels.get('shard', '-')}",
                summary["count"],
                gateway_latency.sum(**labels) * 1000.0,
                summary["mean"] * 1000.0,
                summary["p50"] * 1000.0,
                summary["p95"] * 1000.0,
                summary["p99"] * 1000.0,
            ])
        if rows:
            sections.append(_table(
                "gateway queries (route/shard)",
                ["route/shard", *_LATENCY_HEADERS],
                rows,
            ))

    # ------------------------------------------------------ async gateway
    async_rows: list[list[object]] = []
    async_requests = get("repro_async_requests_total")
    if isinstance(async_requests, Counter):
        for key, value in sorted(async_requests.samples().items()):
            async_rows.append(
                [f"requests [{dict(key).get('kind', '(all)')}]", value]
            )
    async_rejected = get("repro_async_rejected_total")
    if isinstance(async_rejected, Counter):
        for key, value in sorted(async_rejected.samples().items()):
            async_rows.append(
                [f"rejected [{dict(key).get('reason', '(all)')}]", value]
            )
    async_resolved = get("repro_async_resolved_total")
    if isinstance(async_resolved, Counter):
        for key, value in sorted(async_resolved.samples().items()):
            labels = dict(key)
            async_rows.append([
                f"resolved [{labels.get('kind', '(all)')}] "
                f"outcome={labels.get('outcome', '?')}",
                value,
            ])
    windows = get("repro_async_windows_total")
    if isinstance(windows, Counter) and windows.samples():
        async_rows.append(["windows dispatched", windows.total()])
    window_size = get("repro_async_window_size")
    if isinstance(window_size, Gauge) and window_size.samples():
        async_rows.append(["last window size (gauge)", window_size.value()])
    queue_depth = get("repro_async_queue_depth")
    if isinstance(queue_depth, Gauge) and queue_depth.samples():
        async_rows.append(["queue depth (gauge)", queue_depth.value()])
    if async_rows:
        sections.append(_table(
            "async gateway", ["counter", "value"], async_rows
        ))
    window_seconds = get("repro_async_window_seconds")
    if isinstance(window_seconds, Histogram) and window_seconds.label_sets():
        sections.append(_table(
            "async windows",
            ["window", *_LATENCY_HEADERS],
            _hist_rows(window_seconds, "window"),
        ))
    request_seconds = get("repro_async_request_seconds")
    if isinstance(request_seconds, Histogram) and request_seconds.label_sets():
        sections.append(_table(
            "async requests (per kind, submit-to-resolve)",
            ["kind", *_LATENCY_HEADERS],
            _hist_rows(request_seconds, "kind"),
        ))

    # ---------------------------------------------------------------- SLO
    monitor = _slo.get_slo_monitor()
    if monitor is not None:
        summary = monitor.summary()
        if not summary["empty"]:
            sections.append(_table(
                "SLO (rolling window)",
                ["indicator", "value"],
                [
                    ["window seconds", summary["window_seconds"]],
                    ["objective ms", summary["objective_ms"]],
                    ["target good fraction", summary["target"]],
                    ["samples", summary["count"]],
                    ["good fraction", summary["good_fraction"]],
                    ["violations", summary["violations"]],
                    ["error-budget burn rate", summary["burn_rate"]],
                    ["error budget remaining", summary["budget_remaining"]],
                    ["p50 ms", summary["p50_ms"]],
                    ["p95 ms", summary["p95_ms"]],
                    ["p99 ms", summary["p99_ms"]],
                ],
            ))

    if len(sections) == 1:
        sections.append("(no telemetry captured — is the registry enabled?)")
    return "\n\n".join(sections)
