"""Unified telemetry for the FAHL stack: metrics, spans, exporters.

One process-local :class:`~repro.obs.registry.MetricsRegistry` (disabled by
default — library users pay ~nothing) receives counters, gauges and
log-bucket latency histograms from every instrumented layer:

======================  =====================================================
layer                   metric families (see docs/OBSERVABILITY.md)
======================  =====================================================
FPSPS / FSPQ query      ``repro_query_seconds``, ``repro_queries_total``,
                        ``repro_query_bound_evals_total`` /
                        ``repro_query_pruned_total`` (Lemma 4),
                        ``repro_label_entries_scanned_total``
maintenance             ``repro_maintenance_seconds{op=ilu|isu|gsu|noop}``,
                        ``repro_maintenance_rollbacks_total``,
                        affected-label / bags-rebuilt counters
serving                 ``repro_serving_updates_total{outcome}``, retry /
                        escalation / audit counters,
                        ``repro_serving_dead_letter_depth`` gauge
batch pool              ``repro_batch_chunk_seconds``,
                        ``repro_batch_worker_recoveries_total``, fallbacks
index build             ``repro_build_phase_seconds{phase}``
======================  =====================================================

Usage::

    from repro import obs

    obs.enable()                       # or obs.set_registry(MetricsRegistry())
    ... run queries / maintenance ...
    print(obs.render_prometheus(obs.get_registry()))

    with obs.trace("fpsps.query", src=0, dst=9):   # spans, when a tracer is on
        engine.query(q)

The CLI front door is ``fahl-repro obs report`` (human table + optional
Prometheus/JSONL exports) and ``fahl-repro obs lint`` (the CI gate).
"""

from __future__ import annotations

from repro.obs.context import (
    RequestContext,
    activate_wire,
    current_context,
    current_wire,
    new_context,
    request_scope,
    use_context,
)
from repro.obs.explain import QueryExplain
from repro.obs.export import (
    METRIC_NAME_RE,
    SPAN_NAME_RE,
    SPAN_CATALOGUE,
    lint_prometheus,
    lint_spans,
    parse_prometheus,
    render_prometheus,
    write_snapshot_jsonl,
)
from repro.obs.flight import (
    FlightRecorder,
    get_flight,
    set_flight,
)
from repro.obs.latency import LatencyRecorder, latency_summary
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    default_latency_buckets,
)
from repro.obs.slo import (
    SLOMonitor,
    get_slo_monitor,
    set_slo_monitor,
)
from repro.obs.trace import (
    Span,
    Stopwatch,
    Tracer,
    get_tracer,
    set_tracer,
    stopwatch,
    timed,
    trace,
)

__all__ = [
    "Counter",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "LatencyRecorder",
    "METRIC_NAME_RE",
    "MetricsRegistry",
    "QueryExplain",
    "RequestContext",
    "SLOMonitor",
    "SPAN_CATALOGUE",
    "SPAN_NAME_RE",
    "Span",
    "Stopwatch",
    "Tracer",
    "activate_wire",
    "counter",
    "current_context",
    "current_wire",
    "default_latency_buckets",
    "disable",
    "enable",
    "gauge",
    "get_flight",
    "get_registry",
    "get_slo_monitor",
    "get_tracer",
    "histogram",
    "latency_summary",
    "lint_prometheus",
    "lint_spans",
    "new_context",
    "parse_prometheus",
    "render_prometheus",
    "request_scope",
    "set_flight",
    "set_registry",
    "set_slo_monitor",
    "set_tracer",
    "stopwatch",
    "timed",
    "trace",
    "use_context",
    "write_snapshot_jsonl",
]

#: The process-default registry.  Starts *disabled*: every instrumented
#: path checks ``get_registry().enabled`` (or receives a null instrument)
#: and skips all bookkeeping, so plain library use stays uninstrumented.
_REGISTRY = MetricsRegistry(enabled=False)


def get_registry() -> MetricsRegistry:
    """The currently active process registry."""
    return _REGISTRY


def set_registry(registry: MetricsRegistry) -> MetricsRegistry:
    """Swap the active registry (tests, CLI runs); returns the previous one."""
    global _REGISTRY
    previous = _REGISTRY
    _REGISTRY = registry
    return previous


def enable() -> MetricsRegistry:
    """Enable metric collection on the active registry."""
    return _REGISTRY.enable()


def disable() -> MetricsRegistry:
    """Disable metric collection on the active registry."""
    return _REGISTRY.disable()


def counter(name: str, help: str = "") -> Counter:
    """Fetch/create a counter on the active registry (null when disabled)."""
    return _REGISTRY.counter(name, help)


def gauge(name: str, help: str = "") -> Gauge:
    """Fetch/create a gauge on the active registry (null when disabled)."""
    return _REGISTRY.gauge(name, help)


def histogram(
    name: str, help: str = "", buckets: tuple[float, ...] | None = None
) -> Histogram:
    """Fetch/create a histogram on the active registry (null when disabled)."""
    return _REGISTRY.histogram(name, help, buckets=buckets)
