"""Span tracing and timing helpers.

A :class:`Tracer` turns ``with trace("fpsps.query", src=u, dst=v):`` blocks
into JSON-lines span events with nested span ids (parentage tracked through
a :mod:`contextvars` stack, so nesting survives threads and generators).
When no tracer is installed ``trace()`` returns a shared no-op span — the
disabled cost is one global read and a ``None`` check.

Two derived helpers cover the common shapes:

* :func:`timed` — decorator recording a function's wall time into a
  ``*_seconds`` histogram of the active registry and emitting a span.
* :func:`stopwatch` — context manager that **always** measures (the
  experiment harness needs the number for its tables regardless of
  telemetry state) and additionally records a histogram observation and/or
  a span when telemetry is on.  This is the single timing implementation
  behind every ``time.perf_counter()`` pair that used to be inlined in
  ``repro.experiments``.

Span names are dotted lowercase (``layer.operation``); the taxonomy is
catalogued in ``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import contextvars
import functools
import itertools
import json
import os
import threading
import time
from typing import Callable, IO

from repro.obs import flight as _flight

__all__ = ["Span", "Tracer", "stopwatch", "timed", "trace"]

_SPAN_STACK: contextvars.ContextVar[tuple[str, ...]] = contextvars.ContextVar(
    "repro_obs_span_stack", default=()
)

#: the active request context (a ``repro.obs.context.RequestContext``);
#: lives here so Span.__exit__ can stamp trace/request ids without a
#: circular import (``context`` builds its helpers on top of this var)
_REQUEST_CTX: contextvars.ContextVar = contextvars.ContextVar(
    "repro_obs_request_ctx", default=None
)


class Span:
    """One live span; records duration and emits an event on exit."""

    __slots__ = (
        "tracer", "name", "span_id", "parent_id", "attrs",
        "_start_wall", "_start_perf", "_token", "duration",
    )

    def __init__(self, tracer: "Tracer", name: str, attrs: dict) -> None:
        self.tracer = tracer
        self.name = name
        self.attrs = attrs
        self.span_id = tracer._next_id()
        self.parent_id: str | None = None
        self.duration = 0.0
        self._token = None

    def annotate(self, **attrs: object) -> "Span":
        """Attach attributes after entry (e.g. result counters)."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = _SPAN_STACK.get()
        self.parent_id = stack[-1] if stack else None
        self._token = _SPAN_STACK.set(stack + (self.span_id,))
        self._start_wall = time.time()
        self._start_perf = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.duration = time.perf_counter() - self._start_perf
        end_wall = time.time()
        _SPAN_STACK.reset(self._token)
        # "start"/"end" are wall-clock (mergeable across processes, subject
        # to clock skew and NTP steps); "dur_s" is monotonic and is the
        # span's true duration — ``end - start`` may disagree with it, and
        # the difference measures local clock drift during the span.
        event = {
            "event": "span",
            "name": self.name,
            "span": self.span_id,
            "parent": self.parent_id,
            "start": self._start_wall,
            "end": end_wall,
            "dur_s": self.duration,
            "pid": self.tracer._pid,
        }
        ctx = _REQUEST_CTX.get()
        if ctx is not None:
            event["trace"] = ctx.trace_id
            event["request"] = ctx.request_id
        if exc_type is not None:
            event["error"] = exc_type.__name__
        if self.attrs:
            event["attrs"] = self.attrs
        self.tracer.emit(event)


class _NullSpan:
    """Shared no-op span for the tracer-less fast path (reentrant)."""

    __slots__ = ()
    duration = 0.0
    span_id = None
    parent_id = None

    def annotate(self, **attrs: object) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class Tracer:
    """Serialises span events as JSON lines into a sink.

    ``sink`` may be a file-like object (``.write`` gets one line per
    event), a callable (receives the event dict), or ``None`` to buffer
    in-memory (read via :attr:`events` — handy in tests).

    ``id_prefix`` namespaces span ids: tracers minting ids in different
    processes (fork-pool workers) must use distinct prefixes so a merged
    trace never sees two spans with the same id.
    """

    def __init__(
        self,
        sink: IO[str] | Callable[[dict], None] | None = None,
        id_prefix: str = "",
    ) -> None:
        self._sink = sink
        self._counter = itertools.count(1)
        self._lock = threading.Lock()
        self._pid = os.getpid()
        self.id_prefix = id_prefix
        self.events: list[dict] = []

    def _next_id(self) -> str:
        return f"{self.id_prefix}{next(self._counter):08x}"

    def emit(self, event: dict) -> None:
        # mirror every span event into the flight recorder: the ring is
        # the black box a DLQ entry or recovery report dumps later
        _flight.record_event(event)
        sink = self._sink
        if sink is None:
            with self._lock:
                self.events.append(event)
        elif callable(sink):
            sink(event)
        else:
            line = json.dumps(event, sort_keys=True, default=str)
            with self._lock:
                sink.write(line + "\n")

    def span(self, name: str, **attrs: object) -> Span:
        return Span(self, name, attrs)


# ----------------------------------------------------------------------
# module-global tracer (mirrors the registry pattern in repro.obs)
# ----------------------------------------------------------------------
_TRACER: Tracer | None = None


def get_tracer() -> Tracer | None:
    return _TRACER


def set_tracer(tracer: Tracer | None) -> Tracer | None:
    """Install the process tracer; returns the previous one."""
    global _TRACER
    previous = _TRACER
    _TRACER = tracer
    return previous


def trace(name: str, **attrs: object):
    """Open a span on the active tracer (no-op without one)."""
    tracer = _TRACER
    if tracer is None:
        return _NULL_SPAN
    return tracer.span(name, **attrs)


# ----------------------------------------------------------------------
# timing helpers
# ----------------------------------------------------------------------
class Stopwatch:
    """Measure a block; optionally record a histogram sample and a span.

    Always measures — ``.seconds``/``.ms`` are valid after exit (and read
    the running clock before it), independent of telemetry state.
    """

    __slots__ = ("metric", "span_name", "labels", "_start", "_elapsed", "_span")

    def __init__(
        self,
        metric: str | None = None,
        span: str | None = None,
        **labels: object,
    ) -> None:
        self.metric = metric
        self.span_name = span
        self.labels = labels
        self._start = 0.0
        self._elapsed: float | None = None
        self._span = _NULL_SPAN

    @property
    def seconds(self) -> float:
        if self._elapsed is None:
            return time.perf_counter() - self._start
        return self._elapsed

    @property
    def ms(self) -> float:
        return self.seconds * 1000.0

    def __enter__(self) -> "Stopwatch":
        if self.span_name is not None:
            self._span = trace(self.span_name, **self.labels)
            self._span.__enter__()
        self._start = time.perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self._elapsed = time.perf_counter() - self._start
        self._span.__exit__(exc_type, exc, tb)
        if self.metric is not None:
            from repro import obs

            registry = obs.get_registry()
            if registry.enabled:
                registry.histogram(self.metric).observe(self._elapsed, **self.labels)


def stopwatch(
    metric: str | None = None, span: str | None = None, **labels: object
) -> Stopwatch:
    """``with stopwatch(...) as sw: ...; sw.seconds`` — see :class:`Stopwatch`."""
    return Stopwatch(metric=metric, span=span, **labels)


def timed(
    metric: str, span: str | None = None, **labels: object
) -> Callable[[Callable], Callable]:
    """Decorator: record the function's wall time into ``metric``.

    The metric is a histogram family (created on first use with the
    default latency buckets); a span named ``span`` (default: the metric
    name) is emitted when a tracer is active.  With telemetry fully off
    the wrapper short-circuits to the bare call.
    """
    span_name = span or metric

    def decorate(func: Callable) -> Callable:
        @functools.wraps(func)
        def wrapper(*args, **kwargs):
            from repro import obs

            registry = obs.get_registry()
            if not registry.enabled and _TRACER is None:
                return func(*args, **kwargs)
            with stopwatch(metric=metric, span=span_name, **labels):
                return func(*args, **kwargs)

        return wrapper

    return decorate
