"""Always-on flight recorder: a bounded lock-free ring of recent events.

The recorder keeps the last ``capacity`` events — span events mirrored
from the active tracer, slow-query digests, and structural notes
(degraded-mode transitions, dead-letter pushes, recovery starts) — in a
preallocated ring buffer.  Writers claim a slot with one
``next(itertools.count())`` (atomic under the GIL) and store a reference;
no locks, no allocation beyond the event dict itself, so the recorder
stays on even on the hot serving path.

When something goes wrong, the ring is the black box: dead letters,
``RecoveryReport``, and degraded-mode transitions each capture a
:func:`dump` so postmortems see *what the engine was doing* right before
the incident, not just which counters moved.

Memory is strictly bounded: the slot list never grows past ``capacity``
and old events are overwritten, never accumulated (proved by test).
"""

from __future__ import annotations

import itertools
import time

__all__ = [
    "FlightRecorder",
    "dump",
    "get_flight",
    "note",
    "observe_query",
    "record_event",
    "set_flight",
]

#: default latency above which a query gets a slow-query digest (seconds)
DEFAULT_SLOW_THRESHOLD = 0.025

#: default ring capacity (events); ~a few hundred bytes per event
DEFAULT_CAPACITY = 512


class FlightRecorder:
    """Bounded ring of recent events; lock-free single-writer slots."""

    __slots__ = ("capacity", "slow_threshold", "_slots", "_ticket")

    def __init__(
        self,
        capacity: int = DEFAULT_CAPACITY,
        slow_threshold: float = DEFAULT_SLOW_THRESHOLD,
    ) -> None:
        if capacity < 1:
            raise ValueError(f"flight recorder capacity must be >= 1, got {capacity}")
        self.capacity = int(capacity)
        self.slow_threshold = float(slow_threshold)
        self._slots: list[tuple[int, dict] | None] = [None] * self.capacity
        # next(count) is a single C-level op: atomic under the GIL, so
        # concurrent writers always claim distinct tickets (and slots)
        self._ticket = itertools.count()

    def __len__(self) -> int:
        return sum(1 for slot in self._slots if slot is not None)

    def record(self, event: dict) -> None:
        """Store one event, overwriting the oldest when the ring is full."""
        ticket = next(self._ticket)
        self._slots[ticket % self.capacity] = (ticket, event)

    def note(self, name: str, **attrs: object) -> None:
        """Record a structural event (state change, incident, milestone)."""
        event: dict = {"event": "note", "name": name, "ts": time.time()}
        if attrs:
            event["attrs"] = attrs
        self.record(event)

    def observe_query(self, name: str, seconds: float, **attrs: object) -> None:
        """Record a slow-query digest when latency crosses the threshold."""
        if seconds < self.slow_threshold:
            return
        event: dict = {
            "event": "slow_query",
            "name": name,
            "ts": time.time(),
            "dur_s": float(seconds),
        }
        if attrs:
            event["attrs"] = attrs
        self.record(event)

    def dump(
        self, last: int | None = None, seconds: float | None = None
    ) -> list[dict]:
        """Snapshot of the ring in arrival order (oldest first).

        ``last`` keeps only the newest N events; ``seconds`` keeps events
        whose timestamp falls within the trailing window.  Reads race
        benignly with writers: a concurrent overwrite yields the newer
        event, never a torn one (slot writes are single references).
        """
        entries = [slot for slot in list(self._slots) if slot is not None]
        entries.sort(key=lambda pair: pair[0])
        events = [event for _, event in entries]
        if seconds is not None:
            cutoff = time.time() - seconds
            events = [
                event
                for event in events
                if _event_time(event) >= cutoff
            ]
        if last is not None:
            events = events[-last:]
        return events

    def clear(self) -> None:
        self._slots = [None] * self.capacity


def _event_time(event: dict) -> float:
    """Best-effort wall-clock timestamp of an event (0.0 when absent)."""
    for key in ("ts", "end", "start"):
        value = event.get(key)
        if isinstance(value, (int, float)):
            return float(value)
    return 0.0


# ----------------------------------------------------------------------
# module-global recorder (always on; mirrors the registry pattern)
# ----------------------------------------------------------------------
_FLIGHT: FlightRecorder | None = FlightRecorder()


def get_flight() -> FlightRecorder | None:
    return _FLIGHT


def set_flight(recorder: FlightRecorder | None) -> FlightRecorder | None:
    """Install (or, with ``None``, suppress) the process flight recorder."""
    global _FLIGHT
    previous = _FLIGHT
    _FLIGHT = recorder
    return previous


def record_event(event: dict) -> None:
    recorder = _FLIGHT
    if recorder is not None:
        recorder.record(event)


def note(name: str, **attrs: object) -> None:
    recorder = _FLIGHT
    if recorder is not None:
        recorder.note(name, **attrs)


def observe_query(name: str, seconds: float, **attrs: object) -> None:
    recorder = _FLIGHT
    if recorder is not None:
        recorder.observe_query(name, seconds, **attrs)


def dump(last: int | None = None, seconds: float | None = None) -> tuple[dict, ...]:
    """Dump the global ring (empty tuple when suppressed)."""
    recorder = _FLIGHT
    if recorder is None:
        return ()
    return tuple(recorder.dump(last=last, seconds=seconds))
