"""The elimination game: vertex ordering + bags + fill-in shortcuts.

Eliminating a vertex ``v`` records its *bag* — ``v`` plus its neighbours in
the current (partially eliminated) graph — and adds a clique over those
neighbours with *shortcut weights* ``w(x, y) <- min(w(x, y), w(v, x) + w(v,
y))``.  The bags, ordered by elimination rank, define the tree decomposition
(Def. 6) and the shortcut weights make the hierarchical-label dynamic
program exact (as in H2H / CH).

Besides bags, the result keeps ``middles`` — for every bag edge, the
eliminated vertex that realised its shortcut weight (``None`` for original
edges) — used to unpack label queries into concrete vertex paths.

Intermediate elimination states (what ISU/GSU resume from) are not logged;
they are *reconstructed* from the current bags by :func:`replay_prefix`.
Reconstruction — rather than a recorded change log — keeps maintenance
correct when ILU weight repairs have rewritten bag weights since
construction: the state after ``k`` eliminations is fully determined by the
current base weights plus the (repaired) bags of the first ``k`` vertices,
because eliminating ``c`` contributes exactly ``bags[c][x] + bags[c][y]``
to each pair ``(x, y)`` of its bag.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field

import numpy as np

from repro.errors import IndexBuildError
from repro.graph.road_network import RoadNetwork
from repro.treedec.ordering import ImportanceFunction

__all__ = [
    "EliminationResult",
    "eliminate",
    "relax_from_bag",
    "replay_prefix",
    "run_elimination_steps",
]


@dataclass
class EliminationResult:
    """Everything the elimination game produced.

    Attributes
    ----------
    order:
        Vertices in elimination order (ascending importance; last = root).
    rank:
        ``rank[v]`` = position of ``v`` in ``order``.
    bags:
        ``bags[v]`` maps each bag neighbour of ``v`` (all eliminated later)
        to the shortcut weight at ``v``'s elimination time.
    middles:
        ``middles[v][x]`` is the vertex whose elimination realised the
        shortcut ``(v, x)``, or ``None`` for an original graph edge.
    phi_at_elim:
        ``phi_at_elim[r]`` — the importance value of ``order[r]`` at the
        moment it was eliminated.  Lemma 1 / ISU compare a re-scored vertex
        against these to decide whether the ordering sequence changed.
    """

    order: list[int]
    rank: np.ndarray
    bags: list[dict[int, float]]
    middles: list[dict[int, int | None]]
    phi_at_elim: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def treewidth(self) -> int:
        """``max |bag| - 1`` over all bags (bag includes the vertex itself)."""
        return max((len(bag) for bag in self.bags), default=0)


def run_elimination_steps(
    adj: list[dict[int, float]],
    mids: list[dict[int, int | None]],
    importance: ImportanceFunction,
    active: set[int],
) -> tuple[list[int], list[float], dict[int, dict[int, float]],
           dict[int, dict[int, int | None]]]:
    """Eliminate every vertex of ``active`` from the given state, in place.

    This is the elimination core shared by full construction and the ISU/GSU
    maintenance paths (which resume from a reconstructed prefix state and
    may restrict elimination to a rank window).  Vertices outside ``active``
    stay in the graph; shortcuts among them are still added when an active
    vertex is removed.

    Returns ``(order, phi, bags, middles)`` for the eliminated vertices.
    """
    heap: list[tuple[float, int]] = []
    for v in active:
        heapq.heappush(heap, (importance(v, len(adj[v])), v))

    remaining = set(active)
    order: list[int] = []
    phi: list[float] = []
    bags: dict[int, dict[int, float]] = {}
    middles: dict[int, dict[int, int | None]] = {}

    while heap:
        value, v = heapq.heappop(heap)
        if v not in remaining:
            continue
        current = importance(v, len(adj[v]))
        if current != value:
            # stale entry; push the fresh value and retry
            heapq.heappush(heap, (current, v))
            continue

        remaining.discard(v)
        order.append(v)
        phi.append(current)
        bag = adj[v]
        bags[v] = dict(bag)
        middles[v] = {x: mids[v][x] for x in bag}

        nbrs = list(bag.items())
        touched: set[int] = set()
        for i, (x, wx) in enumerate(nbrs):
            del adj[x][v]
            del mids[x][v]
            touched.add(x)
            for y, wy in nbrs[i + 1:]:
                shortcut = wx + wy
                existing = adj[x].get(y)
                if existing is None or shortcut < existing:
                    adj[x][y] = shortcut
                    adj[y][x] = shortcut
                    mids[x][y] = v
                    mids[y][x] = v
                    touched.add(y)
        adj[v] = {}
        mids[v] = {}

        for x in touched:
            if x in remaining:
                heapq.heappush(heap, (importance(x, len(adj[x])), x))

    return order, phi, bags, middles


def eliminate(
    graph: RoadNetwork,
    importance: ImportanceFunction,
) -> EliminationResult:
    """Run the elimination game under ``importance`` (smallest first).

    Ties break on vertex id, making the ordering — and everything downstream
    — deterministic.
    """
    n = graph.num_vertices
    if n == 0:
        raise IndexBuildError("cannot eliminate an empty graph")

    adj: list[dict[int, float]] = [dict(graph.adjacency(v)) for v in range(n)]
    mids: list[dict[int, int | None]] = [dict.fromkeys(adj[v], None) for v in range(n)]

    order, phi, bag_map, middle_map = run_elimination_steps(
        adj, mids, importance, set(range(n))
    )
    if len(order) != n:
        raise IndexBuildError("elimination did not cover every vertex")
    rank = np.full(n, -1, dtype=np.int64)
    bags: list[dict[int, float]] = [{} for _ in range(n)]
    middles: list[dict[int, int | None]] = [{} for _ in range(n)]
    for r, v in enumerate(order):
        rank[v] = r
        bags[v] = bag_map[v]
        middles[v] = middle_map[v]
    return EliminationResult(
        order=order,
        rank=rank,
        bags=bags,
        middles=middles,
        phi_at_elim=np.asarray(phi, dtype=np.float64),
    )


def relax_from_bag(
    adj: list[dict[int, float]],
    mids: list[dict[int, int | None]],
    bag: dict[int, float],
    middle: int,
    remaining: set[int],
) -> None:
    """Apply one eliminated vertex's fill contributions to a working state.

    Relaxes every pair of ``bag`` members that survive in ``remaining`` with
    the shortcut weight through ``middle``.  Processing eliminated vertices
    in ascending rank reproduces exactly the fill weights (and a consistent
    middle assignment) of the real elimination under the *current* bag
    weights.
    """
    members = [(x, w) for x, w in bag.items() if x in remaining]
    for i, (x, wx) in enumerate(members):
        for y, wy in members[i + 1:]:
            shortcut = wx + wy
            existing = adj[x].get(y)
            if existing is None or shortcut < existing:
                adj[x][y] = shortcut
                adj[y][x] = shortcut
                mids[x][y] = middle
                mids[y][x] = middle


def replay_prefix(
    graph: RoadNetwork,
    result: EliminationResult,
    steps: int,
) -> tuple[list[dict[int, float]], list[dict[int, int | None]]]:
    """Reconstruct the elimination-graph state after ``steps`` eliminations.

    Built from the current graph weights and the current (possibly
    ILU-repaired) bags of the first ``steps`` vertices — no recorded change
    log, so the reconstruction stays correct after arbitrary interleaved
    weight maintenance.  Returns the adjacency and middle maps over the
    *remaining* vertices, ready for :func:`run_elimination_steps`.
    """
    n = graph.num_vertices
    if not 0 <= steps <= n:
        raise IndexBuildError(f"steps must be in [0, {n}], got {steps}")
    remaining = set(result.order[steps:])
    adj: list[dict[int, float]] = [{} for _ in range(n)]
    mids: list[dict[int, int | None]] = [{} for _ in range(n)]
    for v in remaining:
        for x, w in graph.adjacency(v).items():
            if x in remaining:
                adj[v][x] = w
                mids[v][x] = None
    for r in range(steps):
        c = result.order[r]
        relax_from_bag(adj, mids, result.bags[c], c, remaining)
    return adj, mids
