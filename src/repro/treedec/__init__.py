"""Tree decomposition: elimination game, orderings, tree structure, LCA."""

from repro.treedec.elimination import (
    EliminationResult,
    eliminate,
    relax_from_bag,
    replay_prefix,
    run_elimination_steps,
)
from repro.treedec.lca import EulerTourLCA, naive_lca
from repro.treedec.ordering import (
    ImportanceFunction,
    degree_flow_importance,
    degree_importance,
    normalize_flows,
)
from repro.treedec.tree import TreeDecomposition

__all__ = [
    "EliminationResult",
    "relax_from_bag",
    "run_elimination_steps",
    "EulerTourLCA",
    "ImportanceFunction",
    "TreeDecomposition",
    "degree_flow_importance",
    "degree_importance",
    "eliminate",
    "naive_lca",
    "normalize_flows",
    "replay_prefix",
]
