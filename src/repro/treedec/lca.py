"""Constant-time lowest-common-ancestor queries over the decomposition tree.

Standard Euler-tour + sparse-table RMQ: O(n log n) preprocessing, O(1) per
query.  The label query (Alg. 2) calls this once per distance query, so it
must be fast and allocation-free on the hot path.
"""

from __future__ import annotations

import numpy as np

from repro.errors import QueryError
from repro.treedec.tree import TreeDecomposition

__all__ = ["EulerTourLCA", "naive_lca"]


class EulerTourLCA:
    """Sparse-table LCA over a :class:`TreeDecomposition`."""

    def __init__(self, tree: TreeDecomposition) -> None:
        n = tree.num_vertices
        tour = np.empty(2 * n - 1 if n else 0, dtype=np.int64)
        tour_depth = np.empty_like(tour)
        first = np.full(n, -1, dtype=np.int64)

        # iterative Euler tour (recursion would overflow on path-like trees)
        idx = 0
        if n:
            stack: list[tuple[int, int]] = [(tree.root, 0)]
            while stack:
                node, child_idx = stack.pop()
                if child_idx == 0:
                    first[node] = idx
                tour[idx] = node
                tour_depth[idx] = tree.depth[node]
                idx += 1
                kids = tree.children[node]
                if child_idx < len(kids):
                    stack.append((node, child_idx + 1))
                    stack.append((kids[child_idx], 0))
        if idx != len(tour):
            raise QueryError("euler tour did not visit the whole tree")

        self._first = first
        self._tour = tour
        length = len(tour)
        levels = max(1, length.bit_length())
        # table[k] holds argmin indices over windows of length 2^k
        table = np.empty((levels, length), dtype=np.int64)
        table[0] = np.arange(length)
        span = 1
        for k in range(1, levels):
            prev = table[k - 1]
            limit = length - 2 * span
            if limit < 0:
                table[k] = prev
            else:
                left = prev[: limit + 1]
                right = prev[span: limit + 1 + span]
                pick = tour_depth[right] < tour_depth[left]
                table[k, : limit + 1] = np.where(pick, right, left)
                table[k, limit + 1:] = prev[limit + 1:]
            span *= 2
        self._table = table
        self._tour_depth = tour_depth
        self._num_vertices = n

    def query(self, u: int, v: int) -> int:
        """The LCA vertex of ``u`` and ``v``."""
        if not (0 <= u < self._num_vertices and 0 <= v < self._num_vertices):
            raise QueryError(f"LCA query on unknown vertices ({u}, {v})")
        lo, hi = sorted((int(self._first[u]), int(self._first[v])))
        length = hi - lo + 1
        k = length.bit_length() - 1
        a = self._table[k, lo]
        b = self._table[k, hi - (1 << k) + 1]
        best = a if self._tour_depth[a] <= self._tour_depth[b] else b
        return int(self._tour[best])

    def query_many(self, us, vs) -> np.ndarray:
        """Vectorised :meth:`query` over aligned vertex arrays.

        The sparse-table lookup translates directly: both window probes
        become fancy-indexed gathers, and ``floor(log2(length))`` comes
        from ``np.frexp``, which is exact for every integer below 2**53.
        Agrees element-wise with a scalar :meth:`query` loop.
        """
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise QueryError("query_many needs 1-D arrays of equal length")
        if us.size == 0:
            return np.empty(0, dtype=np.int64)
        n = self._num_vertices
        if int(us.min()) < 0 or int(us.max()) >= n or int(vs.min()) < 0 or int(
            vs.max()
        ) >= n:
            raise QueryError("LCA query_many on unknown vertices")
        fu = self._first[us]
        fv = self._first[vs]
        lo = np.minimum(fu, fv)
        hi = np.maximum(fu, fv)
        length = hi - lo + 1
        k = (np.frexp(length.astype(np.float64))[1] - 1).astype(np.int64)
        a = self._table[k, lo]
        b = self._table[k, hi - (np.int64(1) << k) + 1]
        depth = self._tour_depth
        best = np.where(depth[a] <= depth[b], a, b)
        return self._tour[best]


def naive_lca(tree: TreeDecomposition, u: int, v: int) -> int:
    """Reference parent-walk LCA (for property tests)."""
    du, dv = int(tree.depth[u]), int(tree.depth[v])
    while du > dv:
        u = int(tree.parent[u])
        du -= 1
    while dv > du:
        v = int(tree.parent[v])
        dv -= 1
    while u != v:
        u = int(tree.parent[u])
        v = int(tree.parent[v])
    return u
