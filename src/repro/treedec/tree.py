"""Tree-decomposition structure built from an elimination result.

Each vertex ``v`` owns one tree node ``X(v) = {v} ∪ bag(v)``; its parent is
the bag member with the smallest elimination rank (the next to be
eliminated), and the root is the last-eliminated vertex.  The classic
elimination-ordering theorem guarantees every bag member of ``v`` is an
ancestor of ``v`` — which is exactly what hierarchical 2-hop labels need.

The structure exposes the paper's vocabulary: ancestor arrays
(``X(v)_anc``), position arrays (Def. 8), tree width and tree height, and a
Def.-6 validity check.
"""

from __future__ import annotations

import numpy as np

from repro.errors import IndexBuildError
from repro.graph.road_network import RoadNetwork
from repro.treedec.elimination import EliminationResult

__all__ = ["TreeDecomposition"]


class TreeDecomposition:
    """Rooted tree over elimination bags.

    Attributes
    ----------
    parent:
        ``parent[v]`` — parent vertex of node ``X(v)`` (-1 for the root).
    depth:
        ``depth[v]`` — root has depth 0; equals ``len(anc(v)) - 1``.
    children:
        Child lists, ordered by elimination rank (deterministic).
    order, rank:
        The elimination order/rank the tree was built from.
    """

    def __init__(self, elimination: EliminationResult) -> None:
        order = elimination.order
        rank = elimination.rank
        n = len(order)
        parent = np.full(n, -1, dtype=np.int64)
        children: list[list[int]] = [[] for _ in range(n)]
        roots: list[int] = []
        for v in order:
            bag = elimination.bags[v]
            if bag:
                parent[v] = min(bag, key=lambda x: rank[x])
            else:
                roots.append(v)
        if len(roots) != 1:
            raise IndexBuildError(
                f"expected exactly one root (connected graph), found {len(roots)}"
            )
        self.root = roots[0]
        for v in order:
            if parent[v] >= 0:
                children[parent[v]].append(v)
        for kids in children:
            kids.sort(key=lambda x: rank[x])

        depth = np.zeros(n, dtype=np.int64)
        # process in descending rank: parents are always eliminated later,
        # i.e. have larger rank, so a reverse-order sweep sees parents first.
        for v in reversed(order):
            if parent[v] >= 0:
                depth[v] = depth[parent[v]] + 1

        self.parent = parent
        self.children = children
        self.depth = depth
        self.order = list(order)
        self.rank = rank.copy()
        self._elimination = elimination

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return len(self.order)

    @property
    def treewidth(self) -> int:
        """``max |X(v)| - 1`` (paper's ϖ_T)."""
        return self._elimination.treewidth

    @property
    def treeheight(self) -> int:
        """Maximum depth of any node (paper's h_T)."""
        return int(self.depth.max()) if self.num_vertices else 0

    def bag(self, v: int) -> dict[int, float]:
        """Bag neighbours of ``v`` with their shortcut weights."""
        return self._elimination.bags[v]

    def ancestor_array(self, v: int) -> list[int]:
        """``X(v)_anc`` — the root-to-``v`` vertex path (inclusive)."""
        path: list[int] = []
        node = v
        while node >= 0:
            path.append(node)
            node = int(self.parent[node])
        path.reverse()
        return path

    def position_array(self, v: int) -> np.ndarray:
        """Def.-8 position array: depths of ``X(v)``'s members, ascending.

        Positions are 0-based depths into the ancestor array (the paper uses
        1-based positions; Example 3's ``(1, 2, 5)`` is our ``(0, 1, 4)``).
        The node's own position (= ``depth[v]``) is included, mirroring
        ``v ∈ X(v)``.
        """
        positions = [int(self.depth[x]) for x in self.bag(v)]
        positions.append(int(self.depth[v]))
        positions.sort()
        return np.asarray(positions, dtype=np.int64)

    def subtree(self, v: int) -> list[int]:
        """Vertices of the subtree rooted at ``v`` (preorder)."""
        stack = [v]
        out: list[int] = []
        while stack:
            node = stack.pop()
            out.append(node)
            stack.extend(reversed(self.children[node]))
        return out

    # ------------------------------------------------------------------
    def is_ancestor(self, a: int, v: int) -> bool:
        """Whether ``a`` lies on the root-to-``v`` path (inclusive)."""
        while v >= 0 and self.depth[v] >= self.depth[a]:
            if v == a:
                return True
            v = int(self.parent[v])
        return False

    def validate(self, graph: RoadNetwork) -> None:
        """Assert the three Def.-6 tree-decomposition properties.

        Raises :class:`IndexBuildError` with a description on violation.
        Intended for tests and debugging (O(n·w) to O(n·w·h)).
        """
        n = graph.num_vertices
        if self.num_vertices != n:
            raise IndexBuildError("tree does not cover the graph's vertex set")
        # property 1: every vertex owns a node (by construction) and
        # property (structural): bag members are ancestors.
        for v in range(n):
            for x in self.bag(v):
                if not self.is_ancestor(x, v):
                    raise IndexBuildError(
                        f"bag member {x} of {v} is not an ancestor of {v}"
                    )
        # property 2: every graph edge is inside some node.
        for u, v, _ in graph.edges():
            lo, hi = (u, v) if self.rank[u] < self.rank[v] else (v, u)
            if hi not in self.bag(lo):
                raise IndexBuildError(f"edge ({u}, {v}) not covered by any bag")
        # property 3: nodes containing each vertex form a connected subtree.
        containing: list[list[int]] = [[] for _ in range(n)]
        for v in range(n):
            containing[v].append(v)
            for x in self.bag(v):
                containing[x].append(v)
        for u in range(n):
            nodes = set(containing[u])
            # connected iff every containing node except the shallowest has
            # its parent... not in general; walk up instead: from each node,
            # parent chains must stay within `nodes` until the shallowest.
            top = min(nodes, key=lambda x: self.depth[x])
            for node in nodes:
                walk = node
                while walk != top:
                    walk = int(self.parent[walk])
                    if walk < 0 or walk not in nodes:
                        raise IndexBuildError(
                            f"nodes containing vertex {u} are not connected"
                        )
