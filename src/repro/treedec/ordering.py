"""Vertex-ordering strategies for the elimination game.

The elimination engine (:mod:`repro.treedec.elimination`) repeatedly removes
the vertex with the *smallest importance*; the importance function is the
only thing that differs between H2H (pure dynamic degree, i.e. the classic
min-degree heuristic) and FAHL (degree-flow joint ordering, paper Def. 7):

.. math::

    \\varphi(v) = \\beta \\cdot (1 - \\hat P(v)) + (1 - \\beta) \\cdot \\hat D(v)

where :math:`\\hat P(v)` is the min-max normalised predicted flow and
:math:`\\hat D(v) = D(v) / D_{max}` the degree during elimination normalised
by the maximum *initial* degree.

Sign note: the paper's Def. 7 prints ``β·P̂ + (1-β)·D̂``, but its stated
motivation (Section III), its Example 1 (the root has the *highest* φ yet
the *lowest* flow in Table I) and the whole design ("place the vertices
with lower traffic-flow near the root") require importance to *decrease*
with flow — vertices are eliminated in ascending φ and the last (highest-φ)
vertex becomes the root.  We therefore use ``1 - P̂``, which realises the
described index; this reconciliation is recorded in DESIGN.md.

Importance functions receive ``(vertex, current_degree)`` and must be pure:
the engine re-evaluates them whenever a degree changes.
"""

from __future__ import annotations

from collections.abc import Callable

import numpy as np

from repro.errors import IndexBuildError
from repro.graph.road_network import RoadNetwork

__all__ = [
    "ImportanceFunction",
    "degree_importance",
    "degree_flow_importance",
    "normalize_flows",
]

ImportanceFunction = Callable[[int, int], float]


def degree_importance() -> ImportanceFunction:
    """Classic min-degree importance (what H2H uses)."""

    def importance(vertex: int, current_degree: int) -> float:
        del vertex  # degree only
        return float(current_degree)

    return importance


def normalize_flows(
    flows: np.ndarray,
    anchors: tuple[float, float] | None = None,
) -> np.ndarray:
    """Min-max normalise a per-vertex flow vector (Def. 7's :math:`\\hat P`).

    ``anchors`` fixes the ``(min, max)`` range explicitly; the maintenance
    algorithms pass the construction-time anchors so that updating one
    vertex's flow never re-scores the *other* vertices (values may then fall
    outside [0, 1], which is harmless for ordering).  A degenerate range
    normalises to all zeros (flow then carries no ordering information,
    degenerating gracefully to degree ordering).
    """
    flows = np.asarray(flows, dtype=np.float64)
    if flows.ndim != 1:
        raise IndexBuildError(f"flow vector must be 1-D, got shape {flows.shape}")
    if not np.isfinite(flows).all():
        raise IndexBuildError("flow vector contains non-finite values")
    if anchors is None:
        low = float(flows.min()) if flows.size else 0.0
        high = float(flows.max()) if flows.size else 0.0
    else:
        low, high = float(anchors[0]), float(anchors[1])
    if high == low:
        return np.zeros_like(flows)
    return (flows - low) / (high - low)


def degree_flow_importance(
    graph: RoadNetwork,
    flows: np.ndarray,
    beta: float = 0.5,
    anchors: tuple[float, float] | None = None,
) -> ImportanceFunction:
    """Degree-flow joint importance :math:`\\varphi` (paper Def. 7).

    Parameters
    ----------
    graph:
        Used only to fix :math:`D_{max}` (maximum initial degree).
    flows:
        Per-vertex predicted flow (raw; normalised internally).
    beta:
        Weight of the flow term; ``beta = 0`` reduces to (normalised) degree
        ordering, ``beta = 1`` ignores topology.
    anchors:
        Optional fixed ``(min, max)`` normalisation range — see
        :func:`normalize_flows`.
    """
    if not 0.0 <= beta <= 1.0:
        raise IndexBuildError(f"beta must be in [0, 1], got {beta}")
    if len(flows) != graph.num_vertices:
        raise IndexBuildError(
            f"flow vector has {len(flows)} entries for a graph with "
            f"{graph.num_vertices} vertices"
        )
    normalized = normalize_flows(flows, anchors=anchors)
    d_max = max((graph.degree(v) for v in graph.vertices()), default=1) or 1

    def importance(vertex: int, current_degree: int) -> float:
        return float(
            beta * (1.0 - normalized[vertex])
            + (1.0 - beta) * current_degree / d_max
        )

    return importance
