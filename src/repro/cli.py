"""Command-line entry point: regenerate the paper's tables and figures.

Examples
--------
List experiments::

    fahl-repro list

Run one experiment at the default (scaled) configuration::

    fahl-repro run fig6

Run everything smaller/faster::

    fahl-repro run all --scale 0.15 --queries 3
"""

from __future__ import annotations

import argparse
import sys

from repro import obs
from repro.experiments import EXPERIMENTS, ExperimentConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="fahl-repro",
        description="FAHL (ICDE 2025) reproduction experiment harness",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list available experiments")

    run = sub.add_parser("run", help="run one experiment (or 'all')")
    run.add_argument(
        "experiment",
        help=f"experiment id: one of {', '.join(EXPERIMENTS)} or 'all'",
    )
    run.add_argument("--scale", type=float, default=0.35,
                     help="dataset scale factor (default 0.35)")
    run.add_argument("--queries", type=int, default=5,
                     help="queries per FQ group (default 5; paper uses 1000)")
    run.add_argument("--groups", type=int, default=12,
                     help="number of FQ groups (default 12)")
    run.add_argument("--alpha", type=float, default=0.5,
                     help="distance/flow blend alpha (default 0.5)")
    run.add_argument("--beta", type=float, default=0.5,
                     help="degree/flow ordering beta (default 0.5)")
    run.add_argument("--eta", type=float, default=3.0,
                     help="user distance constraint eta_u (default 3)")
    run.add_argument("--candidates", type=int, default=12,
                     help="candidate-path cap per query (default 12)")
    run.add_argument("--datasets", default="BRN,NYC,BAY,COL",
                     help="comma-separated dataset names")
    run.add_argument("--dimacs", metavar="PATH", action="append", default=None,
                     help="run on a real DIMACS .gr file instead of the "
                          "synthetic datasets (repeatable; a sibling .co "
                          "file is picked up automatically)")
    run.add_argument("--seed", type=int, default=0, help="workload seed")

    stats = sub.add_parser(
        "stats", help="index statistics (H2H vs FAHL) for one dataset"
    )
    stats.add_argument("dataset", help="dataset name (BRN/NYC/BAY/COL)")
    stats.add_argument("--scale", type=float, default=0.35)
    stats.add_argument("--beta", type=float, default=0.5)
    stats.add_argument("--seed", type=int, default=0)

    export = sub.add_parser(
        "export-dataset",
        help="write a dataset to disk (DIMACS .gr/.co + flows .npz)",
    )
    export.add_argument("dataset", help="dataset name (BRN/NYC/BAY/COL)")
    export.add_argument("directory", help="output directory (created)")
    export.add_argument("--scale", type=float, default=0.35)
    export.add_argument("--days", type=int, default=7)
    export.add_argument("--seed", type=int, default=0)

    report = sub.add_parser(
        "report",
        help="run every experiment and write one Markdown report",
    )
    report.add_argument("output", help="Markdown file to write")
    report.add_argument("--scale", type=float, default=0.35)
    report.add_argument("--queries", type=int, default=5)
    report.add_argument("--groups", type=int, default=12)
    report.add_argument("--alpha", type=float, default=0.5)
    report.add_argument("--beta", type=float, default=0.5)
    report.add_argument("--eta", type=float, default=3.0)
    report.add_argument("--candidates", type=int, default=12)
    report.add_argument("--datasets", default="BRN,NYC,BAY,COL")
    report.add_argument("--dimacs", metavar="PATH", action="append",
                        default=None,
                        help="run on a real DIMACS .gr file instead of the "
                             "synthetic datasets (repeatable)")
    report.add_argument("--seed", type=int, default=0)

    obs_cmd = sub.add_parser(
        "obs", help="telemetry: run the instrumented demo or lint an export"
    )
    obs_sub = obs_cmd.add_subparsers(dest="obs_command", required=True)
    obs_report = obs_sub.add_parser(
        "report",
        help="run a small instrumented workload and print the metrics report",
    )
    obs_report.add_argument("--side", type=int, default=6,
                            help="demo grid side length (default 6)")
    obs_report.add_argument("--queries", type=int, default=12,
                            help="demo query count (default 12)")
    obs_report.add_argument("--updates", type=int, default=6,
                            help="demo update count (default 6)")
    obs_report.add_argument("--workers", type=int, default=1,
                            help="batch_query worker count (default 1)")
    obs_report.add_argument("--seed", type=int, default=0)
    obs_report.add_argument("--prom", metavar="FILE",
                            help="also write the Prometheus text export here")
    obs_report.add_argument("--trace", metavar="FILE",
                            help="also write JSONL span events here")
    obs_report.add_argument("--json", metavar="FILE", dest="json_file",
                            help="also write the registry snapshot as JSON "
                                 "here ('-' for stdout)")
    obs_lint = obs_sub.add_parser(
        "lint",
        help="lint a Prometheus text export and/or a JSONL span trace",
    )
    obs_lint.add_argument("file", nargs="?", default=None,
                          help="Prometheus text file to lint")
    obs_lint.add_argument("--trace", metavar="FILE",
                          help="JSONL span-event file to lint against the "
                               "span-name taxonomy (docs/OBSERVABILITY.md)")
    obs_flight = obs_sub.add_parser(
        "flight",
        help="run the instrumented demo and dump the flight-recorder tail",
    )
    obs_flight.add_argument("--side", type=int, default=6)
    obs_flight.add_argument("--queries", type=int, default=12)
    obs_flight.add_argument("--updates", type=int, default=6)
    obs_flight.add_argument("--workers", type=int, default=1)
    obs_flight.add_argument("--seed", type=int, default=0)
    obs_flight.add_argument("--last", type=int, default=32,
                            help="events to show from the tail (default 32)")
    obs_flight.add_argument("--seconds", type=float, default=None,
                            help="only events from the last N seconds")
    obs_flight.add_argument("--json", action="store_true",
                            help="print the events as one JSON array")
    obs_top = obs_sub.add_parser(
        "top",
        help="run the instrumented demo under a rolling SLO monitor and "
             "print the burn-rate snapshot plus the slowest queries",
    )
    obs_top.add_argument("--side", type=int, default=6)
    obs_top.add_argument("--queries", type=int, default=12)
    obs_top.add_argument("--updates", type=int, default=6)
    obs_top.add_argument("--workers", type=int, default=1)
    obs_top.add_argument("--seed", type=int, default=0)
    obs_top.add_argument("--objective-ms", type=float, default=100.0,
                         help="latency objective in ms (default 100)")
    obs_top.add_argument("--target", type=float, default=0.99,
                         help="good-fraction target (default 0.99)")
    obs_top.add_argument("--slowest", type=int, default=10,
                         help="slow-query digests to show (default 10)")
    obs_top.add_argument("--json", action="store_true",
                         help="print the snapshot as JSON")

    explain_cmd = sub.add_parser(
        "explain",
        help="EXPLAIN one FSPQ query: kernel, cut-set, Lemma-4 pruning, "
             "label scans and per-stage timings (answer bit-identical to "
             "query())",
    )
    explain_cmd.add_argument("source", type=int, help="source vertex id")
    explain_cmd.add_argument("target", type=int, help="target vertex id")
    explain_cmd.add_argument("--timestep", type=int, default=0)
    explain_cmd.add_argument("--dataset", default="BRN",
                             help="dataset name (default BRN)")
    explain_cmd.add_argument("--scale", type=float, default=0.15,
                             help="dataset scale factor (default 0.15)")
    explain_cmd.add_argument("--seed", type=int, default=0)
    explain_cmd.add_argument("--alpha", type=float, default=0.5)
    explain_cmd.add_argument("--beta", type=float, default=0.5)
    explain_cmd.add_argument("--eta", type=float, default=3.0)
    explain_cmd.add_argument("--pruning", default="lemma4",
                             choices=("none", "lemma4"))
    explain_cmd.add_argument("--kernel", default="flat",
                             choices=("flat", "scalar"))
    explain_cmd.add_argument("--json", action="store_true",
                             help="machine-readable QueryExplain JSON")

    sharded = sub.add_parser(
        "serve-sharded",
        help="run the instrumented sharded-gateway demo workload (docs/API.md)",
    )
    sharded.add_argument("--side", type=int, default=8,
                         help="demo grid side length (default 8)")
    sharded.add_argument("--shards", type=int, default=4,
                         help="number of shards (default 4)")
    sharded.add_argument("--queries", type=int, default=60,
                         help="unique queries in the workload (default 60)")
    sharded.add_argument("--repeat", type=int, default=3,
                         help="times each query repeats (default 3)")
    sharded.add_argument("--updates", type=int, default=6,
                         help="maintenance updates to stream (default 6)")
    sharded.add_argument("--workers", type=int, default=1,
                         help="batch worker count (default 1)")
    sharded.add_argument("--seed", type=int, default=0)
    sharded.add_argument("--prom", metavar="FILE",
                         help="also write the Prometheus text export here")

    serve_async = sub.add_parser(
        "serve-async",
        help="drive closed/open-loop load through the async micro-batching "
             "gateway (docs/API.md, 'Async serving')",
    )
    serve_async.add_argument("--side", type=int, default=8,
                             help="demo grid side length (default 8)")
    serve_async.add_argument("--requests", type=int, default=400,
                             help="requests per load loop (default 400)")
    serve_async.add_argument("--concurrency", type=int, default=64,
                             help="closed-loop virtual clients (default 64)")
    serve_async.add_argument("--rate", type=float, default=4000.0,
                             help="open-loop arrival rate per second "
                                  "(default 4000)")
    serve_async.add_argument("--window-ms", type=float, default=1.5,
                             help="coalescing window in milliseconds "
                                  "(default 1.5; 0 still coalesces one "
                                  "event-loop tick)")
    serve_async.add_argument("--admission-rate", type=float, default=None,
                             help="per-client token-bucket rate "
                                  "(default: admission off)")
    serve_async.add_argument("--seed", type=int, default=0)
    serve_async.add_argument("--prom", metavar="FILE",
                             help="also write the Prometheus text export here")

    recover_cmd = sub.add_parser(
        "recover",
        help="restore a serving engine from a durability directory "
             "(newest valid checkpoint + write-ahead-log replay)",
    )
    recover_cmd.add_argument(
        "directory", help="durability directory (wal-*.log + ckpt-*/)"
    )
    recover_cmd.add_argument("--dataset", default="NYC",
                             help="dataset the engine was built from "
                                  "(default NYC)")
    recover_cmd.add_argument("--scale", type=float, default=0.35,
                             help="dataset scale factor (default 0.35; must "
                                  "match the crashed engine's)")
    recover_cmd.add_argument("--seed", type=int, default=0,
                             help="dataset seed (must match)")
    recover_cmd.add_argument("--fsync", default="interval",
                             choices=("always", "interval", "never"),
                             help="fsync policy for the post-recovery log")
    recover_cmd.add_argument("--no-checkpoint", action="store_true",
                             help="skip the post-recovery checkpoint "
                                  "(faster, but the next crash replays the "
                                  "same tail again)")
    recover_cmd.add_argument("--audit", action="store_true",
                             help="run the sampled Dijkstra self-audit on "
                                  "the recovered engine (exit 1 on failure)")
    return parser


def _config_from_args(args: argparse.Namespace) -> ExperimentConfig:
    from repro.workloads.datasets import DIMACS_PREFIX

    if getattr(args, "dimacs", None):
        datasets = tuple(f"{DIMACS_PREFIX}{path}" for path in args.dimacs)
    else:
        datasets = tuple(
            name.strip().upper() for name in args.datasets.split(",")
        )
    return ExperimentConfig(
        datasets=datasets,
        scale=args.scale,
        num_groups=args.groups,
        queries_per_group=args.queries,
        alpha=args.alpha,
        beta=args.beta,
        eta_u=args.eta,
        max_candidates=args.candidates,
        seed=args.seed,
    )


def _run_stats(args: argparse.Namespace) -> int:
    from repro.core.fahl import FAHLIndex
    from repro.core.stats import compare_indexes, index_statistics
    from repro.experiments.runner import format_table
    from repro.labeling.h2h import H2HIndex
    from repro.workloads.datasets import load_dataset

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    h2h = H2HIndex(dataset.frn.graph.copy())
    fahl = FAHLIndex(
        dataset.frn.graph.copy(),
        dataset.frn.total_predicted_flow(),
        beta=args.beta,
    )
    rows = [
        [name] + [value for _, value in index_statistics(index).as_rows()]
        for name, index in (("H2H", h2h), (f"FAHL(b={args.beta})", fahl))
    ]
    headers = ["index"] + [name for name, _ in index_statistics(h2h).as_rows()]
    print(format_table(
        f"Index statistics — {dataset.name} "
        f"({dataset.num_vertices} vertices)",
        headers,
        rows,
        notes=[
            f"FAHL/H2H ratios: "
            + ", ".join(
                f"{key}={value:.3f}"
                for key, value in compare_indexes(h2h, fahl).items()
            )
        ],
    ))
    return 0


def _run_export(args: argparse.Namespace) -> int:
    from pathlib import Path

    import numpy as np

    from repro.graph.dimacs import write_gr
    from repro.workloads.datasets import load_dataset

    dataset = load_dataset(
        args.dataset, scale=args.scale, days=args.days, seed=args.seed
    )
    directory = Path(args.directory)
    directory.mkdir(parents=True, exist_ok=True)
    stem = dataset.name.lower()
    graph = dataset.frn.graph
    write_gr(graph, directory / f"{stem}.gr",
             comment=f"{dataset.description} (scale={args.scale})")
    with open(directory / f"{stem}.co", "w", encoding="ascii") as handle:
        for vertex in sorted(graph.coordinates):
            x, y = graph.coordinates[vertex]
            handle.write(f"v {vertex + 1} {x} {y}\n")
    np.savez_compressed(
        directory / f"{stem}.flows.npz",
        truth=dataset.frn.flow.matrix,
        predicted=dataset.frn.predicted_flow.matrix,
        lanes=dataset.frn.lanes,
        interval_minutes=dataset.frn.flow.interval_minutes,
    )
    print(f"wrote {stem}.gr / {stem}.co / {stem}.flows.npz to {directory} "
          f"({dataset.num_vertices} vertices, {dataset.num_records:,} records)")
    return 0


def _run_report(args: argparse.Namespace) -> int:
    from pathlib import Path

    import repro

    config = _config_from_args(args)
    sections = [
        "# FAHL reproduction report",
        "",
        f"Generated by `fahl-repro report` (repro v{repro.__version__}), "
        f"scale={config.scale}, queries/group={config.queries_per_group}, "
        f"alpha={config.alpha}, beta={config.beta}, eta_u={config.eta_u}, "
        f"seed={config.seed}.",
        "",
    ]
    for name, module in EXPERIMENTS.items():
        with obs.stopwatch(span="cli.experiment", experiment=name) as sw:
            table = module.run(config)
        print(f"[{name}] done in {sw.seconds:.1f}s")
        sections.append(table.render_markdown())
        sections.append("")
        sections.append(f"*(`fahl-repro run {name}` — {sw.seconds:.1f}s)*")
        sections.append("")
    Path(args.output).write_text("\n".join(sections), encoding="utf-8")
    print(f"wrote {args.output}")
    return 0


def _format_flight_event(event: dict) -> str:
    import json

    kind = event.get("event")
    if kind == "span":
        extra = f" err={event['error']}" if "error" in event else ""
        return (
            f"[span]  {event.get('name', '?'):28s} "
            f"{event.get('dur_s', 0.0) * 1000.0:9.3f} ms  "
            f"pid={event.get('pid', '?')}{extra}"
        )
    if kind == "slow_query":
        attrs = event.get("attrs", {})
        rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        return (
            f"[slow]  {event.get('name', '?'):28s} "
            f"{event.get('dur_s', 0.0) * 1000.0:9.3f} ms  {rendered}"
        )
    if kind == "note":
        attrs = event.get("attrs", {})
        rendered = " ".join(f"{k}={v}" for k, v in sorted(attrs.items()))
        return f"[note]  {event.get('name', '?'):28s}            {rendered}"
    return f"[?]     {json.dumps(event, sort_keys=True)}"


def _run_obs_lint(args: argparse.Namespace) -> int:
    from repro.obs.export import lint_prometheus, lint_spans

    if args.file is None and args.trace is None:
        print(
            "obs lint: nothing to lint — pass a Prometheus file and/or "
            "--trace FILE",
            file=sys.stderr,
        )
        return 2
    problems: list[str] = []
    if args.file is not None:
        with open(args.file, encoding="utf-8") as handle:
            problems += [
                f"{args.file}: {p}" for p in lint_prometheus(handle.read())
            ]
    if args.trace is not None:
        with open(args.trace, encoding="utf-8") as handle:
            problems += [
                f"{args.trace}: {p}" for p in lint_spans(handle)
            ]
    for problem in problems:
        print(f"lint: {problem}", file=sys.stderr)
    if problems:
        return 1
    checked = [f for f in (args.file, args.trace) if f is not None]
    print(f"{', '.join(checked)}: ok")
    return 0


def _run_obs_flight(args: argparse.Namespace) -> int:
    import json

    from repro.obs import flight as obs_flight
    from repro.obs.demo import run_demo

    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    # an in-memory tracer: span events mirror into the flight ring
    previous_tracer = obs.set_tracer(obs.Tracer())
    try:
        run_demo(
            side=args.side,
            queries=args.queries,
            updates=args.updates,
            seed=args.seed,
            workers=args.workers,
        )
        events = obs_flight.dump(last=args.last, seconds=args.seconds)
    finally:
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)
    if args.json:
        print(json.dumps(list(events), sort_keys=True))
        return 0
    recorder = obs_flight.get_flight()
    capacity = recorder.capacity if recorder is not None else 0
    print(
        f"== flight recorder: last {len(events)} of ring capacity "
        f"{capacity} =="
    )
    for event in events:
        print(_format_flight_event(event))
    return 0


def _run_obs_top(args: argparse.Namespace) -> int:
    import json

    from repro.obs import flight as obs_flight
    from repro.obs import slo as obs_slo
    from repro.obs.demo import run_demo

    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    monitor = obs.SLOMonitor(
        objective_seconds=args.objective_ms / 1000.0, target=args.target
    )
    previous_monitor = obs_slo.set_slo_monitor(monitor)
    try:
        run_demo(
            side=args.side,
            queries=args.queries,
            updates=args.updates,
            seed=args.seed,
            workers=args.workers,
        )
        summary = monitor.summary()
        slow = [
            event for event in obs_flight.dump()
            if event.get("event") == "slow_query"
        ]
    finally:
        obs.set_registry(previous_registry)
        obs_slo.set_slo_monitor(previous_monitor)
    slow.sort(key=lambda e: e.get("dur_s", 0.0), reverse=True)
    slow = slow[: max(0, args.slowest)]
    if args.json:
        print(json.dumps({"slo": summary, "slowest": slow}, sort_keys=True))
        return 0
    print("== SLO (rolling window) ==")
    if summary["empty"]:
        print("(no samples recorded)")
    else:
        print(f"objective:        {summary['objective_ms']:.1f} ms "
              f"at target {summary['target']:.4f}")
        print(f"samples:          {summary['count']}")
        print(f"good fraction:    {summary['good_fraction']:.4f} "
              f"({summary['violations']} violations)")
        print(f"burn rate:        {summary['burn_rate']:.3f}")
        print(f"budget remaining: {summary['budget_remaining']:.1%}")
        print(f"latency ms:       p50={summary['p50_ms']:.3f} "
              f"p95={summary['p95_ms']:.3f} p99={summary['p99_ms']:.3f}")
    print(f"\n== slowest queries (flight recorder, top {len(slow)}) ==")
    for event in slow:
        print(_format_flight_event(event))
    return 0


def _run_explain(args: argparse.Namespace) -> int:
    import json

    from repro.core.fahl import FAHLIndex
    from repro.core.fpsps import FlowAwareEngine
    from repro.errors import ReproError
    from repro.workloads.datasets import load_dataset

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    index = FAHLIndex.from_frn(dataset.frn, beta=args.beta)
    engine = FlowAwareEngine(
        dataset.frn,
        oracle=index,
        alpha=args.alpha,
        eta_u=args.eta,
        pruning=args.pruning,
        kernel=args.kernel,
    )
    try:
        with obs.stopwatch(
            span="cli.explain", src=args.source, dst=args.target
        ):
            explain = engine.explain(
                args.source, args.target, timestep=args.timestep
            )
    except ReproError as exc:
        print(f"explain failed: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(explain.to_dict(), sort_keys=True))
    else:
        print(explain.render())
    return 0


def _run_obs(args: argparse.Namespace) -> int:
    import json

    from repro.obs.demo import run_demo
    from repro.obs.export import render_prometheus
    from repro.obs.report import render_report

    if args.obs_command == "lint":
        return _run_obs_lint(args)
    if args.obs_command == "flight":
        return _run_obs_flight(args)
    if args.obs_command == "top":
        return _run_obs_top(args)

    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    trace_handle = open(args.trace, "w", encoding="utf-8") if args.trace else None
    previous_tracer = obs.set_tracer(obs.Tracer(trace_handle) if args.trace else None)
    try:
        summary = run_demo(
            side=args.side,
            queries=args.queries,
            updates=args.updates,
            seed=args.seed,
            workers=args.workers,
        )
        print(render_report(registry))
        print(
            f"# demo: {summary['vertices']} vertices, "
            f"{summary['queries']} queries (batch mode: {summary['batch_mode']}), "
            f"{summary['accepted_updates']} updates applied, "
            f"{summary['dead_letters']} quarantined, "
            f"final state: {summary['state']}"
        )
        if args.prom:
            text = render_prometheus(registry)
            with open(args.prom, "w", encoding="utf-8") as handle:
                handle.write(text)
            print(f"# wrote Prometheus export to {args.prom}")
        if args.trace:
            print(f"# wrote span trace to {args.trace}")
        if args.json_file:
            payload = json.dumps(registry.snapshot(), sort_keys=True)
            if args.json_file == "-":
                print(payload)
            else:
                with open(args.json_file, "w", encoding="utf-8") as handle:
                    handle.write(payload + "\n")
                print(f"# wrote registry snapshot JSON to {args.json_file}")
    finally:
        obs.set_registry(previous_registry)
        obs.set_tracer(previous_tracer)
        if trace_handle is not None:
            trace_handle.close()
    return 0


def _run_serve_sharded(args: argparse.Namespace) -> int:
    from repro.obs.export import render_prometheus
    from repro.obs.report import render_report
    from repro.scale.demo import run_sharded_demo

    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    try:
        summary = run_sharded_demo(
            side=args.side,
            shards=args.shards,
            queries=args.queries,
            repeat=args.repeat,
            updates=args.updates,
            workers=args.workers,
            seed=args.seed,
        )
        print(render_report(registry))
        print(
            f"# sharded demo: {summary['vertices']} vertices over "
            f"{summary['shards']} shards ({summary['boundary_vertices']} "
            f"boundary), {summary['queries']} queries, "
            f"cache hit rate {summary['cache_hit_rate']:.1%} "
            f"({summary['cache_stale_drops']} stale drops), "
            f"{summary['accepted_updates']} updates applied, "
            f"{summary['dead_letters']} quarantined, "
            f"degraded shards: {summary['degraded_shards'] or 'none'}"
        )
        if args.prom:
            with open(args.prom, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(registry))
            print(f"# wrote Prometheus export to {args.prom}")
    finally:
        obs.set_registry(previous_registry)
    return 0


def _run_serve_async(args: argparse.Namespace) -> int:
    from repro.obs.export import render_prometheus
    from repro.obs.report import render_report
    from repro.serving.async_demo import run_async_demo

    registry = obs.MetricsRegistry(enabled=True)
    previous_registry = obs.set_registry(registry)
    try:
        summary = run_async_demo(
            side=args.side,
            requests=args.requests,
            concurrency=args.concurrency,
            rate=args.rate,
            window_seconds=args.window_ms / 1000.0,
            admission_rate=args.admission_rate,
            seed=args.seed,
        )
        print(render_report(registry))
        for loop in ("closed", "open"):
            numbers = summary[loop]
            print(
                f"# {loop}-loop: {numbers['requests']} requests in "
                f"{numbers['wall_seconds']:.3f}s -> "
                f"{numbers['throughput_rps']:,.0f} req/s, "
                f"p50 {numbers['p50_ms']:.2f}ms / "
                f"p99 {numbers['p99_ms']:.2f}ms, "
                f"{numbers['errors']} errors"
            )
        print(
            f"# coalescing: {summary['windows']} windows for "
            f"{2 * summary['requests_per_loop']} requests "
            f"(ratio {summary['coalescing_ratio']:.1f}, largest window "
            f"{summary['largest_window']}); rejected "
            f"{summary['rejected_admission']} admission / "
            f"{summary['rejected_backpressure']} backpressure"
        )
        if args.prom:
            with open(args.prom, "w", encoding="utf-8") as handle:
                handle.write(render_prometheus(registry))
            print(f"# wrote Prometheus export to {args.prom}")
    finally:
        obs.set_registry(previous_registry)
    return 0


def _run_recover(args: argparse.Namespace) -> int:
    from repro.durability import recover
    from repro.errors import RecoveryError
    from repro.workloads.datasets import load_dataset

    dataset = load_dataset(args.dataset, scale=args.scale, seed=args.seed)
    try:
        with obs.stopwatch(span="cli.recover", directory=args.directory):
            engine = recover(
                args.directory,
                dataset.frn,
                fsync=args.fsync,
                checkpoint_on_recover=not args.no_checkpoint,
            )
    except RecoveryError as exc:
        print(f"recovery failed: {exc}", file=sys.stderr)
        return 1
    report = engine.last_recovery
    source = (
        "cold rebuild (no checkpoint)" if report.cold_rebuild
        else f"checkpoint generation {report.generation}"
    )
    print(f"recovered {args.dataset} engine from {args.directory}")
    print(f"  restore source:    {source}")
    if report.fallback_generations:
        print(f"  generations skipped (corrupt): {report.fallback_generations}")
    print(f"  WAL records read:  {report.wal_records}")
    print(f"  replayed updates:  {report.replayed_updates} "
          f"(+{report.resubmitted_updates} in-flight resubmitted)")
    print(f"  dead letters:      {report.replayed_dead_letters} replayed, "
          f"{len(engine.dead_letters)} queued")
    if report.torn_bytes:
        print(f"  torn tail repaired: {report.torn_bytes} bytes truncated")
    print(f"  engine state:      {engine.state} "
          f"({len(engine._deferred)} deferred)")
    print(f"  recovery time:     {report.duration_seconds:.3f}s")
    if args.audit:
        verdict = engine.audit()
        print(f"  post-recovery audit: {'ok' if verdict.ok else 'FAILED'} "
              f"({verdict.checked} samples)")
        if not verdict.ok:
            return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "obs":
        return _run_obs(args)
    if args.command == "explain":
        return _run_explain(args)
    if args.command == "serve-sharded":
        return _run_serve_sharded(args)
    if args.command == "serve-async":
        return _run_serve_async(args)
    if args.command == "recover":
        return _run_recover(args)
    if args.command == "list":
        for key, module in EXPERIMENTS.items():
            summary = (module.__doc__ or "").strip().splitlines()[0]
            print(f"{key:16s} {summary}")
        return 0
    if args.command == "stats":
        return _run_stats(args)
    if args.command == "export-dataset":
        return _run_export(args)
    if args.command == "report":
        return _run_report(args)

    config = _config_from_args(args)
    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    unknown = [name for name in names if name not in EXPERIMENTS]
    if unknown:
        print(
            f"unknown experiment(s): {', '.join(unknown)}; "
            f"choose from {', '.join(EXPERIMENTS)} or 'all'",
            file=sys.stderr,
        )
        return 2
    for name in names:
        with obs.stopwatch(span="cli.experiment", experiment=name) as sw:
            table = EXPERIMENTS[name].run(config)
        print(table.render())
        print(f"# completed in {sw.seconds:.1f}s\n")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
