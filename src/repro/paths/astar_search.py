"""A* point-to-point search with pluggable admissible heuristics.

Two heuristics are used in the library:

* :class:`OracleHeuristic` — ``h(v) = oracle.distance(v, t)``, the *exact*
  remaining distance from a labeling index.  Admissible and consistent on
  the original graph and on any graph obtained by removing edges/vertices
  (removals only increase true distances), which is exactly what Yen's spur
  searches need.
* :class:`EuclideanHeuristic` — scaled straight-line distance, for the
  index-free A* baseline.  The scale is the minimum weight/length ratio over
  all edges, keeping the heuristic admissible under jittered weights.

The search supports banned vertices and banned edges so Yen's algorithm can
run its deviations without copying the graph.
"""

from __future__ import annotations

import heapq
import math

from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork

__all__ = [
    "AdmissibleHeuristic",
    "EuclideanHeuristic",
    "OracleHeuristic",
    "ZeroHeuristic",
    "astar_path",
]


class AdmissibleHeuristic:
    """Interface: a lower bound on the distance to a fixed target."""

    def estimate(self, vertex: int) -> float:
        raise NotImplementedError


class ZeroHeuristic(AdmissibleHeuristic):
    """Degenerates A* to Dijkstra."""

    def estimate(self, vertex: int) -> float:
        del vertex
        return 0.0


class OracleHeuristic(AdmissibleHeuristic):
    """Exact remaining distance from a distance oracle (perfect guidance)."""

    def __init__(self, oracle, target: int) -> None:
        self._oracle = oracle
        self._target = target
        self._cache: dict[int, float] = {}

    def estimate(self, vertex: int) -> float:
        cached = self._cache.get(vertex)
        if cached is None:
            cached = self._oracle.distance(vertex, self._target)
            self._cache[vertex] = cached
        return cached


class EuclideanHeuristic(AdmissibleHeuristic):
    """Scaled straight-line lower bound (requires vertex coordinates)."""

    def __init__(self, graph: RoadNetwork, target: int) -> None:
        if target not in graph.coordinates:
            raise QueryError(f"vertex {target} has no coordinates for A*")
        self._coords = graph.coordinates
        self._tx, self._ty = graph.coordinates[target]
        self._scale = self._admissible_scale(graph)

    @staticmethod
    def _admissible_scale(graph: RoadNetwork) -> float:
        scale = math.inf
        for u, v, w in graph.edges():
            cu = graph.coordinates.get(u)
            cv = graph.coordinates.get(v)
            if cu is None or cv is None:
                return 0.0
            length = math.hypot(cu[0] - cv[0], cu[1] - cv[1])
            if length > 0:
                scale = min(scale, w / length)
        return 0.0 if scale is math.inf else scale

    def estimate(self, vertex: int) -> float:
        coord = self._coords.get(vertex)
        if coord is None:
            return 0.0
        return self._scale * math.hypot(coord[0] - self._tx, coord[1] - self._ty)


def astar_path(
    graph: RoadNetwork,
    source: int,
    target: int,
    heuristic: AdmissibleHeuristic,
    banned_vertices: set[int] | None = None,
    banned_edges: set[tuple[int, int]] | None = None,
    cutoff: float = math.inf,
) -> tuple[list[int], float]:
    """Shortest path avoiding banned vertices/edges; ``([], inf)`` if none.

    ``banned_edges`` entries are undirected (stored as sorted tuples).
    ``cutoff`` abandons the search once even the optimistic estimate of the
    best frontier entry exceeds it.
    """
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise QueryError(f"unknown vertices ({source}, {target})")
    banned_vertices = banned_vertices or set()
    if source in banned_vertices or target in banned_vertices:
        return [], math.inf
    banned_edges = banned_edges or set()

    dist = {source: 0.0}
    prev: dict[int, int] = {}
    heap: list[tuple[float, float, int]] = [(heuristic.estimate(source), 0.0, source)]
    while heap:
        f, d, u = heapq.heappop(heap)
        if f > cutoff:
            break
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return path, d
        if d > dist.get(u, math.inf):
            continue
        for v, w in graph.neighbor_items(u):
            if v in banned_vertices:
                continue
            if (min(u, v), max(u, v)) in banned_edges:
                continue
            nd = d + w
            if nd < dist.get(v, math.inf):
                dist[v] = nd
                prev[v] = u
                estimate = nd + heuristic.estimate(v)
                if estimate <= cutoff:
                    heapq.heappush(heap, (estimate, nd, v))
    return [], math.inf
