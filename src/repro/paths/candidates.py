"""Candidate path generation for FSPQ (the ``Path_c`` of Alg. 5).

The paper generates candidates "by the LCA node and Eq. 5"; concretely, a
candidate set must hold every simple path whose spatial distance does not
exceed ``MCPDis = η_u · SPDis`` (longer paths can never be the flow-aware
optimum — Def. 5).  We enumerate them with bounded Yen deviations
(:mod:`repro.paths.yen`) guided by the querying method's own distance
oracle, so a faster oracle yields faster candidate generation — the same
lever the paper's indexes pull.

:func:`enumerate_all_paths_within` is an exponential exhaustive reference
for property tests on small graphs.
"""

from __future__ import annotations

import math

from repro.graph.road_network import RoadNetwork
from repro.paths.astar_search import (
    AdmissibleHeuristic,
    EuclideanHeuristic,
    OracleHeuristic,
    ZeroHeuristic,
)
from repro.paths.yen import CandidateSet, k_shortest_paths

__all__ = [
    "generate_candidates",
    "heuristic_for",
    "enumerate_all_paths_within",
]


def heuristic_for(graph: RoadNetwork, oracle, target: int) -> AdmissibleHeuristic:
    """Pick the best admissible heuristic available for ``oracle``.

    Oracles exposing their own ``heuristic(target)`` factory (e.g. the ALT
    landmark oracle, whose per-vertex bound is a table lookup rather than a
    search) provide it directly; other index-backed oracles wrap their
    exact ``distance``; the index-free baselines fall back to euclidean
    coordinates or to Dijkstra (zero heuristic).
    """
    if oracle is not None:
        factory = getattr(oracle, "heuristic", None)
        if callable(factory):
            return factory(target)
        return OracleHeuristic(oracle, target)
    if target in graph.coordinates:
        return EuclideanHeuristic(graph, target)
    return ZeroHeuristic()


def generate_candidates(
    graph: RoadNetwork,
    source: int,
    target: int,
    max_distance: float,
    oracle=None,
    max_candidates: int = 64,
) -> CandidateSet:
    """All simple paths with distance <= ``max_distance`` (capped).

    ``oracle`` is any object with ``distance(u, v)``; ``None`` selects the
    index-free heuristics (the A*/Dijkstra baselines).
    """
    heuristic = heuristic_for(graph, oracle, target)
    return k_shortest_paths(
        graph,
        source,
        target,
        heuristic,
        max_distance=max_distance,
        max_paths=max_candidates,
    )


def enumerate_all_paths_within(
    graph: RoadNetwork,
    source: int,
    target: int,
    max_distance: float,
) -> CandidateSet:
    """Exhaustive DFS over simple paths within the bound (tests only).

    Exponential — only call on small graphs.
    """
    paths: list[list[int]] = []
    distances: list[float] = []
    on_path = [False] * graph.num_vertices
    trail = [source]
    on_path[source] = True

    def visit(vertex: int, cost: float) -> None:
        if vertex == target:
            paths.append(list(trail))
            distances.append(cost)
            return
        for nbr, w in graph.neighbor_items(vertex):
            if on_path[nbr] or cost + w > max_distance:
                continue
            on_path[nbr] = True
            trail.append(nbr)
            visit(nbr, cost + w)
            trail.pop()
            on_path[nbr] = False

    if source == target:
        return CandidateSet(paths=[[source]], distances=[0.0], truncated=False)
    visit(source, 0.0)
    order = sorted(range(len(paths)), key=lambda i: (distances[i], paths[i]))
    return CandidateSet(
        paths=[paths[i] for i in order],
        distances=[distances[i] for i in order],
        truncated=False,
    )


def path_distance(graph: RoadNetwork, path: list[int]) -> float:
    """Sum of edge weights along ``path`` (inf for an empty path)."""
    if not path:
        return math.inf
    return sum(graph.weight(u, v) for u, v in zip(path, path[1:]))
