"""Flow-aware distance scoring (paper Def. 5, Eq. 1-3).

The flow-aware distance of a candidate path blends its min-max normalised
spatial distance and traffic-flow:

.. math::

    FSD = \\alpha \\cdot PDis' + (1 - \\alpha) \\cdot TF'

Normalisation constants follow the paper: the distance range is anchored at
``[SPDis, MCPDis]`` (shortest distance to the user-constrained maximum,
Def. 5's discussion), and the flow range is the min/max over the candidate
set at the query time slice.  Degenerate ranges (all candidates equal in a
dimension) contribute zero, which matches the limit of the formula.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from repro.errors import QueryError

__all__ = ["NormalizationContext", "ScoredPath", "score_candidates"]


@dataclass(frozen=True)
class NormalizationContext:
    """Fixed normalisation anchors for one query."""

    dist_min: float
    dist_max: float
    flow_min: float
    flow_max: float

    @property
    def dist_range(self) -> float:
        return self.dist_max - self.dist_min

    @property
    def flow_range(self) -> float:
        return self.flow_max - self.flow_min

    def normalize_distance(self, distance: float) -> float:
        if self.dist_range <= 0:
            return 0.0
        return (distance - self.dist_min) / self.dist_range

    def normalize_flow(self, flow: float) -> float:
        if self.flow_range <= 0:
            return 0.0
        return (flow - self.flow_min) / self.flow_range


@dataclass(frozen=True)
class ScoredPath:
    """A candidate with its spatial distance, path flow, and FSD score."""

    path: tuple[int, ...]
    distance: float
    flow: float
    score: float


def score_candidates(
    paths: list[list[int]],
    distances: list[float],
    flows: list[float],
    alpha: float,
    context: NormalizationContext,
) -> list[ScoredPath]:
    """Score every candidate by Eq. 1 under the given normalisation.

    Returns the candidates sorted by ``(score, distance, flow)`` so index 0
    is the flow-aware optimum with deterministic tie-breaking.
    """
    if not 0.0 < alpha < 1.0:
        raise QueryError(f"alpha must be in (0, 1), got {alpha}")
    if not len(paths) == len(distances) == len(flows):
        raise QueryError("paths, distances and flows must align")
    scored: list[ScoredPath] = []
    for path, dist, flow in zip(paths, distances, flows):
        if not math.isfinite(dist):
            continue
        score = alpha * context.normalize_distance(dist) + (
            1.0 - alpha
        ) * context.normalize_flow(flow)
        scored.append(ScoredPath(tuple(path), dist, flow, score))
    scored.sort(key=lambda s: (s.score, s.distance, s.flow))
    return scored


def path_flow(flow_vector: np.ndarray, path: list[int]) -> float:
    """Path traffic-flow: sum of vertex flows along ``path`` (Def. 3)."""
    return float(np.take(flow_vector, path).sum())
