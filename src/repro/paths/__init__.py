"""Candidate path enumeration and flow-aware scoring."""

from repro.paths.astar_search import (
    AdmissibleHeuristic,
    EuclideanHeuristic,
    OracleHeuristic,
    ZeroHeuristic,
    astar_path,
)
from repro.paths.candidates import (
    enumerate_all_paths_within,
    generate_candidates,
    heuristic_for,
    path_distance,
)
from repro.paths.scoring import (
    NormalizationContext,
    ScoredPath,
    path_flow,
    score_candidates,
)
from repro.paths.yen import CandidateSet, k_shortest_paths

__all__ = [
    "AdmissibleHeuristic",
    "CandidateSet",
    "EuclideanHeuristic",
    "NormalizationContext",
    "OracleHeuristic",
    "ScoredPath",
    "ZeroHeuristic",
    "astar_path",
    "enumerate_all_paths_within",
    "generate_candidates",
    "heuristic_for",
    "k_shortest_paths",
    "path_distance",
    "path_flow",
    "score_candidates",
]
