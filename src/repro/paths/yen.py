"""Yen's algorithm: loopless k-shortest paths within a distance bound.

The FSPQ candidate set ``Path_c`` must contain every potentially optimal
path — i.e. simple paths with spatial distance at most ``MCPDis = η_u ·
SPDis`` (Def. 5).  Yen's deviation scheme enumerates simple paths in
strictly non-decreasing distance order, so the enumeration stops exactly
when the bound is crossed (or a candidate cap is hit, which is logged in
the result rather than silently applied).

:func:`iter_shortest_paths` is the *lazy* generator form: deviations of an
accepted path are only computed when the consumer asks for the next path.
This is what makes FPSPS's pruning bounds worth real time — when the
engine's score-dominance test stops consuming, all remaining spur searches
(the dominant query cost) are skipped entirely.

Every spur search is an A* run with a caller-supplied admissible heuristic;
with an index-backed :class:`~repro.paths.astar_search.OracleHeuristic` the
spur searches expand almost only the vertices of the found path, which is
how the label indexes accelerate candidate generation end-to-end.
"""

from __future__ import annotations

import heapq
import math
from collections.abc import Iterator
from dataclasses import dataclass

from repro.errors import QueryError
from repro.graph.road_network import RoadNetwork
from repro.paths.astar_search import AdmissibleHeuristic, astar_path

__all__ = ["CandidateSet", "iter_shortest_paths", "k_shortest_paths"]


@dataclass(frozen=True)
class CandidateSet:
    """Result of a bounded path enumeration.

    Attributes
    ----------
    paths:
        Simple paths in non-decreasing distance order.
    distances:
        Spatial distance of each path, aligned with ``paths``.
    truncated:
        True when the candidate cap stopped the enumeration before the
        distance bound did (coverage caveat for very dense graphs).
    """

    paths: list[list[int]]
    distances: list[float]
    truncated: bool

    def __len__(self) -> int:
        return len(self.paths)


def iter_shortest_paths(
    graph: RoadNetwork,
    source: int,
    target: int,
    heuristic: AdmissibleHeuristic,
    max_distance: float = math.inf,
    banned_vertices: set[int] | None = None,
) -> Iterator[tuple[list[int], float]]:
    """Yield loopless paths in non-decreasing distance order (lazy Yen).

    Deviations of path *i* are computed only when path *i+1* is requested,
    so an early-stopping consumer pays nothing for paths it never sees.
    """
    banned = set(banned_vertices) if banned_vertices else set()
    best, best_dist = astar_path(
        graph, source, target, heuristic,
        banned_vertices=banned, cutoff=max_distance,
    )
    if not best or best_dist > max_distance:
        return
    yield best, best_dist

    accepted: list[list[int]] = [best]
    seen: set[tuple[int, ...]] = {tuple(best)}
    # frontier of deviation candidates: (distance, tie, path)
    frontier: list[tuple[float, int, list[int]]] = []
    counter = 0

    while True:
        base = accepted[-1]
        prefix_cost = 0.0
        for i in range(len(base) - 1):
            spur = base[i]
            root = base[: i + 1]
            banned_edges: set[tuple[int, int]] = set()
            for path in accepted:
                if len(path) > i and path[: i + 1] == root:
                    a, b = path[i], path[i + 1]
                    banned_edges.add((min(a, b), max(a, b)))
            spur_banned = banned | set(root[:-1])
            remaining = max_distance - prefix_cost
            spur_path, spur_dist = astar_path(
                graph,
                spur,
                target,
                heuristic,
                banned_vertices=spur_banned,
                banned_edges=banned_edges,
                cutoff=remaining,
            )
            if spur_path:
                total = prefix_cost + spur_dist
                candidate = root[:-1] + spur_path
                key = tuple(candidate)
                if total <= max_distance and key not in seen:
                    seen.add(key)
                    counter += 1
                    heapq.heappush(frontier, (total, counter, candidate))
            prefix_cost += graph.weight(base[i], base[i + 1])
        if not frontier:
            return
        dist, _, path = heapq.heappop(frontier)
        accepted.append(path)
        yield path, dist


def k_shortest_paths(
    graph: RoadNetwork,
    source: int,
    target: int,
    heuristic: AdmissibleHeuristic,
    max_distance: float = math.inf,
    max_paths: int = 64,
    banned_vertices: set[int] | None = None,
) -> CandidateSet:
    """Enumerate loopless paths ``source -> target`` up to ``max_distance``.

    Parameters
    ----------
    heuristic:
        Admissible heuristic toward ``target``; must stay admissible under
        edge/vertex removals (true for oracle and euclidean heuristics).
    max_distance:
        Inclusive distance bound (the paper's MCPDis).
    max_paths:
        Hard cap; ``truncated`` reports whether it fired.
    banned_vertices:
        Vertices no enumerated path may visit (constrained FSPQ).
    """
    if max_paths < 1:
        raise QueryError(f"max_paths must be >= 1, got {max_paths}")
    paths: list[list[int]] = []
    distances: list[float] = []
    truncated = False
    for path, dist in iter_shortest_paths(
        graph, source, target, heuristic,
        max_distance=max_distance, banned_vertices=banned_vertices,
    ):
        if len(paths) == max_paths:
            # the generator produced one more path within the bound: the
            # cap fired before the distance bound did.
            truncated = True
            break
        paths.append(path)
        distances.append(dist)
    return CandidateSet(paths=paths, distances=distances, truncated=truncated)
