"""Persist hierarchical labeling indexes to disk (single ``.npz`` file).

A production deployment builds the index offline and ships it to query
servers; this module packs a :class:`HierarchyIndex` (H2H or FAHL) into one
compressed numpy archive and restores it without re-running elimination or
the label DP.  The graph itself is stored alongside (edges + weights +
coordinates) so a loaded index is self-contained and immediately queryable.

Format (npz keys)
-----------------
``meta``              [version, kind, n, beta*]            (kind: 0=H2H, 1=FAHL)
``edges``             int64[m, 2], ``weights`` float64[m]
``coords_ids/xy``     optional vertex coordinates
``order``             int64[n] elimination order
``phi``               float64[n]
``bag_offsets/keys/weights/middles``  flattened bags (-1 middle = original)
``label_offsets/values``              flattened distance labels
``via_values``                         flattened via indices
``flows`` / ``anchors``                FAHL only
``checksum``                           uint8[16] blake2b over all other arrays

Integrity: :func:`save_index` stores a content digest covering every other
array in the archive; :func:`load_index` recomputes and compares it before
touching any data, raising :class:`~repro.errors.IndexIntegrityError`
(carrying expected vs actual digest and the declared format version) on
mismatch — a bit-flipped or truncated index file fails loudly instead of
serving silently wrong labels.  Unreadable archives (truncated zip,
missing arrays) raise the same error, so recovery code has a single
"this generation is bad" signal.  Version-1 archives (pre-checksum)
still load.
"""

from __future__ import annotations

import hashlib
import zipfile
import zlib
from pathlib import Path

import numpy as np

from repro.errors import DatasetFormatError, IndexIntegrityError
from repro.graph.road_network import RoadNetwork
from repro.labeling.h2h import H2HIndex
from repro.labeling.hierarchy import HierarchyIndex
from repro.treedec.elimination import EliminationResult

__all__ = ["save_index", "load_index"]

_FORMAT_VERSION = 2
_KIND_H2H = 0
_KIND_FAHL = 1
_CHECKSUM_KEY = "checksum"


def _payload_digest(arrays: dict[str, np.ndarray]) -> np.ndarray:
    """Order-independent blake2b digest over every non-checksum array.

    Key name, dtype, shape and raw bytes all feed the hash, so a renamed,
    retyped, reshaped or bit-flipped array each produce a distinct digest.
    """
    h = hashlib.blake2b(digest_size=16)
    for key in sorted(arrays):
        if key == _CHECKSUM_KEY:
            continue
        arr = np.ascontiguousarray(arrays[key])
        h.update(key.encode())
        h.update(str(arr.dtype).encode())
        h.update(repr(arr.shape).encode())
        h.update(arr.tobytes())
    return np.frombuffer(h.digest(), dtype=np.uint8)


def save_index(index: HierarchyIndex, path: str | Path) -> None:
    """Write ``index`` (H2H or FAHL) to ``path`` as a compressed ``.npz``."""
    # imported here to avoid a package-level cycle (core.fahl subclasses
    # labeling.hierarchy, whose package re-exports this module)
    from repro.core.fahl import FAHLIndex

    graph = index.graph
    n = graph.num_vertices
    edges = np.asarray(
        [(u, v) for u, v, _ in graph.edges()], dtype=np.int64
    ).reshape(-1, 2)
    weights = np.asarray([w for _, _, w in graph.edges()], dtype=np.float64)

    bag_offsets = np.zeros(n + 1, dtype=np.int64)
    bag_keys: list[int] = []
    bag_weights: list[float] = []
    bag_middles: list[int] = []
    for v in range(n):
        bag = index.elim.bags[v]
        mid = index.elim.middles[v]
        bag_offsets[v + 1] = bag_offsets[v] + len(bag)
        for x, w in bag.items():
            bag_keys.append(x)
            bag_weights.append(w)
            middle = mid.get(x)
            bag_middles.append(-1 if middle is None else middle)

    label_offsets = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        label_offsets[v + 1] = label_offsets[v] + len(index.labels[v])
    label_values = np.concatenate(
        [index.labels[v] for v in range(n)]
    ) if n else np.empty(0)
    via_values = np.concatenate(
        [index.vias[v].astype(np.int32) for v in range(n)]
    ) if n else np.empty(0, dtype=np.int32)

    kind = _KIND_FAHL if isinstance(index, FAHLIndex) else _KIND_H2H
    beta = index.beta if isinstance(index, FAHLIndex) else 0.0
    payload: dict[str, np.ndarray] = {
        "meta": np.asarray([_FORMAT_VERSION, kind, n, beta], dtype=np.float64),
        "edges": edges,
        "weights": weights,
        "order": np.asarray(index.elim.order, dtype=np.int64),
        "phi": np.asarray(index.elim.phi_at_elim, dtype=np.float64),
        "bag_offsets": bag_offsets,
        "bag_keys": np.asarray(bag_keys, dtype=np.int64),
        "bag_weights": np.asarray(bag_weights, dtype=np.float64),
        "bag_middles": np.asarray(bag_middles, dtype=np.int64),
        "label_offsets": label_offsets,
        "label_values": label_values,
        "via_values": via_values,
    }
    if graph.coordinates:
        ids = sorted(graph.coordinates)
        payload["coords_ids"] = np.asarray(ids, dtype=np.int64)
        payload["coords_xy"] = np.asarray(
            [graph.coordinates[i] for i in ids], dtype=np.float64
        )
    if isinstance(index, FAHLIndex):
        payload["flows"] = index.flows
        payload["anchors"] = np.asarray(index.flow_anchors, dtype=np.float64)
    payload[_CHECKSUM_KEY] = _payload_digest(payload)
    np.savez_compressed(path, **payload)


def _restore_graph(data) -> RoadNetwork:
    n = int(data["meta"][2])
    graph = RoadNetwork(n)
    for (u, v), w in zip(data["edges"], data["weights"]):
        graph.add_edge(int(u), int(v), float(w))
    if "coords_ids" in data:
        for vid, (x, y) in zip(data["coords_ids"], data["coords_xy"]):
            graph.coordinates[int(vid)] = (float(x), float(y))
    return graph


def _restore_elimination(data, n: int) -> EliminationResult:
    order = [int(v) for v in data["order"]]
    rank = np.full(n, -1, dtype=np.int64)
    for r, v in enumerate(order):
        rank[v] = r
    offsets = data["bag_offsets"]
    keys = data["bag_keys"]
    weights = data["bag_weights"]
    middles_flat = data["bag_middles"]
    bags: list[dict[int, float]] = [{} for _ in range(n)]
    middles: list[dict[int, int | None]] = [{} for _ in range(n)]
    for v in range(n):
        lo, hi = int(offsets[v]), int(offsets[v + 1])
        for i in range(lo, hi):
            x = int(keys[i])
            bags[v][x] = float(weights[i])
            middle = int(middles_flat[i])
            middles[v][x] = None if middle < 0 else middle
    return EliminationResult(
        order=order,
        rank=rank,
        bags=bags,
        middles=middles,
        phi_at_elim=np.asarray(data["phi"], dtype=np.float64),
    )


def load_index(path: str | Path) -> HierarchyIndex:
    """Load an index saved by :func:`save_index`.

    Rebuilds the derived structures (tree, LCA, position arrays) from the
    stored elimination and restores the label arrays verbatim — no label DP
    is re-run.  Returns an :class:`H2HIndex` or :class:`FAHLIndex` matching
    what was saved.
    """
    from repro.core.fahl import FAHLIndex

    try:
        with np.load(path) as data:
            return _restore_index(data, path, FAHLIndex)
    except DatasetFormatError:
        raise  # includes IndexIntegrityError — already forensic
    except (
        OSError, KeyError, ValueError, EOFError, NotImplementedError,
        zipfile.BadZipFile, zlib.error,
    ) as exc:
        # truncated zip central directory, missing arrays, short reads,
        # a corrupted compression-method field (zipfile's
        # NotImplementedError) — numpy/zipfile surface them all
        # differently; recovery needs one "this file is bad" signal
        raise IndexIntegrityError(
            path, f"unreadable archive ({type(exc).__name__}: {exc})"
        ) from exc


def _restore_index(data, path, fahl_cls) -> HierarchyIndex:
    meta = data["meta"]
    version, kind, n = int(meta[0]), int(meta[1]), int(meta[2])
    if not 1 <= version <= _FORMAT_VERSION:
        raise IndexIntegrityError(
            path, f"unsupported format version {version}", version=version
        )
    if version >= 2:
        # verify content integrity before restoring anything
        if _CHECKSUM_KEY not in data:
            raise IndexIntegrityError(
                path, "missing its checksum", version=version
            )
        arrays = {key: data[key] for key in data.files}
        stored = np.asarray(arrays[_CHECKSUM_KEY], dtype=np.uint8)
        expected = _payload_digest(arrays)
        if stored.shape != expected.shape or not np.array_equal(stored, expected):
            raise IndexIntegrityError(
                path,
                "checksum mismatch (corrupted or tampered file)",
                expected_checksum=bytes(stored.tobytes()).hex(),
                actual_checksum=bytes(expected.tobytes()).hex(),
                version=version,
            )
    graph = _restore_graph(data)
    elimination = _restore_elimination(data, n)

    if kind == _KIND_FAHL:
        index = fahl_cls.__new__(fahl_cls)
        index.beta = float(meta[3])
        index.flows = np.asarray(data["flows"], dtype=np.float64)
        index.flow_anchors = (
            float(data["anchors"][0]),
            float(data["anchors"][1]),
        )
    elif kind == _KIND_H2H:
        index = H2HIndex.__new__(H2HIndex)
    else:
        raise IndexIntegrityError(
            path, f"unknown index kind {kind}", version=version
        )

    # bypass __init__ (which would rebuild): restore state directly
    index.graph = graph
    index.elim = elimination
    index.labels = [np.empty(0)] * n
    index.vias = [np.empty(0, dtype=np.int32)] * n
    index.rebuild_structure()

    label_offsets = data["label_offsets"]
    label_values = data["label_values"]
    via_values = data["via_values"]
    via_offset = 0
    for v in range(n):
        lo, hi = int(label_offsets[v]), int(label_offsets[v + 1])
        index.labels[v] = np.asarray(label_values[lo:hi], dtype=np.float64)
        # the via array is one shorter than the label (no self entry)
        length = hi - lo - 1
        index.vias[v] = np.asarray(
            via_values[via_offset: via_offset + length], dtype=np.int32
        )
        via_offset += length
    return index
