"""Hierarchical 2-hop labeling over a tree decomposition.

This is the machinery shared by H2H (degree ordering) and FAHL (degree-flow
joint ordering): only the elimination ordering differs; the label structure
(Def. 8), the LCA-based distance query (Alg. 2 / Eq. 5), path unpacking and
the partial label-refresh used by the maintenance algorithms are identical.

Labels are computed by a root-to-leaf DFS that maintains ``M``, the pairwise
shortest-distance matrix of the current root path: the distance array of
``v`` at depth ``d`` is

.. math::

    dis(v, m_j) = \\min_{x \\in bag(v)} \\big( w_H(v, x) + M[pos(x), j] \\big)
    \\qquad j < d

— one vectorised numpy reduction per vertex, which is what makes pure-Python
labeling viable at reproduction scale.  The same DFS, restricted to dirty
subtrees with change-propagation pruning, implements the label refresh that
ILU/ISU need; its return value (number of labels actually rewritten) is the
"affected labels" metric of the paper's Fig. 9.
"""

from __future__ import annotations

import copy
import hashlib

import numpy as np

from repro import obs
from repro.errors import IndexStateError, QueryError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected
from repro.labeling.arena import LabelArena
from repro.treedec.elimination import EliminationResult, eliminate
from repro.treedec.lca import EulerTourLCA
from repro.treedec.ordering import ImportanceFunction
from repro.treedec.tree import TreeDecomposition

__all__ = ["HierarchyIndex", "build_hierarchy_index"]


class HierarchyIndex:
    """Tree-decomposition 2-hop labeling with exact distance/path queries.

    Not built directly in user code — use :func:`build_hierarchy_index`, or
    the :class:`~repro.labeling.h2h.H2HIndex` / ``FAHLIndex`` wrappers.
    """

    def __init__(self, graph: RoadNetwork, elimination: EliminationResult) -> None:
        self.graph = graph
        self.elim = elimination
        n = graph.num_vertices
        self.labels: list[np.ndarray] = [np.empty(0)] * n
        self.vias: list[np.ndarray] = [np.empty(0, dtype=np.int32)] * n
        with obs.stopwatch(
            metric="repro_build_phase_seconds",
            span="build.structure",
            phase="tree-structure",
        ):
            self.rebuild_structure()
        with obs.stopwatch(
            metric="repro_build_phase_seconds",
            span="build.labeling",
            phase="labeling",
        ):
            self.refresh_labels()

    # ------------------------------------------------------------------
    # structure
    # ------------------------------------------------------------------
    def rebuild_structure(self) -> None:
        """(Re)derive tree, LCA, ancestor/position arrays from ``self.elim``.

        Called at construction and after ISU/GSU change the elimination.
        Bumps the label version, invalidating any packed :class:`LabelArena`.
        """
        self.tree = TreeDecomposition(self.elim)
        self.lca = EulerTourLCA(self.tree)
        n = self.graph.num_vertices
        depth = self.tree.depth

        # ancestor arrays (root-to-v paths) packed into one preallocated
        # flat array + offsets (shared with the arena); the preorder DFS
        # keeps the current root path in a reusable buffer, so each vertex
        # costs two slice copies instead of one tiny allocation.
        offsets = np.zeros(n + 1, dtype=np.int64)
        np.cumsum(depth + 1, out=offsets[1:])
        flat = np.empty(int(offsets[n]), dtype=np.int64)
        path_buf = np.empty(int(depth.max()) + 1, dtype=np.int64)
        stack = [self.tree.root]
        while stack:
            v = stack.pop()
            d = int(depth[v])
            path_buf[d] = v
            flat[offsets[v]:offsets[v] + d + 1] = path_buf[:d + 1]
            stack.extend(self.tree.children[v])
        self.anc_offsets = offsets
        self.anc_flat = flat
        self.anc: list[np.ndarray] = [
            flat[offsets[v]:offsets[v + 1]] for v in range(n)
        ]

        self.bag_keys: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        self.bag_weights: list[np.ndarray] = [np.empty(0)] * n
        self.bag_pos: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        self.positions: list[np.ndarray] = [np.empty(0, dtype=np.int64)] * n
        for v in range(n):
            self.sync_bag(v)
        self._depth = depth
        self._inv_bags: list[set[int]] | None = None
        self._arena: LabelArena | None = None
        self._version = getattr(self, "_version", 0) + 1

    def inverse_bags(self) -> list[set[int]]:
        """``inv[x]`` = vertices whose bag contains ``x`` (cached).

        The ILU shortcut-repair pass intersects these sets to find the
        "contributors" of a bag edge.  The cache is invalidated whenever the
        elimination structure is rebuilt.
        """
        if self._inv_bags is None:
            n = self.graph.num_vertices
            inv: list[set[int]] = [set() for _ in range(n)]
            for c in range(n):
                for x in self.elim.bags[c]:
                    inv[x].add(c)
            self._inv_bags = inv
        return self._inv_bags

    def sync_bag(self, v: int) -> None:
        """Refresh the vectorised views of ``v``'s bag after a mutation."""
        bag = self.elim.bags[v]
        keys = np.fromiter(bag.keys(), dtype=np.int64, count=len(bag))
        self.bag_keys[v] = keys
        self.bag_weights[v] = np.fromiter(bag.values(), dtype=np.float64, count=len(bag))
        depth = self.tree.depth
        self.bag_pos[v] = depth[keys] if len(keys) else np.empty(0, dtype=np.int64)
        positions = np.append(self.bag_pos[v], depth[v])
        positions.sort()
        self.positions[v] = positions
        self._version = getattr(self, "_version", 0) + 1

    # ------------------------------------------------------------------
    # labels
    # ------------------------------------------------------------------
    def refresh_labels(
        self,
        seeds: set[int] | None = None,
        force_subtree_roots: set[int] | None = None,
    ) -> int:
        """(Re)compute distance labels top-down.

        Parameters
        ----------
        seeds:
            ``None`` recomputes everything.  Otherwise only vertices in
            ``seeds`` (bag weights changed) and descendants of vertices
            whose label actually changed are recomputed; subtrees that
            contain no seed and whose ancestors' labels are unchanged are
            skipped entirely.
        force_subtree_roots:
            Vertices whose *entire subtree* must be recomputed regardless of
            value comparison — used after structure updates, where ancestor
            arrays changed and old label values are meaningless even when
            numerically equal.

        Returns
        -------
        int
            Number of labels rewritten (the paper's "affected labels").
        """
        tree = self.tree
        depth = tree.depth
        n = tree.num_vertices
        full = seeds is None and force_subtree_roots is None
        seeds = seeds or set()
        force_subtree_roots = force_subtree_roots or set()

        need_below = None
        if not full:
            # mark every vertex having a seed in its subtree (walk ancestors)
            need_below = bytearray(n)
            parent = tree.parent
            for s in set(seeds) | force_subtree_roots:
                v = s
                while v >= 0 and not need_below[v]:
                    need_below[v] = 1
                    v = int(parent[v])

        h = tree.treeheight
        matrix = np.empty((h + 1, h + 1), dtype=np.float64)
        changed_count = 0

        # preorder DFS; each entry carries "an ancestor's label changed or
        # the subtree was force-marked" (both mean: recompute unconditionally
        # and propagate downward).
        stack: list[tuple[int, bool]] = [
            (tree.root, full or tree.root in force_subtree_roots)
        ]
        while stack:
            v, anc_changed = stack.pop()
            d = int(depth[v])
            recompute = anc_changed or v in seeds
            changed = False
            if recompute:
                if d == 0:
                    label = np.zeros(1)
                    via = np.empty(0, dtype=np.int32)
                else:
                    rows = matrix[self.bag_pos[v], :d] + self.bag_weights[v][:, None]
                    head = rows.min(axis=0)
                    via = rows.argmin(axis=0).astype(np.int32)
                    label = np.append(head, 0.0)
                if anc_changed or len(self.labels[v]) != len(label) or not (
                    np.array_equal(self.labels[v], label)
                ):
                    changed = True
                    changed_count += 1
                self.labels[v] = label
                self.vias[v] = via
            row = self.labels[v][:d]
            matrix[d, :d] = row
            matrix[:d, d] = row
            matrix[d, d] = 0.0
            propagate = anc_changed or changed
            for child in tree.children[v]:
                child_flag = propagate or child in force_subtree_roots
                if full or child_flag or need_below[child]:
                    stack.append((child, child_flag))
        self._version += 1
        return changed_count

    # ------------------------------------------------------------------
    # packed arena
    # ------------------------------------------------------------------
    @property
    def label_version(self) -> int:
        """Monotone counter bumped by every structure/label mutation.

        :meth:`arena` compares it against the packed snapshot's version, so
        maintenance (ILU/ISU/GSU) transparently invalidates the arena.
        """
        return self._version

    def arena(self) -> LabelArena:
        """The packed :class:`LabelArena` for the current labels.

        Built lazily on first use, cached, and rebuilt automatically after
        any maintenance operation bumps :attr:`label_version` — a stale
        arena can never serve a query.
        """
        arena = self._arena
        if arena is None or arena.version != self._version:
            arena = LabelArena(self)
            self._arena = arena
        return arena

    # ------------------------------------------------------------------
    # queries
    # ------------------------------------------------------------------
    def distance(self, u: int, v: int) -> float:
        """Exact shortest spatial distance ``SPDis(u, v)`` (Alg. 2)."""
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"distance query on unknown vertices ({u}, {v})")
        if u == v:
            return 0.0
        hub_node = self.lca.query(u, v)
        pos = self.positions[hub_node]
        registry = obs.get_registry()
        if registry.enabled:
            # both endpoint labels are probed at every hub position
            registry.counter(
                "repro_label_entries_scanned_total",
                "label entries read by scalar distance queries",
            ).inc(2 * len(pos))
        return float((self.labels[u][pos] + self.labels[v][pos]).min())

    def distance_many(self, sources, targets) -> np.ndarray:
        """Vectorised :meth:`distance` over aligned vertex arrays.

        Computes every pair with one batched LCA lookup plus the arena's
        gather/segmented-min kernel — identical arithmetic to the scalar
        query (same float64 sums, same minimum), so results agree bit for
        bit with a :meth:`distance` loop.  Pairs with ``source == target``
        come out as exactly ``0.0`` through the label's own zero entry.
        """
        us = np.asarray(sources, dtype=np.int64)
        vs = np.asarray(targets, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise QueryError(
                "distance_many needs 1-D source/target arrays of equal length"
            )
        if us.size == 0:
            return np.empty(0, dtype=np.float64)
        n = self.graph.num_vertices
        if int(us.min()) < 0 or int(us.max()) >= n or int(vs.min()) < 0 or int(
            vs.max()
        ) >= n:
            raise QueryError("distance_many query on unknown vertices")
        hubs = self.lca.query_many(us, vs)
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_label_pairs_batched_total",
                "vertex pairs answered by the vectorised arena kernel",
            ).inc(int(us.size))
        return self.arena().pair_distances(us, vs, hubs)

    def hub_cutset(self, u: int, v: int) -> np.ndarray:
        """The precomputed hub cut-set of ``(u, v)`` as a position slice.

        Def. 8 restricts the Eq.-5 minimum to the positions of the LCA
        node's bag (plus the node itself) — the vertex-cut separating the
        two subtrees.  Those position arrays are precomputed at build time
        (:meth:`sync_bag`) and kept current by maintenance, so fetching the
        cut-set is one LCA lookup plus an O(1) slice, never a merge loop
        over the two ancestor paths.  Returned as a read-only view.
        """
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"hub_cutset query on unknown vertices ({u}, {v})")
        return self.positions[self.lca.query(u, v)]

    def distances_to(self, target: int) -> np.ndarray:
        """Exact distances from *every* vertex to ``target`` in one gather.

        One batched LCA sweep plus one arena kernel call — the one-to-all
        primitive the flat query kernel uses to build admissible A*
        heuristic tables.  Bit-identical to ``[distance(u, target) for u
        in range(n)]`` because it is exactly :meth:`distance_many` over
        ``arange(n)``.
        """
        n = self.graph.num_vertices
        if not 0 <= target < n:
            raise QueryError(f"distances_to query on unknown vertex {target}")
        us = np.arange(n, dtype=np.int64)
        vs = np.full(n, target, dtype=np.int64)
        hubs = self.lca.query_many(us, vs)
        registry = obs.get_registry()
        if registry.enabled:
            registry.counter(
                "repro_label_pairs_batched_total",
                "vertex pairs answered by the vectorised arena kernel",
            ).inc(n)
            arena = self.arena()
            width = (
                arena.pos_pad.shape[1]
                if arena.pos_pad is not None
                else len(arena.pos_values)
            )
            registry.counter(
                "repro_label_gather_entries_total",
                "label entries gathered by one-to-all distance sweeps",
            ).inc(2 * n * int(width))
        return self.arena().pair_distances(us, vs, hubs)

    def path(self, u: int, v: int) -> list[int]:
        """A concrete shortest path ``u .. v`` (unpacking label shortcuts)."""
        n = self.graph.num_vertices
        if not (0 <= u < n and 0 <= v < n):
            raise QueryError(f"path query on unknown vertices ({u}, {v})")
        if u == v:
            return [u]
        hub_node = self.lca.query(u, v)
        pos = self.positions[hub_node]
        sums = self.labels[u][pos] + self.labels[v][pos]
        k = int(pos[int(np.argmin(sums))])
        hub = int(self.anc[hub_node][k])
        up = self._path_up(u, k)
        down = self._path_up(v, k)
        return up + down[-2::-1]

    def _path_up(self, v: int, j: int) -> list[int]:
        """Concrete shortest path from ``v`` up to its ancestor at depth ``j``."""
        depth = self.tree.depth
        path = [v]
        while depth[v] > j:
            idx = int(self.vias[v][j])
            x = int(self.bag_keys[v][idx])
            segment = self._expand_shortcut(v, x)
            path.extend(segment[1:])
            if j <= depth[x]:
                v = x
            else:
                target = int(self.anc[v][j])
                tail = self._path_up(target, int(depth[x]))  # target .. x
                path.extend(reversed(tail[:-1]))
                return path
        return path

    def _expand_shortcut(self, a: int, b: int) -> list[int]:
        """Expand a bag (shortcut) edge into original graph edges, a .. b."""
        rank = self.elim.rank
        lo, hi = (a, b) if rank[a] < rank[b] else (b, a)
        middle = self.elim.middles[lo].get(hi)
        if middle is None:
            return [a, b]
        left = self._expand_shortcut(a, middle)
        right = self._expand_shortcut(middle, b)
        return left + right[1:]

    # ------------------------------------------------------------------
    # cloning (consolidation back buffer)
    # ------------------------------------------------------------------
    def clone(self) -> "HierarchyIndex":
        """An independent deep copy of the index that *shares* the graph.

        The consolidation pass repairs a back-buffer clone while the
        original keeps serving; both must observe the same live
        :class:`RoadNetwork` (single source of truth for current weights),
        so the graph is injected into the deepcopy memo instead of being
        copied.  Everything else — elimination, tree, LCA, labels, bag
        views — is fully independent: mutating the clone can never corrupt
        the serving index.  The packed arena is excluded (the clone rebuilds
        it lazily on first vectorised query).
        """
        memo: dict[int, object] = {id(self.graph): self.graph}
        arena = self._arena
        self._arena = None
        try:
            twin = copy.deepcopy(self, memo)
        finally:
            self._arena = arena
        return twin

    # ------------------------------------------------------------------
    # integrity
    # ------------------------------------------------------------------
    def checksum(self) -> str:
        """Hex digest of the query-relevant state (labels, order, vias).

        Two indexes answer every query identically iff their checksums
        match (same elimination order, same label values, same via
        indices).  Used by the serving layer's audits, the transactional
        rollback tests, and as a cheap fingerprint in telemetry.
        """
        h = hashlib.blake2b(digest_size=16)
        h.update(np.asarray(self.elim.order, dtype=np.int64).tobytes())
        for v in range(self.graph.num_vertices):
            h.update(np.ascontiguousarray(self.labels[v], dtype=np.float64).tobytes())
            h.update(np.ascontiguousarray(self.vias[v], dtype=np.int32).tobytes())
        return h.hexdigest()

    # ------------------------------------------------------------------
    # statistics
    # ------------------------------------------------------------------
    @property
    def treewidth(self) -> int:
        return self.tree.treewidth

    @property
    def treeheight(self) -> int:
        return self.tree.treeheight

    def index_size_entries(self) -> int:
        """Total label + position entries (the paper's index-size metric)."""
        return sum(len(lbl) for lbl in self.labels) + sum(
            len(p) for p in self.positions
        )

    def index_size_bytes(self) -> int:
        """Approximate in-memory footprint of the resident query structures.

        Counts the label/via/position arrays, the vectorised bag views
        (``bag_keys``/``bag_weights``/``bag_pos``, which stay resident for
        maintenance and path unpacking), the flat ancestor storage, and the
        packed arena when one is currently built.
        """
        total = sum(lbl.nbytes for lbl in self.labels)
        total += sum(p.nbytes for p in self.positions)
        total += sum(v.nbytes for v in self.vias)
        total += sum(k.nbytes for k in self.bag_keys)
        total += sum(w.nbytes for w in self.bag_weights)
        total += sum(p.nbytes for p in self.bag_pos)
        total += self.anc_flat.nbytes + self.anc_offsets.nbytes
        arena = self._arena
        if arena is not None and arena.version == self._version:
            total += arena.nbytes
        return total

    def __repr__(self) -> str:
        return (
            f"{type(self).__name__}(n={self.graph.num_vertices}, "
            f"treewidth={self.treewidth}, treeheight={self.treeheight}, "
            f"entries={self.index_size_entries()})"
        )


def build_hierarchy_index(
    graph: RoadNetwork,
    importance: ImportanceFunction,
) -> HierarchyIndex:
    """Eliminate ``graph`` under ``importance`` and build labels.

    Requires a connected graph (like the paper's datasets).
    """
    if graph.num_vertices == 0:
        raise IndexStateError("cannot index an empty graph")
    require_connected(graph, context="hierarchical labeling")
    with obs.stopwatch(
        metric="repro_build_phase_seconds",
        span="build.elimination",
        phase="elimination",
    ):
        elimination = eliminate(graph, importance)
    return HierarchyIndex(graph, elimination)
