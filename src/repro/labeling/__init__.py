"""Hierarchical 2-hop labeling: shared machinery and the H2H baseline."""

from repro.labeling.arena import LabelArena
from repro.labeling.h2h import H2HIndex, build_h2h
from repro.labeling.hierarchy import HierarchyIndex, build_hierarchy_index
from repro.labeling.serialize import load_index, save_index

__all__ = [
    "H2HIndex",
    "HierarchyIndex",
    "LabelArena",
    "build_h2h",
    "build_hierarchy_index",
    "load_index",
    "save_index",
]
