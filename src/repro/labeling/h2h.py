"""H2H: hierarchical 2-hop labeling with degree ordering (Ouyang et al.).

The paper's strongest baseline.  Structurally identical to FAHL except that
the elimination ordering is the classic min-degree heuristic — i.e. it is
blind to traffic flow.  Weight maintenance (used in Fig. 9's comparison) is
provided by :func:`repro.core.maintenance.apply_weight_update`, which works
on any :class:`~repro.labeling.hierarchy.HierarchyIndex`.
"""

from __future__ import annotations

from repro.errors import IndexStateError
from repro.graph.road_network import RoadNetwork
from repro.graph.validation import require_connected
from repro.labeling.hierarchy import HierarchyIndex
from repro.treedec.elimination import eliminate
from repro.treedec.ordering import degree_importance

__all__ = ["H2HIndex", "build_h2h"]


class H2HIndex(HierarchyIndex):
    """Degree-ordered hierarchical 2-hop labeling index."""

    def __init__(self, graph: RoadNetwork) -> None:
        if graph.num_vertices == 0:
            raise IndexStateError("cannot index an empty graph")
        require_connected(graph, context="H2H construction")
        super().__init__(graph, eliminate(graph, degree_importance()))


def build_h2h(graph: RoadNetwork) -> H2HIndex:
    """Build an H2H index over ``graph`` (min-degree elimination)."""
    return H2HIndex(graph)
