"""Contiguous label storage for vectorised many-pair distance queries.

:class:`~repro.labeling.hierarchy.HierarchyIndex` keeps its labels as a
Python list of small per-vertex numpy arrays — the right shape for
incremental maintenance (ILU/ISU rewrite individual vertices in place) but
wrong for throughput: every scalar query pays several Python-level
indirections, and the label slices are scattered across the heap.  Flat
label storage is what gives practical labeling systems their query speed
(hierarchical cut labelling and PSL both pack labels contiguously), so
:class:`LabelArena` snapshots the index's labels, via indices and position
arrays into flat ``float64``/``int32``/``int64`` arrays with ``int64``
offset tables; the ancestor paths are shared with the index, which already
stores them flat.  :meth:`pair_distances` then answers thousands of
(source, target, hub) triples with a handful of numpy gathers and one
segmented reduction — no Python loop on the hot path.

The arena is a *snapshot*: it records the index's label version at build
time, and :meth:`HierarchyIndex.arena` rebuilds it whenever maintenance
(ILU/ISU/GSU) bumps the version, so a stale arena can never serve a query.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

if TYPE_CHECKING:  # avoid a cycle: hierarchy imports this module
    from repro.labeling.hierarchy import HierarchyIndex

__all__ = ["LabelArena"]

#: the dense padded position matrix is ``n * max_width`` int64 entries; past
#: this element budget (256 MB) the arena keeps only the ragged layout and
#: :meth:`LabelArena.pair_distances` uses the segmented-reduction kernel.
_DENSE_POS_LIMIT = 32_000_000

#: quantized sentinel standing in for "no entry": larger than any real
#: packed distance (road weights are small integers), and safe to add to
#: itself without overflowing int64.
_QUANT_INF = np.int64(2) ** 40


def _pack(arrays: list[np.ndarray], dtype) -> tuple[np.ndarray, np.ndarray]:
    """Flatten a ragged array list into ``(offsets[n + 1], values)``."""
    n = len(arrays)
    offsets = np.zeros(n + 1, dtype=np.int64)
    if not n:
        return offsets, np.empty(0, dtype=dtype)
    lengths = np.fromiter((len(a) for a in arrays), dtype=np.int64, count=n)
    np.cumsum(lengths, out=offsets[1:])
    return offsets, np.concatenate(arrays).astype(dtype, copy=False)


class LabelArena:
    """Flat-packed labels/vias/positions of one :class:`HierarchyIndex`.

    Attributes
    ----------
    version:
        The index's label version when the arena was packed; compared by
        :meth:`HierarchyIndex.arena` to decide whether a rebuild is due.
    label_offsets, label_values:
        ``label_values[label_offsets[v]:label_offsets[v + 1]]`` is the
        distance label of ``v`` (float64).
    via_offsets, via_values:
        Per-vertex via indices (int32), same layout.
    pos_offsets, pos_values:
        Def.-8 position arrays (int64), same layout.
    pos_pad:
        Dense ``(n, max_width)`` position matrix, each row the hub's
        position array padded by repeating its last entry (a duplicate
        candidate never changes a minimum).  Lets the hot kernel run on
        rectangular gathers with no per-pair expansion; ``None`` when the
        matrix would exceed the :data:`_DENSE_POS_LIMIT` element budget.
    label_pad:
        Dense ``(n, max_label_width)`` padded rectangular view of the
        labels (pad value ``+inf``): ``label_pad[v, j] == labels[v][j]``
        for every valid depth position ``j``.  Hub position arrays only
        address depths at or above the hub, which both endpoint labels
        cover, so rectangular kernels never read the padding.
    label_values_q, label_pad_q:
        Packed-int (int64) quantized copies of the distance labels, built
        only when every label value is integral and small enough that all
        query arithmetic stays exact (see :attr:`quantized`).  Integer
        gathers sidestep float rounding questions entirely: sums and
        minima of integral float64 values are exact, so the quantized
        kernel agrees bit for bit with the float path.
    anc_offsets, anc_values:
        Root-to-vertex ancestor paths — *shared* with the index's flat
        ancestor storage, not copied.
    """

    __slots__ = (
        "version",
        "num_vertices",
        "label_offsets",
        "label_values",
        "label_pad",
        "label_values_q",
        "label_pad_q",
        "via_offsets",
        "via_values",
        "pos_offsets",
        "pos_values",
        "pos_pad",
        "anc_offsets",
        "anc_values",
    )

    def __init__(self, index: "HierarchyIndex") -> None:
        self.num_vertices = index.graph.num_vertices
        self.version = index.label_version
        self.label_offsets, self.label_values = _pack(index.labels, np.float64)
        self.via_offsets, self.via_values = _pack(index.vias, np.int32)
        self.pos_offsets, self.pos_values = _pack(index.positions, np.int64)
        self.pos_pad = self._pad_positions()
        self.label_pad = self._pad_labels()
        self.label_values_q, self.label_pad_q = self._quantize()
        self.anc_offsets = index.anc_offsets
        self.anc_values = index.anc_flat

    def _pad_positions(self) -> np.ndarray | None:
        n = self.num_vertices
        counts = self.pos_offsets[1:] - self.pos_offsets[:-1]
        if n == 0 or int(counts.max()) * n > _DENSE_POS_LIMIT:
            return None
        # row v reads pos_values[pos_offsets[v] + min(col, count_v - 1)]:
        # the window itself, then its last entry repeated out to max width
        col = np.arange(int(counts.max()), dtype=np.int64)
        idx = self.pos_offsets[:-1, None] + np.minimum(col, counts[:, None] - 1)
        return self.pos_values[idx]

    def _pad_labels(self) -> np.ndarray | None:
        n = self.num_vertices
        counts = self.label_offsets[1:] - self.label_offsets[:-1]
        if n == 0 or int(counts.max()) * n > _DENSE_POS_LIMIT:
            return None
        width = int(counts.max())
        col = np.arange(width, dtype=np.int64)
        idx = self.label_offsets[:-1, None] + np.minimum(col, counts[:, None] - 1)
        pad = self.label_values[idx]
        pad[col[None, :] >= counts[:, None]] = np.inf
        return pad

    def _quantize(self) -> tuple[np.ndarray | None, np.ndarray | None]:
        """Packed-int label copies when exactness is provable.

        Quantization requires every label value to be a non-negative
        integer below :data:`_QUANT_INF`: any sum of two such entries is
        below ``2**41``, far inside both int64 and the 2**53 window where
        float64 represents integers exactly — so the integer kernel and
        the float kernel compute identical distances, bit for bit.
        """
        values = self.label_values
        if self.label_pad is None or values.size == 0:
            return None, None
        if not np.all(np.floor(values) == values):
            return None, None
        if float(values.min()) < 0.0 or float(values.max()) >= float(_QUANT_INF):
            return None, None
        pad_q = np.where(
            np.isfinite(self.label_pad), self.label_pad, float(_QUANT_INF)
        ).astype(np.int64)
        return values.astype(np.int64), pad_q

    @property
    def nbytes(self) -> int:
        """Bytes owned by the arena.

        The shared ancestor arrays are excluded — they belong to (and are
        counted by) the index itself.
        """
        return (
            self.label_offsets.nbytes
            + self.label_values.nbytes
            + self.via_offsets.nbytes
            + self.via_values.nbytes
            + self.pos_offsets.nbytes
            + self.pos_values.nbytes
            + (self.pos_pad.nbytes if self.pos_pad is not None else 0)
            + (self.label_pad.nbytes if self.label_pad is not None else 0)
            + (
                self.label_values_q.nbytes
                if self.label_values_q is not None
                else 0
            )
            + (self.label_pad_q.nbytes if self.label_pad_q is not None else 0)
        )

    @property
    def quantized(self) -> bool:
        """Whether the packed-int fast path is active.

        True when every label value is a non-negative integer below the
        sentinel — always the case for integer-weight road networks, where
        label entries are sums of edge weights.
        """
        return self.label_pad_q is not None

    def label(self, v: int) -> np.ndarray:
        """The packed distance label of ``v`` (a view, no copy)."""
        return self.label_values[self.label_offsets[v]:self.label_offsets[v + 1]]

    def pair_distances(
        self,
        sources: np.ndarray,
        targets: np.ndarray,
        hubs: np.ndarray,
    ) -> np.ndarray:
        """Eq.-5 distances for aligned ``(source, target, hub)`` triples.

        ``hubs[i]`` must be the LCA node of ``sources[i]`` and
        ``targets[i]`` in the decomposition tree (Alg. 2's hub node).  Each
        pair's candidate sums ``label[u][p] + label[v][p]`` over the hub's
        position array are folded with an exact minimum; a float64 minimum
        is order-independent over finite values, so both kernels below
        agree bit for bit with the scalar query.

        The hot path gathers padded position rows from :attr:`pos_pad` and
        reduces along a rectangular axis — no per-pair expansion at all
        (the pad duplicates each row's last candidate, which cannot change
        a minimum).  When the arena is :attr:`quantized`, the gather runs
        over the packed-int rectangular view instead: integer sums and
        minima are exact and the final cast back to float64 is lossless,
        so the result is the same array.  When the dense matrix was over
        budget at build time, a ragged kernel expands each pair's window
        with ``repeat`` and folds it with a segmented
        ``minimum.reduceat`` — segments are never empty because every
        position array contains the vertex's own depth.
        """
        if self.pos_pad is not None and self.label_pad_q is not None:
            pos = self.pos_pad.take(hubs, axis=0)
            lu = self.label_pad_q[sources[:, None], pos]
            lu += self.label_pad_q[targets[:, None], pos]
            return np.min(lu, axis=1).astype(np.float64)
        if self.pos_pad is not None:
            idx = self.pos_pad.take(hubs, axis=0)
            off_u = self.label_offsets[sources]
            idx += off_u[:, None]
            lu = self.label_values.take(idx)
            idx += (self.label_offsets[targets] - off_u)[:, None]
            np.add(lu, self.label_values.take(idx), out=lu)
            return np.min(lu, axis=1)
        # ragged fallback: hub-sorted so shared hubs reuse cached windows
        order = np.argsort(hubs, kind="stable")
        h = hubs[order]
        pos_offsets = self.pos_offsets
        label_offsets = self.label_offsets
        counts = pos_offsets[h + 1] - pos_offsets[h]
        ends = np.cumsum(counts)
        starts = ends - counts
        # flat[i] walks each pair's window [pos_offsets[hub], +count) in turn
        flat = np.arange(int(ends[-1]), dtype=np.int64)
        flat += np.repeat(pos_offsets[h] - starts, counts)
        pos = np.take(self.pos_values, flat)
        off_u = label_offsets[sources[order]]
        off_v = label_offsets[targets[order]]
        idx = np.repeat(off_u, counts)
        idx += pos
        lu = np.take(self.label_values, idx)
        idx += np.repeat(off_v - off_u, counts)
        lu += np.take(self.label_values, idx)
        mins = np.minimum.reduceat(lu, starts)
        out = np.empty_like(mins)
        out[order] = mins
        return out

    def __repr__(self) -> str:
        return (
            f"LabelArena(n={self.num_vertices}, "
            f"entries={len(self.label_values)}, version={self.version})"
        )
