"""DIMACS shortest-path challenge file IO.

The paper's NYC/BAY/COL datasets come from the 9th DIMACS implementation
challenge.  This module reads/writes the two relevant formats so real data
can be dropped into the reproduction:

* ``.gr`` — graph files: ``p sp <n> <m>`` header, ``a <u> <v> <w>`` arcs
  (1-indexed, directed; road graphs list both directions — we fold them into
  an undirected edge keeping the minimum weight).
* ``.co`` — coordinate files: ``v <id> <x> <y>`` lines.
"""

from __future__ import annotations

import io
from pathlib import Path

from repro.errors import DatasetFormatError
from repro.graph.road_network import RoadNetwork

__all__ = ["read_gr", "write_gr", "read_co", "load_dimacs"]


def _open_lines(source: str | Path | io.TextIOBase):
    if isinstance(source, io.TextIOBase):
        return source, False
    return open(source, "r", encoding="ascii"), True


def read_gr(source: str | Path | io.TextIOBase) -> RoadNetwork:
    """Parse a DIMACS ``.gr`` file into a :class:`RoadNetwork`."""
    handle, owned = _open_lines(source)
    try:
        graph: RoadNetwork | None = None
        declared_arcs = 0
        seen_arcs = 0
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c"):
                continue
            parts = line.split()
            if parts[0] == "p":
                if len(parts) != 4 or parts[1] != "sp":
                    raise DatasetFormatError(
                        f"line {line_no}: malformed problem line {line!r}"
                    )
                if graph is not None:
                    raise DatasetFormatError(f"line {line_no}: duplicate problem line")
                try:
                    graph = RoadNetwork(int(parts[2]))
                    declared_arcs = int(parts[3])
                except ValueError as exc:
                    raise DatasetFormatError(
                        f"line {line_no}: non-numeric problem line {line!r}"
                    ) from exc
            elif parts[0] == "a":
                if graph is None:
                    raise DatasetFormatError(
                        f"line {line_no}: arc before problem line"
                    )
                if len(parts) != 4:
                    raise DatasetFormatError(f"line {line_no}: malformed arc {line!r}")
                try:
                    u, v, w = int(parts[1]) - 1, int(parts[2]) - 1, float(parts[3])
                    graph.add_edge(u, v, w)
                except DatasetFormatError:
                    raise
                except Exception as exc:  # re-raise with file position
                    raise DatasetFormatError(f"line {line_no}: {exc}") from exc
                seen_arcs += 1
            else:
                raise DatasetFormatError(
                    f"line {line_no}: unknown record type {parts[0]!r}"
                )
        if graph is None:
            raise DatasetFormatError("missing problem line ('p sp n m')")
        if seen_arcs != declared_arcs:
            raise DatasetFormatError(
                f"problem line declared {declared_arcs} arcs, file has {seen_arcs}"
            )
        return graph
    finally:
        if owned:
            handle.close()


def write_gr(graph: RoadNetwork, target: str | Path | io.TextIOBase,
             comment: str = "written by repro.graph.dimacs") -> None:
    """Write a :class:`RoadNetwork` as a DIMACS ``.gr`` file (both arc dirs)."""
    if isinstance(target, io.TextIOBase):
        handle, owned = target, False
    else:
        handle, owned = open(target, "w", encoding="ascii"), True
    try:
        handle.write(f"c {comment}\n")
        handle.write(f"p sp {graph.num_vertices} {2 * graph.num_edges}\n")
        for u, v, w in graph.edges():
            weight = int(w) if float(w).is_integer() else w
            handle.write(f"a {u + 1} {v + 1} {weight}\n")
            handle.write(f"a {v + 1} {u + 1} {weight}\n")
    finally:
        if owned:
            handle.close()


def read_co(source: str | Path | io.TextIOBase) -> dict[int, tuple[float, float]]:
    """Parse a DIMACS ``.co`` coordinate file into ``{vertex: (x, y)}``."""
    handle, owned = _open_lines(source)
    try:
        coords: dict[int, tuple[float, float]] = {}
        for line_no, raw in enumerate(handle, start=1):
            line = raw.strip()
            if not line or line.startswith("c") or line.startswith("p"):
                continue
            parts = line.split()
            if parts[0] != "v" or len(parts) != 4:
                raise DatasetFormatError(
                    f"line {line_no}: malformed coordinate line {line!r}"
                )
            try:
                coords[int(parts[1]) - 1] = (float(parts[2]), float(parts[3]))
            except ValueError as exc:
                raise DatasetFormatError(
                    f"line {line_no}: non-numeric coordinate line {line!r}"
                ) from exc
        return coords
    finally:
        if owned:
            handle.close()


def load_dimacs(gr_path: str | Path, co_path: str | Path | None = None) -> RoadNetwork:
    """Load a graph and (optionally) its coordinates."""
    graph = read_gr(gr_path)
    if co_path is not None:
        graph.coordinates.update(read_co(co_path))
    return graph
