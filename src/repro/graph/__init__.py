"""Road-network substrate: graphs, FRN model, generators, DIMACS IO."""

from repro.graph.csr import CSRGraph, to_csr
from repro.graph.dimacs import load_dimacs, read_co, read_gr, write_gr
from repro.graph.frn import FlowAwareRoadNetwork
from repro.graph.generators import (
    grid_network,
    random_road_network,
    ring_radial_network,
)
from repro.graph.road_network import RoadNetwork
from repro.graph.simplify import SimplifiedNetwork, contract_degree_two
from repro.graph.time_weights import (
    TravelTimeFunction,
    td_dijkstra,
    ttf_from_flow_profile,
)
from repro.graph.validation import (
    connected_components,
    is_connected,
    largest_component,
    require_connected,
)

__all__ = [
    "CSRGraph",
    "FlowAwareRoadNetwork",
    "RoadNetwork",
    "SimplifiedNetwork",
    "TravelTimeFunction",
    "connected_components",
    "contract_degree_two",
    "grid_network",
    "is_connected",
    "largest_component",
    "load_dimacs",
    "random_road_network",
    "read_co",
    "read_gr",
    "require_connected",
    "ring_radial_network",
    "td_dijkstra",
    "to_csr",
    "ttf_from_flow_profile",
    "write_gr",
]
