"""Time-dependent travel-time functions (the TD-G-tree substrate).

The paper's TD-G-tree baseline (Wang et al., VLDB'19) operates on
*time-dependent* road networks where every edge carries a travel-time
function.  Our FRN keeps spatial weights static and models dynamics
through flows, but a faithful substrate library should still provide the
TD machinery:

* :class:`TravelTimeFunction` — a piecewise-linear, periodic travel-time
  function with the **FIFO property** (departing later never gets you
  there earlier), the standard assumption that makes time-dependent
  Dijkstra exact;
* :func:`td_dijkstra` — earliest-arrival search under such functions;
* :func:`ttf_from_flow_profile` — derive an edge's travel-time function
  from its endpoints' flow profile via a BPR-style congestion delay, which
  ties the TD substrate back to the FRN's flows.
"""

from __future__ import annotations

import heapq
import math

import numpy as np

from repro.errors import GraphError, QueryError
from repro.graph.road_network import RoadNetwork

__all__ = ["TravelTimeFunction", "td_dijkstra", "ttf_from_flow_profile"]


class TravelTimeFunction:
    """Piecewise-linear periodic travel time ``tt(departure)``.

    Parameters
    ----------
    breakpoints:
        Sample departure times within one period (ascending, starting at
        0); travel times are linearly interpolated between them and the
        function wraps around at ``period``.
    travel_times:
        Travel time at each breakpoint (positive).
    period:
        Length of one cycle (e.g. 1440 minutes).

    The constructor enforces the FIFO property
    ``t2 + tt(t2) >= t1 + tt(t1)`` for ``t2 >= t1``, which for a piecewise
    linear function is equivalent to every segment slope being >= -1.
    """

    def __init__(
        self,
        breakpoints: np.ndarray,
        travel_times: np.ndarray,
        period: float = 1440.0,
    ) -> None:
        points = np.asarray(breakpoints, dtype=np.float64)
        times = np.asarray(travel_times, dtype=np.float64)
        if points.ndim != 1 or points.shape != times.shape or len(points) < 1:
            raise GraphError("breakpoints and travel_times must align (1-D)")
        if period <= 0:
            raise GraphError(f"period must be positive, got {period}")
        if points[0] != 0.0:
            raise GraphError("breakpoints must start at 0")
        if (np.diff(points) <= 0).any() or points[-1] >= period:
            raise GraphError("breakpoints must be ascending within the period")
        if (times <= 0).any():
            raise GraphError("travel times must be positive")
        # close the cycle for interpolation and FIFO checking
        self._x = np.append(points, period)
        self._y = np.append(times, times[0])
        slopes = np.diff(self._y) / np.diff(self._x)
        if (slopes < -1.0 - 1e-9).any():
            raise GraphError(
                "function violates FIFO: a segment has slope < -1"
            )
        self.period = float(period)

    @classmethod
    def constant(cls, travel_time: float, period: float = 1440.0) -> "TravelTimeFunction":
        """A static edge as a degenerate TTF."""
        return cls(np.array([0.0]), np.array([float(travel_time)]), period)

    def __call__(self, departure: float) -> float:
        """Travel time when departing at ``departure`` (any real time)."""
        t = float(departure) % self.period
        return float(np.interp(t, self._x, self._y))

    def arrival(self, departure: float) -> float:
        """Arrival time for a given departure."""
        return departure + self(departure)

    def min_travel_time(self) -> float:
        """Lower bound over all departures (for A*-style bounds)."""
        return float(self._y.min())

    def max_travel_time(self) -> float:
        return float(self._y.max())

    def __repr__(self) -> str:
        return (
            f"TravelTimeFunction(pieces={len(self._x) - 1}, "
            f"min={self.min_travel_time():.1f}, "
            f"max={self.max_travel_time():.1f})"
        )


def ttf_from_flow_profile(
    base_time: float,
    flow_profile: np.ndarray,
    capacity: float,
    interval_minutes: float = 60.0,
    bpr_alpha: float = 0.15,
    bpr_beta: int = 4,
) -> TravelTimeFunction:
    """BPR-style travel-time function from a daily flow profile.

    ``tt(t) = base * (1 + alpha * (flow(t)/capacity)^beta)`` sampled at the
    profile's slice boundaries — the standard volume-delay relationship
    connecting our flow substrate to TD weights.
    """
    profile = np.asarray(flow_profile, dtype=np.float64)
    if profile.ndim != 1 or len(profile) < 1:
        raise GraphError("flow_profile must be a non-empty vector")
    if base_time <= 0 or capacity <= 0:
        raise GraphError("base_time and capacity must be positive")
    times = base_time * (1.0 + bpr_alpha * (profile / capacity) ** bpr_beta)
    period = interval_minutes * len(profile)
    breakpoints = np.arange(len(profile)) * interval_minutes
    # BPR times can fall fast after a peak; raise the following samples
    # until every segment slope (including the wrap-around one) is >= -1.
    # The cyclic clamp converges because values only increase and are
    # bounded by the peak.
    for _ in range(len(times) + 1):
        changed = False
        for i in range(len(times)):
            min_allowed = times[i - 1] - interval_minutes  # slope >= -1
            if times[i] < min_allowed:
                times[i] = min_allowed
                changed = True
        if not changed:
            break
    return TravelTimeFunction(breakpoints, times, period)


def td_dijkstra(
    graph: RoadNetwork,
    functions: dict[tuple[int, int], TravelTimeFunction],
    source: int,
    target: int,
    departure: float,
) -> tuple[float, list[int]]:
    """Earliest arrival time and path under time-dependent weights.

    ``functions`` maps undirected edges (as sorted tuples) to their TTFs;
    edges without an entry fall back to a constant function of the spatial
    weight.  Exact under FIFO (enforced at TTF construction).
    """
    n = graph.num_vertices
    if not (0 <= source < n and 0 <= target < n):
        raise QueryError(f"unknown vertices ({source}, {target})")
    arrival = {source: float(departure)}
    prev: dict[int, int] = {}
    heap: list[tuple[float, int]] = [(float(departure), source)]
    while heap:
        t, u = heapq.heappop(heap)
        if t > arrival.get(u, math.inf):
            continue
        if u == target:
            path = [target]
            while path[-1] != source:
                path.append(prev[path[-1]])
            path.reverse()
            return t, path
        for v, weight in graph.neighbor_items(u):
            ttf = functions.get((min(u, v), max(u, v)))
            hop = ttf(t) if ttf is not None else weight
            nt = t + hop
            if nt < arrival.get(v, math.inf):
                arrival[v] = nt
                prev[v] = u
                heapq.heappush(heap, (nt, v))
    return math.inf, []
