"""Flow-Aware Road Network (paper Def. 1).

``G_f = (V, E, F_v, W_e)``: an undirected weighted road network plus a
per-vertex traffic-flow time series.  The FRN also carries the *predicted*
flow series (what FAHL is built on) and optional lane counts for the
capacity-based flow of Def. 4.

The distinction between ground-truth flow (``flow``) and predicted flow
(``predicted_flow``) matters for the Fig. 10 experiment: FAHL's vertex
ordering and pruning consume the prediction, while result-quality metrics can
compare against the truth.
"""

from __future__ import annotations

import numpy as np

from repro.errors import FlowError
from repro.flow.capacity import capacity_based_flow
from repro.flow.series import FlowSeries
from repro.graph.road_network import RoadNetwork

__all__ = ["FlowAwareRoadNetwork"]


class FlowAwareRoadNetwork:
    """A road network with traffic-flow series attached (Def. 1).

    Parameters
    ----------
    graph:
        The spatial graph; weights are spatial distances ``W_e``.
    flow:
        Ground-truth flow series ``F_v`` (``T x n``).
    predicted_flow:
        Predicted series used by flow-aware methods; defaults to ``flow``
        (i.e. a perfect predictor).
    lanes:
        Optional per-vertex lane counts for Def. 4's capacity-based flow.
    """

    def __init__(
        self,
        graph: RoadNetwork,
        flow: FlowSeries,
        predicted_flow: FlowSeries | None = None,
        lanes: np.ndarray | None = None,
    ) -> None:
        if flow.num_vertices != graph.num_vertices:
            raise FlowError(
                f"flow series covers {flow.num_vertices} vertices but the "
                f"graph has {graph.num_vertices}"
            )
        if predicted_flow is not None:
            if predicted_flow.num_vertices != graph.num_vertices:
                raise FlowError("predicted flow series does not match the graph")
            if predicted_flow.num_timesteps != flow.num_timesteps:
                raise FlowError(
                    "predicted flow series must cover the same horizon as the truth"
                )
        if lanes is not None:
            lanes = np.asarray(lanes, dtype=np.int64)
            if lanes.shape != (graph.num_vertices,):
                raise FlowError("lane vector must have one entry per vertex")
            if (lanes < 1).any():
                raise FlowError("lane counts must be >= 1")
        self.graph = graph
        self.flow = flow
        self.predicted_flow = predicted_flow if predicted_flow is not None else flow
        self.lanes = lanes

    # ------------------------------------------------------------------
    @property
    def num_vertices(self) -> int:
        return self.graph.num_vertices

    @property
    def num_edges(self) -> int:
        return self.graph.num_edges

    @property
    def num_timesteps(self) -> int:
        return self.flow.num_timesteps

    def predicted_at(self, t: int) -> np.ndarray:
        """Predicted per-vertex flow vector at slice ``t``."""
        return self.predicted_flow.at(t)

    def flow_at(self, t: int) -> np.ndarray:
        """Ground-truth per-vertex flow vector at slice ``t``."""
        return self.flow.at(t)

    def total_predicted_flow(self) -> np.ndarray:
        """Per-vertex flow summed over the horizon (the ``P_total`` of Alg. 1).

        FAHL's construction uses a single importance score per vertex; the
        paper aggregates the predicted series at build time (``t_start``).
        Summing the horizon makes the ordering robust to single-slice noise
        while remaining a pure function of the prediction.
        """
        return self.predicted_flow.matrix.sum(axis=0)

    def capacity_flow_at(self, t: int, w_c: float = 0.5) -> np.ndarray:
        """Capacity-based flow vector Ĉ_f at slice ``t`` (Def. 4)."""
        if self.lanes is None:
            raise FlowError("capacity-based flow requires lane counts")
        return capacity_based_flow(self.predicted_at(t), self.lanes, w_c)

    def total_capacity_flow(self, w_c: float = 0.5) -> np.ndarray:
        """Capacity-based flow aggregated over the horizon."""
        if self.lanes is None:
            raise FlowError("capacity-based flow requires lane counts")
        return capacity_based_flow(self.total_predicted_flow(), self.lanes, w_c)

    def path_flow(self, path: list[int], t: int, predicted: bool = True) -> float:
        """Path traffic-flow ``TF^t(path)`` — sum of vertex flows (Def. 3)."""
        vector = self.predicted_at(t) if predicted else self.flow_at(t)
        return float(sum(vector[v] for v in path))

    def path_distance(self, path: list[int]) -> float:
        """Path spatial distance — sum of edge weights (Def. 3)."""
        return sum(
            self.graph.weight(u, v) for u, v in zip(path, path[1:])
        )

    def with_flow_updates(self, t: int, updates: dict[int, float]) -> "FlowAwareRoadNetwork":
        """Copy of the FRN with predicted-flow updates applied at slice ``t``."""
        return FlowAwareRoadNetwork(
            self.graph,
            self.flow,
            self.predicted_flow.with_updates(t, updates),
            self.lanes,
        )

    def __repr__(self) -> str:
        return (
            f"FlowAwareRoadNetwork(n={self.num_vertices}, m={self.num_edges}, "
            f"T={self.num_timesteps})"
        )
