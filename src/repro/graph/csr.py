"""Compressed-sparse-row views of a :class:`~repro.graph.road_network.RoadNetwork`.

The adjacency-dict representation is convenient for index construction and
updates; bulk algorithms (Dijkstra sweeps over many sources, flow diffusion)
are faster over flat numpy arrays.  :func:`to_csr` produces an immutable CSR
snapshot; it does *not* track later graph mutations.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.graph.road_network import RoadNetwork

__all__ = ["CSRGraph", "to_csr"]


@dataclass(frozen=True)
class CSRGraph:
    """Immutable CSR adjacency snapshot.

    Attributes
    ----------
    indptr:
        ``int64[n+1]`` — neighbour list of vertex ``v`` spans
        ``indices[indptr[v]:indptr[v+1]]``.
    indices:
        ``int64[2m]`` — neighbour vertex ids.
    weights:
        ``float64[2m]`` — edge weights aligned with ``indices``.
    """

    indptr: np.ndarray
    indices: np.ndarray
    weights: np.ndarray

    @property
    def num_vertices(self) -> int:
        return len(self.indptr) - 1

    @property
    def num_edges(self) -> int:
        return len(self.indices) // 2

    def neighbors(self, v: int) -> np.ndarray:
        """Neighbour ids of ``v`` as an array view."""
        return self.indices[self.indptr[v]:self.indptr[v + 1]]

    def neighbor_weights(self, v: int) -> np.ndarray:
        """Edge weights of ``v``'s incident edges, aligned with neighbours."""
        return self.weights[self.indptr[v]:self.indptr[v + 1]]

    def degrees(self) -> np.ndarray:
        """Vector of all vertex degrees."""
        return np.diff(self.indptr)


def to_csr(graph: RoadNetwork) -> CSRGraph:
    """Snapshot ``graph`` into CSR arrays (neighbours sorted per vertex)."""
    n = graph.num_vertices
    indptr = np.zeros(n + 1, dtype=np.int64)
    for v in range(n):
        indptr[v + 1] = indptr[v] + graph.degree(v)
    indices = np.empty(indptr[-1], dtype=np.int64)
    weights = np.empty(indptr[-1], dtype=np.float64)
    for v in range(n):
        items = sorted(graph.neighbor_items(v))
        base = indptr[v]
        for offset, (nbr, w) in enumerate(items):
            indices[base + offset] = nbr
            weights[base + offset] = w
    return CSRGraph(indptr=indptr, indices=indices, weights=weights)
