"""Structural checks over road networks.

Index construction assumes a connected graph (the paper's datasets are the
largest connected component of each network).  These helpers verify the
assumption and extract the component when it fails.
"""

from __future__ import annotations

from collections import deque

from repro.errors import DisconnectedGraphError
from repro.graph.road_network import RoadNetwork

__all__ = [
    "connected_components",
    "is_connected",
    "largest_component",
    "require_connected",
]


def connected_components(graph: RoadNetwork) -> list[list[int]]:
    """All connected components as vertex lists (BFS, largest first)."""
    n = graph.num_vertices
    seen = bytearray(n)
    components: list[list[int]] = []
    for start in range(n):
        if seen[start]:
            continue
        seen[start] = 1
        queue = deque([start])
        members = [start]
        while queue:
            u = queue.popleft()
            for v in graph.neighbors(u):
                if not seen[v]:
                    seen[v] = 1
                    members.append(v)
                    queue.append(v)
        components.append(members)
    components.sort(key=len, reverse=True)
    return components


def is_connected(graph: RoadNetwork) -> bool:
    """Whether the graph is connected (empty and 1-vertex graphs count)."""
    if graph.num_vertices <= 1:
        return True
    return len(connected_components(graph)) == 1


def require_connected(graph: RoadNetwork, context: str = "operation") -> None:
    """Raise :class:`DisconnectedGraphError` unless ``graph`` is connected."""
    if not is_connected(graph):
        count = len(connected_components(graph))
        raise DisconnectedGraphError(
            f"{context} requires a connected graph; found {count} components"
        )


def largest_component(graph: RoadNetwork) -> tuple[RoadNetwork, dict[int, int]]:
    """Induced subgraph on the largest connected component.

    Returns the subgraph and the old-id -> new-id mapping.
    """
    components = connected_components(graph)
    if not components:
        return RoadNetwork(0), {}
    return graph.subgraph(components[0])
