"""Road-network simplification: degree-2 chain contraction.

Real road datasets are dominated by degree-2 "shape" vertices (curves in a
road drawn as many segments).  Contracting each maximal degree-2 chain
into one edge shrinks the graph — and every index built on it — without
changing any distance between the retained vertices.  This is the standard
preprocessing step production routing engines apply before indexing.

The contraction returns a :class:`SimplifiedNetwork` that keeps the
chain interiors, so a path computed on the simplified graph can be
*expanded* back to the original vertex sequence, and per-vertex flows can
be aggregated onto the surviving representative.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import GraphError
from repro.graph.road_network import RoadNetwork

__all__ = ["SimplifiedNetwork", "contract_degree_two"]


@dataclass
class SimplifiedNetwork:
    """A contracted graph plus the bookkeeping to map back.

    Attributes
    ----------
    graph:
        The simplified graph over new dense ids.
    to_new:
        ``old id -> new id`` for retained vertices (chain interiors absent).
    to_old:
        ``new id -> old id``.
    chains:
        ``(new_u, new_v) -> interior old-vertex sequence`` for each
        contracted edge (oriented from ``u`` to ``v``; empty for edges that
        were never contracted).
    """

    graph: RoadNetwork
    to_new: dict[int, int]
    to_old: list[int]
    chains: dict[tuple[int, int], list[int]]

    def expand_path(self, path: list[int]) -> list[int]:
        """Translate a simplified-graph path back to original vertices."""
        if not path:
            return []
        expanded = [self.to_old[path[0]]]
        for a, b in zip(path, path[1:]):
            interior = self.chains.get((a, b))
            if interior is None:
                reverse = self.chains.get((b, a))
                interior = list(reversed(reverse)) if reverse else []
            expanded.extend(interior)
            expanded.append(self.to_old[b])
        return expanded

    def aggregate_flows(self, flows: np.ndarray) -> np.ndarray:
        """Project per-old-vertex flows onto the simplified vertex set.

        A retained vertex absorbs half of each adjacent chain's interior
        flow (the vehicles on the chain pass both endpoints), keeping the
        total flow mass comparable.
        """
        flows = np.asarray(flows, dtype=np.float64)
        max_old = max(
            max(self.to_old, default=-1),
            max(
                (v for chain in self.chains.values() for v in chain),
                default=-1,
            ),
        )
        if flows.ndim != 1 or len(flows) <= max_old:
            raise GraphError(
                "flow vector does not cover the original vertex space"
            )
        out = np.array([flows[old] for old in self.to_old])
        for (u, v), interior in self.chains.items():
            if interior:
                share = float(flows[interior].sum()) / 2.0
                out[u] += share
                out[v] += share
        return out


def contract_degree_two(graph: RoadNetwork) -> SimplifiedNetwork:
    """Contract every maximal chain of degree-2 vertices.

    Distances between retained vertices are preserved exactly (each chain
    becomes one edge carrying the chain's total weight; parallel chains
    collapse to the cheapest).  Degree-2 vertices on cycles whose removal
    would disconnect nothing but leave no anchor (pure cycles) are kept.
    """
    n = graph.num_vertices
    is_interior = [
        graph.degree(v) == 2 for v in range(n)
    ]
    # endpoints (retained): anything not degree-2
    retained = [v for v in range(n) if not is_interior[v]]
    if not retained:
        # the whole graph is a cycle: keep it as-is
        clone = graph.copy()
        return SimplifiedNetwork(
            graph=clone,
            to_new={v: v for v in range(n)},
            to_old=list(range(n)),
            chains={},
        )
    to_new = {old: new for new, old in enumerate(retained)}
    to_old = list(retained)
    simplified = RoadNetwork(len(retained))
    for old in retained:
        if old in graph.coordinates:
            simplified.coordinates[to_new[old]] = graph.coordinates[old]

    chains: dict[tuple[int, int], list[int]] = {}
    seen_interior = set()

    def add_edge(u_old: int, v_old: int, weight: float, interior: list[int]) -> None:
        u, v = to_new[u_old], to_new[v_old]
        if u == v:
            return  # a chain looping back to its anchor adds nothing
        existing = simplified.adjacency(u).get(v)
        if existing is None or weight < existing:
            simplified.add_edge(u, v, weight)
            if existing is not None and weight >= existing:
                return
            chains.pop((u, v), None)
            chains.pop((v, u), None)
            if interior:
                chains[(u, v)] = interior

    for start in retained:
        for nbr in graph.neighbors(start):
            if not is_interior[nbr]:
                if start < nbr:
                    add_edge(start, nbr, graph.weight(start, nbr), [])
                continue
            if nbr in seen_interior:
                continue
            # walk the chain to its other anchor
            interior = [nbr]
            weight = graph.weight(start, nbr)
            prev, current = start, nbr
            while True:
                nxt = next(x for x in graph.neighbors(current) if x != prev)
                weight += graph.weight(current, nxt)
                if not is_interior[nxt]:
                    break
                interior.append(nxt)
                prev, current = current, nxt
            seen_interior.update(interior)
            add_edge(start, nxt, weight, interior)

    return SimplifiedNetwork(
        graph=simplified, to_new=to_new, to_old=to_old, chains=chains
    )
